// Package cmosopt's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§5) as testing.B benchmarks, plus the
// ablations called out in DESIGN.md. Custom metrics carry the reproduced
// quantities:
//
//	go test -bench=Table -benchmem          # Tables 1 and 2
//	go test -bench=Figure                   # Figure 2(a) and 2(b) series
//	go test -bench=Ablation                 # design-choice ablations
//
// Paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package cmosopt

import (
	"fmt"
	"runtime"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/experiments"
	"cmosopt/internal/netgen"
	"cmosopt/internal/timing"
	"cmosopt/internal/wiring"
)

// suite is the paper's benchmark set; heavy benches use a subset.
var suite = netgen.SuiteNames()

// benchLevelDelay is the assumed per-level delay used to derive a feasible
// clock frequency for depth-scaled benchmark circuits.
//
//cmosvet:unit s
const benchLevelDelay = 0.35e-9

func problemFor(b *testing.B, name string, act float64) *core.Problem {
	b.Helper()
	c, err := netgen.Profile(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: act,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// problemForScale elaborates one of netgen's 10⁵–10⁶-gate scale profiles at a
// depth-matched clock (~0.35 ns per level, the BenchmarkScalability rate —
// a fixed 300 MHz would be structurally infeasible at depth 120+).
func problemForScale(b *testing.B, name string, act float64) *core.Problem {
	b.Helper()
	cfg, err := netgen.ScaleConfig(name)
	if err != nil {
		b.Fatal(err)
	}
	c, err := netgen.ScaleProfile(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           1 / (float64(cfg.Depth) * benchLevelDelay),
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: act,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1 regenerates the paper's Table 1: the fixed-Vt (700 mV)
// width+Vdd baseline per benchmark circuit at activity 0.5. The reported
// metrics are the returned supply voltage and total energy per cycle.
func BenchmarkTable1(b *testing.B) {
	for _, name := range suite {
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				p := problemFor(b, name, 0.5)
				var err error
				res, err = p.OptimizeBaseline(core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Vdd, "Vdd(V)")
			b.ReportMetric(res.Energy.Total()*1e15, "fJ/cycle")
			b.ReportMetric(res.CriticalDelay*1e9, "delay(ns)")
		})
	}
}

// BenchmarkTable2 regenerates the paper's Table 2: the joint Vdd/Vt/width
// heuristic per circuit, reporting the savings factor against the Table 1
// baseline and against the fixed-3.3 V reference (the value the paper's
// Table 1 optimizer actually returned; the paper's 10–25x figures).
func BenchmarkTable2(b *testing.B) {
	for _, name := range suite {
		b.Run(name, func(b *testing.B) {
			var entry experiments.Entry
			for i := 0; i < b.N; i++ {
				cfg := experiments.Default()
				cfg.Circuits = []string{name}
				cfg.Activities = []float64{0.5}
				entries, err := experiments.RunSuite(cfg)
				if err != nil {
					b.Fatal(err)
				}
				entry = entries[0]
			}
			b.ReportMetric(entry.Savings, "savings(x)")
			b.ReportMetric(entry.Savings33, "savings-vs-3.3V(x)")
			b.ReportMetric(entry.Joint.VtsValues[0]*1e3, "Vt(mV)")
			b.ReportMetric(entry.Joint.Vdd, "Vdd(V)")
			b.ReportMetric(entry.Joint.Energy.Static/entry.Joint.Energy.Dynamic, "static/dynamic")
		})
	}
}

// BenchmarkFigure2a regenerates Figure 2(a): power savings of the
// worst-case-corner-optimized design vs threshold-voltage tolerance (s298).
func BenchmarkFigure2a(b *testing.B) {
	tols := []float64{0, 0.10, 0.20, 0.30}
	var pts []core.VariationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure2a(experiments.Default(), "s298", 0.5, tols)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(pt.Savings, fmt.Sprintf("savings@%.0f%%(x)", pt.Tol*100))
	}
}

// BenchmarkFigure2b regenerates Figure 2(b): power savings vs available
// cycle time (skew factor sweep, s298).
func BenchmarkFigure2b(b *testing.B) {
	skews := []float64{0.55, 0.75, 0.95}
	var pts []core.SlackPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure2b(experiments.Default(), "s298", 0.5, skews)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(pt.Savings, fmt.Sprintf("savings@b=%.2f(x)", pt.Skew))
	}
}

// BenchmarkAnnealVsHeuristic regenerates the §5 comparison: equal-effort
// multi-pass simulated annealing vs the heuristic. A ratio above 1 means the
// heuristic wins, the paper's finding.
func BenchmarkAnnealVsHeuristic(b *testing.B) {
	for _, name := range []string{"s298", "s382"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				entries, err := experiments.SACompare(experiments.Default(), []string{name}, 0.5, core.DefaultAnnealOptions())
				if err != nil {
					b.Fatal(err)
				}
				ratio = entries[0].Ratio
			}
			b.ReportMetric(ratio, "anneal/heuristic(x)")
		})
	}
}

// BenchmarkMultiVt exercises the paper's n_v > 1 extension: energy as the
// number of distinct thresholds grows.
func BenchmarkMultiVt(b *testing.B) {
	for _, nv := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("nv=%d", nv), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				p := problemFor(b, "s298", 0.5)
				var err error
				res, err = p.OptimizeMultiVt(nv, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Energy.Total()*1e15, "fJ/cycle")
			b.ReportMetric(float64(len(res.VtsValues)), "distinct-Vt")
		})
	}
}

// BenchmarkProcedure2 measures the heuristic's runtime per circuit — the
// paper reports 5–20 s on 1997 hardware; the O(M³) evaluation count is
// reported alongside. The s100k case runs the full joint flow on a
// 100,000-gate random-logic network (coarser M = 8 bisection, and
// WidthPasses = 6: at 10⁵ gates the width fixed-point needs the extra sweeps
// for the drift tail of its 100k budget checks to settle inside the
// verification tolerance).
func BenchmarkProcedure2(b *testing.B) {
	for _, name := range []string{"s298", "s510", "s100k"} {
		b.Run(name, func(b *testing.B) {
			var evals int
			for i := 0; i < b.N; i++ {
				var p *core.Problem
				o := core.DefaultOptions()
				if name == "s100k" {
					p = problemForScale(b, name, 0.5)
					o.M = 8
					o.WidthPasses = 6
				} else {
					p = problemFor(b, name, 0.5)
				}
				res, err := p.OptimizeJoint(o)
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Evaluations
			}
			b.ReportMetric(float64(evals), "circuit-evals")
		})
	}
}

// BenchmarkAblationBudgeting compares Procedure 1's criticality-driven
// fanout-proportional budgets against naive uniform budgets (cycle budget
// divided by circuit depth for every gate). The metric is the energy ratio
// of the naive scheme over Procedure 1 (> 1: Procedure 1 wins). See
// EXPERIMENTS.md for the discussion — on shallow circuits with a rich
// intrinsic delay component uniform budgeting is competitive; on deep
// hub-heavy circuits Procedure 1's criticality ordering matters.
func BenchmarkAblationBudgeting(b *testing.B) {
	for _, name := range []string{"s298", "s344"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				p := problemFor(b, name, 0.5)
				smart, err := p.OptimizeJoint(core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}

				pu := problemFor(b, name, 0.5)
				depth, err := pu.C.Depth()
				if err != nil {
					b.Fatal(err)
				}
				uniform := pu.CycleBudget() / float64(depth)
				for id := range pu.Budgets.TMax {
					if pu.C.Gate(id).IsLogic() {
						pu.Budgets.TMax[id] = uniform
					}
				}
				naive, err := pu.OptimizeJoint(core.DefaultOptions())
				if err != nil {
					// Uniform budgets can be outright infeasible; report a
					// large ratio rather than failing the bench.
					ratio = 10
					continue
				}
				ratio = naive.Energy.Total() / smart.Energy.Total()
			}
			b.ReportMetric(ratio, "uniform/procedure1(x)")
		})
	}
}

// BenchmarkAblationSteering compares the paper's directional bisection with
// the golden-section-refined search (Options.Refine), checking how much the
// monotonicity assumption leaves on the table.
func BenchmarkAblationSteering(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		p := problemFor(b, "s298", 0.5)
		plain, err := p.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		o := core.DefaultOptions()
		o.Refine = true
		refined, err := p.OptimizeJoint(o)
		if err != nil {
			b.Fatal(err)
		}
		gain = plain.Energy.Total() / refined.Energy.Total()
	}
	b.ReportMetric(gain, "bisection/refined(x)")
}

// BenchmarkAblationWidthIteration compares the paper's literal single-pass
// width solve (WidthPasses = 1) against the fixed-point iteration the
// library defaults to.
func BenchmarkAblationWidthIteration(b *testing.B) {
	for _, passes := range []int{1, 4} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			var total float64
			feasible := true
			for i := 0; i < b.N; i++ {
				p := problemFor(b, "s298", 0.5)
				o := core.DefaultOptions()
				o.WidthPasses = passes
				res, err := p.OptimizeJoint(o)
				if err != nil {
					feasible = false
					continue
				}
				total = res.Energy.Total()
				feasible = res.Feasible
			}
			b.ReportMetric(total*1e15, "fJ/cycle")
			if feasible {
				b.ReportMetric(1, "feasible")
			} else {
				b.ReportMetric(0, "feasible")
			}
		})
	}
}

// BenchmarkDualVdd exercises the clustered second-supply extension. At the
// near-threshold joint optimum a second rail often collapses to a uniform
// supply adjustment (see EXPERIMENTS.md) — the metric records the gain.
func BenchmarkDualVdd(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		p := problemFor(b, "s298", 0.5)
		joint, err := p.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		dv, err := p.OptimizeDualVdd(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		gain = joint.Energy.Total() / dv.Energy.Total()
	}
	b.ReportMetric(gain, "gain-vs-single-rail(x)")
}

// BenchmarkScalability runs the full joint flow on ISCAS'85-scale profiles
// (up to ~1700 gates), each at a clock target matched to its depth, to track
// how optimization cost grows with circuit size.
func BenchmarkScalability(b *testing.B) {
	for _, name := range []string{"c432", "c880", "c1908", "c3540"} {
		b.Run(name, func(b *testing.B) {
			cfg, err := netgen.Profile85Config(name)
			if err != nil {
				b.Fatal(err)
			}
			fc := 1 / (float64(cfg.Depth) * benchLevelDelay) // ~0.35 ns per level
			for i := 0; i < b.N; i++ {
				c, err := netgen.Profile85(name)
				if err != nil {
					b.Fatal(err)
				}
				p, err := core.NewProblem(core.Spec{
					Circuit: c, Tech: device.Default350(), Wiring: wiring.Default350(),
					Fc: fc, Skew: 0.95, InputProb: 0.5, InputDensity: 0.5,
				})
				if err != nil {
					b.Fatal(err)
				}
				o := core.DefaultOptions()
				o.M = 8 // coarser bisection keeps the big circuits tractable
				if _, err := p.OptimizeJoint(o); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Gates), "gates")
		})
	}
}

// BenchmarkAblationSizingPolicy compares the paper's budget-driven width
// solve (Procedure 1 budgets + per-gate bisection) against TILOS-style
// global sensitivity sizing (no budgets; greedy upsizing on the critical
// path until timing fits). Ratio < 1 means the sensitivity policy finds a
// lower-energy design — at a much higher optimization cost.
func BenchmarkAblationSizingPolicy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		p := problemFor(b, "s298", 0.5)
		budget, err := p.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		o := core.DefaultOptions()
		o.M = 8
		sens, err := p.OptimizeJointSensitivity(o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sens.Energy.Total() / budget.Energy.Total()
	}
	b.ReportMetric(ratio, "sensitivity/budget(x)")
}

// BenchmarkBufferInsertion measures whether capping high-fanout nets with
// buffer trees before optimization helps: hubs concentrate criticality
// (their FoEff dominates path budgets), and splitting them trades buffer
// energy against drive energy. The metric is buffered/unbuffered total
// energy (< 1 means buffering wins).
func BenchmarkBufferInsertion(b *testing.B) {
	var ratio float64
	var bufs int
	for i := 0; i < b.N; i++ {
		c, err := netgen.Profile("s298")
		if err != nil {
			b.Fatal(err)
		}
		p := problemFor(b, "s298", 0.5)
		plain, err := p.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}

		bc, nb, err := circuit.InsertBuffers(c, 4)
		if err != nil {
			b.Fatal(err)
		}
		bufs = nb
		pb, err := core.NewProblem(core.Spec{
			Circuit: bc, Tech: device.Default350(), Wiring: wiring.Default350(),
			Fc: 300e6, Skew: 0.95, InputProb: 0.5, InputDensity: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		buffered, err := pb.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ratio = buffered.Energy.Total() / plain.Energy.Total()
	}
	b.ReportMetric(ratio, "buffered/plain(x)")
	b.ReportMetric(float64(bufs), "buffers")
}

// BenchmarkAblationRiseFall quantifies the paper's "symmetric pull-up /
// pull-down" assumption: the rise/fall-resolved critical delay of the
// joint-optimized design relative to the symmetric analysis it was timed
// with. A ratio above 1 is margin a sign-off with asymmetric stacks would
// demand back.
func BenchmarkAblationRiseFall(b *testing.B) {
	var baseRatio float64
	var jointStuck float64
	for i := 0; i < b.N; i++ {
		p := problemFor(b, "s298", 0.5)
		base, err := p.OptimizeBaseline(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		baseRatio = p.Eval.DelayModel().CriticalDelayRiseFall(base.Assignment) / base.CriticalDelay

		joint, err := p.OptimizeJoint(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		// At the near-threshold joint optimum, deep stacks may not switch at
		// all once drive is divided by stack depth: count them. A nonzero
		// count means the symmetric assumption is load-bearing there.
		stuck := 0
		ids, err := p.C.LogicIDs()
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range ids {
			r, f := p.Eval.DelayModel().GateDelayRiseFall(id, joint.Assignment, 0)
			if r > 1 || f > 1 { // +Inf or absurd: unswitchable
				stuck++
			}
		}
		jointStuck = float64(stuck)
	}
	b.ReportMetric(baseRatio, "baseline-risefall/symmetric(x)")
	b.ReportMetric(jointStuck, "joint-unswitchable-gates")
}

// BenchmarkAblationActivityObjective asks whether the correlation-aware
// activity engine buys the *optimizer* anything: optimize s298 under the
// Najm objective and under the correlated objective, then judge both
// designs by re-pricing their dynamic energy with zero-delay Monte-Carlo
// densities (the closest thing to ground truth). A ratio below 1 means the
// correlated objective produced the genuinely better design.
func BenchmarkAblationActivityObjective(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		c, err := netgen.Profile("s298")
		if err != nil {
			b.Fatal(err)
		}
		mk := func(correlated bool) (*core.Problem, *core.Result) {
			cc, err := netgen.Profile("s298")
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProblem(core.Spec{
				Circuit: cc, Tech: device.Default350(), Wiring: wiring.Default350(),
				Fc: 300e6, Skew: 0.95, InputProb: 0.5, InputDensity: 0.5,
				CorrelatedActivity: correlated,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.OptimizeJoint(core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			return p, res
		}
		pn, najm := mk(false)
		pc, corr := mk(true)

		// Ground-truth densities from zero-delay Monte Carlo.
		in := make(map[int]activity.InputSpec, len(c.PIs))
		for _, id := range c.PIs {
			in[id] = activity.InputSpec{Prob: 0.5, Density: 0.5}
		}
		mc, err := activity.MonteCarlo(pn.C, in, 40000, 5)
		if err != nil {
			b.Fatal(err)
		}
		truth := func(p *core.Problem, res *core.Result) float64 {
			total := res.Energy.Static
			for gi := range p.C.Gates {
				if !p.C.Gates[gi].IsLogic() {
					continue
				}
				base := p.Eval.GateEnergy(gi, res.Assignment).Dynamic
				if d := p.Act.Density[gi]; d > 1e-12 {
					total += base * mc.Density[gi] / d
				}
			}
			return total
		}
		ratio = truth(pc, corr) / truth(pn, najm)
	}
	b.ReportMetric(ratio, "corr-objective/najm-objective(x)")
}

// --- Micro-benchmarks of the hot analysis paths ---

func BenchmarkSTA(b *testing.B) {
	p := problemFor(b, "s510", 0.5)
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval.CriticalDelay(a)
	}
}

func BenchmarkActivityPropagation(b *testing.B) {
	c, err := netgen.Profile("s510")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activity.PropagateUniform(c, 0.5, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerTotal(b *testing.B) {
	p := problemFor(b, "s510", 0.5)
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval.Energy(a)
	}
}

func BenchmarkBudgetAssignment(b *testing.B) {
	c, err := netgen.Profile("s510")
	if err != nil {
		b.Fatal(err)
	}
	ta, err := timing.NewAnalysis(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.AssignBudgets(ta, 3.17e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelayModelSingleGate(b *testing.B) {
	p := problemFor(b, "s298", 0.5)
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	ids, err := p.C.LogicIDs()
	if err != nil {
		b.Fatal(err)
	}
	id := ids[len(ids)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval.GateDelayWith(id, a, 1e-10)
	}
}

// BenchmarkEngineFullEval measures one full cached delay+energy evaluation
// through the engine — the steady-state cost of a Procedure 2 probe point.
// ReportAllocs guards the zero-allocation steady state: the levelized CSR
// sweeps run entirely on the engine's reusable scratch, at s510 and at the
// 100,000-gate scale profile alike.
func BenchmarkEngineFullEval(b *testing.B) {
	for _, name := range []string{"s510", "s100k"} {
		b.Run(name, func(b *testing.B) {
			var p *core.Problem
			if name == "s100k" {
				p = problemForScale(b, name, 0.5)
			} else {
				p = problemFor(b, name, 0.5)
			}
			a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Eval.CriticalDelay(a)
				p.Eval.Energy(a)
			}
			b.ReportMetric(float64(p.Eval.Metrics().CoeffMisses), "coeff-misses")
		})
	}
}

// BenchmarkEngineIncremental measures a bound width edit: re-time the dirty
// cone and re-price the touched gates instead of sweeping the circuit.
func BenchmarkEngineIncremental(b *testing.B) {
	p := problemFor(b, "s510", 0.5)
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	p.Eval.Bind(a)
	defer p.Eval.Unbind()
	ids, err := p.C.LogicIDs()
	if err != nil {
		b.Fatal(err)
	}
	p.Eval.Metrics().Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		p.Eval.SetWidth(id, 2+float64(i%7))
		_ = p.Eval.BoundCriticalDelay()
		_ = p.Eval.BoundEnergy()
	}
	b.StopTimer()
	m := p.Eval.Metrics()
	if m.IncrementalEdits > 0 {
		b.ReportMetric(float64(m.DirtyGates)/float64(m.IncrementalEdits), "dirty-gates/edit")
	}
}

// workerSet is the fan-out axis of the parallel-layer benchmarks: serial,
// then the host's CPU count (skipped when that is also 1). Outputs are
// byte-identical across the axis — only wall-clock time may change.
func workerSet() []int {
	ws := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		ws = append(ws, n)
	}
	return ws
}

// BenchmarkLandscape measures the SampleLandscape grid fan-out: every cell is
// an independent width solve priced on a worker engine clone.
func BenchmarkLandscape(b *testing.B) {
	for _, w := range workerSet() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := problemFor(b, "s298", 0.5)
			opts := core.DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.SampleLandscape(8, 8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkYield measures the Monte-Carlo die fan-out: per-sample RNG
// substreams let dies land on any worker without changing the drawn bits.
func BenchmarkYield(b *testing.B) {
	p := problemFor(b, "s298", 0.5)
	res, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerSet() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.YieldStudy(res.Assignment, 0.1, 500, 42, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefine measures Procedure 2 with the Refine polish: the 9-point
// grid scan fans out and the middle loop evaluates speculative Vts
// candidates when at least three workers are available.
func BenchmarkRefine(b *testing.B) {
	for _, w := range workerSet() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = w
			opts.Refine = true
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := problemFor(b, "s298", 0.5)
				b.StartTimer()
				if _, err := p.OptimizeJoint(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
