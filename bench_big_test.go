//go:build bigbench

// Million-gate smoke tests, opt-in via -tags=bigbench: they allocate a few
// hundred megabytes and take tens of seconds, so they are kept out of the
// default tier-1 run. See EXPERIMENTS.md §scale for the numbers these guard.
//
//	go test -tags=bigbench -run BigScale -v .
//	go test -tags=bigbench -bench FullEval1M -benchtime 3x .
package cmosopt

import (
	"runtime"
	"testing"
	"time"

	"cmosopt/internal/core"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// heapLive forces a collection and returns the live heap size.
func heapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestBigScale1M elaborates the s1m profile (10⁶ gates) end to end — generate,
// cut DFFs, build the CSR core, run Procedure 1 budgeting, construct the
// evaluation engine — and checks the two properties that keep million-gate
// networks tractable: bounded live bytes per gate after elaboration, and
// allocation-free steady-state full sweeps.
func TestBigScale1M(t *testing.T) {
	if testing.Short() {
		t.Skip("bigbench: skipped in -short")
	}
	cfg, err := netgen.ScaleConfig("s1m")
	if err != nil {
		t.Fatal(err)
	}
	base := heapLive()

	start := time.Now()
	c, err := netgen.ScaleProfile("s1m")
	if err != nil {
		t.Fatal(err)
	}
	genDur := time.Since(start)

	start = time.Now()
	p, err := core.NewProblem(core.Spec{
		Circuit: c, Tech: device.Default350(), Wiring: wiring.Default350(),
		Fc: 1 / (float64(cfg.Depth) * 0.35e-9), Skew: 0.95,
		InputProb: 0.5, InputDensity: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	elabDur := time.Since(start)

	n := float64(p.C.N())
	perGate := float64(heapLive()-base) / n
	t.Logf("s1m: generate %v, elaborate %v, live heap %.0f B/gate", genDur, elabDur, perGate)

	// The whole elaborated problem — circuit, CSR core, activity, wiring,
	// budgets, engine — must stay within a few hundred bytes per gate. The
	// analysis layer this PR adds (CSR arrays + engine scratch) accounts for
	// ~100 B/gate of it; see DESIGN.md §memory for the field-by-field budget.
	const maxBytesPerGate = 512
	if perGate > maxBytesPerGate {
		t.Fatalf("live heap %.0f B/gate exceeds %d B/gate budget", perGate, maxBytesPerGate)
	}

	// Steady-state sweeps reuse the engine scratch: after one warm-up to fill
	// the coefficient caches, a full delay+energy evaluation allocates nothing.
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	p.Eval.CriticalDelay(a)
	p.Eval.Energy(a)
	start = time.Now()
	allocs := testing.AllocsPerRun(3, func() {
		p.Eval.CriticalDelay(a)
		p.Eval.Energy(a)
	})
	sweepDur := time.Since(start) / 4
	t.Logf("s1m: full sweep %v, %.1f allocs/op", sweepDur, allocs)
	if allocs > 8 {
		t.Fatalf("steady-state full sweep allocates (%.1f allocs/op); scratch reuse is broken", allocs)
	}
}

// BenchmarkEngineFullEval1M is the million-gate variant of
// BenchmarkEngineFullEval, for hand-run scaling comparisons.
func BenchmarkEngineFullEval1M(b *testing.B) {
	cfg, err := netgen.ScaleConfig("s1m")
	if err != nil {
		b.Fatal(err)
	}
	c, err := netgen.ScaleProfile("s1m")
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit: c, Tech: device.Default350(), Wiring: wiring.Default350(),
		Fc: 1 / (float64(cfg.Depth) * 0.35e-9), Skew: 0.95,
		InputProb: 0.5, InputDensity: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := design.Uniform(p.C.N(), 1.0, 0.15, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval.CriticalDelay(a)
		p.Eval.Energy(a)
	}
}
