// Command served is the optimization-as-a-service front door: a long-running
// HTTP server exposing the whole pipeline — netlist + constraints in,
// optimized Vdd/Vt/widths and a cmosopt/manifest/v1 manifest out. Jobs flow
// through a bounded queue with admission control (429 + Retry-After under
// overload), carry per-job contexts whose cancellation and deadlines
// propagate into the optimizer loops, stream progress as server-sent events
// mapped from the obs span tree, and land in a content-addressed result
// cache keyed by (netlist hash, constraints, device params).
//
// Every number the server returns is produced by the same internal/core
// pipeline the offline tools use; for identical requests the response body
// is byte-identical to the offline tool's stdout (the serve-e2e CI job
// asserts this with cmd/loadgen -smoke).
//
// Usage:
//
//	served [-addr 127.0.0.1:8080] [-addrfile path] [-queue 16] [-executors 2]
//	       [-workers 1] [-cache 256] [-retain 1024] [-deadline 0]
//	       [-metrics out.json] [-pprof localhost:6060]
//
// -addr 127.0.0.1:0 picks a free port; -addrfile writes the bound address
// for the launcher (how the CI job finds its randomly-ported server).
// SIGINT/SIGTERM drains gracefully: admissions stop, in-flight jobs are
// canceled, and the server exits 0.
//
// API:
//
//	GET    /healthz              liveness
//	GET    /v1/stats             queue/cache/lifecycle counters
//	POST   /v1/jobs              submit (JSON serve.Request; ?wait=1 blocks)
//	GET    /v1/jobs/{id}         status (?wait=1 blocks until terminal)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	POST   /v1/netlists          upload a .bench netlist, returns its sha256
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cmosopt/internal/cli"
	"cmosopt/internal/obs"
	"cmosopt/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("served: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	addrFile := fs.String("addrfile", "", "write the bound address to this file once listening")
	queue := fs.Int("queue", 16, "admission-control queue depth (full queue answers 429)")
	executors := fs.Int("executors", 2, "jobs optimized concurrently")
	workers := fs.Int("workers", 1, "engine workers per job (results are byte-identical at any value)")
	cache := fs.Int("cache", 256, "content-addressed result cache entries")
	netlists := fs.Int("netlists", 64, "uploaded-netlist store entries")
	retain := fs.Int("retain", 1024, "terminal jobs kept queryable")
	deadline := fs.Duration("deadline", 0, "default per-job deadline (0 = unbounded; requests may set their own)")
	grace := fs.Duration("grace", 30*time.Second, "shutdown drain budget")
	var obsf cli.ObsFlags
	obsf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The server-lifetime registry records admission/cache counters only.
	// Deliberately NOT installed as the process default: each job runs with
	// its own registry (concurrent jobs must not mix their span trees).
	var reg *obs.Registry
	if obsf.MetricsPath != "" || obsf.PprofAddr != "" {
		reg = obs.NewRegistry()
		if obsf.PprofAddr != "" {
			dbg, err := obs.ServeDebug(obsf.PprofAddr)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "pprof      serving /debug/pprof and /debug/vars on http://%s\n", dbg)
		}
	}

	srv := serve.New(serve.Config{
		QueueDepth:     *queue,
		Executors:      *executors,
		Workers:        *workers,
		CacheEntries:   *cache,
		NetlistEntries: *netlists,
		RetainJobs:     *retain,
		DefaultTimeout: *deadline,
		Obs:            reg,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := l.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addrfile: %w", err)
		}
	}
	fmt.Fprintf(out, "listening  http://%s (queue %d, executors %d, workers %d)\n",
		bound, *queue, *executors, *workers)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case got := <-sig:
		fmt.Fprintf(out, "signal     %s: draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if reg != nil {
		man := obs.NewManifest("served")
		if err := obsf.End(man, reg); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "drained    all jobs resolved, exiting")
	return nil
}
