package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cmosopt/internal/analysis"
)

// Baseline suppression: a committed .cmosvet-baseline.json lets a newly
// tightened analyzer land while known findings are burned down gradually.
// An entry identifies a finding by (module-relative file, analyzer, exact
// message) — no line numbers, so unrelated edits above a baselined finding
// don't resurrect it, while any change to the finding itself (message text
// embeds the names involved) does.
//
// The file is regenerated with -writebaseline and reviewed like any other
// diff; an empty suppression list (the committed state of this repo) means
// the tree is clean and the baseline only documents the mechanism.

const (
	baselineSchema = "cmosvet/baseline/v1"
	baselineName   = ".cmosvet-baseline.json"
)

type baselineEntry struct {
	File     string `json:"file"` // module-root-relative, slash-separated
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type baselineFile struct {
	Schema       string          `json:"schema"`
	Suppressions []baselineEntry `json:"suppressions"`
}

// baselinePathFor resolves the active baseline file: an explicit -baseline
// flag wins, otherwise the module root's .cmosvet-baseline.json.
func baselinePathFor(flagPath, modRoot string) string {
	if flagPath != "" {
		return flagPath
	}
	return filepath.Join(modRoot, baselineName)
}

// loadBaseline reads the suppression set; a missing file is an empty set,
// anything unreadable or of the wrong schema is an error (a malformed
// baseline silently suppressing nothing — or everything — must not pass).
func loadBaseline(path string) (map[baselineEntry]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[baselineEntry]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != baselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, baselineSchema)
	}
	set := make(map[baselineEntry]bool, len(f.Suppressions))
	for _, e := range f.Suppressions {
		set[e] = true
	}
	return set, nil
}

// baselineKey normalizes one diagnostic to its baseline identity.
func baselineKey(modRoot string, d analysis.Diagnostic) baselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(modRoot, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !isDotDot(rel) {
		file = filepath.ToSlash(rel)
	}
	return baselineEntry{File: file, Analyzer: d.Analyzer, Message: d.Message}
}

func isDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// filterBaseline splits findings into kept (to report) and suppressed, and
// records which baseline entries actually matched a finding — the complement
// of matched within the set is the stale entries a -prunebaseline run drops.
func filterBaseline(modRoot string, set map[baselineEntry]bool, diags []analysis.Diagnostic) (kept []analysis.Diagnostic, suppressed int, matched map[baselineEntry]bool) {
	matched = map[baselineEntry]bool{}
	for _, d := range diags {
		if key := baselineKey(modRoot, d); set[key] {
			suppressed++
			matched[key] = true
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed, matched
}

// staleEntries lists the baseline entries no current finding matches, sorted
// for stable output.
func staleEntries(set, matched map[baselineEntry]bool) []baselineEntry {
	var stale []baselineEntry
	for e := range set {
		if !matched[e] {
			stale = append(stale, e)
		}
	}
	sortEntries(stale)
	return stale
}

// writeBaselineFile regenerates the baseline from the current findings,
// sorted for a stable diff.
func writeBaselineFile(path, modRoot string, diags []analysis.Diagnostic) error {
	entries := make([]baselineEntry, 0, len(diags))
	seen := map[baselineEntry]bool{}
	for _, d := range diags {
		e := baselineKey(modRoot, d)
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	return writeBaselineEntries(path, entries)
}

// writeBaselineEntries writes a baseline file holding exactly entries, sorted
// for a stable diff.
func writeBaselineEntries(path string, entries []baselineEntry) error {
	sortEntries(entries)
	data, err := json.MarshalIndent(baselineFile{Schema: baselineSchema, Suppressions: entries}, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

func sortEntries(entries []baselineEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// jsonDiagnostic is the -json output row; file is printed exactly as the
// human output would print it.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printDiagnostics emits the (already sorted) findings: JSON array on stdout
// when jsonOut, conventional file:line:col lines on stderr otherwise.
func printDiagnostics(diags []analysis.Diagnostic, jsonOut bool, rel func(string) string) {
	if !jsonOut {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		return
	}
	rows := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		rows = append(rows, jsonDiagnostic{
			File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(rows)
}
