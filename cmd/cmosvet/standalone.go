package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cmosopt/internal/analysis"
)

// standalone walks the module from the current directory and runs the
// analyzers over every matched package, printing diagnostics in the
// conventional file:line:col form. Returns the process exit code.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	dirs, err := matchDirs(modRoot, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(analysis.Root{Prefix: modPath, Dir: modRoot})
	loader.IncludeTests = true
	exit := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(importPath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			exit = 2
			continue
		}
		for _, a := range analyzers {
			diags, err := analysis.Analyze(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
				exit = 2
				continue
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
				if exit == 0 {
					exit = 1
				}
			}
		}
	}
	return exit
}

func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(abs, "go.mod")
		if _, statErr := os.Stat(gm); statErr == nil {
			p, perr := modulePath(gm)
			if perr != nil {
				return "", "", perr
			}
			return abs, p, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// matchDirs expands the command-line patterns into package directories.
// "./..." (optionally rooted, e.g. "./internal/...") walks recursively;
// anything else names a single directory.
func matchDirs(modRoot string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = modRoot
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					abs, aerr := filepath.Abs(p)
					if aerr != nil {
						return aerr
					}
					add(abs)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		add(abs)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
