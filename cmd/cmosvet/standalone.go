package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cmosopt/internal/analysis"
)

// standalone walks the module from the current directory and runs the
// analyzers over every matched package. Diagnostics are collected across all
// packages and analyzers, merged, baseline-filtered and printed once in the
// byte-stable (file, line, col, analyzer) order. Returns the process exit
// code.
//
// Loading is sequential (the type-checker memoizes shared dependencies), but
// the analyzers over each loaded package run concurrently — they only read
// the package and go through the mutex-guarded fact provider.
func standalone(patterns []string, analyzers []*analysis.Analyzer, opts runOptions) int {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	dirs, err := matchDirs(modRoot, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(analysis.Root{Prefix: modPath, Dir: modRoot})
	loader.IncludeTests = true

	exit := 0
	var all []analysis.Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(importPath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			exit = 2
			continue
		}
		diags, errs := analyzePackage(loader, pkg, analyzers)
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			exit = 2
		}
		all = append(all, diags...)
	}

	bpath := baselinePathFor(opts.baselinePath, modRoot)
	if opts.writeBaseline {
		analysis.SortDiagnostics(all)
		if err := writeBaselineFile(bpath, modRoot, all); err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "cmosvet: wrote %d suppression(s) to %s\n", len(all), relPath(bpath))
		return exit
	}
	set, err := loadBaseline(bpath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	kept, suppressed, matched := filterBaseline(modRoot, set, all)
	analysis.SortDiagnostics(kept)
	printDiagnostics(kept, opts.jsonOut, relPath)
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "cmosvet: %d finding(s) suppressed by %s\n", suppressed, relPath(bpath))
	}
	// Dead-entry handling: an entry no finding matches is a fixed violation
	// whose suppression outlived it. Only a whole-module run can judge
	// staleness (a partial pattern simply doesn't see the finding), so the
	// report and -prunebaseline are gated on having analyzed everything.
	if wholeModule(patterns) {
		stale := staleEntries(set, matched)
		if opts.pruneBaseline {
			keptEntries := make([]baselineEntry, 0, len(matched))
			for e := range matched {
				keptEntries = append(keptEntries, e)
			}
			if err := writeBaselineEntries(bpath, keptEntries); err != nil {
				fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "cmosvet: pruned %d stale suppression(s) from %s, %d kept\n",
				len(stale), relPath(bpath), len(keptEntries))
		} else {
			for _, e := range stale {
				fmt.Fprintf(os.Stderr, "cmosvet: stale baseline entry (no current finding): %s [%s] %q\n",
					e.File, e.Analyzer, e.Message)
			}
			if len(stale) > 0 {
				fmt.Fprintf(os.Stderr, "cmosvet: %d stale suppression(s) in %s; run -prunebaseline to drop them\n",
					len(stale), relPath(bpath))
			}
		}
	} else if opts.pruneBaseline {
		fmt.Fprintf(os.Stderr, "cmosvet: -prunebaseline requires a whole-module pattern (./...)\n")
		return 2
	}
	if len(kept) > 0 && exit == 0 {
		exit = 1
	}
	return exit
}

// wholeModule reports whether the patterns cover the entire module, which is
// what makes baseline staleness decidable.
func wholeModule(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return true
		}
	}
	return false
}

// analyzePackage runs the analyzers over one package concurrently and returns
// their diagnostics (unsorted — the caller merges and sorts globally).
func analyzePackage(loader *analysis.Loader, pkg *analysis.LoadedPackage, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, []error) {
	diags := make([][]analysis.Diagnostic, len(analyzers))
	errs := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *analysis.Analyzer) {
			defer wg.Done()
			diags[i], errs[i] = analysis.Analyze(a, pkg, loader)
		}(i, a)
	}
	wg.Wait()
	var out []analysis.Diagnostic
	var outErrs []error
	for i := range analyzers {
		out = append(out, diags[i]...)
		if errs[i] != nil {
			outErrs = append(outErrs, errs[i])
		}
	}
	return out, outErrs
}

func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(abs, "go.mod")
		if _, statErr := os.Stat(gm); statErr == nil {
			p, perr := modulePath(gm)
			if perr != nil {
				return "", "", perr
			}
			return abs, p, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// matchDirs expands the command-line patterns into package directories.
// "./..." (optionally rooted, e.g. "./internal/...") walks recursively via
// analysis.PackageDirs — which skips hidden, underscore, testdata and vendor
// trees — and anything else names a single directory.
func matchDirs(modRoot string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = modRoot
			}
			dirs, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				abs, aerr := filepath.Abs(d)
				if aerr != nil {
					return nil, aerr
				}
				add(abs)
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		add(abs)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
