// Command cmosvet is the repository's invariant checker: a multichecker over
// the internal/analysis analyzers — the syntactic four (evalroute,
// determinism, obswriteonly, floateq), the flow-aware four (hotalloc,
// ctxpoll, locksafe, keypure), and the dimensional-analysis pass (dimcheck),
// which type-checks //cmosvet:unit annotations (volts, joules, watts,
// seconds, …) across the whole model. It runs two ways:
//
//	cmosvet ./...                         # standalone, over the module
//	go vet -vettool=$(which cmosvet) ./... # as a vet tool (CI uses this)
//
// As a vet tool it speaks cmd/go's unit-checker protocol — -V=full for the
// build cache, -flags for the flag handshake, then one JSON config file per
// package — implemented in unitchecker.go on the standard library alone
// (golang.org/x/tools is deliberately not a dependency). Cross-package
// function facts (hotpath, allocates, calls-eval, polls-ctx) ride the
// protocol's vetx fact files; in standalone mode the loader computes them on
// demand.
//
// Output is deterministic: diagnostics are merged across analyzers and
// packages and sorted by (file, line, col, analyzer) before printing. -json
// swaps the human lines for a JSON array on stdout (CI archives it as an
// artifact). A committed .cmosvet-baseline.json (regenerated with
// -writebaseline, overridden with -baseline) suppresses known findings so a
// newly tightened analyzer can land before its backlog is burned down.
//
// Exit status: 0 clean, 1 diagnostics reported (2 in vet-tool mode, matching
// unitchecker), 2 usage or internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cmosopt/internal/analysis"
)

// runOptions carries the output-shaping flags shared by the standalone and
// unit-checker drivers.
type runOptions struct {
	jsonOut       bool
	baselinePath  string // "" = module root's .cmosvet-baseline.json
	writeBaseline bool
	pruneBaseline bool
}

func main() {
	args := os.Args[1:]
	// cmd/go handshakes before any real run: -V=full asks for a version
	// string to key the build cache, -flags for the supported flag set.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagDefs()
		return
	}

	fs := flag.NewFlagSet("cmosvet", flag.ExitOnError)
	names := fs.String("analyzers", "all", "comma-separated analyzer subset (evalroute,determinism,obswriteonly,floateq,hotalloc,ctxpoll,locksafe,keypure,dimcheck) or \"all\"")
	var opts runOptions
	fs.BoolVar(&opts.jsonOut, "json", false, "emit diagnostics as a JSON array on stdout instead of text on stderr")
	fs.StringVar(&opts.baselinePath, "baseline", "", "baseline suppression file (default: <module>/.cmosvet-baseline.json)")
	fs.BoolVar(&opts.writeBaseline, "writebaseline", false, "regenerate the baseline file from the current findings and exit 0")
	fs.BoolVar(&opts.pruneBaseline, "prunebaseline", false, "drop baseline entries no current finding matches (whole-module runs only)")
	units := fs.String("units", "", "unit-annotation introspection: \"report\" dumps the unit environment as JSON, \"coverage\" enforces the annotation floor")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmosvet [-analyzers list] [-json] [-baseline file] [-writebaseline] [-prunebaseline] [-units report|coverage] [./... | dir | package.cfg]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *units != "" {
		os.Exit(runUnits(*units, fs.Args()))
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		os.Exit(2)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheck(rest[0], analyzers, opts))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(standalone(rest, analyzers, opts))
}

// printVersion emits the tool identity cmd/go hashes into its build cache:
// "name version hash". The hash is the binary's own content, so editing an
// analyzer and rebuilding invalidates every cached vet result.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	fmt.Printf("%s version %s\n", name, binaryHash())
}

func binaryHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlagDefs answers cmd/go's -flags handshake with the JSON flag
// descriptors it validates user-supplied vet flags against. Every flag the
// FlagSet accepts must appear here or `go vet -vettool` rejects it.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzer subset or \"all\""},
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON on stdout"},
		{Name: "baseline", Bool: false, Usage: "baseline suppression file"},
		{Name: "writebaseline", Bool: true, Usage: "regenerate the baseline file from current findings"},
		{Name: "prunebaseline", Bool: true, Usage: "drop baseline entries no current finding matches"},
		{Name: "units", Bool: false, Usage: "unit-annotation introspection: report or coverage"},
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		os.Exit(2)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
