// Command cmosvet is the repository's invariant checker: a multichecker over
// the four internal/analysis analyzers (evalroute, determinism,
// obswriteonly, floateq). It runs two ways:
//
//	cmosvet ./...                         # standalone, over the module
//	go vet -vettool=$(which cmosvet) ./... # as a vet tool (CI uses this)
//
// As a vet tool it speaks cmd/go's unit-checker protocol — -V=full for the
// build cache, -flags for the flag handshake, then one JSON config file per
// package — implemented in unitchecker.go on the standard library alone
// (golang.org/x/tools is deliberately not a dependency).
//
// Exit status: 0 clean, 1 diagnostics reported (2 in vet-tool mode, matching
// unitchecker), 2 usage or internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cmosopt/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// cmd/go handshakes before any real run: -V=full asks for a version
	// string to key the build cache, -flags for the supported flag set.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagDefs()
		return
	}

	fs := flag.NewFlagSet("cmosvet", flag.ExitOnError)
	names := fs.String("analyzers", "all", "comma-separated analyzer subset (evalroute,determinism,obswriteonly,floateq) or \"all\"")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmosvet [-analyzers list] [./... | dir | package.cfg]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		os.Exit(2)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheck(rest[0], analyzers))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(standalone(rest, analyzers))
}

// printVersion emits the tool identity cmd/go hashes into its build cache:
// "name version hash". The hash is the binary's own content, so editing an
// analyzer and rebuilding invalidates every cached vet result.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	fmt.Printf("%s version %s\n", name, binaryHash())
}

func binaryHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlagDefs answers cmd/go's -flags handshake with the JSON flag
// descriptors it validates user-supplied vet flags against.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzer subset or \"all\""},
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		os.Exit(2)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
