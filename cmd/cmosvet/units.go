package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cmosopt/internal/analysis"
)

// -units modes: introspection over the //cmosvet:unit annotation surface.
//
//	cmosvet -units=report ./...    # dump the unit environment as JSON
//	cmosvet -units=coverage ./...  # enforce the annotation-coverage floor
//
// report emits one JSON object on stdout (schema cmosvet/units/v1): per
// package, the flat declaration-key → canonical-dimension table that rides
// the .vetx fact files — exactly what cross-package dimcheck resolution
// sees. CI archives it as an artifact so the annotated surface is diffable
// across commits.
//
// coverage counts the exported float-carrier fields of exported struct types
// in the model packages and fails (exit 1) when fewer than coverageFloor of
// them carry a unit annotation — the regression gate that keeps the physical
// surface annotated as it grows.

// coverageFloor is the minimum annotated fraction of exported float fields.
const coverageFloor = 0.90

// coveragePackages are the model packages the coverage gate measures by
// default (module-root-relative); their exported float64 fields are the
// quantities the paper's equations flow through.
var coveragePackages = []string{
	"internal/device",
	"internal/power",
	"internal/delay",
	"internal/timing",
}

// defaultCoveragePatterns anchors coveragePackages at the module root, so the
// gate measures the same surface from any working directory.
func defaultCoveragePatterns() ([]string, error) {
	modRoot, _, err := findModule(".")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(coveragePackages))
	for i, p := range coveragePackages {
		out[i] = filepath.Join(modRoot, filepath.FromSlash(p)) + string(filepath.Separator) + "..."
	}
	return out, nil
}

// unitsReportFile is the -units=report JSON shape.
type unitsReportFile struct {
	Schema   string                       `json:"schema"`
	Packages map[string]map[string]string `json:"packages"`
}

// runUnits dispatches a -units mode over the matched packages. Returns the
// process exit code.
func runUnits(mode string, patterns []string) int {
	switch mode {
	case "report":
		return unitsReport(patterns)
	case "coverage":
		if len(patterns) == 0 {
			var err error
			if patterns, err = defaultCoveragePatterns(); err != nil {
				fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
				return 2
			}
		}
		return unitsCoverage(patterns)
	default:
		fmt.Fprintf(os.Stderr, "cmosvet: -units=%q: want \"report\" or \"coverage\"\n", mode)
		return 2
	}
}

// forEachPackage loads every package the patterns match and hands it to fn
// with its import path. Returns the process exit code (0 or 2).
func forEachPackage(patterns []string, fn func(importPath string, pkg *analysis.LoadedPackage) error) int {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := matchDirs(modRoot, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(analysis.Root{Prefix: modPath, Dir: modRoot})
	loader.IncludeTests = true
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(importPath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
		if err := fn(importPath, pkg); err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 2
		}
	}
	return 0
}

// unitsReport dumps every matched package's unit-fact table as one JSON
// object on stdout.
func unitsReport(patterns []string) int {
	report := unitsReportFile{Schema: analysis.UnitsSchema, Packages: map[string]map[string]string{}}
	if exit := forEachPackage(patterns, func(importPath string, pkg *analysis.LoadedPackage) error {
		units := analysis.ComputePkgFacts(pkg).Units
		if len(units) > 0 {
			report.Packages[importPath] = units
		}
		return nil
	}); exit != 0 {
		return exit
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 2
	}
	return 0
}

// unitsCoverage enforces the annotation-coverage floor over the matched
// packages, printing per-package fractions and listing every unannotated
// exported float field.
func unitsCoverage(patterns []string) int {
	type row struct {
		path             string
		annotated, total int
		missing          []string
	}
	var rows []row
	if exit := forEachPackage(patterns, func(importPath string, pkg *analysis.LoadedPackage) error {
		a, n, missing := analysis.UnitCoverage(pkg)
		rows = append(rows, row{path: importPath, annotated: a, total: n, missing: missing})
		return nil
	}); exit != 0 {
		return exit
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })
	annotated, total := 0, 0
	for _, r := range rows {
		annotated += r.annotated
		total += r.total
		pct := 100.0
		if r.total > 0 {
			pct = 100 * float64(r.annotated) / float64(r.total)
		}
		fmt.Printf("%s: %d/%d exported float fields annotated (%.0f%%)\n", r.path, r.annotated, r.total, pct)
		sort.Strings(r.missing)
		for _, key := range r.missing {
			fmt.Printf("  missing: %s\n", key)
		}
	}
	if total == 0 {
		fmt.Fprintf(os.Stderr, "cmosvet: -units=coverage matched no exported float fields\n")
		return 2
	}
	frac := float64(annotated) / float64(total)
	fmt.Printf("total: %d/%d (%.0f%%), floor %.0f%%\n", annotated, total, 100*frac, 100*coverageFloor)
	if frac < coverageFloor {
		fmt.Fprintf(os.Stderr, "cmosvet: unit-annotation coverage %.0f%% is below the %.0f%% floor\n",
			100*frac, 100*coverageFloor)
		return 1
	}
	return 0
}
