// Package core carries one deliberately seeded cmosvet violation. The CI
// canary step runs cmosvet over this module and requires a non-zero exit:
// if the tool ever silently stops finding anything, the job fails loudly
// instead of green-lighting a broken gate. Keep exactly one violation here
// (TestCanarySeedsExactlyOneViolation pins it).
package core

// converged compares two computed floats exactly — the seeded floateq
// violation. Do not "fix" this file.
func converged(a, b float64) bool {
	return a == b
}

var _ = converged
