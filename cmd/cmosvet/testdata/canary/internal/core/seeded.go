// Package core carries the deliberately seeded cmosvet violations. The CI
// canary step runs cmosvet over this module and requires a non-zero exit:
// if the tool ever silently stops finding anything, the job fails loudly
// instead of green-lighting a broken gate. Keep exactly two violations here
// — the floateq one below and the dimcheck one in seededunits.go
// (TestCanarySeedsExactlyTwoViolations pins them).
package core

// converged compares two computed floats exactly — the seeded floateq
// violation. Do not "fix" this file.
func converged(a, b float64) bool {
	return a == b
}

var _ = converged
