package core

// perCycle adds a per-cycle energy to an average power — the seeded dimcheck
// violation (J + W is dimensionally meaningless; the real model multiplies
// energy by frequency first). Do not "fix" this file.
//
//cmosvet:unit e J
//cmosvet:unit p W
func perCycle(e, p float64) float64 {
	return e + p
}

var _ = perCycle
