module canary

go 1.22
