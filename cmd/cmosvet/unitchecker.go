package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"cmosopt/internal/analysis"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each package
// when driving a -vettool (the unit-checker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgPath and returns the
// process exit code: 0 clean, 2 diagnostics (the exit code go vet expects
// from a unit checker), 1 on internal failure.
//
// Facts: module packages get their function facts (hotpath / allocates /
// calls-eval / polls-ctx) computed and serialized to VetxOutput, so cmd/go
// caches them and re-feeds dependencies' facts through PackageVetx — that is
// how hotalloc and ctxpoll see across package boundaries under `go vet`.
// Packages outside the module (the standard library) carry empty facts and,
// when VetxOnly, skip type-checking entirely.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer, opts runOptions) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	modRoot, modPath, modErr := findModule(cfg.Dir)
	inModule := modErr == nil && (cfg.ImportPath == modPath || strings.HasPrefix(cfg.ImportPath, modPath+"/"))

	// Type-check when the package will be analyzed, or when it is a module
	// dependency whose facts another package will need.
	var checked *checkedPkg
	if !cfg.VetxOnly || inModule {
		checked, err = typecheck(&cfg)
		if err != nil {
			writeFactsFile(cfg.VetxOutput, analysis.PkgFacts{})
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 1
		}
	}

	var ownFacts analysis.PkgFacts
	if inModule && checked != nil {
		ownFacts = analysis.ComputePkgFacts(&analysis.LoadedPackage{
			Path:  cfg.ImportPath,
			Files: checked.files,
			Types: checked.pkg,
			Info:  checked.info,
			Fset:  checked.fset,
		})
	}
	if !writeFactsFile(cfg.VetxOutput, ownFacts) {
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	provider := newVetxProvider(&cfg, ownFacts)
	var all []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, checked.fset, checked.files, checked.pkg, checked.info)
		pass.Facts = provider
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %s: %v\n", a.Name, err)
			return 1
		}
		all = append(all, pass.Diagnostics()...)
	}

	// Baseline suppression applies under go vet too, so the CI gate and the
	// standalone run agree on what counts as a finding.
	if modErr == nil {
		set, err := loadBaseline(baselinePathFor(opts.baselinePath, modRoot))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 1
		}
		all, _, _ = filterBaseline(modRoot, set, all)
	}
	analysis.SortDiagnostics(all)
	printDiagnostics(all, opts.jsonOut, func(p string) string { return p })
	if len(all) > 0 {
		return 2
	}
	return 0
}

// writeFactsFile serializes the package's facts for cmd/go's vetx cache; a
// nil map still writes a valid (empty) facts file so downstream decodes are
// uniform. Reports success; failures are printed.
func writeFactsFile(path string, facts analysis.PkgFacts) bool {
	if path == "" {
		return true
	}
	if err := os.WriteFile(path, analysis.EncodeFacts(facts), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return false
	}
	return true
}

// vetxProvider resolves cross-package facts from the vetx files cmd/go
// recorded for each dependency, plus the current package's own facts.
type vetxProvider struct {
	files map[string]string
	own   string
	facts map[string]analysis.PkgFacts
}

func newVetxProvider(cfg *vetConfig, ownFacts analysis.PkgFacts) *vetxProvider {
	return &vetxProvider{
		files: cfg.PackageVetx,
		own:   cfg.ImportPath,
		facts: map[string]analysis.PkgFacts{cfg.ImportPath: ownFacts},
	}
}

func (p *vetxProvider) PackageFacts(path string) analysis.PkgFacts {
	if f, ok := p.facts[path]; ok {
		return f
	}
	var f analysis.PkgFacts
	if file := p.files[path]; file != "" {
		if data, err := os.ReadFile(file); err == nil {
			f = analysis.DecodeFacts(data)
		}
	}
	p.facts[path] = f
	return f
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkedPkg is one fully type-checked package, with the FileSet its
// syntax and type information are keyed to.
type checkedPkg struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// typecheck type-checks the package against the export data cmd/go already
// compiled for its dependencies, falling back to type-checking the whole
// dependency chain from source if export data cannot be read (e.g. an
// unexpected export format version).
func typecheck(cfg *vetConfig) (*checkedPkg, error) {
	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newExportDataImporter(fset, cfg)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		return &checkedPkg{fset: fset, files: files, pkg: pkg, info: info}, nil
	}
	checked, srcErr := sourceTypecheck(cfg)
	if srcErr != nil {
		return nil, fmt.Errorf("export-data check failed (%v); source fallback failed too: %w", err, srcErr)
	}
	return checked, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// exportDataImporter resolves imports through the compiled export data files
// listed in the vet config, with gc-format decoding delegated to the
// standard library's importer.
type exportDataImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func newExportDataImporter(fset *token.FileSet, cfg *vetConfig) *exportDataImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file := cfg.PackageFile[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportDataImporter{
		cfg: cfg,
		gc:  importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (i *exportDataImporter) Import(path string) (*types.Package, error) {
	canon, ok := i.cfg.ImportMap[path]
	if !ok {
		canon = path
	}
	if canon == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.ImportFrom(canon, i.cfg.Dir, 0)
}

// sourceTypecheck re-checks the package with every dependency type-checked
// from source through the analysis Loader. Slower, but independent of the
// compiler's export data format. The config's GoFiles are re-parsed into
// the loader's FileSet so syntax, type info and positions stay consistent.
func sourceTypecheck(cfg *vetConfig) (*checkedPkg, error) {
	modRoot, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader(analysis.Root{Prefix: modPath, Dir: modRoot})
	loader.IncludeTests = true
	files, err := parseFiles(loader.Fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: loader}
	pkg, err := conf.Check(cfg.ImportPath, loader.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &checkedPkg{fset: loader.Fset, files: files, pkg: pkg, info: info}, nil
}
