package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"cmosopt/internal/analysis"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each package
// when driving a -vettool (the unit-checker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgPath and returns the
// process exit code: 0 clean, 2 diagnostics (the exit code go vet expects
// from a unit checker), 1 on internal failure.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cmosvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go caches and re-feeds the facts output of dependency packages;
	// these analyzers are fact-free, so an empty placeholder satisfies the
	// protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("cmosvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	checked, err := typecheck(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cmosvet: %v\n", err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		pass := analysis.NewPass(a, checked.fset, checked.files, checked.pkg, checked.info)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cmosvet: %s: %v\n", a.Name, err)
			return 1
		}
		for _, d := range pass.Diagnostics() {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			exit = 2
		}
	}
	return exit
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkedPkg is one fully type-checked package, with the FileSet its
// syntax and type information are keyed to.
type checkedPkg struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// typecheck type-checks the package against the export data cmd/go already
// compiled for its dependencies, falling back to type-checking the whole
// dependency chain from source if export data cannot be read (e.g. an
// unexpected export format version).
func typecheck(cfg *vetConfig) (*checkedPkg, error) {
	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newExportDataImporter(fset, cfg)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		return &checkedPkg{fset: fset, files: files, pkg: pkg, info: info}, nil
	}
	checked, srcErr := sourceTypecheck(cfg)
	if srcErr != nil {
		return nil, fmt.Errorf("export-data check failed (%v); source fallback failed too: %w", err, srcErr)
	}
	return checked, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// exportDataImporter resolves imports through the compiled export data files
// listed in the vet config, with gc-format decoding delegated to the
// standard library's importer.
type exportDataImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func newExportDataImporter(fset *token.FileSet, cfg *vetConfig) *exportDataImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file := cfg.PackageFile[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportDataImporter{
		cfg: cfg,
		gc:  importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (i *exportDataImporter) Import(path string) (*types.Package, error) {
	canon, ok := i.cfg.ImportMap[path]
	if !ok {
		canon = path
	}
	if canon == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.ImportFrom(canon, i.cfg.Dir, 0)
}

// sourceTypecheck re-checks the package with every dependency type-checked
// from source through the analysis Loader. Slower, but independent of the
// compiler's export data format. The config's GoFiles are re-parsed into
// the loader's FileSet so syntax, type info and positions stay consistent.
func sourceTypecheck(cfg *vetConfig) (*checkedPkg, error) {
	modRoot, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader(analysis.Root{Prefix: modPath, Dir: modRoot})
	loader.IncludeTests = true
	files, err := parseFiles(loader.Fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: loader}
	pkg, err := conf.Check(cfg.ImportPath, loader.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &checkedPkg{fset: loader.Fset, files: files, pkg: pkg, info: info}, nil
}
