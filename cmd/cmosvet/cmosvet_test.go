package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmosopt/internal/analysis"
)

// chdirCanary moves into the seeded-violation canary module for the duration
// of one test (standalone resolves the module from the working directory).
func chdirCanary(t *testing.T) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("testdata", "canary")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	defer func() {
		os.Stdout = old
		w.Close()
	}()
	f()
	os.Stdout = old
	w.Close()
	return <-done
}

// TestCanaryFailsStandalone is the in-repo half of the CI canary: the seeded
// module must make cmosvet exit non-zero, proving the gate can still fail.
func TestCanaryFailsStandalone(t *testing.T) {
	chdirCanary(t)
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{}); exit != 1 {
		t.Fatalf("standalone over canary exited %d, want 1 (seeded violation must be found)", exit)
	}
}

// TestCanarySeedsExactlyTwoViolations pins the canary's shape through the
// -json output: the floateq finding in seeded.go and the dimcheck finding in
// seededunits.go, each with a module-relative path.
func TestCanarySeedsExactlyTwoViolations(t *testing.T) {
	chdirCanary(t)
	var exit int
	out := captureStdout(t, func() {
		exit = standalone([]string{"./..."}, analysis.All(), runOptions{jsonOut: true})
	})
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var rows []jsonDiagnostic
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(rows) != 2 {
		t.Fatalf("canary produced %d findings, want exactly 2: %+v", len(rows), rows)
	}
	want := map[string]string{
		"floateq":  "internal/core/seeded.go",
		"dimcheck": "internal/core/seededunits.go",
	}
	for _, d := range rows {
		file, ok := want[d.Analyzer]
		if !ok {
			t.Errorf("unexpected analyzer %q: %+v", d.Analyzer, d)
			continue
		}
		delete(want, d.Analyzer)
		if filepath.ToSlash(d.File) != file {
			t.Errorf("%s finding in %q, want %s", d.Analyzer, d.File, file)
		}
		if d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete row: %+v", d)
		}
	}
	for analyzer := range want {
		t.Errorf("canary produced no %s finding", analyzer)
	}
}

// TestWriteBaselineSuppresses closes the burn-down loop: -writebaseline over
// a dirty tree, then a plain run against that baseline, must be clean.
func TestWriteBaselineSuppresses(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "baseline.json")
	chdirCanary(t)
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl, writeBaseline: true}); exit != 0 {
		t.Fatalf("-writebaseline exited %d, want 0", exit)
	}
	set, err := loadBaseline(bl)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	want := baselineEntry{File: "internal/core/seeded.go", Analyzer: "floateq"}
	found := false
	for e := range set {
		if e.File == want.File && e.Analyzer == want.Analyzer {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline %v lacks the canary entry", set)
	}
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl}); exit != 0 {
		t.Fatalf("run against fresh baseline exited %d, want 0 (finding suppressed)", exit)
	}
}

func TestLoadBaselineMissingIsEmpty(t *testing.T) {
	set, err := loadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline must read as empty, got error: %v", err)
	}
	if len(set) != 0 {
		t.Fatalf("missing baseline produced %d entries", len(set))
	}
}

func TestLoadBaselineRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-json.json":     `{not json`,
		"wrong-schema.json": `{"schema":"cmosvet/baseline/v999","suppressions":[]}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := loadBaseline(p); err == nil {
			t.Errorf("%s: loadBaseline accepted a malformed file", name)
		}
	}
}

// TestCommittedBaselineIsCleanAndValid: the repo's checked-in baseline must
// parse under the current schema and stay empty — the tree itself is clean,
// and any future suppression should arrive through a reviewed -writebaseline.
func TestCommittedBaselineIsCleanAndValid(t *testing.T) {
	root, _, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	set, err := loadBaseline(filepath.Join(root, baselineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Fatalf("committed baseline carries %d suppressions; the tree is supposed to be clean", len(set))
	}
}

// TestBaselineRoundTripStable: write → load → write must be byte-identical,
// so regenerating an unchanged tree never dirties the diff.
func TestBaselineRoundTripStable(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "b1.json")
	p2 := filepath.Join(dir, "b2.json")
	diags := []analysis.Diagnostic{
		{Pos: pos("b.go", 3, 1), Analyzer: "hotalloc", Message: "m2"},
		{Pos: pos("a.go", 9, 4), Analyzer: "ctxpoll", Message: "m1"},
		{Pos: pos("a.go", 9, 4), Analyzer: "ctxpoll", Message: "m1"}, // dup collapses
	}
	if err := writeBaselineFile(p1, dir, diags); err != nil {
		t.Fatal(err)
	}
	set, err := loadBaseline(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("loaded %d entries, want 2 (duplicate collapsed)", len(set))
	}
	kept, suppressed, matched := filterBaseline(dir, set, diags)
	if len(kept) != 0 || suppressed != 3 {
		t.Fatalf("filter over its own source: kept %d suppressed %d, want 0/3", len(kept), suppressed)
	}
	if len(matched) != 2 {
		t.Fatalf("filter matched %d entries, want 2 (every suppression is live)", len(matched))
	}
	// Re-derive the file from the same findings in a different order.
	reordered := []analysis.Diagnostic{diags[1], diags[2], diags[0]}
	if err := writeBaselineFile(p2, dir, reordered); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatalf("baseline bytes depend on finding order:\n%s\nvs\n%s", b1, b2)
	}
}

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// TestPruneBaselineDropsStale is the prune round trip: write a baseline over
// the canary, plant a stale entry in it, prune, and the baseline must come
// back holding exactly the live suppressions.
func TestPruneBaselineDropsStale(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "baseline.json")
	chdirCanary(t)
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl, writeBaseline: true}); exit != 0 {
		t.Fatalf("-writebaseline exited %d, want 0", exit)
	}
	live, err := loadBaseline(bl)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("canary baseline is empty; nothing to round-trip")
	}
	stale := baselineEntry{File: "internal/core/gone.go", Analyzer: "floateq", Message: "fixed long ago"}
	entries := []baselineEntry{stale}
	for e := range live {
		entries = append(entries, e)
	}
	if err := writeBaselineEntries(bl, entries); err != nil {
		t.Fatal(err)
	}
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl, pruneBaseline: true}); exit != 0 {
		t.Fatalf("-prunebaseline exited %d, want 0 (every finding suppressed)", exit)
	}
	after, err := loadBaseline(bl)
	if err != nil {
		t.Fatal(err)
	}
	if after[stale] {
		t.Error("stale entry survived -prunebaseline")
	}
	if len(after) != len(live) {
		t.Fatalf("pruned baseline has %d entries, want the %d live ones", len(after), len(live))
	}
	for e := range live {
		if !after[e] {
			t.Errorf("live suppression %+v lost by -prunebaseline", e)
		}
	}
}

// TestPruneBaselineRequiresWholeModule: staleness is undecidable from a
// partial run, so prune over a single package must refuse.
func TestPruneBaselineRequiresWholeModule(t *testing.T) {
	chdirCanary(t)
	exit := standalone([]string{"./internal/core"}, analysis.All(), runOptions{pruneBaseline: true})
	if exit != 2 {
		t.Fatalf("partial -prunebaseline exited %d, want 2 (usage error)", exit)
	}
}

// TestUnitsReport pins the -units=report shape over the canary module: valid
// JSON under the units fact schema, carrying the seeded parameter bindings.
func TestUnitsReport(t *testing.T) {
	chdirCanary(t)
	var exit int
	out := captureStdout(t, func() { exit = runUnits("report", []string{"./..."}) })
	if exit != 0 {
		t.Fatalf("-units=report exited %d, want 0", exit)
	}
	var rep unitsReportFile
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out)
	}
	if rep.Schema != analysis.UnitsSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, analysis.UnitsSchema)
	}
	units := rep.Packages["canary/internal/core"]
	if units["perCycle.param.e"] != "J" || units["perCycle.param.p"] != "W" {
		t.Errorf("canary package units = %v, want perCycle.param.e=J and perCycle.param.p=W", units)
	}
}

// TestUnitsCoverageMeetsFloor runs the real coverage gate over the module's
// model packages: the annotated surface must stay at or above the floor.
func TestUnitsCoverageMeetsFloor(t *testing.T) {
	out := captureStdout(t, func() {
		if exit := runUnits("coverage", nil); exit != 0 {
			t.Errorf("-units=coverage exited %d, want 0", exit)
		}
	})
	if !strings.Contains(out, "floor") {
		t.Errorf("coverage output lacks the floor summary:\n%s", out)
	}
}

// TestUnitsCoverageRejectsEmptySurface: a module with no exported float
// fields cannot satisfy the gate vacuously.
func TestUnitsCoverageRejectsEmptySurface(t *testing.T) {
	chdirCanary(t)
	if exit := runUnits("coverage", []string{"./..."}); exit != 2 {
		t.Errorf("coverage over fieldless module exited %d, want 2", exit)
	}
}

func TestUnitsUnknownMode(t *testing.T) {
	if exit := runUnits("bogus", nil); exit != 2 {
		t.Errorf("-units=bogus exited %d, want 2", exit)
	}
}
