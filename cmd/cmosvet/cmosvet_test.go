package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmosopt/internal/analysis"
)

// chdirCanary moves into the seeded-violation canary module for the duration
// of one test (standalone resolves the module from the working directory).
func chdirCanary(t *testing.T) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("testdata", "canary")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	defer func() {
		os.Stdout = old
		w.Close()
	}()
	f()
	os.Stdout = old
	w.Close()
	return <-done
}

// TestCanaryFailsStandalone is the in-repo half of the CI canary: the seeded
// module must make cmosvet exit non-zero, proving the gate can still fail.
func TestCanaryFailsStandalone(t *testing.T) {
	chdirCanary(t)
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{}); exit != 1 {
		t.Fatalf("standalone over canary exited %d, want 1 (seeded violation must be found)", exit)
	}
}

// TestCanarySeedsExactlyOneViolation pins the canary's shape through the
// -json output: one finding, the right analyzer, module-relative path.
func TestCanarySeedsExactlyOneViolation(t *testing.T) {
	chdirCanary(t)
	var exit int
	out := captureStdout(t, func() {
		exit = standalone([]string{"./..."}, analysis.All(), runOptions{jsonOut: true})
	})
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var rows []jsonDiagnostic
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(rows) != 1 {
		t.Fatalf("canary produced %d findings, want exactly 1: %+v", len(rows), rows)
	}
	d := rows[0]
	if d.Analyzer != "floateq" {
		t.Errorf("analyzer = %q, want floateq", d.Analyzer)
	}
	if filepath.ToSlash(d.File) != "internal/core/seeded.go" {
		t.Errorf("file = %q, want internal/core/seeded.go", d.File)
	}
	if d.Line == 0 || d.Col == 0 || d.Message == "" {
		t.Errorf("incomplete row: %+v", d)
	}
}

// TestWriteBaselineSuppresses closes the burn-down loop: -writebaseline over
// a dirty tree, then a plain run against that baseline, must be clean.
func TestWriteBaselineSuppresses(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "baseline.json")
	chdirCanary(t)
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl, writeBaseline: true}); exit != 0 {
		t.Fatalf("-writebaseline exited %d, want 0", exit)
	}
	set, err := loadBaseline(bl)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	want := baselineEntry{File: "internal/core/seeded.go", Analyzer: "floateq"}
	found := false
	for e := range set {
		if e.File == want.File && e.Analyzer == want.Analyzer {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline %v lacks the canary entry", set)
	}
	if exit := standalone([]string{"./..."}, analysis.All(), runOptions{baselinePath: bl}); exit != 0 {
		t.Fatalf("run against fresh baseline exited %d, want 0 (finding suppressed)", exit)
	}
}

func TestLoadBaselineMissingIsEmpty(t *testing.T) {
	set, err := loadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline must read as empty, got error: %v", err)
	}
	if len(set) != 0 {
		t.Fatalf("missing baseline produced %d entries", len(set))
	}
}

func TestLoadBaselineRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-json.json":    `{not json`,
		"wrong-schema.json": `{"schema":"cmosvet/baseline/v999","suppressions":[]}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := loadBaseline(p); err == nil {
			t.Errorf("%s: loadBaseline accepted a malformed file", name)
		}
	}
}

// TestCommittedBaselineIsCleanAndValid: the repo's checked-in baseline must
// parse under the current schema and stay empty — the tree itself is clean,
// and any future suppression should arrive through a reviewed -writebaseline.
func TestCommittedBaselineIsCleanAndValid(t *testing.T) {
	root, _, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	set, err := loadBaseline(filepath.Join(root, baselineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Fatalf("committed baseline carries %d suppressions; the tree is supposed to be clean", len(set))
	}
}

// TestBaselineRoundTripStable: write → load → write must be byte-identical,
// so regenerating an unchanged tree never dirties the diff.
func TestBaselineRoundTripStable(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "b1.json")
	p2 := filepath.Join(dir, "b2.json")
	diags := []analysis.Diagnostic{
		{Pos: pos("b.go", 3, 1), Analyzer: "hotalloc", Message: "m2"},
		{Pos: pos("a.go", 9, 4), Analyzer: "ctxpoll", Message: "m1"},
		{Pos: pos("a.go", 9, 4), Analyzer: "ctxpoll", Message: "m1"}, // dup collapses
	}
	if err := writeBaselineFile(p1, dir, diags); err != nil {
		t.Fatal(err)
	}
	set, err := loadBaseline(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("loaded %d entries, want 2 (duplicate collapsed)", len(set))
	}
	kept, suppressed := filterBaseline(dir, set, diags)
	if len(kept) != 0 || suppressed != 3 {
		t.Fatalf("filter over its own source: kept %d suppressed %d, want 0/3", len(kept), suppressed)
	}
	// Re-derive the file from the same findings in a different order.
	reordered := []analysis.Diagnostic{diags[1], diags[2], diags[0]}
	if err := writeBaselineFile(p2, dir, reordered); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatalf("baseline bytes depend on finding order:\n%s\nvs\n%s", b1, b2)
	}
}

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}
