// Command eco re-optimizes an edited netlist starting from a previously
// saved design (engineering-change-order flow): unchanged gates keep their
// sizing, and only the widths are re-solved unless the edit broke timing.
//
// Usage:
//
//	eco -design old.json -prev old.bench -bench new.bench [-save new.json]
package main

import (
	"log"
	"os"

	"cmosopt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eco: ")
	if err := cli.ECO(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
