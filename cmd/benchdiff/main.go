// Command benchdiff is the CI benchmark-regression gate. It has three modes:
//
//	benchdiff -parse bench.txt -o bench.json
//	    Parse `go test -bench` text output into a manifest JSON
//	    (schema cmosopt/manifest/v1, Benchmarks populated).
//
//	benchdiff -baseline BENCH_baseline.json -current bench.json [-threshold 1.25] [-filter regex]
//	    Compare a run against the committed baseline; exit 1 when any
//	    benchmark is more than threshold× slower, or vanished entirely.
//	    -filter restricts both sides to matching names, so one baseline
//	    file can hold several suites (go-bench records and loadgen latency
//	    records) gated by different CI jobs without tripping each other's
//	    vanished-benchmark check.
//
//	benchdiff -selftest
//	    Verify the gate itself: a synthetic 2× slowdown must fail, a
//	    within-noise 1.1× change must pass, and an allocs/op blow-up on a
//	    memory-measured benchmark must fail.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"

	"cmosopt/internal/cli"
	"cmosopt/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	parse := flag.String("parse", "", "parse `go test -bench` output from this file (- for stdin)")
	out := flag.String("o", "", "with -parse: write the manifest JSON here (default stdout)")
	baseline := flag.String("baseline", "", "baseline manifest JSON to compare against")
	current := flag.String("current", "", "current-run manifest JSON to compare")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	filter := flag.String("filter", "", "compare only benchmarks whose name matches this regexp")
	selftest := flag.Bool("selftest", false, "verify the gate catches a 2x slowdown and passes a 1.1x one")
	flag.Parse()

	switch {
	case *selftest:
		if err := runSelftest(*threshold); err != nil {
			log.Fatal(err)
		}
		fmt.Println("selftest ok: 2.0x slowdown fails, 1.1x passes")
	case *parse != "":
		if err := runParse(*parse, *out); err != nil {
			log.Fatal(err)
		}
	case *baseline != "" && *current != "":
		failed, err := runCompare(*baseline, *current, *threshold, *filter)
		if err != nil {
			log.Fatal(err)
		}
		if failed > 0 {
			log.Fatalf("%d benchmark(s) regressed beyond %.2fx", failed, *threshold)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(path, out string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	recs, err := cli.ParseBench(r)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", path)
	}
	man := obs.NewManifest("benchdiff")
	man.Benchmarks = recs
	if out == "" {
		for _, rec := range recs {
			fmt.Printf("%-40s %12.0f ns/op (%d samples)\n", rec.Name, rec.NsPerOp, rec.Samples)
		}
		return nil
	}
	return man.WriteFile(out)
}

func runCompare(baselinePath, currentPath string, threshold float64, filter string) (int, error) {
	base, err := obs.ReadManifest(baselinePath)
	if err != nil {
		return 0, err
	}
	cur, err := obs.ReadManifest(currentPath)
	if err != nil {
		return 0, err
	}
	baseRecs, curRecs := base.Benchmarks, cur.Benchmarks
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return 0, fmt.Errorf("bad -filter: %w", err)
		}
		baseRecs, curRecs = filterRecords(baseRecs, re), filterRecords(curRecs, re)
	}
	if len(baseRecs) == 0 {
		return 0, fmt.Errorf("%s has no benchmarks matching the comparison", baselinePath)
	}
	deltas := cli.CompareBench(baseRecs, curRecs, threshold)
	return cli.RenderBenchDeltas(os.Stdout, deltas), nil
}

// filterRecords keeps the records whose name matches re, in order.
func filterRecords(recs []obs.BenchRecord, re *regexp.Regexp) []obs.BenchRecord {
	out := make([]obs.BenchRecord, 0, len(recs))
	for _, r := range recs {
		if re.MatchString(r.Name) {
			out = append(out, r)
		}
	}
	return out
}

// runSelftest exercises the gate with synthetic data so CI proves the
// comparator would actually catch a regression before trusting a green run.
func runSelftest(threshold float64) error {
	base := []obs.BenchRecord{
		{Name: "BenchmarkProcedure2", NsPerOp: 1e6},
		{Name: "BenchmarkEngineFullEval", NsPerOp: 2e5},
	}
	scale := func(f float64) []obs.BenchRecord {
		out := make([]obs.BenchRecord, len(base))
		for i, r := range base {
			r.NsPerOp *= f
			out[i] = r
		}
		return out
	}
	if n := countFailed(cli.CompareBench(base, scale(2.0), threshold)); n != len(base) {
		return fmt.Errorf("selftest: 2.0x slowdown flagged %d of %d benchmarks", n, len(base))
	}
	if n := countFailed(cli.CompareBench(base, scale(1.1), threshold)); n != 0 {
		return fmt.Errorf("selftest: 1.1x change flagged %d benchmarks, want 0", n)
	}
	if n := countFailed(cli.CompareBench(base, base[:1], threshold)); n != 1 {
		return fmt.Errorf("selftest: deleted benchmark flagged %d entries, want 1", n)
	}

	// Allocation gate: a zero-allocation sweep that starts allocating per op
	// must fail even when ns/op stays flat; a couple of warm-up allocations
	// must pass.
	memBase := []obs.BenchRecord{
		{Name: "BenchmarkEngineFullEval/s100k", NsPerOp: 1e7, MemMeasured: true},
	}
	withAllocs := func(a float64) []obs.BenchRecord {
		out := make([]obs.BenchRecord, len(memBase))
		for i, r := range memBase {
			r.AllocsPerOp = a
			r.BytesPerOp = a * 64
			out[i] = r
		}
		return out
	}
	if n := countFailed(cli.CompareBench(memBase, withAllocs(100000), threshold)); n != 1 {
		return fmt.Errorf("selftest: per-op allocation regression flagged %d entries, want 1", n)
	}
	if n := countFailed(cli.CompareBench(memBase, withAllocs(2), threshold)); n != 0 {
		return fmt.Errorf("selftest: warm-up-sized allocation count flagged %d entries, want 0", n)
	}

	// Filter gate: one baseline file holds both the go-bench suite and the
	// loadgen latency suite; a run carrying only one suite must pass under
	// its own filter and still trip the vanished-benchmark check without it.
	mixed := append(append([]obs.BenchRecord{}, base...),
		obs.BenchRecord{Name: "Loadgen/sweep/p50", NsPerOp: 2e7})
	re := regexp.MustCompile("^Benchmark")
	if n := countFailed(cli.CompareBench(filterRecords(mixed, re), filterRecords(base, re), threshold)); n != 0 {
		return fmt.Errorf("selftest: suite filter flagged %d entries, want 0", n)
	}
	if n := countFailed(cli.CompareBench(mixed, base, threshold)); n != 1 {
		return fmt.Errorf("selftest: unfiltered mixed baseline flagged %d entries, want 1 missing", n)
	}
	return nil
}

func countFailed(deltas []cli.BenchDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed || d.AllocRegressed || d.Missing {
			n++
		}
	}
	return n
}
