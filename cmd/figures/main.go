// Command figures regenerates the data series of the paper's Figure 2:
// 2(a) power savings under threshold-voltage process variation and
// 2(b) power savings versus available cycle time, both on s298 as in the
// paper (other circuits selectable).
//
// Usage:
//
//	figures [-fig 2a|2b|all] [-circuit s298] [-activity 0.5] [-format text|csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cmosopt/internal/cli"
	"cmosopt/internal/experiments"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	fig := flag.String("fig", "all", "which figure: 2a, 2b, all")
	circuitName := flag.String("circuit", "s298", "benchmark circuit")
	act := flag.Float64("activity", 0.5, "input activity level")
	fc := flag.Float64("fc", 300e6, "required clock frequency (Hz)")
	format := flag.String("format", "text", "output format: text, csv")
	plot := flag.Bool("plot", false, "also render an ASCII plot of each series")
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	reg, err := of.Begin(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Default()
	cfg.Fc = *fc
	cfg.Obs = reg

	emit := func(t *report.Table) {
		var err error
		switch *format {
		case "text":
			err = t.Render(os.Stdout)
		case "csv":
			err = t.RenderCSV(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *fig == "2a" || *fig == "all" {
		tols := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
		pts, err := experiments.Figure2a(cfg, *circuitName, *act, tols)
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.Figure2aTable(pts))
		if *plot {
			s := report.Series{Name: "savings"}
			for _, p := range pts {
				s.X = append(s.X, p.Tol*100)
				s.Y = append(s.Y, p.Savings)
			}
			fmt.Println(report.AsciiPlot("Figure 2(a): savings vs Vt tolerance (%)", []report.Series{s}, 48, 12))
		}
	}
	if *fig == "2b" || *fig == "all" {
		skews := []float64{0.55, 0.65, 0.75, 0.85, 0.95, 1.0}
		pts, err := experiments.Figure2b(cfg, *circuitName, *act, skews)
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.Figure2bTable(pts))
		if *plot {
			s := report.Series{Name: "savings"}
			for _, p := range pts {
				s.X = append(s.X, p.Skew)
				s.Y = append(s.Y, p.Savings)
			}
			fmt.Println(report.AsciiPlot("Figure 2(b): savings vs skew factor b", []report.Series{s}, 48, 12))
		}
	}
	if *fig != "2a" && *fig != "2b" && *fig != "all" {
		log.Fatalf("unknown -fig %q", *fig)
	}

	man := obs.NewManifest("figures")
	man.Circuit = *circuitName
	man.FcHz = *fc
	if err := of.End(man, reg); err != nil {
		log.Fatal(err)
	}
}
