// Command sweep runs the joint optimizer across a range of clock targets on
// one circuit and prints the energy/voltage trajectory — the §3 physics of
// the paper made visible: as the clock relaxes, the optimizer rides supply
// and threshold down together until leakage balances switching. It also
// reports the energy-delay-product optimal operating point (the metric of
// the paper's reference [2], for designs with no hard clock target).
//
// The implementation lives in internal/cli so the optimization server and
// the load generator run the identical study (and render identical bytes).
//
// Usage:
//
//	sweep -circuit s298 [-from 5e7] [-to 6e8] [-points 8] [-format text|csv]
package main

import (
	"log"
	"os"

	"cmosopt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	if err := cli.Sweep(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
