// Command sweep runs the joint optimizer across a range of clock targets on
// one circuit and prints the energy/voltage trajectory — the §3 physics of
// the paper made visible: as the clock relaxes, the optimizer rides supply
// and threshold down together until leakage balances switching. It also
// reports the energy-delay-product optimal operating point (the metric of
// the paper's reference [2], for designs with no hard clock target).
//
// Usage:
//
//	sweep -circuit s298 [-from 5e7] [-to 6e8] [-points 8] [-format text|csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cmosopt/internal/cli"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	name := flag.String("circuit", "s298", "benchmark circuit")
	from := flag.Float64("from", 50e6, "lowest clock target (Hz)")
	to := flag.Float64("to", 600e6, "highest clock target (Hz)")
	points := flag.Int("points", 8, "number of sweep points (log-spaced)")
	act := flag.Float64("activity", 0.5, "input transition density per cycle")
	format := flag.String("format", "text", "output format: text, csv")
	workers := flag.Int("workers", 0, "parallel workers (0 = one per CPU, 1 = serial; same output either way)")
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	if *from <= 0 || *to <= *from || *points < 2 {
		log.Fatalf("bad sweep range [%v, %v] x %d", *from, *to, *points)
	}
	if *workers < 0 {
		log.Fatalf("bad worker count %d", *workers)
	}
	ct, err := netgen.Profile(*name)
	if err != nil {
		if ct, err = netgen.Profile85(*name); err != nil {
			log.Fatal(err)
		}
	}
	reg, err := of.Begin(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Circuit:      ct,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           *from, // per-point override below
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: *act,
		Obs:          reg,
	}

	// Log-spaced by exponent rather than by running product: fcs[i] =
	// from·ratio^i has no accumulated rounding drift, so the last point lands
	// exactly on -to.
	fcs := make([]float64, *points)
	ratio := *to / *from
	for i := range fcs {
		fcs[i] = *from * math.Pow(ratio, float64(i)/float64(*points-1))
	}
	fcs[*points-1] = *to

	opts := core.DefaultOptions()
	opts.Workers = *workers
	pts, best, err := core.EDPStudy(spec, fcs, opts)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title: fmt.Sprintf("clock sweep: %s (activity %.2f)", *name, *act),
		Headers: []string{"fc (MHz)", "Vdd (V)", "Vt (V)", "Static E (J)",
			"Dynamic E (J)", "Total E (J)", "EDP (J*s)", "note"},
	}
	for i, pt := range pts {
		note := ""
		if i == best {
			note = "<- min EDP"
		}
		r := pt.Result
		t.AddRow(
			fmt.Sprintf("%.0f", pt.Fc/1e6),
			fmt.Sprintf("%.2f", r.Vdd),
			fmt.Sprintf("%.3f", r.VtsValues[0]),
			report.Sci(r.Energy.Static),
			report.Sci(r.Energy.Dynamic),
			report.Sci(r.Energy.Total()),
			report.Sci(pt.EDP),
			note,
		)
	}
	switch *format {
	case "text":
		err = t.Render(os.Stdout)
	case "csv":
		err = t.RenderCSV(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	man := obs.NewManifest("sweep")
	man.Circuit = ct.Name
	man.Gates = ct.NumLogic()
	man.Workers = *workers
	for _, pt := range pts {
		man.Results = append(man.Results,
			cli.ResultRecord(fmt.Sprintf("fc=%.0fMHz", pt.Fc/1e6), pt.Fc, pt.Result))
	}
	if err := of.End(man, reg); err != nil {
		log.Fatal(err)
	}
}
