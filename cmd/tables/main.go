// Command tables regenerates the paper's result tables: Table 1 (fixed-Vt
// baseline), Table 2 (joint heuristic with savings), the §5 simulated-
// annealing comparison, and the multi-threshold extension study.
//
// Usage:
//
//	tables [-table 1|2|all|sa|multivt] [-circuits s298,s344] [-format text|markdown|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cmosopt/internal/cli"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/experiments"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")

	table := flag.String("table", "all", "which table: 1, 2, all, sa, multivt, processvt, nodes")
	circuits := flag.String("circuits", "", "comma-separated benchmark names (default: full suite)")
	activities := flag.String("activities", "0.1,0.5", "comma-separated input activity levels")
	fc := flag.Float64("fc", 300e6, "required clock frequency (Hz)")
	m := flag.Int("M", 12, "bisection steps per Procedure 2 loop")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	reg, err := of.Begin(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Default()
	cfg.Fc = *fc
	cfg.Opts.M = *m
	cfg.Obs = reg
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}
	var acts []float64
	for _, s := range strings.Split(*activities, ",") {
		var a float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &a); err != nil {
			log.Fatalf("bad activity %q: %v", s, err)
		}
		acts = append(acts, a)
	}
	cfg.Activities = acts

	emit := func(t *report.Table) {
		if err := render(os.Stdout, t, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	switch *table {
	case "1", "2", "all":
		entries, err := experiments.RunSuite(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *table == "1" || *table == "all" {
			emit(experiments.Table1(entries))
		}
		if *table == "2" || *table == "all" {
			emit(experiments.Table2(entries))
		}
	case "sa":
		ao := core.DefaultAnnealOptions()
		entries, err := experiments.SACompare(cfg, cfg.Circuits, cfg.Activities[0], ao)
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.SATable(entries))
	case "multivt":
		entries, err := experiments.MultiVtStudy(cfg, cfg.Circuits[0], cfg.Activities[0], []int{1, 2, 3})
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.MultiVtTable(entries))
	case "processvt":
		rec, entries, err := experiments.ProcessVtStudy(cfg, cfg.Activities[0])
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.ProcessVtTable(rec, entries))
	case "nodes":
		entries, err := experiments.CrossNodeStudy(cfg, cfg.Activities[0],
			[]device.Tech{device.Default350(), device.Default250()})
		if err != nil {
			log.Fatal(err)
		}
		emit(experiments.CrossNodeTable(entries))
	default:
		log.Fatalf("unknown -table %q", *table)
	}

	man := obs.NewManifest("tables")
	man.FcHz = *fc
	man.Workers = cfg.Opts.Workers
	if err := of.End(man, reg); err != nil {
		log.Fatal(err)
	}
}

func render(w io.Writer, t *report.Table, format string) error {
	switch format {
	case "text":
		return t.Render(w)
	case "markdown":
		return t.RenderMarkdown(w)
	case "csv":
		return t.RenderCSV(w)
	}
	return fmt.Errorf("unknown format %q", format)
}
