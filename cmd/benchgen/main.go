// Command benchgen emits synthetic random-logic netlists in the ISCAS .bench
// format — either one of the built-in ISCAS'89-matched benchmark profiles or
// a custom configuration.
//
// Usage:
//
//	benchgen -profile s298                      # structure-matched benchmark
//	benchgen -gates 500 -depth 12 -pis 16 -pos 8 -seed 7 -name big
package main

import (
	"flag"
	"log"
	"os"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")

	profile := flag.String("profile", "", "built-in profile name (s298, s344, ...)")
	name := flag.String("name", "synth", "circuit name for custom generation")
	gates := flag.Int("gates", 200, "logic gate count")
	depth := flag.Int("depth", 10, "target logic depth")
	pis := flag.Int("pis", 8, "primary inputs")
	pos := flag.Int("pos", 6, "primary outputs")
	dffs := flag.Int("dffs", 0, "flops to model as pseudo PI/PO pairs")
	maxFan := flag.Int("maxfan", 4, "maximum gate fanin")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "bench", "output format: bench, verilog")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var c *circuit.Circuit
	var err error
	if *profile != "" {
		// A profile fixes the whole structure, so any explicitly-set custom
		// generation flag would be silently ignored — reject the combination.
		custom := map[string]bool{
			"name": true, "gates": true, "depth": true, "pis": true,
			"pos": true, "dffs": true, "maxfan": true, "seed": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if custom[f.Name] {
				log.Fatalf("-%s cannot be combined with -profile (the profile fixes the structure)", f.Name)
			}
		})
		c, err = netgen.Profile(*profile)
	} else {
		c, err = netgen.Generate(netgen.Config{
			Name: *name, Gates: *gates, Depth: *depth,
			PIs: *pis, POs: *pos, DFFs: *dffs, MaxFan: *maxFan,
		}, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "bench":
		err = circuit.WriteBench(w, c)
	case "verilog":
		err = circuit.WriteVerilog(w, c)
	default:
		err = nil
		log.Fatalf("unknown -format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
