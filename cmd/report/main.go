// Command report regenerates the complete experimental record — Tables 1
// and 2, both Figure 2 sweeps, the annealing comparison, and the
// multi-threshold study — as a single Markdown document, so the numbers in
// EXPERIMENTS.md can be reproduced with one command:
//
//	go run ./cmd/report > results.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cmosopt/internal/cli"
	"cmosopt/internal/core"
	"cmosopt/internal/experiments"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")

	circuits := flag.String("circuits", "", "comma-separated benchmark names (default: full suite)")
	fc := flag.Float64("fc", 300e6, "required clock frequency (Hz)")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	reg, err := of.Begin(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Default()
	cfg.Fc = *fc
	cfg.Obs = reg
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}

	out := os.Stdout
	fmt.Fprintf(out, "# cmosopt experimental record\n\n")
	fmt.Fprintf(out, "Conditions: fc = %s, skew b = %.2f, input probability %.2f, activities %v.\n\n",
		report.Eng(cfg.Fc, "Hz"), cfg.Skew, cfg.InputProb, cfg.Activities)

	md := func(t *report.Table) {
		if err := t.RenderMarkdown(out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	entries, err := experiments.RunSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	md(experiments.Table1(entries))
	md(experiments.Table2(entries))

	figCircuit := cfg.Circuits[0]
	for _, c := range cfg.Circuits {
		if c == "s298" { // the paper's Figure 2 circuit when present
			figCircuit = c
		}
	}
	act := cfg.Activities[len(cfg.Activities)-1]

	tols := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	skews := []float64{0.55, 0.65, 0.75, 0.85, 0.95, 1.0}
	if *quick {
		tols = []float64{0, 0.15, 0.30}
		skews = []float64{0.65, 0.95}
	}
	pa, err := experiments.Figure2a(cfg, figCircuit, act, tols)
	if err != nil {
		log.Fatal(err)
	}
	md(experiments.Figure2aTable(pa))
	pb, err := experiments.Figure2b(cfg, figCircuit, act, skews)
	if err != nil {
		log.Fatal(err)
	}
	md(experiments.Figure2bTable(pb))

	saCircuits := cfg.Circuits
	if len(saCircuits) > 2 && !*quick {
		saCircuits = saCircuits[:2]
	} else if *quick {
		saCircuits = saCircuits[:1]
	}
	sa, err := experiments.SACompare(cfg, saCircuits, act, core.DefaultAnnealOptions())
	if err != nil {
		log.Fatal(err)
	}
	md(experiments.SATable(sa))

	nvs := []int{1, 2, 3}
	if *quick {
		nvs = []int{1, 2}
	}
	mv, err := experiments.MultiVtStudy(cfg, figCircuit, act, nvs)
	if err != nil {
		log.Fatal(err)
	}
	md(experiments.MultiVtTable(mv))

	man := obs.NewManifest("report")
	man.Circuit = figCircuit
	man.FcHz = *fc
	man.Workers = cfg.Opts.Workers
	if err := of.End(man, reg); err != nil {
		log.Fatal(err)
	}
}
