// Command loadgen drives a running served instance, in two modes.
//
// Smoke mode (-smoke) is the correctness end-to-end the serve-e2e CI job
// runs: it submits a sweep and asserts the served bytes are identical to
// the offline cmd/sweep rendering computed in-process, replays the request
// to prove a cache hit returns the same bytes, cancels a mid-flight
// 100k-gate job and checks it resolves promptly as canceled, fills the
// admission queue until the server answers 429 + Retry-After, drains it,
// and verifies the server accepts work again.
//
// Load mode (default) measures the serving pipeline: -n requests at -c
// concurrency, once uncached (every request runs the real optimizer) and
// once against the result cache, reporting p50/p99 latency and sustained
// ns/request. With -o the measurements land in a cmosopt/manifest/v1
// manifest as Loadgen/* benchmark records, the same currency the CI
// bench-regress gate compares with cmd/benchdiff.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -smoke
//	loadgen -addr http://127.0.0.1:8080 [-n 32] [-c 4] [-circuit s27] [-o load.json]
//
// All wall-clock measurement lives here, outside the deterministic core:
// the server and engine never read the clock for anything they return.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"cmosopt/internal/cli"
	"cmosopt/internal/device"
	"cmosopt/internal/obs"
	"cmosopt/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

type config struct {
	client  *serve.Client
	smoke   bool
	n       int
	c       int
	circuit string
	heavy   string
	points  int
	out     string
	warmup  time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "served base URL")
	smoke := fs.Bool("smoke", false, "run the end-to-end correctness suite instead of a load run")
	n := fs.Int("n", 32, "requests per load batch")
	c := fs.Int("c", 4, "concurrent requests")
	circuitName := fs.String("circuit", "s27", "benchmark circuit for load requests")
	heavy := fs.String("heavy", "s100k", "long-running circuit for cancellation and queue-fill probes")
	points := fs.Int("points", 3, "sweep points per load request")
	o := fs.String("o", "", "write measurements as a manifest JSON here")
	warmup := fs.Duration("warmup", 30*time.Second, "how long to wait for the server to become healthy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}
	cfg := config{
		client:  &serve.Client{BaseURL: *addr},
		smoke:   *smoke,
		n:       *n,
		c:       *c,
		circuit: *circuitName,
		heavy:   *heavy,
		points:  *points,
		out:     *o,
		warmup:  *warmup,
	}
	if err := waitHealthy(cfg.client, cfg.warmup); err != nil {
		return err
	}
	if cfg.smoke {
		return runSmoke(cfg, out)
	}
	return runLoad(cfg, out)
}

// waitHealthy polls /healthz until the server answers; the launcher (CI or
// a human) starts served and loadgen concurrently.
func waitHealthy(c *serve.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ok := c.Healthy(ctx)
		cancel()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s", c.BaseURL, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sweepRequest is the canonical small request both modes submit.
func sweepRequest(circuit string, points int, nocache bool) *serve.Request {
	return &serve.Request{
		Kind: serve.KindSweep, Circuit: circuit,
		FromHz: 100e6, ToHz: 400e6, Points: points, Format: "csv",
		NoCache: nocache,
	}
}

// offlineSweep renders the same request through the exact cli path
// cmd/sweep uses — the reference the served bytes must match.
func offlineSweep(circuit string, points int) (string, error) {
	params := cli.SweepParams{
		Circuit: circuit, FromHz: 100e6, ToHz: 400e6,
		Points: points, Activity: 0.5, Workers: 1,
	}
	ct, pts, best, err := cli.RunSweep(params, device.Default350(), obs.NewRegistry(), context.Background())
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := cli.RenderSweep(&buf, "csv", cli.SweepTable(ct.Name, 0.5, pts, best)); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// --- smoke mode ---

func runSmoke(cfg config, out io.Writer) error {
	ctx := context.Background()
	c := cfg.client

	// 1. Served bytes must be identical to the offline tool's rendering.
	offline, err := offlineSweep(cfg.circuit, cfg.points)
	if err != nil {
		return fmt.Errorf("offline reference: %w", err)
	}
	st, err := c.SubmitWait(ctx, sweepRequest(cfg.circuit, cfg.points, false))
	if err != nil {
		return fmt.Errorf("served sweep: %w", err)
	}
	if st.State != serve.StateDone || st.Result == nil {
		return fmt.Errorf("served sweep ended %s: %s", st.State, st.Error)
	}
	if st.Result.Output != offline {
		return fmt.Errorf("served output diverges from offline cmd/sweep:\n-- served --\n%s-- offline --\n%s",
			st.Result.Output, offline)
	}
	if st.Result.Manifest == nil || st.Result.Manifest.Schema != obs.SchemaVersion {
		return fmt.Errorf("served result carries no %s manifest", obs.SchemaVersion)
	}
	fmt.Fprintf(out, "ok  byte-identical  served %s sweep == offline render (%d bytes)\n",
		cfg.circuit, len(offline))

	// 2. The identical request must be a cache hit with the same bytes.
	hit, err := c.SubmitWait(ctx, sweepRequest(cfg.circuit, cfg.points, false))
	if err != nil {
		return fmt.Errorf("cache replay: %w", err)
	}
	if !hit.Cached || hit.Result.Output != offline {
		return fmt.Errorf("cache replay missed or diverged (cached=%v)", hit.Cached)
	}
	fmt.Fprintf(out, "ok  cache-hit       identical request served from cache, bytes unchanged\n")

	// 3. SSE: a job's event stream must deliver progress and a done frame.
	if err := smokeEvents(ctx, cfg, out); err != nil {
		return err
	}

	// 4. A mid-flight heavy job must cancel promptly.
	if err := smokeCancel(ctx, cfg, out); err != nil {
		return err
	}

	// 5. Admission control: fill the queue to a 429, drain, accept again.
	if err := smokeQueueFull(ctx, cfg, out); err != nil {
		return err
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Rejected < 1 || stats.CacheHits < 1 || stats.Canceled < 1 {
		return fmt.Errorf("stats did not record the suite: %+v", stats)
	}
	fmt.Fprintf(out, "ok  stats           accepted=%d rejected=%d done=%d canceled=%d hits=%d\n",
		stats.Accepted, stats.Rejected, stats.Done, stats.Canceled, stats.CacheHits)
	fmt.Fprintln(out, "smoke ok")
	return nil
}

func smokeEvents(ctx context.Context, cfg config, out io.Writer) error {
	sub, err := cfg.client.Submit(ctx, sweepRequest(cfg.circuit, cfg.points, true))
	if err != nil {
		return fmt.Errorf("events submit: %w", err)
	}
	var progress, done int
	err = cfg.client.Events(ctx, sub.ID, func(ev serve.Event) bool {
		switch ev.Name {
		case "progress":
			progress++
		case "done":
			done++
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	if done != 1 || progress < 1 {
		return fmt.Errorf("event stream delivered %d progress / %d done frames", progress, done)
	}
	fmt.Fprintf(out, "ok  sse             %d progress frame(s) and a done frame streamed\n", progress)
	return nil
}

func smokeCancel(ctx context.Context, cfg config, out io.Writer) error {
	req := &serve.Request{Kind: serve.KindSweep, Circuit: cfg.heavy, Points: 8, NoCache: true}
	sub, err := cfg.client.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("heavy submit: %w", err)
	}
	if _, err := cfg.client.Cancel(ctx, sub.ID); err != nil {
		return fmt.Errorf("cancel: %w", err)
	}
	begin := time.Now()
	fin, err := cfg.client.Wait(ctx, sub.ID)
	if err != nil {
		return fmt.Errorf("wait after cancel: %w", err)
	}
	if fin.State != serve.StateCanceled {
		return fmt.Errorf("canceled %s job resolved as %q, want canceled", cfg.heavy, fin.State)
	}
	fmt.Fprintf(out, "ok  cancellation    %s job aborted %.1fs after cancel reached the server\n",
		cfg.heavy, time.Since(begin).Seconds())
	return nil
}

func smokeQueueFull(ctx context.Context, cfg config, out io.Writer) error {
	heavy := func() *serve.Request {
		return &serve.Request{Kind: serve.KindSweep, Circuit: cfg.heavy, Points: 8, NoCache: true}
	}
	var accepted []string
	var rejected *serve.QueueFullError
	for i := 0; i < 64; i++ {
		st, err := cfg.client.Submit(ctx, heavy())
		if err == nil {
			accepted = append(accepted, st.ID)
			continue
		}
		if errors.As(err, &rejected) {
			break
		}
		return fmt.Errorf("queue-fill submit: %w", err)
	}
	if rejected == nil {
		return fmt.Errorf("queue never filled after %d heavy submissions", len(accepted))
	}
	if rejected.RetryAfter < 1 {
		return fmt.Errorf("429 without a usable Retry-After: %v", rejected)
	}
	fmt.Fprintf(out, "ok  admission       429 after %d in flight, Retry-After %ds\n",
		len(accepted), rejected.RetryAfter)

	// Drain: cancel everything we parked and wait for the terminal states.
	for _, id := range accepted {
		if _, err := cfg.client.Cancel(ctx, id); err != nil {
			return fmt.Errorf("drain cancel %s: %w", id, err)
		}
	}
	for _, id := range accepted {
		if _, err := cfg.client.Wait(ctx, id); err != nil {
			return fmt.Errorf("drain wait %s: %w", id, err)
		}
	}
	// The drained server accepts and completes work again.
	again, err := cfg.client.SubmitWait(ctx, sweepRequest(cfg.circuit, cfg.points, false))
	if err != nil {
		return fmt.Errorf("post-drain submit: %w", err)
	}
	if again.State != serve.StateDone {
		return fmt.Errorf("post-drain job ended %s", again.State)
	}
	fmt.Fprintf(out, "ok  drain           queue drained, server accepting again\n")
	return nil
}

// --- load mode ---

// batch fires n requests at concurrency c and returns each request's
// latency plus the batch wall time.
func batch(ctx context.Context, c *serve.Client, n, conc int, mk func(int) *serve.Request) ([]time.Duration, time.Duration, error) {
	lat := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	begin := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			st, err := c.SubmitWait(ctx, mk(i))
			lat[i] = time.Since(t0)
			if err != nil {
				errs[i] = err
			} else if st.State != serve.StateDone {
				errs[i] = fmt.Errorf("request %d ended %s: %s", i, st.State, st.Error)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(begin)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return lat, wall, nil
}

func runLoad(cfg config, out io.Writer) error {
	ctx := context.Background()
	man := obs.NewManifest("loadgen")
	man.Circuit = cfg.circuit
	man.Workers = cfg.c

	report := func(label string, lat []time.Duration, wall time.Duration) error {
		s, err := serve.Summarize(lat)
		if err != nil {
			return err
		}
		perReq := wall / time.Duration(s.N)
		fmt.Fprintf(out, "%-8s n=%d c=%d  p50 %s  p99 %s  max %s  %s/req sustained\n",
			label, s.N, cfg.c, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond),
			s.Max.Round(time.Microsecond), perReq.Round(time.Microsecond))
		man.Benchmarks = append(man.Benchmarks,
			obs.BenchRecord{Name: "Loadgen/" + label + "/p50", Runs: s.N, Samples: s.N, NsPerOp: float64(s.P50.Nanoseconds())},
			obs.BenchRecord{Name: "Loadgen/" + label + "/p99", Runs: s.N, Samples: s.N, NsPerOp: float64(s.P99.Nanoseconds())},
			obs.BenchRecord{Name: "Loadgen/" + label + "/ns_per_req", Runs: s.N, Samples: s.N, NsPerOp: float64(perReq.Nanoseconds())},
		)
		return nil
	}

	// Uncached: every request runs the full optimizer pipeline.
	lat, wall, err := batch(ctx, cfg.client, cfg.n, cfg.c, func(int) *serve.Request {
		return sweepRequest(cfg.circuit, cfg.points, true)
	})
	if err != nil {
		return fmt.Errorf("uncached batch: %w", err)
	}
	if err := report("sweep", lat, wall); err != nil {
		return err
	}

	// Cached: prime once, then measure pure front-door + cache latency.
	if _, err := cfg.client.SubmitWait(ctx, sweepRequest(cfg.circuit, cfg.points, false)); err != nil {
		return fmt.Errorf("cache prime: %w", err)
	}
	lat, wall, err = batch(ctx, cfg.client, cfg.n, cfg.c, func(int) *serve.Request {
		return sweepRequest(cfg.circuit, cfg.points, false)
	})
	if err != nil {
		return fmt.Errorf("cached batch: %w", err)
	}
	if err := report("cached", lat, wall); err != nil {
		return err
	}

	if cfg.out != "" {
		if err := man.WriteFile(cfg.out); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d benchmark records)\n", cfg.out, len(man.Benchmarks))
	}
	return nil
}
