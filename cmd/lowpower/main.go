// Command lowpower optimizes one CMOS random logic network for minimal total
// (static + dynamic) energy under a cycle-time constraint — the paper's full
// flow on a single circuit. Circuits come from the built-in benchmark suite
// or any ISCAS .bench netlist.
//
// Usage:
//
//	lowpower -circuit s298 [-mode joint|baseline|anneal|multivt|dualvdd] [-fc 3e8]
//	lowpower -bench path/to/netlist.bench -save design.json
package main

import (
	"log"
	"os"

	"cmosopt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lowpower: ")
	if err := cli.LowPower(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
