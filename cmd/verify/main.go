// Command verify re-checks a saved design (cmd/lowpower -save) against its
// circuit: it re-derives the activity profile and delay budgets, recomputes
// timing and energy from scratch, and reports whether the design still meets
// the cycle-time constraint — the sign-off step of the flow. Exit status 1
// on a timing failure.
//
// Usage:
//
//	verify -design d.json -circuit s298 [-fc 3e8] [-tech file]
package main

import (
	"log"
	"os"

	"cmosopt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	if err := cli.Verify(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
