// ISCAS netlist example: parse a sequential ISCAS'89 .bench netlist (the
// genuine s27, or any file given on the command line), cut its flip-flops to
// get the register-to-register combinational network, and run the full
// optimization flow on it.
//
//	go run ./examples/iscas              # embedded genuine s27
//	go run ./examples/iscas mydesign.bench
package main

import (
	"fmt"
	"log"
	"os"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	var c *circuit.Circuit
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		c, err = circuit.ParseBench(os.Args[1], f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		c = netgen.S27()
	}

	fmt.Println("raw netlist:     ", circuit.ComputeStats(c))
	comb, err := c.Combinational()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after DFF cut:   ", circuit.ComputeStats(comb))

	p, err := core.NewProblem(core.Spec{
		Circuit:      c, // NewProblem cuts DFFs itself; passing raw is fine
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []string{"baseline", "joint"} {
		var res *core.Result
		if mode == "baseline" {
			res, err = p.OptimizeBaseline(core.DefaultOptions())
		} else {
			res, err = p.OptimizeJoint(core.DefaultOptions())
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s: total %-9s (static %-9s dynamic %-9s) Vdd %-7s Vt %-7s delay %s\n",
			mode,
			report.Eng(res.Energy.Total(), "J"),
			report.Eng(res.Energy.Static, "J"),
			report.Eng(res.Energy.Dynamic, "J"),
			report.Eng(res.Vdd, "V"),
			report.Eng(res.VtsValues[0], "V"),
			report.Eng(res.CriticalDelay, "s"))
	}

	// Show the critical path of the optimized design by gate name.
	joint, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	path, delay := p.Eval.CriticalPath(joint.Assignment)
	fmt.Printf("critical path (%s):", report.Eng(delay, "s"))
	for _, id := range path {
		fmt.Printf(" %s", p.C.Gate(id).Name)
	}
	fmt.Println()
}
