// Quickstart: build a small CMOS network with the circuit Builder, then run
// the paper's joint (Vdd, Vt, widths) optimization against the conventional
// fixed-Vt baseline and print the energy breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	// A 4-bit ripple-carry adder built gate by gate: a realistic little
	// random-logic network with reconvergence and a long carry chain.
	b := circuit.NewBuilder("adder4")
	var carry int
	for i := 0; i < 4; i++ {
		ai := b.Input(fmt.Sprintf("a%d", i))
		bi := b.Input(fmt.Sprintf("b%d", i))
		axb := b.Gate(circuit.Xor, fmt.Sprintf("axb%d", i), ai, bi)
		if i == 0 {
			sum := b.Gate(circuit.Buf, "sum0", axb)
			b.Output(sum)
			carry = b.Gate(circuit.And, "c0", ai, bi)
			continue
		}
		sum := b.Gate(circuit.Xor, fmt.Sprintf("sum%d", i), axb, carry)
		b.Output(sum)
		g1 := b.Gate(circuit.And, fmt.Sprintf("g1_%d", i), axb, carry)
		g2 := b.Gate(circuit.And, fmt.Sprintf("g2_%d", i), ai, bi)
		carry = b.Gate(circuit.Or, fmt.Sprintf("c%d", i), g1, g2)
	}
	b.Output(carry)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(circuit.ComputeStats(c))

	// The paper's "Given": clock target, technology, activity profile.
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           200e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	base, err := p.OptimizeBaseline(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	joint, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r *core.Result) {
		fmt.Printf("%-9s Vdd=%-8s Vt=%-8s  static=%-10s dynamic=%-10s total=%-10s delay=%s\n",
			name,
			report.Eng(r.Vdd, "V"), report.Eng(r.VtsValues[0], "V"),
			report.Eng(r.Energy.Static, "J"), report.Eng(r.Energy.Dynamic, "J"),
			report.Eng(r.Energy.Total(), "J"), report.Eng(r.CriticalDelay, "s"))
	}
	show("baseline", base)
	show("joint", joint)
	fmt.Printf("joint optimization saves %.1fx at the same %s clock\n",
		joint.Savings(base), report.Eng(p.Fc, "Hz"))
}
