// Model validation example: the paper validated its analytic energy and
// delay models "extensively with HSPICE". This example plays that role with
// the built-in transient simulator — it sweeps supply and threshold across
// the optimizer's whole search range (superthreshold down into subthreshold)
// and compares the simulated 50%-crossing delay and supply energy against
// the closed-form models.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/device"
	"cmosopt/internal/report"
	"cmosopt/internal/spice"
)

func main() {
	log.SetFlags(0)
	tech := device.Default350()

	fmt.Println("transient vs analytic gate delay (w=2, CL=10 fF, inverter):")
	fmt.Println("Vdd(V)  Vt(V)   simulated    analytic     sim/ana")
	points := []struct{ vdd, vt float64 }{
		{3.3, 0.7}, {2.5, 0.7}, {1.2, 0.3}, {0.9, 0.15},
		{0.6, 0.15}, {0.4, 0.2}, {0.3, 0.35}, // last two: subthreshold
	}
	for _, pt := range points {
		s := &spice.GateSim{Tech: &tech, W: 2, CL: 10e-15, Vdd: pt.vdd, Vts: pt.vt, Fanin: 1}
		sim, ana, ratio, err := s.CompareDelay()
		if err != nil {
			log.Fatal(err)
		}
		regime := ""
		if pt.vdd <= pt.vt {
			regime = "  (subthreshold)"
		}
		fmt.Printf("%5.2f   %5.2f   %-10s   %-10s   %.2f%s\n",
			pt.vdd, pt.vt, report.Eng(sim, "s"), report.Eng(ana, "s"), ratio, regime)
	}

	fmt.Println("\nsupply energy of a full rising transition vs C·Vdd²:")
	for _, vdd := range []float64{3.3, 1.2, 0.6} {
		s := &spice.GateSim{Tech: &tech, W: 2, CL: 10e-15, Vdd: vdd, Vts: 0.15, Fanin: 1}
		e, err := s.RiseEnergy()
		if err != nil {
			log.Fatal(err)
		}
		want := s.CL * vdd * vdd
		fmt.Printf("Vdd=%.1f V: simulated %-9s  C·Vdd² %-9s  ratio %.3f\n",
			vdd, report.Eng(e, "J"), report.Eng(want, "J"), e/want)
	}
	fmt.Println("\nThe transregional analytic model tracks the transient across four orders of")
	fmt.Println("magnitude of delay, which is what lets Procedure 2 search below threshold.")
}
