// Activity decomposition example. The paper's dynamic-power numbers rest on
// Najm's analytic transition density (§4.1), which differs from the real
// switching activity in two opposite ways:
//
//   - it *overcounts* on reconvergent logic (spatially correlated fanins and
//     simultaneous input switching violate its independence assumption);
//   - it *undercounts* hazards (zero-delay analysis cannot see the glitches
//     unequal path delays create).
//
// This example separates the two on the optimized s298 design by comparing
// three measurements of total switching activity:
//
//	analytic   — Najm propagation (what the optimizer uses);
//	zero-delay — Monte-Carlo logic simulation (true correlations, no
//	             glitches);
//	timed      — event-driven simulation with the design's real gate delays
//	             (true correlations AND glitches, minus inertially filtered
//	             pulses).
//
//	go run ./examples/glitch
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/activity"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/report"
	"cmosopt/internal/sim"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	c, err := netgen.Profile("s298")
	if err != nil {
		log.Fatal(err)
	}
	const act = 0.3
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: act,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	in := make(map[int]activity.InputSpec, len(p.C.PIs))
	for _, id := range p.C.PIs {
		in[id] = activity.InputSpec{Prob: 0.5, Density: act}
	}
	const cycles = 30000

	zero, err := activity.MonteCarlo(p.C, in, cycles, 42)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(p.C, p.Eval.DelayModel(), res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	timed, err := s.RandomVectorStats(in, cycles, 1/p.Fc, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Energy-weight each activity measure with the same per-gate switched
	// capacitance so the comparison reads directly in joules.
	weighted := func(density func(i int) float64) float64 {
		total := 0.0
		for i := range p.C.Gates {
			if !p.C.Gates[i].IsLogic() {
				continue
			}
			base := p.Eval.GateEnergy(i, res.Assignment).Dynamic
			if d := p.Act.Density[i]; d > 1e-12 {
				total += base * density(i) / d
			}
		}
		return total
	}
	analyticE := weighted(func(i int) float64 { return p.Act.Density[i] })
	zeroE := weighted(func(i int) float64 { return zero.Density[i] })
	timedE := weighted(func(i int) float64 { return timed[i] })

	fmt.Printf("circuit                  s298 (joint-optimized, %s, input activity %.1f)\n",
		report.Eng(p.Fc, "Hz"), act)
	fmt.Printf("analytic (Najm)          %s/cycle   <- what the optimizer minimizes\n", report.Eng(analyticE, "J"))
	fmt.Printf("zero-delay simulation    %s/cycle   (correlation overcount: %+.1f%%)\n",
		report.Eng(zeroE, "J"), (analyticE/zeroE-1)*100)
	fmt.Printf("timed simulation         %s/cycle   (glitch contribution:   %+.1f%%)\n",
		report.Eng(timedE, "J"), (timedE/zeroE-1)*100)
	fmt.Println("\nThe independence assumption overstates activity on reconvergent logic, while")
	fmt.Println("hazards push the other way; the analytic estimate the paper (and this library)")
	fmt.Println("optimizes against is conservative whenever the first effect dominates.")

	// Bonus: the supply-power waveform, which the per-cycle energy metric
	// integrates away. Peak-to-average matters for the power grid.
	se := make([]float64, p.C.N())
	for i := range p.C.Gates {
		if p.C.Gates[i].IsLogic() {
			se[i] = p.Eval.GateEnergy(i, res.Assignment).Dynamic
			if d := p.Act.Density[i]; d > 1e-12 {
				se[i] /= d // energy per single transition
			}
		}
	}
	s2, err := sim.New(p.C, p.Eval.DelayModel(), res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	_, p2a, err := s2.PowerTrace(in, se, 8000, 8, 1/p.Fc, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsupply power peak/average    %.1fx (event-driven trace, 1/8-cycle buckets)\n", p2a)
}
