// ECO example: after a netlist edit, re-optimizing from scratch wastes the
// previous solution. This example optimizes the s298-profile benchmark,
// "edits" it by grafting a small observation cone onto two outputs, and then
// warm-starts the new optimization from the old design — most gates keep
// their sizing and only the widths are re-solved.
//
//	go run ./examples/eco
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	base, err := netgen.Profile("s298")
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Circuit:      base,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
	}
	p1, err := core.NewProblem(spec)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := p1.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original   %s in %d evaluations\n",
		report.Eng(orig.Energy.Total(), "J"), orig.Evaluations)

	// The "edit": an XOR observer across the first two outputs plus an
	// output buffer — the kind of late probe-logic change an ECO carries.
	edited := graftObserver(p1.C)
	spec.Circuit = edited
	p2, err := core.NewProblem(spec)
	if err != nil {
		log.Fatal(err)
	}
	eco, reused, fast, err := p2.WarmStart(p1.C, orig.Assignment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after edit %s in %d evaluations (reused %d/%d sizings, warm start: %v)\n",
		report.Eng(eco.Energy.Total(), "J"), eco.Evaluations, reused, p1.C.NumLogic(), fast)
	full, err := p2.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full rerun %s in %d evaluations\n",
		report.Eng(full.Energy.Total(), "J"), full.Evaluations)
	fmt.Printf("\nThe warm start closes the ECO in ~%.0fx fewer circuit evaluations for a\n",
		float64(full.Evaluations)/float64(max(eco.Evaluations, 1)))
	fmt.Printf("%.0f%% energy premium over the full rerun.\n",
		(eco.Energy.Total()/full.Energy.Total()-1)*100)
}

func graftObserver(c *circuit.Circuit) *circuit.Circuit {
	b := circuit.NewBuilder(c.Name + "-eco")
	order, err := c.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	newID := make([]int, c.N())
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == circuit.Input {
			newID[id] = b.Input(g.Name)
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = newID[f]
		}
		newID[id] = b.Gate(g.Type, g.Name, fanin...)
	}
	for _, po := range c.POs {
		b.Output(newID[po])
	}
	x := b.Gate(circuit.Xor, "eco_x", newID[c.POs[0]], newID[c.POs[1]])
	y := b.Gate(circuit.Buf, "eco_y", x)
	b.Output(y)
	nc, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return nc
}
