// Process-variation example (the paper's Figure 2(a) methodology): optimize
// under worst-case threshold corners — timing at the slow corner
// V_t·(1+tol), power at the leaky corner V_t·(1−tol) — and watch the
// achievable savings shrink as the tolerated variation grows.
//
//	go run ./examples/variation
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	c, err := netgen.Profile("s298")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	base, err := p.OptimizeBaseline(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	pts, err := p.VariationStudy([]float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		core.DefaultOptions(), base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Vt tol   savings   chosen Vdd   chosen Vt   (s298, a=0.5, 300 MHz)")
	for _, pt := range pts {
		fmt.Printf("±%3.0f%%    %5.1fx    %6.2f V     %6.3f V\n",
			pt.Tol*100, pt.Savings, pt.Vdd, pt.Vts)
	}
	fmt.Println("\nWider tolerance forces a higher nominal threshold (leaky corner) and a higher")
	fmt.Println("supply (slow corner), eroding — but not eliminating — the joint optimizer's")
	fmt.Println("advantage, exactly the trend of the paper's Figure 2(a).")
}
