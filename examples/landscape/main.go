// Landscape example: render the constrained energy surface E*(V_dd, V_ts)
// of §3's physics discussion as an ASCII heatmap — the feasibility wall at
// low supply ('.' region), the leakage penalty at low threshold, and the
// interior optimum ('@') that Procedure 2's bisection homes in on.
//
//	go run ./examples/landscape
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	c, err := netgen.Profile("s298")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	const nVdd, nVts = 16, 24
	ls, err := p.SampleLandscape(nVdd, nVts, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Rows top-to-bottom = high to low Vdd, columns left-to-right = low to
	// high Vts.
	grid := make([][]float64, nVdd)
	for i := 0; i < nVdd; i++ {
		grid[i] = ls.E[nVdd-1-i]
	}
	fmt.Print(report.Heatmap(
		fmt.Sprintf("E*(Vdd, Vt) for s298 at 300 MHz  (rows: Vdd %.1f→%.1f V, cols: Vt %.2f→%.2f V)",
			ls.Vdd[nVdd-1], ls.Vdd[0], ls.Vts[0], ls.Vts[nVts-1]),
		grid, "Vt →", "Vdd ↓"))

	vdd, vts, e, ok := ls.Min()
	if !ok {
		log.Fatal("no feasible grid point")
	}
	fmt.Printf("\ngrid minimum: %s at Vdd=%.2f V, Vt=%.3f V\n", report.Eng(e, "J"), vdd, vts)
	res, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Procedure 2:  %s at Vdd=%.2f V, Vt=%.3f V (%d evaluations)\n",
		report.Eng(res.Energy.Total(), "J"), res.Vdd, res.VtsValues[0], res.Evaluations)
	fmt.Println("\nThe infeasible wall ('.') bounds the low-voltage corner; energy falls toward")
	fmt.Println("it until leakage (low Vt, left edge) pushes back — the §3 balance.")
}
