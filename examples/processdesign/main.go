// Process-design example — the paper's §1 application: "In determining the
// threshold voltage for a process being developed for future applications,
// one may use the algorithms on existing benchmarks with predicted circuit
// timing parameters to find the most desirable threshold voltage."
//
// The joint optimizer runs on each benchmark, the per-circuit optimal
// thresholds are combined into one process-wide recommendation, and each
// circuit is re-optimized with the threshold pinned there to price the
// single-Vt process against per-design freedom.
//
//	go run ./examples/processdesign
package main

import (
	"fmt"
	"log"
	"os"

	"cmosopt/internal/experiments"
)

func main() {
	log.SetFlags(0)

	cfg := experiments.Default()
	cfg.Circuits = []string{"s298", "s382", "s386", "s400", "s444", "s510"}
	rec, entries, err := experiments.ProcessVtStudy(cfg, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.ProcessVtTable(rec, entries).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	worst := 1.0
	for _, e := range entries {
		if e.Penalty > worst {
			worst = e.Penalty
		}
	}
	fmt.Printf("\nA single process threshold of %.0f mV costs at most %.0f%% over per-design\n",
		rec*1e3, (worst-1)*100)
	fmt.Println("optimal thresholds across this suite — the quantified version of the paper's")
	fmt.Println("claim that its optimizer doubles as a process-design tool.")
}
