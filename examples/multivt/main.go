// Multi-threshold example: the paper keeps "the flexibility to use more than
// one threshold or power supply voltage if desired" (§4), at the cost of
// extra implant masks or tub biases (Figure 1). This example sweeps the
// number of distinct threshold voltages n_v on the s298-profile benchmark
// and shows the energy returns of each additional threshold.
//
//	go run ./examples/multivt
package main

import (
	"fmt"
	"log"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

func main() {
	log.SetFlags(0)

	c, err := netgen.Profile("s298")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	var ref float64
	for _, nv := range []int{1, 2, 3} {
		res, err := p.OptimizeMultiVt(nv, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if nv == 1 {
			ref = res.Energy.Total()
		}
		fmt.Printf("nv=%d: total=%-9s static=%-9s dynamic=%-9s Vdd=%-7s thresholds=",
			nv,
			report.Eng(res.Energy.Total(), "J"),
			report.Eng(res.Energy.Static, "J"),
			report.Eng(res.Energy.Dynamic, "J"),
			report.Eng(res.Vdd, "V"))
		for i, vt := range res.VtsValues {
			if i > 0 {
				fmt.Print(" / ")
			}
			fmt.Print(report.Eng(vt, "V"))
		}
		fmt.Printf("  (gain vs nv=1: %.2fx)\n", ref/res.Energy.Total())
	}
	fmt.Println("\nEach extra threshold buys leakage on slack gates without slowing critical ones;")
	fmt.Println("the returns shrink as n_v grows, which is why the paper treats n_v = 1 as the")
	fmt.Println("practical case and larger n_v as a technology-cost trade.")
}
