module cmosopt

go 1.22
