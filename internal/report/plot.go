package report

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a 2-D grid as ASCII shading: values map onto a density
// ramp from the grid minimum (darkest glyph) to the maximum; +Inf cells
// (infeasible regions) render as '·'. Rows are printed top-to-bottom in the
// given order; xLabel/yLabel annotate the axes.
func Heatmap(title string, grid [][]float64, xLabel, yLabel string) string {
	const ramp = "@#%*+=-: " // low value = dark = '@'
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	if math.IsInf(minV, 1) {
		sb.WriteString("(no finite data)\n")
		return sb.String()
	}
	if maxV == minV {
		maxV = minV + 1
	}
	for r, row := range grid {
		if r == 0 && yLabel != "" {
			fmt.Fprintf(&sb, "%s\n", yLabel)
		}
		sb.WriteString("  |")
		for _, v := range row {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				sb.WriteByte('.')
				continue
			}
			idx := int((v - minV) / (maxV - minV) * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  +")
	width := 0
	if len(grid) > 0 {
		width = len(grid[0])
	}
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	if xLabel != "" {
		fmt.Fprintf(&sb, "   %s\n", xLabel)
	}
	fmt.Fprintf(&sb, "   @ = %.3g (best)   space = %.3g   . = infeasible\n", minV, maxV)
	return sb.String()
}

// Series is one named line of an ASCII plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte // plot glyph; 0 defaults to '*'
}

// AsciiPlot renders one or more series as a fixed-size character plot with
// axis annotations — enough to eyeball the monotone trends of the paper's
// Figure 2 in a terminal. Width and height are the plot-area dimensions in
// characters (minimums apply).
func AsciiPlot(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return title + "\n(no finite data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			grid[row][col] = marker
		}
	}

	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", pad))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	xLo := fmt.Sprintf("%.3g", minX)
	xHi := fmt.Sprintf("%.3g", maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(strings.Repeat(" ", pad+2))
	sb.WriteString(xLo)
	sb.WriteString(strings.Repeat(" ", gap))
	sb.WriteString(xHi)
	sb.WriteByte('\n')
	for _, s := range series {
		if s.Name == "" {
			continue
		}
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&sb, "%s %c = %s\n", strings.Repeat(" ", pad), marker, s.Name)
	}
	return sb.String()
}
