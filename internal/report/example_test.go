package report_test

import (
	"fmt"
	"os"

	"cmosopt/internal/report"
)

func ExampleEng() {
	fmt.Println(report.Eng(2.95e-13, "J"))
	fmt.Println(report.Eng(0.744, "V"))
	fmt.Println(report.Eng(3e8, "Hz"))
	// Output:
	// 295 fJ
	// 744 mV
	// 300 MHz
}

func ExampleTable() {
	t := &report.Table{
		Title:   "demo",
		Headers: []string{"circuit", "savings"},
	}
	t.AddRow("s298", "10.3x")
	t.AddRow("s344", "8.2x")
	_ = t.Render(os.Stdout)
	// Output:
	// demo
	// circuit  savings
	// -------  -------
	// s298     10.3x
	// s344     8.2x
}
