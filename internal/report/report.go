// Package report renders the reproduction's result tables: plain-text
// aligned tables, Markdown, CSV, and engineering-notation number formatting
// matching the paper's presentation (energies in J/cycle, delays in ns).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Eng formats x in engineering notation with an SI prefix and unit, e.g.
// 1.23e-12 J → "1.23 pJ".
func Eng(x float64, unit string) string {
	switch {
	case math.IsNaN(x):
		return "NaN"
	case math.IsInf(x, 1):
		return "+Inf"
	case math.IsInf(x, -1):
		return "-Inf"
	case x == 0:
		return "0 " + unit
	}
	neg := x < 0
	if neg {
		x = -x
	}
	prefixes := []struct {
		exp float64
		sym string
	}{
		{-18, "a"}, {-15, "f"}, {-12, "p"}, {-9, "n"}, {-6, "µ"}, {-3, "m"},
		{0, ""}, {3, "k"}, {6, "M"}, {9, "G"}, {12, "T"},
	}
	e := math.Floor(math.Log10(x))
	k := math.Floor(e/3) * 3
	if k < prefixes[0].exp {
		k = prefixes[0].exp
	}
	if k > prefixes[len(prefixes)-1].exp {
		k = prefixes[len(prefixes)-1].exp
	}
	mant := x / math.Pow(10, k)
	// %.3g rounding can carry 999.6 → 1000; roll over to the next prefix.
	if mant >= 999.5 && k < prefixes[len(prefixes)-1].exp {
		mant /= 1000
		k += 3
	}
	sym := ""
	for _, p := range prefixes {
		if p.exp == k {
			sym = p.sym
		}
	}
	s := fmt.Sprintf("%.3g %s%s", mant, sym, unit)
	if neg {
		s = "-" + s
	}
	return s
}

// Sci formats x in scientific notation with 3 significant digits, matching
// the paper's table style (e.g. "1.23e-12").
func Sci(x float64) string {
	if x == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", x)
}

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if s, ok := c.(string); ok {
			row[i] = s
		} else {
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(widths))
	for i, n := range widths {
		sep[i] = strings.Repeat("-", n)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, n int) string {
	if d := n - len([]rune(s)); d > 0 {
		return s + strings.Repeat(" ", d)
	}
	return s
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = t.Render(&sb)
	return sb.String()
}

// RenderMarkdown writes the table as GitHub-flavored Markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting: callers pass plain cells).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
