package report

import (
	"math"
	"strings"
	"testing"
)

func TestEng(t *testing.T) {
	cases := []struct {
		x    float64
		unit string
		want string
	}{
		{1.23e-12, "J", "1.23 pJ"},
		{4.56e-9, "s", "4.56 ns"},
		{0.5, "V", "500 mV"},
		{2.0, "V", "2 V"},
		{3.3e3, "Hz", "3.3 kHz"},
		{3e8, "Hz", "300 MHz"},
		{0, "J", "0 J"},
		{-1.5e-6, "A", "-1.5 µA"},
		{1e-20, "J", "0.01 aJ"},
		{0.99999, "V", "1 V"}, // rounding must roll over the prefix
		{999.7e-15, "J", "1 pJ"},
	}
	for _, c := range cases {
		if got := Eng(c.x, c.unit); got != c.want {
			t.Errorf("Eng(%v,%q) = %q, want %q", c.x, c.unit, got, c.want)
		}
	}
	if got := Eng(math.Inf(1), "J"); got != "+Inf" {
		t.Errorf("Eng(+Inf) = %q", got)
	}
	if got := Eng(math.NaN(), "J"); got != "NaN" {
		t.Errorf("Eng(NaN) = %q", got)
	}
}

func TestSci(t *testing.T) {
	if got := Sci(1.234e-12); got != "1.23e-12" {
		t.Errorf("Sci = %q", got)
	}
	if got := Sci(0); got != "0" {
		t.Errorf("Sci(0) = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"name", "value"}}
	tb.AddRow("a", 1)
	tb.AddRow("longer", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset in each row.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Errorf("column misaligned: %d vs %d\n%s", got, idx, out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "M", Headers: []string{"a", "b"}}
	tb.AddRow("x", "y")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### M", "| a | b |", "| --- | --- |", "| x | y |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("csv = %q", sb.String())
	}
}
