package report

import (
	"math"
	"strings"
	"testing"
)

func TestAsciiPlotBasic(t *testing.T) {
	s := []Series{{
		Name: "savings",
		X:    []float64{0, 10, 20, 30},
		Y:    []float64{10.3, 8.7, 7.0, 5.7},
	}}
	out := AsciiPlot("fig", s, 40, 10)
	if !strings.Contains(out, "fig") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "10.3") || !strings.Contains(out, "5.7") {
		t.Errorf("missing y-axis labels:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "30") {
		t.Errorf("missing x-axis labels:\n%s", out)
	}
	if strings.Count(out, "*") != 5 { // 4 data points + the legend glyph
		t.Errorf("expected 4 markers plus legend:\n%s", out)
	}
	if !strings.Contains(out, "* = savings") {
		t.Errorf("missing legend:\n%s", out)
	}
}

func TestAsciiPlotMonotoneSeriesDescends(t *testing.T) {
	// A decreasing series must place later points on lower rows.
	s := []Series{{X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}}}
	out := AsciiPlot("", s, 30, 9)
	lines := strings.Split(out, "\n")
	var rows []int
	for r, line := range lines {
		if strings.Contains(line, "*") {
			for range line[strings.Index(line, "*"):] {
				// one row may hold one point here; record the row once per *
			}
			count := strings.Count(line, "*")
			for i := 0; i < count; i++ {
				rows = append(rows, r)
			}
		}
	}
	if len(rows) != 3 {
		t.Fatalf("markers = %d:\n%s", len(rows), out)
	}
}

func TestAsciiPlotTwoSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}, Marker: 'a'},
		{Name: "b", X: []float64{0, 1}, Y: []float64{2, 1}, Marker: 'b'},
	}
	out := AsciiPlot("two", s, 20, 8)
	if !strings.Contains(out, "a = a") || !strings.Contains(out, "b = b") {
		t.Errorf("legend broken:\n%s", out)
	}
	if strings.Count(out, "a") < 2 || strings.Count(out, "b") < 2 {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	if out := AsciiPlot("t", nil, 20, 8); !strings.Contains(out, "no finite data") {
		t.Errorf("empty plot = %q", out)
	}
	s := []Series{{X: []float64{1}, Y: []float64{math.Inf(1)}}}
	if out := AsciiPlot("t", s, 20, 8); !strings.Contains(out, "no finite data") {
		t.Errorf("inf plot = %q", out)
	}
	// Single finite point must not divide by zero.
	s = []Series{{X: []float64{1}, Y: []float64{5}}}
	out := AsciiPlot("t", s, 20, 8)
	if !strings.Contains(out, "*") {
		t.Errorf("single point missing:\n%s", out)
	}
}

func TestHeatmapBasic(t *testing.T) {
	grid := [][]float64{
		{1, 2, 3},
		{4, math.Inf(1), 6},
		{7, 8, 9},
	}
	out := Heatmap("hm", grid, "x", "y")
	if !strings.Contains(out, "hm") || !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Errorf("minimum glyph missing:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("infeasible glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "1 (best)") {
		t.Errorf("legend missing min value:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	rowLen := -1
	for _, l := range lines {
		if strings.HasPrefix(l, "  |") {
			if rowLen == -1 {
				rowLen = len(l)
			} else if len(l) != rowLen {
				t.Errorf("ragged rows:\n%s", out)
			}
		}
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if out := Heatmap("t", nil, "", ""); !strings.Contains(out, "no finite data") {
		t.Errorf("empty heatmap = %q", out)
	}
	if out := Heatmap("t", [][]float64{{math.Inf(1)}}, "", ""); !strings.Contains(out, "no finite data") {
		t.Errorf("all-inf heatmap = %q", out)
	}
	// Constant grid must not divide by zero.
	out := Heatmap("t", [][]float64{{5, 5}}, "", "")
	if !strings.Contains(out, "@") {
		t.Errorf("constant grid:\n%s", out)
	}
}
