package delay

import (
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/netgen"
)

func TestInverterRiseFallSymmetric(t *testing.T) {
	// With β = µ_n/µ_p = 2, an inverter's rise and fall match, and both
	// equal the symmetric model's delay.
	c, ev := fixture(t)
	h := c.GateByName("h") // NOT
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	r, f := ev.GateDelayRiseFall(h.ID, a, 0)
	if math.Abs(r-f)/f > 1e-9 {
		t.Errorf("inverter rise %v != fall %v", r, f)
	}
	sym := ev.GateDelayWith(h.ID, a, 0)
	if math.Abs(r-sym)/sym > 1e-9 {
		t.Errorf("inverter asymmetric %v != symmetric %v", r, sym)
	}
}

func TestNandAsymmetry(t *testing.T) {
	// A 3-input NAND falls through a 3-deep NMOS stack (slow) and rises
	// through parallel PMOS (fast).
	b := circuit.NewBuilder("n3")
	i1, i2, i3 := b.Input("a"), b.Input("b"), b.Input("c")
	g := b.Gate(circuit.Nand, "g", i1, i2, i3)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	r, f := ev.GateDelayRiseFall(c.GateByName("g").ID, a, 0)
	if f <= r {
		t.Errorf("NAND3 fall %v should be slower than rise %v", f, r)
	}
	if f < 2*r {
		t.Errorf("3-deep stack should cost ~3x: fall %v vs rise %v", f, r)
	}
}

func TestNorAsymmetryMirrors(t *testing.T) {
	b := circuit.NewBuilder("nor3")
	i1, i2, i3 := b.Input("a"), b.Input("b"), b.Input("c")
	g := b.Gate(circuit.Nor, "g", i1, i2, i3)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	r, f := ev.GateDelayRiseFall(c.GateByName("g").ID, a, 0)
	if r <= f {
		t.Errorf("NOR3 rise %v should be slower than fall %v (series PMOS)", r, f)
	}
}

func TestRiseFallSTAAtLeastSymmetric(t *testing.T) {
	// The dual-rail analysis resolves stack asymmetry the symmetric model
	// averages; its critical delay must be at least comparable and is
	// usually larger on stack-heavy circuits.
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	sym := ev.CriticalDelay(a)
	asym := ev.CriticalDelayRiseFall(a)
	if asym < sym*0.9 {
		t.Errorf("rise/fall critical delay %v implausibly below symmetric %v", asym, sym)
	}
	t.Logf("symmetric %.3e s vs rise/fall-resolved %.3e s (ratio %.2f)", sym, asym, asym/sym)
}

func TestRiseFallInfeasibleGuard(t *testing.T) {
	b := circuit.NewBuilder("wide")
	ins := make([]int, 4)
	for i := range ins {
		ins[i] = b.Input("i" + string(rune('a'+i)))
	}
	g := b.Gate(circuit.Nand, "g", ins...)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 0.02, 0.4, 2)
	r, f := ev.GateDelayRiseFall(c.GateByName("g").ID, a, 0)
	if !math.IsInf(f, 1) {
		t.Errorf("unswitchable stack should give +Inf fall, got %v (rise %v)", f, r)
	}
}
