package delay

import (
	"math"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
)

// Rise/fall-resolved delay analysis. The paper's Appendix A assumes "simple
// multi-input gates with symmetric series or parallel pull-up and pull-down
// MOSFET configurations" and uses one worst-case delay per gate. This mode
// resolves the asymmetry the symmetric model averages away:
//
//   - a falling output discharges through the NMOS network: series for
//     NAND/AND (drive divided by the stack depth), parallel for NOR/OR;
//   - a rising output charges through the PMOS network: parallel for
//     NAND/AND, series for NOR/OR — with PMOS devices β× wider but carrying
//     the hole-mobility handicap µ_n/µ_p.
//
// With β = µ_n/µ_p (the classic sizing rule, and the default technology's
// choice) an inverter is symmetric and the analyses agree; multi-input
// gates are not, and the rise/fall-resolved critical delay is the honest
// worst case.

// muRatio is the electron/hole mobility ratio penalizing PMOS drive.
const muRatio = 2.0 //cmosvet:unit 1

// driveFactors returns the effective per-unit-width drive multipliers of the
// pull-down (fall) and pull-up (rise) networks relative to a single NMOS.
//
//cmosvet:unit beta 1
//cmosvet:unit return1 1
//cmosvet:unit return2 1
func driveFactors(t circuit.GateType, fii int, beta float64) (fall, rise float64) {
	pmosUnit := beta / muRatio // β-wide PMOS with the mobility handicap
	switch t {
	case circuit.Nand, circuit.And:
		return 1 / float64(fii), pmosUnit // series NMOS, parallel PMOS
	case circuit.Nor, circuit.Or:
		return 1, pmosUnit / float64(fii) // parallel NMOS, series PMOS
	case circuit.Xor, circuit.Xnor:
		return 1 / 2.0, pmosUnit / 2 // two-high stacks both sides
	default: // Not, Buf
		return 1, pmosUnit
	}
}

// GateDelayRiseFall returns the rise and fall delays of a logic gate under
// the same load and slope model as GateDelayWith, resolved per transition
// direction. Input gates return zeros.
//
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return1 s
//cmosvet:unit return2 s
func (e *Evaluator) GateDelayRiseFall(id int, a *design.Assignment, maxFaninDelay float64) (rise, fall float64) {
	g := e.C.Gate(id)
	if !g.IsLogic() {
		return 0, 0
	}
	w := a.W[id]
	vts := a.Vts[id]
	vdd := a.VddAt(id)
	t := e.Tech

	idw := t.IdUnit(vdd, vts)
	ioff := t.IoffUnit(vts)
	fii := g.NumFanin()
	fFall, fRise := driveFactors(g.Type, fii, t.Beta)

	// Shared components: slope inheritance, load, interconnect.
	slope := e.SlopeCoeff(vdd, vts) * maxFaninDelay
	load := w * t.CPD
	cb := e.Wire.BranchCapNet(id)
	for _, f := range g.Fanout {
		load += a.W[f]*t.Ct + cb
	}
	if e.isPO[id] {
		load += t.COut + cb
	}
	rb := e.Wire.BranchResNet(id)
	fl := e.Wire.FlightTimeNet(id)
	inter := 0.0
	for _, f := range g.Fanout {
		if b := rb*(a.W[f]*t.Ct+cb) + fl; b > inter {
			inter = b
		}
	}
	if e.isPO[id] {
		if b := rb*(t.COut+cb) + fl; b > inter {
			inter = b
		}
	}
	stack := 0.0
	if fii > 1 {
		stack = float64(fii-1) * t.Cmi * vdd / (2 * w * idw)
	}

	dir := func(factor float64) float64 {
		drive := idw*factor - float64(fii)*ioff
		if drive <= 0 {
			return math.Inf(1)
		}
		return slope + vdd*load/(2*w*drive) + inter + stack
	}
	return dir(fRise), dir(fFall)
}

// CriticalDelayRiseFall runs dual-rail STA: rising and falling arrival times
// propagate separately (an inverting gate's output rise is caused by its
// slowest input fall, and vice versa). It returns the worst output arrival —
// the honest critical delay under asymmetric networks — which is never
// smaller than the symmetric analysis up to the drive-factor model.
//
//cmosvet:unit return s
func (e *Evaluator) CriticalDelayRiseFall(a *design.Assignment) float64 {
	n := e.C.N()
	arrR := make([]float64, n) // arrival of a rising edge at the output
	arrF := make([]float64, n)
	tdR := make([]float64, n)
	tdF := make([]float64, n)
	for _, id := range e.order {
		g := e.C.Gate(id)
		if !g.IsLogic() {
			continue
		}
		maxIn := 0.0
		inR, inF := 0.0, 0.0
		for _, f := range g.Fanin {
			if d := math.Max(tdR[f], tdF[f]); d > maxIn {
				maxIn = d
			}
			if arrR[f] > inR {
				inR = arrR[f]
			}
			if arrF[f] > inF {
				inF = arrF[f]
			}
		}
		r, fl := e.GateDelayRiseFall(id, a, maxIn)
		tdR[id], tdF[id] = r, fl
		if g.Type.Inverting() {
			arrR[id] = inF + r // falling inputs cause the rising output
			arrF[id] = inR + fl
		} else {
			arrR[id] = inR + r
			arrF[id] = inF + fl
		}
	}
	worst := 0.0
	for _, id := range e.C.POs {
		if v := math.Max(arrR[id], arrF[id]); v > worst {
			worst = v
		}
	}
	return worst
}
