package delay

import (
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/spice"
	"cmosopt/internal/wiring"
)

// TestAnalyticDelayTracksTransient plays the paper's HSPICE validation role:
// the Appendix A.2 switching-delay expression must track a numerical
// transient of the same gate across the optimizer's whole operating range,
// from full supply down into subthreshold.
func TestAnalyticDelayTracksTransient(t *testing.T) {
	tech := device.Default350()
	wire, err := wiring.New(wiring.Default350(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Single inverter driving the module output.
	b := circuit.NewBuilder("inv")
	in := b.Input("in")
	g := b.Gate(circuit.Not, "g", in)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(c, &tech, wire)
	if err != nil {
		t.Fatal(err)
	}

	const w = 2.0
	points := []struct{ vdd, vts float64 }{
		{3.3, 0.7}, {2.0, 0.5}, {1.0, 0.2}, {0.6, 0.15}, {0.35, 0.3},
	}
	for _, pt := range points {
		a := design.Uniform(c.N(), pt.vdd, pt.vts, w)
		// Analytic model, isolated to its switching component: subtract the
		// interconnect terms by comparing against a transient with the same
		// total load (own parasitic + module load + one wire branch).
		analytic := ev.GateDelayWith(g, a, 0)
		cl := w*tech.CPD + tech.COut + wire.BranchCap()
		sim := &spice.GateSim{Tech: &tech, W: w, CL: cl, Vdd: pt.vdd, Vts: pt.vts, Fanin: 1}
		tr, err := sim.FallDelay()
		if err != nil {
			t.Fatalf("(%v,%v): %v", pt.vdd, pt.vts, err)
		}
		ratio := analytic / tr
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("(%v,%v): analytic %v vs transient %v (ratio %v)", pt.vdd, pt.vts, analytic, tr, ratio)
		}
	}
}

// TestAnalyticDelayOrderingMatchesTransient checks that the two models agree
// on *ordering*: if the analytic model says point A is faster than point B,
// the transient must too — the property the optimizer's comparisons rely on.
func TestAnalyticDelayOrderingMatchesTransient(t *testing.T) {
	tech := device.Default350()
	wire, err := wiring.New(wiring.Default350(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := circuit.NewBuilder("inv")
	in := b.Input("in")
	g := b.Gate(circuit.Not, "g", in)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(c, &tech, wire)
	if err != nil {
		t.Fatal(err)
	}

	type point struct{ vdd, vts, w float64 }
	pts := []point{
		{3.3, 0.7, 2}, {2.0, 0.3, 2}, {1.0, 0.15, 2}, {1.0, 0.15, 8},
		{0.7, 0.2, 4}, {0.5, 0.25, 4},
	}
	analytic := make([]float64, len(pts))
	transient := make([]float64, len(pts))
	for i, pt := range pts {
		a := design.Uniform(c.N(), pt.vdd, pt.vts, pt.w)
		analytic[i] = ev.GateDelayWith(g, a, 0)
		cl := pt.w*tech.CPD + tech.COut + wire.BranchCap()
		sim := &spice.GateSim{Tech: &tech, W: pt.w, CL: cl, Vdd: pt.vdd, Vts: pt.vts, Fanin: 1}
		tr, err := sim.FallDelay()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		transient[i] = tr
	}
	for i := range pts {
		for j := range pts {
			// Require agreement only on clear (>20 %) analytic separations.
			if analytic[i] < analytic[j]*0.8 && transient[i] >= transient[j] {
				t.Errorf("ordering disagreement: analytic %v<%v but transient %v>=%v (points %d,%d)",
					analytic[i], analytic[j], transient[i], transient[j], i, j)
			}
		}
	}
}
