package delay

import (
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

func fixture(t *testing.T) (*circuit.Circuit, *Evaluator) {
	t.Helper()
	b := circuit.NewBuilder("fx")
	i1, i2 := b.Input("a"), b.Input("b")
	g := b.Gate(circuit.Nand, "g", i1, i2)
	h := b.Gate(circuit.Not, "h", g)
	b.Output(h)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, evalFor(t, c)
}

func evalFor(t *testing.T, c *circuit.Circuit) *Evaluator {
	t.Helper()
	tech := device.Default350()
	wire, err := wiring.New(wiring.Default350(), max(c.NumLogic(), 1))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(c, &tech, wire)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestNewRejects(t *testing.T) {
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	tech := device.Default350()
	wire, _ := wiring.New(wiring.Default350(), 10)
	if _, err := New(seq, &tech, wire); err == nil {
		t.Error("sequential circuit accepted")
	}
	bad := tech
	bad.KSat = -1
	c, _ := circuit.ParseBenchString("ok", "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
	if _, err := New(c, &bad, wire); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestInputsZeroDelay(t *testing.T) {
	c, ev := fixture(t)
	td := ev.Delays(design.Uniform(c.N(), 3.3, 0.7, 2))
	for _, id := range c.PIs {
		if td[id] != 0 {
			t.Errorf("input %d delay %v", id, td[id])
		}
	}
}

func TestRealisticInverterDelay(t *testing.T) {
	// Nominal 0.35 µm operating point: gate delays tens to hundreds of ps.
	c, ev := fixture(t)
	td := ev.Delays(design.Uniform(c.N(), 3.3, 0.7, 2))
	h := c.GateByName("h")
	if td[h.ID] < 1e-12 || td[h.ID] > 1e-9 {
		t.Errorf("inverter delay %v s implausible", td[h.ID])
	}
}

func TestDelayDecreasesWithWidth(t *testing.T) {
	c, ev := fixture(t)
	g := c.GateByName("g")
	prev := math.Inf(1)
	for _, w := range []float64{1, 2, 4, 8, 16, 32} {
		a := design.Uniform(c.N(), 1.0, 0.3, w)
		td := ev.GateDelayWith(g.ID, a, 0)
		if td >= prev {
			t.Fatalf("delay not decreasing at w=%v: %v >= %v", w, td, prev)
		}
		prev = td
	}
}

func TestDelayMonotoneInVddAndVts(t *testing.T) {
	c, ev := fixture(t)
	g := c.GateByName("g")
	at := func(vdd, vts float64) float64 {
		return ev.GateDelayWith(g.ID, design.Uniform(c.N(), vdd, vts, 2), 0)
	}
	if !(at(1.0, 0.3) < at(0.7, 0.3)) {
		t.Error("higher Vdd should be faster")
	}
	if !(at(1.0, 0.2) < at(1.0, 0.4)) {
		t.Error("lower Vts should be faster")
	}
}

func TestSubthresholdOperationFiniteButSlow(t *testing.T) {
	c, ev := fixture(t)
	g := c.GateByName("g")
	super := ev.GateDelayWith(g.ID, design.Uniform(c.N(), 1.0, 0.3, 2), 0)
	sub := ev.GateDelayWith(g.ID, design.Uniform(c.N(), 0.25, 0.45, 2), 0)
	if math.IsInf(sub, 1) {
		t.Fatal("subthreshold point should still switch")
	}
	if sub < 100*super {
		t.Errorf("subthreshold delay %v should be orders above superthreshold %v", sub, super)
	}
}

func TestInfeasiblePointReturnsInf(t *testing.T) {
	// Drive so low that the off current of the fanin stacks wins: Vdd of a
	// few tens of mV with multi-input gates (below the tech's legal range, so
	// call the model directly).
	b := circuit.NewBuilder("wide")
	ins := make([]int, 4)
	for i := range ins {
		ins[i] = b.Input("i" + string(rune('a'+i)))
	}
	g := b.Gate(circuit.Nand, "g", ins...)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 0.02, 0.4, 2)
	if td := ev.GateDelayWith(c.GateByName("g").ID, a, 0); !math.IsInf(td, 1) {
		t.Errorf("expected +Inf at unswitchable point, got %v", td)
	}
}

func TestSlopeCoeff(t *testing.T) {
	_, ev := fixture(t)
	// Higher Vts/Vdd ratio -> larger coefficient.
	if !(ev.SlopeCoeff(1.0, 0.2) < ev.SlopeCoeff(1.0, 0.6)) {
		t.Error("slope coefficient should grow with Vts")
	}
	// Clamp: Vts >> Vdd could push above 1; never exceeds it.
	if k := ev.SlopeCoeff(0.1, 3.0); k > 1 {
		t.Errorf("slope coeff %v > 1", k)
	}
	if k := ev.SlopeCoeff(1.0, 0.0); k < 0 {
		t.Errorf("slope coeff %v < 0", k)
	}
	// Exact value check at a nominal point.
	tech := device.Default350()
	want := 0.5 - (1-0.7/3.3)/(1+tech.Alpha)
	if got := ev.SlopeCoeff(3.3, 0.7); math.Abs(got-want) > 1e-12 {
		t.Errorf("SlopeCoeff(3.3,0.7) = %v, want %v", got, want)
	}
}

func TestSlopePropagation(t *testing.T) {
	// A gate fed by a slow driver must be slower than one fed by inputs.
	c, ev := fixture(t)
	h := c.GateByName("h")
	a := design.Uniform(c.N(), 1.0, 0.3, 2)
	fast := ev.GateDelayWith(h.ID, a, 0)
	slow := ev.GateDelayWith(h.ID, a, 1e-9)
	if slow <= fast {
		t.Errorf("fanin delay ignored: %v <= %v", slow, fast)
	}
}

func TestArrivalsChainSum(t *testing.T) {
	// Inverter chain: critical delay equals the sum of gate delays.
	b := circuit.NewBuilder("chain")
	prev := b.Input("in")
	var gates []int
	for i := 0; i < 5; i++ {
		prev = b.Gate(circuit.Not, "g"+string(rune('0'+i)), prev)
		gates = append(gates, prev)
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.3, 2)
	arr, td := ev.Arrivals(a)
	sum := 0.0
	for _, id := range gates {
		sum += td[id]
	}
	last := gates[len(gates)-1]
	if math.Abs(arr[last]-sum)/sum > 1e-12 {
		t.Errorf("arrival %v != delay sum %v", arr[last], sum)
	}
	if cd := ev.CriticalDelay(a); math.Abs(cd-sum)/sum > 1e-12 {
		t.Errorf("critical delay %v != %v", cd, sum)
	}
}

func TestArrivalsMonotoneAlongEdges(t *testing.T) {
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.25, 2)
	arr, _ := ev.Arrivals(a)
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if arr[f] > arr[i] {
				t.Fatalf("arrival decreases along edge %d->%d", f, i)
			}
		}
	}
}

func TestCriticalPathConsistent(t *testing.T) {
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.25, 2)
	path, cd := ev.CriticalPath(a)
	if len(path) < 2 {
		t.Fatalf("degenerate path %v", path)
	}
	if got := ev.CriticalDelay(a); math.Abs(got-cd) > 1e-18 {
		t.Errorf("path delay %v != critical delay %v", cd, got)
	}
	// Path must follow fanin edges.
	for i := 1; i < len(path); i++ {
		ok := false
		for _, f := range c.Gates[path[i]].Fanin {
			if f == path[i-1] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("path step %d->%d is not an edge", path[i-1], path[i])
		}
	}
	// Path starts at an input and ends at a PO.
	if c.Gates[path[0]].Type != circuit.Input {
		t.Error("path does not start at an input")
	}
	last := path[len(path)-1]
	found := false
	for _, po := range c.POs {
		if po == last {
			found = true
		}
	}
	if !found {
		t.Error("path does not end at a PO")
	}
}

func TestSlacks(t *testing.T) {
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.25, 2)
	cd := ev.CriticalDelay(a)
	T := cd * 1.2
	slack := ev.Slacks(a, T)
	minSlack := math.Inf(1)
	for i := range c.Gates {
		if !c.Gates[i].IsLogic() {
			continue
		}
		if slack[i] < minSlack {
			minSlack = slack[i]
		}
	}
	// Minimum slack equals T − critical delay.
	if math.Abs(minSlack-(T-cd)) > 1e-18 {
		t.Errorf("min slack %v, want %v", minSlack, T-cd)
	}
	// With T below the critical delay, some slack goes negative.
	slack = ev.Slacks(a, cd*0.8)
	neg := false
	for i := range c.Gates {
		if c.Gates[i].IsLogic() && slack[i] < 0 {
			neg = true
		}
	}
	if !neg {
		t.Error("expected negative slack below the critical delay")
	}
}

func TestSlacksChain(t *testing.T) {
	// On a pure chain every gate shares the single path: identical slacks.
	b := circuit.NewBuilder("chain")
	prev := b.Input("in")
	ids := []int{}
	for i := 0; i < 4; i++ {
		prev = b.Gate(circuit.Not, "g"+string(rune('0'+i)), prev)
		ids = append(ids, prev)
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	a := design.Uniform(c.N(), 1.0, 0.3, 2)
	T := ev.CriticalDelay(a) * 1.5
	slack := ev.Slacks(a, T)
	for _, id := range ids[1:] {
		if math.Abs(slack[id]-slack[ids[0]]) > 1e-18 {
			t.Errorf("chain slacks differ: %v vs %v", slack[id], slack[ids[0]])
		}
	}
}

func TestMeetsBudgets(t *testing.T) {
	c, ev := fixture(t)
	a := design.Uniform(c.N(), 1.0, 0.3, 2)
	td := ev.Delays(a)
	loose := make([]float64, c.N())
	tight := make([]float64, c.N())
	for i := range loose {
		loose[i] = td[i] * 2
		tight[i] = td[i] * 0.5
	}
	if !ev.MeetsBudgets(a, loose) {
		t.Error("loose budgets should pass")
	}
	if ev.MeetsBudgets(a, tight) {
		t.Error("tight budgets should fail")
	}
}

func TestWiderFanoutLoadsDriver(t *testing.T) {
	// Widening a fanout gate must slow its driver.
	c, ev := fixture(t)
	g := c.GateByName("g")
	h := c.GateByName("h")
	a1 := design.Uniform(c.N(), 1.0, 0.3, 2)
	a2 := a1.Clone()
	a2.W[h.ID] = 50
	if ev.GateDelayWith(g.ID, a1, 0) >= ev.GateDelayWith(g.ID, a2, 0) {
		t.Error("driver delay should grow with fanout width")
	}
}
