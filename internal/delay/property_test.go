package delay

import (
	"math"
	"testing"
	"testing/quick"

	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
)

func mapIn(raw, lo, hi float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		raw = 0.5
	}
	frac := math.Mod(math.Abs(raw), 1)
	return lo + frac*(hi-lo)
}

func TestDelaysNonNegativeProperty(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "p", Gates: 50, Depth: 6, PIs: 5, POs: 4}, 13)
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	tech := device.Default350()
	f := func(vddR, vtsR, wR float64) bool {
		a := design.Uniform(c.N(),
			mapIn(vddR, tech.VddMin, tech.VddMax),
			mapIn(vtsR, tech.VtsMin, tech.VtsMax),
			mapIn(wR, tech.WMin, tech.WMax))
		td := ev.Delays(a)
		for i := range c.Gates {
			if c.Gates[i].IsLogic() {
				if td[i] < 0 || math.IsNaN(td[i]) {
					return false
				}
			} else if td[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCriticalDelayMonotoneInVddProperty(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "p2", Gates: 40, Depth: 5, PIs: 4, POs: 3}, 19)
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	tech := device.Default350()
	f := func(v1R, v2R, vtsR, wR float64) bool {
		v1 := mapIn(v1R, tech.VddMin, tech.VddMax)
		v2 := mapIn(v2R, tech.VddMin, tech.VddMax)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		vts := mapIn(vtsR, tech.VtsMin, tech.VtsMax)
		w := mapIn(wR, tech.WMin, tech.WMax)
		hi := ev.CriticalDelay(design.Uniform(c.N(), v1, vts, w))
		lo := ev.CriticalDelay(design.Uniform(c.N(), v2, vts, w))
		if math.IsInf(hi, 1) {
			return true // unswitchable at the lower supply: vacuously ok
		}
		return lo <= hi*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCriticalDelayMonotoneInVtsProperty(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "p3", Gates: 40, Depth: 5, PIs: 4, POs: 3}, 23)
	if err != nil {
		t.Fatal(err)
	}
	ev := evalFor(t, c)
	tech := device.Default350()
	f := func(vddR, t1R, t2R, wR float64) bool {
		vdd := mapIn(vddR, tech.VddMin, tech.VddMax)
		t1 := mapIn(t1R, tech.VtsMin, tech.VtsMax)
		t2 := mapIn(t2R, tech.VtsMin, tech.VtsMax)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		w := mapIn(wR, tech.WMin, tech.WMax)
		fast := ev.CriticalDelay(design.Uniform(c.N(), vdd, t1, w))
		slow := ev.CriticalDelay(design.Uniform(c.N(), vdd, t2, w))
		if math.IsInf(slow, 1) {
			return true
		}
		return fast <= slow*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSlopeCoeffBoundedProperty(t *testing.T) {
	_, ev := fixture(t)
	f := func(vddR, vtsR float64) bool {
		k := ev.SlopeCoeff(mapIn(vddR, 0.05, 5), mapIn(vtsR, 0.01, 3))
		return k >= 0 && k <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
