// Package delay implements the paper's Appendix A.2 transregional gate-delay
// model and static timing analysis on top of it.
//
// The worst-case propagation delay of gate i is the sum of four components
// (Eq. A3):
//
//	t_di = [½ − (1 − V_TSi/V_dd)/(1+α)] · max_{j∈fanin} t_dij     input slope
//	     + V_dd·C_load / (2·[w_i·I_Dw − f_ii·w_i·I_off])          switching
//	     + max_{j∈fanout} [R_INT·(w_ij·C_t + C_INT) + L_INT/v]    interconnect
//	     + (f_ii−1)·C_mi·V_dd / (2·w_i·I_Dw)                      series stack
//
// where I_Dw is the transregional drain current per unit width at
// V_GS = V_dd. Because I_Dw is valid below threshold, the model admits
// subthreshold operating points (V_dd ≤ V_TS), the paper's route to very low
// supply voltages when timing is loose.
package delay

import (
	"fmt"
	"math"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/wiring"
)

// Evaluator computes gate delays and arrival times for one circuit.
type Evaluator struct {
	C    *circuit.Circuit
	Tech *device.Tech
	Wire *wiring.Model

	isPO  []bool
	order []int
}

// New builds a delay evaluator. The circuit must be combinational.
func New(c *circuit.Circuit, tech *device.Tech, wire *wiring.Model) (*Evaluator, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("delay: circuit %q is sequential; cut DFFs first", c.Name)
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	isPO := make([]bool, c.N())
	for _, id := range c.POs {
		isPO[id] = true
	}
	return &Evaluator{C: c, Tech: tech, Wire: wire, isPO: isPO, order: order}, nil
}

// SlopeCoeff returns the input-rise-time coefficient
// ½ − (1 − V_TS/V_dd)/(1+α), clamped to [0, 1].
//
//cmosvet:hotpath
//cmosvet:unit vdd V
//cmosvet:unit vts V
//cmosvet:unit return 1
func (e *Evaluator) SlopeCoeff(vdd, vts float64) float64 {
	k := 0.5 - (1-vts/vdd)/(1+e.Tech.Alpha)
	if k < 0 {
		return 0
	}
	if k > 1 {
		return 1
	}
	return k
}

// Coeffs bundles the per-(V_dd, V_TS) device quantities of the delay and
// energy models: they depend on the voltage pair only, not on the gate, so an
// evaluation engine can compute them once per operating point and reuse them
// across every gate call (see internal/eval). CoeffsAt is the sole producer.
type Coeffs struct {
	Slope float64 // input-slope coefficient ½ − (1 − V_TS/V_dd)/(1+α), clamped to [0,1] //cmosvet:unit 1
	Idw   float64 // transregional drive current I_Dw per unit width at V_GS = V_dd //cmosvet:unit A
	Ioff  float64 // off-state leakage I_off(V_TS) per unit width //cmosvet:unit A
}

// CoeffsAt computes the device coefficients of one (V_dd, V_TS) operating
// point — the three transcendental evaluations every gate-delay call needs.
//
//cmosvet:hotpath
//cmosvet:unit vdd V
//cmosvet:unit vts V
func (e *Evaluator) CoeffsAt(vdd, vts float64) Coeffs {
	return Coeffs{
		Slope: e.SlopeCoeff(vdd, vts),
		Idw:   e.Tech.IdUnit(vdd, vts),
		Ioff:  e.Tech.IoffUnit(vts),
	}
}

// GateDelayWith returns t_di for a logic gate given the largest gate delay
// among its drivers (the t_dij term). It returns +Inf when the operating
// point cannot switch the gate (leakage of the off stacks exceeds the drive
// current). Input gates have zero delay.
//
//cmosvet:hotpath
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Evaluator) GateDelayWith(id int, a *design.Assignment, maxFaninDelay float64) float64 {
	vdd := a.VddAt(id)
	return e.GateDelayAt(id, a, a.W[id], -1, 0, maxFaninDelay, e.CoeffsAt(vdd, a.Vts[id]))
}

// GateDelayAt is the width-override evaluation entry point: t_di of gate id
// computed with an explicit width w for the gate itself (which need not equal
// a.W[id]) and, when ov ≥ 0, width wOv substituted for gate ov wherever it
// loads this gate's output. The device coefficients k must come from CoeffsAt
// (or a cache of it) for this gate's (V_dd, V_TS) pair. Optimizers use this to
// probe "what if this width changed" without mutating the assignment.
//
//cmosvet:hotpath
//cmosvet:unit w 1
//cmosvet:unit wOv 1
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Evaluator) GateDelayAt(id int, a *design.Assignment, w float64, ov int, wOv, maxFaninDelay float64, k Coeffs) float64 {
	g := e.C.Gate(id)
	if !g.IsLogic() {
		return 0
	}
	// Per-gate supply in multi-Vdd designs. The gate drive uses its own
	// rail as the input swing; under the no-low-drives-high clustering rule
	// the true input swing is at least that, so this is (conservatively)
	// correct.
	vdd := a.VddAt(id)
	t := e.Tech

	fii := float64(g.NumFanin())

	drive := k.Idw - fii*k.Ioff
	if drive <= 0 || k.Idw <= 0 {
		return math.Inf(1)
	}

	// Slope component.
	td := k.Slope * maxFaninDelay

	// Switching component: total output load over net drive current. The
	// wire contribution is this gate's own net (per-net after SampleNets).
	load := w * t.CPD
	cb := e.Wire.BranchCapNet(id)
	for _, f := range g.Fanout {
		wf := a.W[f]
		if f == ov {
			wf = wOv
		}
		load += wf*t.Ct + cb
	}
	if e.isPO[id] {
		load += t.COut + cb
	}
	td += vdd * load / (2 * w * drive)

	// Interconnect component: worst fanout branch RC plus time of flight.
	rb := e.Wire.BranchResNet(id)
	fl := e.Wire.FlightTimeNet(id)
	worst := 0.0
	for _, f := range g.Fanout {
		wf := a.W[f]
		if f == ov {
			wf = wOv
		}
		if b := rb*(wf*t.Ct+cb) + fl; b > worst {
			worst = b
		}
	}
	if e.isPO[id] {
		if b := rb*(t.COut+cb) + fl; b > worst {
			worst = b
		}
	}
	td += worst

	// Series-stack component: charging f_ii−1 intermediate nodes.
	if fii > 1 {
		td += (fii - 1) * t.Cmi * vdd / (2 * w * k.Idw)
	}
	return td
}

// Delays returns the per-gate delay t_di for the whole network, computed in
// topological order so each gate sees its drivers' final delays.
//
//cmosvet:unit return s
func (e *Evaluator) Delays(a *design.Assignment) []float64 {
	td := make([]float64, e.C.N())
	for _, id := range e.order {
		g := e.C.Gate(id)
		if !g.IsLogic() {
			continue
		}
		maxIn := 0.0
		for _, f := range g.Fanin {
			if td[f] > maxIn {
				maxIn = td[f]
			}
		}
		td[id] = e.GateDelayWith(id, a, maxIn)
	}
	return td
}

// Arrivals returns per-gate worst arrival times and per-gate delays.
//
//cmosvet:unit return1 s
//cmosvet:unit return2 s
func (e *Evaluator) Arrivals(a *design.Assignment) (arr, td []float64) {
	td = e.Delays(a)
	arr = make([]float64, e.C.N())
	for _, id := range e.order {
		g := e.C.Gate(id)
		maxIn := 0.0
		for _, f := range g.Fanin {
			if arr[f] > maxIn {
				maxIn = arr[f]
			}
		}
		arr[id] = maxIn + td[id]
	}
	return arr, td
}

// CriticalDelay returns the worst path delay from any input to any primary
// output.
//
//cmosvet:unit return s
func (e *Evaluator) CriticalDelay(a *design.Assignment) float64 {
	arr, _ := e.Arrivals(a)
	worst := 0.0
	for _, id := range e.C.POs {
		if arr[id] > worst {
			worst = arr[id]
		}
	}
	return worst
}

// CriticalPath returns the gate IDs of a worst path (inputs included, in
// input-to-output order) and its delay.
//
//cmosvet:unit return2 s
func (e *Evaluator) CriticalPath(a *design.Assignment) ([]int, float64) {
	arr, _ := e.Arrivals(a)
	worstID, worst := -1, math.Inf(-1)
	for _, id := range e.C.POs {
		if arr[id] > worst {
			worst, worstID = arr[id], id
		}
	}
	if worstID < 0 {
		return nil, 0
	}
	var rev []int
	for id := worstID; ; {
		rev = append(rev, id)
		g := e.C.Gate(id)
		if len(g.Fanin) == 0 {
			break
		}
		next, best := g.Fanin[0], math.Inf(-1)
		for _, f := range g.Fanin {
			if arr[f] > best {
				best, next = arr[f], f
			}
		}
		id = next
	}
	// Reverse to input-to-output order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, worst
}

// Slacks runs a full required-time analysis against the cycle budget T:
// slack[i] = required[i] − arrival[i], where required times propagate
// backward from T at every primary output. Negative slack marks gates on
// violating paths; the minimum slack equals T − CriticalDelay.
//
//cmosvet:unit T s
//cmosvet:unit return s
func (e *Evaluator) Slacks(a *design.Assignment, T float64) []float64 {
	arr, td := e.Arrivals(a)
	req := make([]float64, e.C.N())
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, id := range e.C.POs {
		if T < req[id] {
			req[id] = T
		}
	}
	for i := len(e.order) - 1; i >= 0; i-- {
		id := e.order[i]
		g := e.C.Gate(id)
		for _, f := range g.Fanout {
			if r := req[f] - td[f]; r < req[id] {
				req[id] = r
			}
		}
	}
	slack := make([]float64, e.C.N())
	for i := range slack {
		slack[i] = req[i] - arr[i]
	}
	return slack
}

// MeetsBudgets reports whether every gate's delay is within its per-gate
// budget (+Inf budgets always pass; Input gates are skipped).
//
//cmosvet:unit budget s
func (e *Evaluator) MeetsBudgets(a *design.Assignment, budget []float64) bool {
	td := e.Delays(a)
	for i := range e.C.Gates {
		if !e.C.Gates[i].IsLogic() {
			continue
		}
		if td[i] > budget[i] {
			return false
		}
	}
	return true
}
