package sim

import (
	"math"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/eval"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

func setup(t *testing.T, c *circuit.Circuit) (*Simulator, *delay.Evaluator, *design.Assignment) {
	t.Helper()
	tech := device.Default350()
	wire, err := wiring.New(wiring.Default350(), max(c.NumLogic(), 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := eval.NewDelayOnly(c, &tech, wire)
	if err != nil {
		t.Fatal(err)
	}
	de := eng.DelayModel()
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	s, err := New(c, de, a)
	if err != nil {
		t.Fatal(err)
	}
	return s, de, a
}

func chain(t *testing.T, n int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("chain")
	prev := b.Input("in")
	for i := 0; i < n; i++ {
		prev = b.Gate(circuit.Not, "g"+string(rune('0'+i)), prev)
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejects(t *testing.T) {
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	tech := device.Default350()
	wire, _ := wiring.New(wiring.Default350(), 1)
	eng, err := eval.NewDelayOnly(chain(t, 1), &tech, wire)
	if err != nil {
		t.Fatal(err)
	}
	de := eng.DelayModel()
	if _, err := New(seq, de, design.Uniform(seq.N(), 1, 0.2, 2)); err == nil {
		t.Error("sequential circuit accepted")
	}
}

func TestEventPropagationMatchesSTA(t *testing.T) {
	// On an inverter chain every path is sensitized by any input edge: the
	// measured propagation equals the STA critical delay exactly.
	c := chain(t, 6)
	s, de, a := setup(t, c)
	s.Settle()
	sta := de.CriticalDelay(a)
	meas, err := s.PropagationDelay(c.PIs[0], !s.Value(c.PIs[0]), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meas-sta)/sta > 1e-9 {
		t.Errorf("measured %v vs STA %v", meas, sta)
	}
}

func TestMeasuredDelayNeverExceedsSTA(t *testing.T) {
	// On a random network, any single-input event settles within the STA
	// bound (STA is the max over all paths and input combinations).
	c, err := netgen.Generate(netgen.Config{Name: "r", Gates: 80, Depth: 8, PIs: 6, POs: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, de, a := setup(t, c)
	sta := de.CriticalDelay(a)
	for trial := 0; trial < 20; trial++ {
		s.Settle()
		in := c.PIs[trial%len(c.PIs)]
		meas, err := s.PropagationDelay(in, !s.Value(in), 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if meas > sta*(1+1e-9) {
			t.Fatalf("trial %d: measured %v exceeds STA bound %v", trial, meas, sta)
		}
	}
}

func TestGlitchVisibilityAndInertialFiltering(t *testing.T) {
	// Two reconvergent AND structures fed by a rising edge on `a`:
	//
	//	fast: yf = AND(a, NOT a)            — the (1,1) overlap lasts one
	//	      inverter delay, shorter than the AND's own delay: the pulse is
	//	      inertially filtered and yf never moves;
	//	slow: ys = AND(a, NOT(NOT(NOT a)))  — the overlap lasts three
	//	      inverter delays, longer than the AND delay: a real glitch (two
	//	      transitions) that zero-delay simulation would never show.
	b := circuit.NewBuilder("gl")
	a := b.Input("a")
	na := b.Gate(circuit.Not, "na", a)
	yf := b.Gate(circuit.And, "yf", a, na)
	n1 := b.Gate(circuit.Not, "n1", a)
	n2 := b.Gate(circuit.Not, "n2", n1)
	n3 := b.Gate(circuit.Not, "n3", n2)
	ys := b.Gate(circuit.And, "ys", a, n3)
	b.Output(yf)
	b.Output(ys)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := setup(t, c)
	s.Settle()
	if s.Value(yf) || s.Value(ys) {
		t.Fatal("AND(a, !a) structures should settle at 0")
	}
	if err := s.SetInput(c.PIs[0], true); err != nil {
		t.Fatal(err)
	}
	s.Run(1e-3)
	if s.Value(yf) || s.Value(ys) {
		t.Error("outputs must return to 0")
	}
	if got := s.Transitions(yf); got != 0 {
		t.Errorf("fast path transitions = %d, want 0 (inertially filtered)", got)
	}
	if got := s.Transitions(ys); got != 2 {
		t.Errorf("slow path transitions = %d, want 2 (visible glitch)", got)
	}
}

func TestTimedActivityAtLeastZeroDelay(t *testing.T) {
	// Glitching can only add transitions: the timed per-gate activity summed
	// over the network must be at least the zero-delay Monte-Carlo total
	// (same input process), and in reconvergent networks strictly larger.
	c, err := netgen.Generate(netgen.Config{Name: "act", Gates: 60, Depth: 6, PIs: 5, POs: 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := setup(t, c)
	in := make(map[int]activity.InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = activity.InputSpec{Prob: 0.5, Density: 0.3}
	}
	const cycles = 20000
	timed, err := s.RandomVectorStats(in, cycles, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := activity.MonteCarlo(c, in, cycles, 3)
	if err != nil {
		t.Fatal(err)
	}
	var timedTot, zeroTot float64
	for i := range c.Gates {
		if !c.Gates[i].IsLogic() {
			continue
		}
		timedTot += timed[i]
		zeroTot += mc.Density[i]
	}
	if timedTot < zeroTot*0.95 {
		t.Errorf("timed activity %v below zero-delay %v", timedTot, zeroTot)
	}
}

func TestSetInputErrors(t *testing.T) {
	c := chain(t, 2)
	s, _, _ := setup(t, c)
	if err := s.SetInput(c.GateByName("g0").ID, true); err == nil {
		t.Error("SetInput on a logic gate accepted")
	}
}

func TestRandomVectorStatsValidation(t *testing.T) {
	c := chain(t, 2)
	s, _, _ := setup(t, c)
	in := map[int]activity.InputSpec{c.PIs[0]: {Prob: 0.5, Density: 0.2}}
	if _, err := s.RandomVectorStats(in, 0, 1e-6, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := s.RandomVectorStats(in, 10, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := s.RandomVectorStats(nil, 10, 1e-6, 1); err == nil {
		t.Error("missing specs accepted")
	}
}

func TestPowerTrace(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "pt", Gates: 50, Depth: 6, PIs: 5, POs: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, _, a := setup(t, c)
	in := make(map[int]activity.InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = activity.InputSpec{Prob: 0.5, Density: 0.3}
	}
	// Switched energy per transition: ½·C·V² with a crude per-gate C.
	se := make([]float64, c.N())
	for i := range se {
		se[i] = 0.5 * 10e-15 * a.Vdd * a.Vdd
	}
	const cycles = 4000
	trace, p2a, err := s.PowerTrace(in, se, cycles, 8, 1e-8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != cycles*8 {
		t.Fatalf("trace length %d", len(trace))
	}
	var sum float64
	for _, p := range trace {
		if p < 0 {
			t.Fatal("negative power")
		}
		sum += p
	}
	if sum <= 0 {
		t.Fatal("no power recorded")
	}
	// Bursty event-driven switching must exceed its own average somewhere.
	if p2a <= 1 {
		t.Errorf("peak/avg = %v, want > 1", p2a)
	}
	// Cross-check the average against the transition counts: total energy
	// equals transitions x per-transition energy.
	var wantE float64
	for i := range c.Gates {
		wantE += float64(s.Transitions(i)) * se[i]
	}
	gotE := 0.0
	for _, p := range trace {
		gotE += p * (1e-8 / 8)
	}
	if wantE <= 0 || gotE/wantE < 0.95 || gotE/wantE > 1.05 {
		t.Errorf("trace energy %v vs transition energy %v", gotE, wantE)
	}
}

func TestPowerTraceValidation(t *testing.T) {
	c := chain(t, 2)
	s, _, _ := setup(t, c)
	in := map[int]activity.InputSpec{c.PIs[0]: {Prob: 0.5, Density: 0.2}}
	se := make([]float64, c.N())
	if _, _, err := s.PowerTrace(in, se, 0, 8, 1e-8, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, _, err := s.PowerTrace(in, se, 10, 8, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, _, err := s.PowerTrace(in, se[:1], 10, 8, 1e-8, 1); err == nil {
		t.Error("mismatched energies accepted")
	}
	if _, _, err := s.PowerTrace(nil, se, 10, 8, 1e-8, 1); err == nil {
		t.Error("missing specs accepted")
	}
}
