// Package sim is an event-driven gate-level timing simulator. It closes two
// validation loops the analytic stack leaves open:
//
//   - timing: the worst input-to-output propagation measured on actual input
//     events must never exceed — and for sensitizable paths should approach —
//     the static timing analysis bound from the delay model;
//   - activity: Najm's transition density (the paper's §4.1 machinery) is
//     defined over *timed* switching including glitches; the simulator counts
//     real transitions under a delay model, exposing the glitch power that
//     zero-delay analysis misses.
//
// Gates switch with the per-gate delays of a design.Assignment as evaluated
// by the delay model (inertial delay: a scheduled output change is cancelled
// when the gate re-evaluates to its present value before the change lands).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/design"
)

// Simulator drives one circuit with per-gate delays fixed at construction.
type Simulator struct {
	c     *circuit.Circuit
	td    []float64 // per-gate propagation delay (s)
	order []int

	val     []bool
	pending []int // per gate: index of the youngest scheduled event, -1 if none

	queue  eventHeap
	now    float64
	trans  []int64 // transitions observed per gate
	nextID int
}

type event struct {
	t    float64
	id   int // event identity for inertial cancellation
	gate int
	val  bool
}

// New builds a simulator over the circuit with the delays that the given
// assignment produces under the delay evaluator. All nodes start at logic 0
// with no scheduled events; use Settle after setting initial inputs.
func New(c *circuit.Circuit, de *delay.Evaluator, a *design.Assignment) (*Simulator, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("sim: circuit %q is sequential; cut DFFs first", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	td := de.Delays(a)
	for i, d := range td {
		if c.Gates[i].IsLogic() && !(d > 0) {
			return nil, fmt.Errorf("sim: gate %q has non-positive delay %v", c.Gates[i].Name, d)
		}
	}
	s := &Simulator{
		c:       c,
		td:      td,
		order:   order,
		val:     make([]bool, c.N()),
		pending: make([]int, c.N()),
		trans:   make([]int64, c.N()),
	}
	for i := range s.pending {
		s.pending[i] = -1
	}
	return s, nil
}

// SetInput applies a value to a primary input at the current time; fanout
// gates re-evaluate and schedule.
func (s *Simulator) SetInput(id int, v bool) error {
	g := s.c.Gate(id)
	if g.Type != circuit.Input {
		return fmt.Errorf("sim: gate %q is not an input", g.Name)
	}
	if s.val[id] == v {
		return nil
	}
	s.val[id] = v
	s.trans[id]++
	for _, f := range g.Fanout {
		s.evaluate(f)
	}
	return nil
}

// evaluate recomputes a gate and schedules (or inertially cancels) its
// output event.
func (s *Simulator) evaluate(id int) {
	g := s.c.Gate(id)
	newV := activity.EvalGate(g.Type, g.Fanin, s.val)
	// Inertial behavior: the youngest pending event defines the value the
	// output is headed to; if we now re-evaluate to that same target, keep
	// it. If the target changes, supersede the pending event.
	target := s.val[id]
	if p := s.pending[id]; p >= 0 {
		target = s.queue.evs[s.indexOf(p)].val
	}
	if newV == target {
		return
	}
	if newV == s.val[id] && s.pending[id] >= 0 {
		// The glitch resolved before the output moved: cancel.
		s.cancel(id)
		return
	}
	s.schedule(id, newV)
}

func (s *Simulator) indexOf(eventID int) int {
	if i, ok := s.queue.pos[eventID]; ok {
		return i
	}
	return -1
}

func (s *Simulator) cancel(id int) {
	if idx := s.indexOf(s.pending[id]); idx >= 0 {
		heap.Remove(&s.queue, idx)
	}
	s.pending[id] = -1
}

func (s *Simulator) schedule(gate int, v bool) {
	if s.pending[gate] >= 0 {
		s.cancel(gate)
	}
	ev := event{t: s.now + s.td[gate], id: s.nextID, gate: gate, val: v}
	s.nextID++
	heap.Push(&s.queue, ev)
	s.pending[gate] = ev.id
}

// Run processes events until the queue drains or the horizon passes,
// returning the time of the last processed event (or the start time when
// nothing fired).
func (s *Simulator) Run(horizon float64) float64 {
	last := s.now
	for s.queue.Len() > 0 {
		ev := s.queue.evs[0]
		if ev.t > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.t
		if s.pending[ev.gate] == ev.id {
			s.pending[ev.gate] = -1
		}
		if s.val[ev.gate] == ev.val {
			continue
		}
		s.val[ev.gate] = ev.val
		s.trans[ev.gate]++
		last = ev.t
		for _, f := range s.c.Gate(ev.gate).Fanout {
			s.evaluate(f)
		}
	}
	s.now = last
	return last
}

// Settle zero-delay-initializes the network to be consistent with the
// current input values without counting transitions or consuming time.
func (s *Simulator) Settle() {
	for _, id := range s.order {
		g := s.c.Gate(id)
		if g.Type == circuit.Input {
			continue
		}
		s.val[id] = activity.EvalGate(g.Type, g.Fanin, s.val)
	}
	// Clear anything scheduled during initialization bookkeeping.
	s.queue.evs = s.queue.evs[:0]
	s.queue.pos = nil
	for i := range s.pending {
		s.pending[i] = -1
	}
	for i := range s.trans {
		s.trans[i] = 0
	}
}

// Value returns the present logic value of a gate.
func (s *Simulator) Value(id int) bool { return s.val[id] }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Transitions returns the transition count of a gate since the last Settle.
func (s *Simulator) Transitions(id int) int64 { return s.trans[id] }

// PropagationDelay applies one input event at the current state and returns
// the time until the network goes quiet (0 if nothing propagates).
func (s *Simulator) PropagationDelay(inputID int, v bool, horizon float64) (float64, error) {
	start := s.now
	if err := s.SetInput(inputID, v); err != nil {
		return 0, err
	}
	end := s.Run(start + horizon)
	if end < start {
		return 0, nil
	}
	return end - start, nil
}

// RandomVectorStats clocks the simulator with random input vectors (each
// input independently drawn per cycle from the stationary distribution of
// its spec, with Markov transition rates matching its density) and returns
// the mean transitions per cycle per gate — the timed, glitch-inclusive
// counterpart of the analytic transition density.
func (s *Simulator) RandomVectorStats(inputs map[int]activity.InputSpec, cycles int, period float64, seed int64) ([]float64, error) {
	if cycles < 1 {
		return nil, fmt.Errorf("sim: need at least one cycle")
	}
	if period <= 0 {
		return nil, fmt.Errorf("sim: period %v must be positive", period)
	}
	rng := rand.New(rand.NewSource(seed))
	// Initial state from stationary probabilities.
	for _, id := range s.c.PIs {
		spec, ok := inputs[id]
		if !ok {
			return nil, fmt.Errorf("sim: no input spec for PI %q", s.c.Gate(id).Name)
		}
		s.val[id] = rng.Float64() < spec.Prob
	}
	s.Settle()
	clock := s.now
	for cy := 0; cy < cycles; cy++ {
		for _, id := range s.c.PIs {
			spec := inputs[id]
			var alpha, beta float64
			if spec.Prob > 0 && spec.Prob < 1 {
				alpha = spec.Density / (2 * (1 - spec.Prob))
				beta = spec.Density / (2 * spec.Prob)
			}
			if s.val[id] {
				if rng.Float64() < beta {
					if err := s.SetInput(id, false); err != nil {
						return nil, err
					}
				}
			} else if rng.Float64() < alpha {
				if err := s.SetInput(id, true); err != nil {
					return nil, err
				}
			}
		}
		clock += period
		s.Run(clock)
		s.now = clock // align to the cycle boundary regardless of event times
	}
	out := make([]float64, s.c.N())
	for i := range out {
		out[i] = float64(s.trans[i]) / float64(cycles)
	}
	return out, nil
}

// eventHeap is a time-ordered event queue with an id→position index so
// inertial cancellation removes events in O(log n) instead of scanning.
// PowerTrace runs the random-vector workload while binning the switched
// energy of every output transition into fixed time buckets, yielding the
// supply-power waveform the average-power models integrate away. Each
// transition deposits ½·C_sw·V² (C_sw = the gate's switched capacitance from
// the energy model's perspective, passed per gate). Returns the per-bucket
// average power (W) and the peak/average ratio — the number a supply-grid
// designer wants that E/cycle hides.
func (s *Simulator) PowerTrace(inputs map[int]activity.InputSpec, switchedEnergy []float64,
	cycles, bucketsPerCycle int, period float64, seed int64) (trace []float64, peakToAvg float64, err error) {
	if cycles < 1 || bucketsPerCycle < 1 {
		return nil, 0, fmt.Errorf("sim: need positive cycles and buckets")
	}
	if period <= 0 {
		return nil, 0, fmt.Errorf("sim: period %v must be positive", period)
	}
	if len(switchedEnergy) != s.c.N() {
		return nil, 0, fmt.Errorf("sim: switchedEnergy sized %d, circuit has %d gates", len(switchedEnergy), s.c.N())
	}
	rng := rand.New(rand.NewSource(seed))
	for _, id := range s.c.PIs {
		spec, ok := inputs[id]
		if !ok {
			return nil, 0, fmt.Errorf("sim: no input spec for PI %q", s.c.Gate(id).Name)
		}
		s.val[id] = rng.Float64() < spec.Prob
	}
	s.Settle()

	nBuckets := cycles * bucketsPerCycle
	bucketDur := period / float64(bucketsPerCycle)
	energy := make([]float64, nBuckets)
	start := s.now
	deposit := func(at float64, e float64) {
		b := int((at - start) / bucketDur)
		if b >= 0 && b < nBuckets {
			energy[b] += e
		}
	}

	clock := s.now
	for cy := 0; cy < cycles; cy++ {
		for _, id := range s.c.PIs {
			spec := inputs[id]
			var alpha, beta float64
			if spec.Prob > 0 && spec.Prob < 1 {
				alpha = spec.Density / (2 * (1 - spec.Prob))
				beta = spec.Density / (2 * spec.Prob)
			}
			flip := false
			if s.val[id] {
				flip = rng.Float64() < beta
			} else {
				flip = rng.Float64() < alpha
			}
			if flip {
				if err := s.SetInput(id, !s.val[id]); err != nil {
					return nil, 0, err
				}
				deposit(s.now, switchedEnergy[id])
			}
		}
		// Drain this cycle's events, depositing each output transition.
		for s.queue.Len() > 0 {
			ev := s.queue.evs[0]
			if ev.t > clock+period {
				break
			}
			pre := s.trans[ev.gate]
			s.runOne()
			if s.trans[ev.gate] != pre {
				deposit(ev.t, switchedEnergy[ev.gate])
			}
		}
		clock += period
		s.now = clock
	}

	trace = make([]float64, nBuckets)
	var sum, peak float64
	for i, e := range energy {
		trace[i] = e / bucketDur
		sum += trace[i]
		if trace[i] > peak {
			peak = trace[i]
		}
	}
	avg := sum / float64(nBuckets)
	if avg <= 0 {
		return trace, 0, nil
	}
	return trace, peak / avg, nil
}

// runOne pops and applies exactly one event (caller checked the queue).
func (s *Simulator) runOne() {
	ev := heap.Pop(&s.queue).(event)
	s.now = ev.t
	if s.pending[ev.gate] == ev.id {
		s.pending[ev.gate] = -1
	}
	if s.val[ev.gate] == ev.val {
		return
	}
	s.val[ev.gate] = ev.val
	s.trans[ev.gate]++
	for _, f := range s.c.Gate(ev.gate).Fanout {
		s.evaluate(f)
	}
}

type eventHeap struct {
	evs []event
	pos map[int]int // event id -> index in evs
}

func (h *eventHeap) Len() int           { return len(h.evs) }
func (h *eventHeap) Less(i, j int) bool { return h.evs[i].t < h.evs[j].t }
func (h *eventHeap) Swap(i, j int) {
	h.evs[i], h.evs[j] = h.evs[j], h.evs[i]
	h.pos[h.evs[i].id] = i
	h.pos[h.evs[j].id] = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(event)
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
	h.pos[ev.id] = len(h.evs)
	h.evs = append(h.evs, ev)
}
func (h *eventHeap) Pop() any {
	old := h.evs
	n := len(old)
	ev := old[n-1]
	h.evs = old[:n-1]
	delete(h.pos, ev.id)
	return ev
}
