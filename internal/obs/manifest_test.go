package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenManifest is a fully deterministic manifest (no runtime stamps, no
// clocks) so its serialized form can be compared byte-for-byte.
func goldenManifest() *Manifest {
	return &Manifest{
		Schema:    SchemaVersion,
		Tool:      "sweep",
		GoVersion: "go1.22.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      8,
		Circuit:   "s298",
		Gates:     119,
		FcHz:      3e8,
		Workers:   4,
		WallNS:    1234567,
		Results: []ResultRecord{{
			Label:          "fc=300MHz",
			Method:         "joint",
			FcHz:           3e8,
			Vdd:            1.45,
			Vts:            []float64{0.31},
			EnergyStatic:   1.2e-12,
			EnergyDynamic:  8.8e-12,
			EnergyTotal:    1e-11,
			CriticalDelayS: 3.2e-9,
			Feasible:       true,
			Evaluations:    5543,
		}},
		Benchmarks: []BenchRecord{{
			Name: "BenchmarkProcedure2", Runs: 9, NsPerOp: 17125776, Samples: 3,
		}},
		Obs: &Snapshot{
			WallNS:   1234567,
			Counters: map[string]int64{"eval.full_delay_sweeps": 42},
			Histograms: map[string]HistogramSnapshot{
				"eval.full_sweep_ns": {
					Count: 2, Sum: 300, Min: 100, Max: 200, Mean: 150,
					Buckets: []Bucket{{64, 128, 1}, {128, 256, 1}},
				},
			},
			Workers: []WorkerSnapshot{
				{Worker: 0, BusyNS: 900, IdleNS: 100, Iterations: 7, Utilization: 0.9},
			},
			Spans: &SpanSnapshot{
				Name: "run", Count: 1, DurationNS: 1234567,
				Children: []SpanSnapshot{
					{Name: "elaborate", Count: 1, DurationNS: 1000},
					{Name: "optimize.joint", Count: 1, DurationNS: 1230000,
						Counters: map[string]int64{"speculative_batches": 3},
						Children: []SpanSnapshot{
							{Name: "vdd-level", Count: 12, DurationNS: 1200000},
						}},
				},
			},
		},
	}
}

// TestManifestGolden locks the on-disk schema: writing the canonical manifest
// must reproduce testdata/manifest_golden.json byte-for-byte, and reading it
// back must return the identical structure. A diff here means the manifest
// schema changed — update SchemaVersion and the golden file together.
func TestManifestGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := goldenManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestManifestGolden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("serialized manifest diverged from %s:\n--- got ---\n%s", golden, got)
	}

	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenManifest()) {
		t.Errorf("round-trip changed the manifest:\ngot  %+v\nwant %+v", back, goldenManifest())
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	m := goldenManifest()
	m.Schema = "cmosopt/manifest/v0"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("ReadManifest accepted a wrong schema version")
	}
}

func TestNewManifestStampsEnvironment(t *testing.T) {
	m := NewManifest("verify")
	if m.Schema != SchemaVersion || m.Tool != "verify" {
		t.Fatalf("manifest header = %+v", m)
	}
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.CPUs < 1 {
		t.Fatalf("environment not stamped: %+v", m)
	}
}

func TestManifestFinishEmbedsSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	m := NewManifest("t")
	m.Finish(r)
	if m.WallNS <= 0 || m.Obs == nil || m.Obs.Counters["c"] != 1 {
		t.Fatalf("Finish did not embed the snapshot: %+v", m)
	}
	m2 := NewManifest("t")
	m2.Finish(nil) // nil registry: manifest stays bare
	if m2.Obs != nil || m2.WallNS != 0 {
		t.Fatalf("Finish(nil) populated obs: %+v", m2)
	}
}
