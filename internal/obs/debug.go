package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// Live export. Publish exposes a registry snapshot through expvar (so it
// appears under /debug/vars next to memstats), and ServeDebug starts the
// HTTP endpoint the -pprof flag of the command-line tools points at:
// /debug/pprof/* for CPU/heap/block profiles and /debug/vars for metrics.

var publishOnce sync.Once

// PublishDefault publishes the process-default registry's snapshot as the
// expvar variable "cmosopt". The published function always reads the
// *current* default registry, so tools (and tests) may install fresh
// registries at any time; before one is installed the variable reads null.
// Idempotent — expvar forbids re-publishing a name.
func PublishDefault() {
	publishOnce.Do(func() {
		expvar.Publish("cmosopt", expvar.Func(func() any {
			r := Default()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060") serving
// the default mux — /debug/pprof/* and /debug/vars — in a background
// goroutine, and returns the bound address (useful with ":0"). The server
// lives for the remainder of the process; tools that exit immediately after
// their run keep it up only as long as the run itself, which is exactly the
// window profiling needs.
func ServeDebug(addr string) (string, error) {
	PublishDefault()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: -pprof listen %s: %w", addr, err)
	}
	go func() {
		// The listener closes only at process exit; Serve's error is moot.
		_ = http.Serve(l, nil)
	}()
	return l.Addr().String(), nil
}
