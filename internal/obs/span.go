package obs

import (
	"sync"
	"time"
)

// Span is one named node of the hierarchical timing tree: a cumulative
// (count, duration) pair, optional named counters, and child spans. Repeated
// measurements of the same named activity — every "widths" solve inside every
// bisection level — aggregate onto one node, so the tree's size is bounded by
// the program's phase structure, not by how long it ran.
//
// A Span is the aggregation point; the active interval is a Timing obtained
// from Start. Concurrent Timings on the same node (worker clones solving
// candidates in parallel) are safe: each carries its own start time and the
// node accumulates under a mutex. All methods are nil-safe no-ops on a nil
// receiver, so instrumented code needs no "is observability on?" branches.
type Span struct {
	name string

	mu       sync.Mutex
	count    int64
	durNS    int64
	counters map[string]int64
	order    []*Span
	children map[string]*Span
}

func newSpan(name string) *Span { return &Span{name: name} }

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns the child node with the given name, creating it on first use.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = make(map[string]*Span)
	}
	c := s.children[name]
	if c == nil {
		c = newSpan(name)
		s.children[name] = c
		s.order = append(s.order, c)
	}
	return c
}

// Add accumulates a named per-span counter (probe counts, feasible points…).
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += n
	s.mu.Unlock()
}

// Timing is one active start/stop interval on a span node. It is owned by a
// single goroutine; Stop is idempotent.
type Timing struct {
	s       *Span
	t0      time.Time
	stopped bool
}

// Start begins a new timed interval on this node and returns its handle.
func (s *Span) Start() *Timing {
	if s == nil {
		return nil
	}
	return &Timing{s: s, t0: time.Now()}
}

// StartChild is Child(name).Start() in one call.
func (s *Span) StartChild(name string) *Timing { return s.Child(name).Start() }

// Stop ends the interval, accumulating its duration onto the node, and
// returns the elapsed time. Safe to call more than once (later calls no-op).
func (t *Timing) Stop() time.Duration {
	if t == nil || t.stopped {
		return 0
	}
	t.stopped = true
	d := time.Since(t.t0)
	t.s.mu.Lock()
	t.s.count++
	t.s.durNS += d.Nanoseconds()
	t.s.mu.Unlock()
	return d
}

// SpanSnapshot is the JSON form of one span node and its subtree. Children
// keep first-seen order, which follows program phase order for the serial
// skeleton of a run.
type SpanSnapshot struct {
	Name       string           `json:"name"`
	Count      int64            `json:"count"`
	DurationNS int64            `json:"duration_ns"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []SpanSnapshot   `json:"children,omitempty"`
}

// Snapshot deep-copies the subtree rooted at s.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	out := SpanSnapshot{
		Name:       s.name,
		Count:      s.count,
		DurationNS: s.durNS,
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	kids := make([]*Span, len(s.order))
	copy(kids, s.order)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.Snapshot())
	}
	return out
}
