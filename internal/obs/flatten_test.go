package obs

import (
	"reflect"
	"testing"
)

func TestFlatten(t *testing.T) {
	root := newSpan("run")
	opt := root.Child("optimize.joint")
	opt.Start().Stop()
	lvl := opt.Child("vdd-level")
	for i := 0; i < 3; i++ {
		lvl.Start().Stop()
	}
	root.Child("report").Start().Stop()

	snap := root.Snapshot()
	flat := snap.Flatten()

	paths := make([]string, len(flat))
	for i, f := range flat {
		paths[i] = f.Path
	}
	want := []string{"run", "run/optimize.joint", "run/optimize.joint/vdd-level", "run/report"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	if flat[2].Count != 3 {
		t.Fatalf("vdd-level count = %d, want 3", flat[2].Count)
	}
}

func TestFlattenNil(t *testing.T) {
	var s *SpanSnapshot
	if got := s.Flatten(); got != nil {
		t.Fatalf("nil snapshot flatten = %v, want nil", got)
	}
}

func TestDiffFlat(t *testing.T) {
	prev := []FlatSpan{
		{Path: "run", Count: 1, DurationNS: 10},
		{Path: "run/a", Count: 2, DurationNS: 5},
	}
	cur := []FlatSpan{
		{Path: "run", Count: 1, DurationNS: 10},  // unchanged: dropped
		{Path: "run/a", Count: 3, DurationNS: 9}, // advanced: kept
		{Path: "run/b", Count: 1, DurationNS: 1}, // new: kept
	}
	got := DiffFlat(prev, cur)
	want := []FlatSpan{cur[1], cur[2]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	// First emission: everything.
	if got := DiffFlat(nil, cur); !reflect.DeepEqual(got, cur) {
		t.Fatalf("first diff = %v, want all of cur", got)
	}
}
