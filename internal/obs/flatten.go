package obs

// FlatSpan is one node of a span tree flattened to a slash-joined path —
// the event-stream form of a snapshot. A progress consumer (the serve
// layer's SSE endpoint) diffs successive flattenings by Path and forwards
// only the nodes whose Count or DurationNS advanced, so a client watching a
// long optimization sees "optimize.joint/vdd-level/point: 96 × 312ms" tick
// upwards without ever receiving the whole tree twice.
type FlatSpan struct {
	Path       string `json:"path"`
	Count      int64  `json:"count"`
	DurationNS int64  `json:"duration_ns"`
}

// Flatten walks the snapshot depth-first (children keep first-seen order,
// which follows program phase order) and emits one FlatSpan per node. The
// root node's own name starts the path.
func (s *SpanSnapshot) Flatten() []FlatSpan {
	if s == nil {
		return nil
	}
	out := make([]FlatSpan, 0, 16)
	var walk func(prefix string, n *SpanSnapshot)
	walk = func(prefix string, n *SpanSnapshot) {
		path := n.Name
		if prefix != "" {
			path = prefix + "/" + n.Name
		}
		out = append(out, FlatSpan{Path: path, Count: n.Count, DurationNS: n.DurationNS})
		for i := range n.Children {
			walk(path, &n.Children[i])
		}
	}
	walk("", s)
	return out
}

// DiffFlat returns the entries of cur that are new or advanced relative to
// prev (matched by Path). prev may be nil for the first emission; the result
// keeps cur's order, so repeated diffs stream a stable narrative.
func DiffFlat(prev, cur []FlatSpan) []FlatSpan {
	if len(prev) == 0 {
		return cur
	}
	seen := make(map[string]FlatSpan, len(prev))
	for _, f := range prev {
		seen[f.Path] = f
	}
	var out []FlatSpan
	for _, f := range cur {
		if p, ok := seen[f.Path]; !ok || p.Count != f.Count || p.DurationNS != f.DurationNS {
			out = append(out, f)
		}
	}
	return out
}
