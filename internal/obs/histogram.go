package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe log-scale (base-2) histogram over
// non-negative int64 observations — nanosecond latencies, dirty-cone sizes,
// batch item counts. Bucket i ≥ 1 covers [2^(i-1), 2^i); bucket 0 holds
// values < 1. Exponential buckets give constant relative resolution across
// the nine decades between a cache probe and a full annealing run, in 65
// fixed slots.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [65]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until the first observation
	return h
}

// bucketIndex returns the bucket of one observation: 0 for v < 1, otherwise
// 1 + floor(log2 v), i.e. the bit length of v.
func bucketIndex(v int64) int {
	if v < 1 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the half-open value range [lo, hi) of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Bucket is one populated histogram bucket: count of observations in [Lo, Hi).
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram: summary statistics plus
// the populated buckets in ascending value order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state (empty buckets omitted).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}
