package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndWorkers(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(4)
	r.Counter("gauge").Set(9)
	r.Worker(2).Record(3*time.Millisecond, time.Millisecond, 10)

	s := r.Snapshot()
	if s.Counters["a"] != 7 || s.Counters["gauge"] != 9 {
		t.Fatalf("counters = %v", s.Counters)
	}
	// Workers 0 and 1 never recorded: only slot 2 appears.
	if len(s.Workers) != 1 || s.Workers[0].Worker != 2 {
		t.Fatalf("workers = %+v", s.Workers)
	}
	w := s.Workers[0]
	if w.Iterations != 10 || w.BusyNS != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("worker stats = %+v", w)
	}
	if want := 0.75; w.Utilization != want {
		t.Fatalf("utilization = %v, want %v", w.Utilization, want)
	}
}

func TestRegistryFinishIdempotent(t *testing.T) {
	r := NewRegistry()
	time.Sleep(time.Millisecond)
	d1 := r.Finish()
	d2 := r.Finish()
	if d1 < time.Millisecond || d1 != d2 {
		t.Fatalf("Finish = %v then %v, want equal and >= 1ms", d1, d2)
	}
	if w := r.Wall(); w != d1 {
		t.Fatalf("Wall = %v after Finish %v", w, d1)
	}
	s := r.Snapshot()
	if s.Spans == nil || s.Spans.Name != "run" || s.Spans.Count != 1 {
		t.Fatalf("root span = %+v", s.Spans)
	}
	if s.Spans.DurationNS < time.Millisecond.Nanoseconds() {
		t.Fatalf("root duration = %dns, want >= 1ms", s.Spans.DurationNS)
	}
}

func TestRegistryLiveSnapshot(t *testing.T) {
	r := NewRegistry()
	time.Sleep(time.Millisecond)
	s := r.Snapshot() // before Finish: root still running
	if s.Spans.DurationNS <= 0 || s.WallNS <= 0 {
		t.Fatalf("live snapshot has zero durations: %+v", s)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if r.Root() != nil || r.Counter("x") != nil || r.Histogram("y") != nil || r.Worker(0) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if r.Finish() != 0 || r.Wall() != 0 {
		t.Fatal("nil registry durations must be zero")
	}
	if s := r.Snapshot(); s.Spans != nil {
		t.Fatalf("nil snapshot = %+v", s)
	}
	// The nil metrics must themselves accept calls.
	r.Counter("x").Add(1)
	r.Histogram("y").Observe(1)
	r.Worker(0).Record(time.Second, 0, 1)
	r.Root().Child("c").Start().Stop()
}

// TestRegistryConcurrent hammers every registry surface from many goroutines;
// run under -race it is the package's data-race certificate.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Add(1)
				r.Histogram("h").Observe(int64(i))
				r.Worker(w).Record(time.Microsecond, time.Microsecond, 1)
				tm := r.Root().Child("phase").StartChild("leaf")
				r.Root().Child("phase").Add("n", 1)
				tm.Stop()
				if i%50 == 0 {
					_ = r.Snapshot() // concurrent reads while writing
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != workers*iters {
		t.Fatalf("shared = %d, want %d", s.Counters["shared"], workers*iters)
	}
	if s.Histograms["h"].Count != workers*iters {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
	if len(s.Workers) != workers {
		t.Fatalf("got %d workers, want %d", len(s.Workers), workers)
	}
	phase := s.Spans.Children[0]
	if phase.Counters["n"] != workers*iters || phase.Children[0].Count != workers*iters {
		t.Fatalf("phase = %+v", phase)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry must start nil")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not uninstall")
	}
}
