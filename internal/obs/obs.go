// Package obs is the observability layer: hierarchical timing spans,
// monotonic counters, log-scale histograms and per-worker utilization stats,
// collected in a Registry that snapshots to JSON, exports through expvar, and
// feeds the run manifests every command-line tool can emit with -metrics.
//
// Design rules, in decreasing order of importance:
//
//   - instrumentation must never change optimizer outputs: nothing in this
//     package is consulted by any algorithm, and every entry point is nil-safe
//     (a nil *Registry, *Span, *Counter, *Histogram or *WorkerStat accepts
//     every call as a no-op), so instrumented code paths read identically
//     whether or not a registry is attached;
//   - concurrency-safe throughout: spans aggregate under per-node mutexes,
//     counters and histograms are atomic, so engine clones and worker pools
//     record into one shared registry without coordination;
//   - zero dependencies: standard library only, like the rest of the module.
//
// The package distinguishes the *aggregation node* (Span: a named position in
// the tree holding cumulative count/duration/counters) from the *active
// measurement* (Timing: one start/stop interval). Repeated work with the same
// name — every "widths" solve inside every bisection level — lands on one
// node, so a manifest's span tree stays bounded no matter how long the run.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is one run's metric sink: a root span, named counters, named
// histograms and per-worker pool stats. All methods are concurrency-safe and
// nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	workers  []*WorkerStat
	root     *Span
	rootT    *Timing
	start    time.Time
	wall     atomic.Int64 // set by Finish
}

// NewRegistry returns an empty registry whose root span ("run") starts now.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		root:     newSpan("run"),
		start:    time.Now(),
	}
	r.rootT = r.root.Start()
	return r
}

// Root returns the root span node; all top-level phases are its children.
func (r *Registry) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named log-scale histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Worker returns the stats slot of worker index i (grown on demand). Worker
// indices come from internal/parallel: every pool's worker w accumulates into
// slot w, so the slot holds that worker lane's lifetime utilization.
func (r *Registry) Worker(i int) *WorkerStat {
	if r == nil || i < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.workers) <= i {
		r.workers = append(r.workers, &WorkerStat{})
	}
	return r.workers[i]
}

// Finish stops the root span and freezes the run's wall time. Idempotent;
// returns the wall-clock duration since NewRegistry.
func (r *Registry) Finish() time.Duration {
	if r == nil {
		return 0
	}
	if r.wall.Load() == 0 {
		r.rootT.Stop()
		r.wall.Store(int64(time.Since(r.start)))
	}
	return time.Duration(r.wall.Load())
}

// Wall returns the elapsed wall-clock time: frozen by Finish, otherwise live.
func (r *Registry) Wall() time.Duration {
	if r == nil {
		return 0
	}
	if w := r.wall.Load(); w != 0 {
		return time.Duration(w)
	}
	return time.Since(r.start)
}

// Snapshot captures the registry's current state. Counter and histogram maps
// are keyed by name (encoding/json emits map keys sorted, so serialized
// snapshots are stably ordered); the span tree keeps first-seen child order.
type Snapshot struct {
	WallNS     int64                        `json:"wall_ns"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Workers    []WorkerSnapshot             `json:"workers,omitempty"`
	Spans      *SpanSnapshot                `json:"spans,omitempty"`
}

// Snapshot returns a point-in-time copy of every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	counters := make(map[string]int64, len(names))
	for _, n := range names {
		counters[n] = r.counters[n].Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for n, h := range r.hists {
		s := h.Snapshot()
		if s.Count > 0 {
			hists[n] = s
		}
	}
	var workers []WorkerSnapshot
	for i, w := range r.workers {
		if s := w.snapshot(i); s.BusyNS > 0 || s.Iterations > 0 {
			workers = append(workers, s)
		}
	}
	r.mu.Unlock()

	spans := r.root.Snapshot()
	if spans.DurationNS == 0 {
		// The root span is still running: report its live duration so
		// mid-run expvar reads stay meaningful.
		spans.DurationNS = time.Since(r.start).Nanoseconds()
		spans.Count = 1
	}
	s := Snapshot{
		WallNS:  r.Wall().Nanoseconds(),
		Workers: workers,
		Spans:   &spans,
	}
	if len(counters) > 0 {
		s.Counters = counters
	}
	if len(hists) > 0 {
		s.Histograms = hists
	}
	return s
}

// Counter is a concurrency-safe monotonic (or gauge, via Set) int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set overwrites the counter's value (for gauge-style readings such as the
// current coefficient-cache size).
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current value.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// WorkerStat accumulates one worker lane's pool utilization: time spent in
// iteration bodies (busy), time spent waiting for work or for the pool to
// drain (idle), and the number of iterations executed.
type WorkerStat struct {
	busyNS atomic.Int64
	idleNS atomic.Int64
	iters  atomic.Int64
}

// Record adds one pool participation to the lane's totals.
func (w *WorkerStat) Record(busy, idle time.Duration, iters int64) {
	if w == nil {
		return
	}
	w.busyNS.Add(int64(busy))
	w.idleNS.Add(int64(idle))
	w.iters.Add(iters)
}

// WorkerSnapshot is one worker lane's aggregate utilization.
type WorkerSnapshot struct {
	Worker      int     `json:"worker"`
	BusyNS      int64   `json:"busy_ns"`
	IdleNS      int64   `json:"idle_ns"`
	Iterations  int64   `json:"iterations"`
	Utilization float64 `json:"utilization"` // busy / (busy + idle)
}

func (w *WorkerStat) snapshot(i int) WorkerSnapshot {
	s := WorkerSnapshot{
		Worker:     i,
		BusyNS:     w.busyNS.Load(),
		IdleNS:     w.idleNS.Load(),
		Iterations: w.iters.Load(),
	}
	if tot := s.BusyNS + s.IdleNS; tot > 0 {
		s.Utilization = float64(s.BusyNS) / float64(tot)
	}
	return s
}

// defaultReg is the process-wide registry used by instrumentation sites that
// have no natural plumbing path (the worker pools of internal/parallel).
// Command-line tools install their run registry here; it is nil (recording
// disabled) unless a tool or test sets it.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs (or, with nil, removes) the process-default registry.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the process-default registry, or nil when none is set.
func Default() *Registry { return defaultReg.Load() }
