package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, // everything below 1 collapses into bucket 0
		{1, 1},         // [1, 2)
		{2, 2}, {3, 2}, // [2, 4)
		{4, 3}, {7, 3}, // [4, 8)
		{8, 4}, // [8, 16)
		{1023, 10}, {1024, 11},
		{1<<62 - 1, 62}, {1 << 62, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Each boundary value must land exactly at the low edge of its bucket.
	for i := 1; i < 63; i++ {
		lo, hi := BucketBounds(i)
		if bucketIndex(lo) != i || bucketIndex(hi-1) != i || bucketIndex(hi) != i+1 {
			t.Errorf("bucket %d bounds [%d, %d) disagree with bucketIndex", i, lo, hi)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 1 {
		t.Errorf("bucket 0 bounds = [%d, %d), want [0, 1)", lo, hi)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{1, 2, 3, 100, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 106 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if want := 106.0 / 5; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	// Buckets: 0 → b0, 1 → b1, {2,3} → b2, 100 → b7 ([64, 128)).
	want := []Bucket{{0, 1, 1}, {1, 2, 1}, {2, 4, 2}, {64, 128, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	if s := newHistogram().Snapshot(); s.Count != 0 || s.Min != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v (min must not leak MaxInt64)", s)
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Observe(int64(w*iters + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*iters {
		t.Fatalf("count = %d, want %d", s.Count, workers*iters)
	}
	if s.Min != 0 || s.Max != workers*iters-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, workers*iters-1)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}
