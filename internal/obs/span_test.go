package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrder(t *testing.T) {
	root := newSpan("run")
	opt := root.Child("optimize")
	opt.Child("vdd-level")
	opt.Child("refine")
	root.Child("elaborate") // created after optimize: order is first-seen

	// Child is get-or-create: same name returns the same node.
	if opt.Child("vdd-level") != opt.Child("vdd-level") {
		t.Fatal("Child returned distinct nodes for one name")
	}

	snap := root.Snapshot()
	if snap.Name != "run" || len(snap.Children) != 2 {
		t.Fatalf("root snapshot = %+v", snap)
	}
	if snap.Children[0].Name != "optimize" || snap.Children[1].Name != "elaborate" {
		t.Fatalf("children not in first-seen order: %s, %s",
			snap.Children[0].Name, snap.Children[1].Name)
	}
	kids := snap.Children[0].Children
	if len(kids) != 2 || kids[0].Name != "vdd-level" || kids[1].Name != "refine" {
		t.Fatalf("optimize children = %+v", kids)
	}
}

func TestSpanTimingAggregates(t *testing.T) {
	s := newSpan("work")
	for i := 0; i < 3; i++ {
		tm := s.Start()
		time.Sleep(time.Millisecond)
		if d := tm.Stop(); d < time.Millisecond {
			t.Fatalf("Stop returned %v, slept 1ms", d)
		}
		if d := tm.Stop(); d != 0 {
			t.Fatalf("second Stop returned %v, want 0 (idempotent)", d)
		}
	}
	snap := s.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if snap.DurationNS < 3*time.Millisecond.Nanoseconds() {
		t.Fatalf("duration = %dns, want >= 3ms", snap.DurationNS)
	}
}

func TestSpanCounters(t *testing.T) {
	s := newSpan("x")
	s.Add("probes", 5)
	s.Add("probes", 7)
	s.Add("feasible", 1)
	snap := s.Snapshot()
	if snap.Counters["probes"] != 12 || snap.Counters["feasible"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	if s.Child("a") != nil || s.Start() != nil || s.Name() != "" {
		t.Fatal("nil span methods must return zero values")
	}
	s.Add("c", 1)
	s.StartChild("b").Stop() // nil Timing Stop
	if snap := s.Snapshot(); snap.Name != "" || snap.Count != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestSpanConcurrentTimings(t *testing.T) {
	s := newSpan("par")
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tm := s.StartChild("leaf")
				s.Add("n", 1)
				tm.Stop()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Counters["n"] != workers*iters {
		t.Fatalf("counter = %d, want %d", snap.Counters["n"], workers*iters)
	}
	if len(snap.Children) != 1 || snap.Children[0].Count != workers*iters {
		t.Fatalf("leaf count = %+v", snap.Children)
	}
}
