package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// SchemaVersion identifies the manifest JSON layout. Consumers (the CI
// benchmark-regression gate, cross-run comparisons) check it before reading
// anything else; bump it only for incompatible changes.
const SchemaVersion = "cmosopt/manifest/v1"

// Manifest is the machine-readable record of one tool run: what ran, on what,
// with what result, how long it took and where the time went. Every cmd/*
// tool writes one with -metrics out.json; the CI bench-regress job writes
// BENCH_*.json files in the same schema (with Benchmarks populated) and
// compares them across commits with cmd/benchdiff.
type Manifest struct {
	Schema    string `json:"schema"`
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// Workload identification (zero values omitted where not applicable).
	Circuit string  `json:"circuit,omitempty"`
	Gates   int     `json:"gates,omitempty"`
	FcHz    float64 `json:"fc_hz,omitempty"`
	Workers int     `json:"workers,omitempty"`

	WallNS int64 `json:"wall_ns"`

	// Results holds one record per optimization outcome the run produced
	// (one for cmd/lowpower, one per sweep point for cmd/sweep, …).
	Results []ResultRecord `json:"results,omitempty"`

	// Benchmarks holds parsed `go test -bench` measurements (cmd/benchdiff
	// -parse); empty for ordinary tool runs.
	Benchmarks []BenchRecord `json:"benchmarks,omitempty"`

	// Obs is the registry snapshot: span tree, engine counters, histograms,
	// per-worker utilization.
	Obs *Snapshot `json:"obs,omitempty"`
}

// ResultRecord summarizes one optimization result inside a manifest.
type ResultRecord struct {
	Label          string    `json:"label,omitempty"`
	Method         string    `json:"method,omitempty"`
	FcHz           float64   `json:"fc_hz,omitempty"`
	Vdd            float64   `json:"vdd"`
	Vts            []float64 `json:"vts,omitempty"`
	EnergyStatic   float64   `json:"energy_static"`
	EnergyDynamic  float64   `json:"energy_dynamic"`
	EnergyTotal    float64   `json:"energy_total"`
	CriticalDelayS float64   `json:"critical_delay_s"`
	Feasible       bool      `json:"feasible"`
	Evaluations    int       `json:"evaluations,omitempty"`
}

// BenchRecord is one benchmark measurement: the minimum ns/op observed for
// the benchmark across repeated runs (-count), the currency the regression
// gate compares in. When the benchmark reported memory statistics (-benchmem
// or b.ReportAllocs), the minimum B/op and allocs/op ride along so the gate
// can also catch allocation regressions — a sweep that silently starts
// allocating per gate is a scalability bug long before it is a ns/op one.
type BenchRecord struct {
	Name    string  `json:"name"`
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is how many measurement lines (-count repeats) were folded
	// into NsPerOp.
	Samples int `json:"samples,omitempty"`
	// BytesPerOp and AllocsPerOp are the minimum B/op and allocs/op across
	// the folded lines; meaningful only when MemMeasured is true (zero is a
	// legitimate — and guarded — value for the steady-state sweeps).
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MemMeasured bool    `json:"mem_measured,omitempty"`
}

// NewManifest returns a manifest stamped with the build/host environment.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Schema:    SchemaVersion,
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// Finish freezes the registry (stopping its root span) and embeds its
// snapshot. A nil registry leaves the manifest's Obs section empty.
func (m *Manifest) Finish(r *Registry) {
	if r == nil {
		return
	}
	m.WallNS = r.Finish().Nanoseconds()
	s := r.Snapshot()
	m.Obs = &s
}

// WriteFile writes the manifest as indented JSON (map keys sorted by
// encoding/json, so output is stable for fixed contents).
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest loads and schema-checks a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, m.Schema, SchemaVersion)
	}
	return &m, nil
}
