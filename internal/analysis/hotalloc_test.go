package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	td := analysistest.Testdata(t, "hotalloc")
	analysistest.Run(t, td, analysis.HotAlloc,
		"cmosopt/internal/eval",    // every alloc construct + allow-span regression
		"cmosopt/internal/circuit", // cross-package fact source; own hotpath body verified
	)
}

func TestCtxPoll(t *testing.T) {
	td := analysistest.Testdata(t, "ctxpoll")
	analysistest.Run(t, td, analysis.CtxPoll,
		"cmosopt/internal/core",  // candidate loops: positives, polls, closures, nesting
		"cmosopt/internal/other", // negative: outside scope
	)
}

func TestLockSafe(t *testing.T) {
	td := analysistest.Testdata(t, "locksafe")
	analysistest.Run(t, td, analysis.LockSafe,
		"cmosopt/internal/cache", // leak/flush/send/eval positives + idiomatic negatives
		"cmosopt/internal/eval",  // clean engine stub
	)
}

func TestKeyPure(t *testing.T) {
	td := analysistest.Testdata(t, "keypure")
	analysistest.Run(t, td, analysis.KeyPure,
		"cmosopt/internal/serve", // taint into the key form: literals, field writes, merges
		"cmosopt/internal/other", // negative: outside scope
	)
}
