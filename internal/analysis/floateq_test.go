package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	td := analysistest.Testdata(t, "floateq")
	analysistest.Run(t, td, analysis.FloatEq,
		"cmosopt/internal/optimize", // positive + sentinel/suppression negatives
		"cmosopt/internal/other",    // negative: outside scope
	)
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("all")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want 9", len(all), err)
	}
	two, err := analysis.ByName("floateq,determinism")
	if err != nil || len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "determinism" {
		t.Fatalf("ByName(floateq,determinism) = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}
