package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Cross-package function facts.
//
// The flow-aware analyzers need to know things about callees that live in
// other packages: is this function on the annotated hot path, does its body
// heap-allocate, does it funnel into an Engine full evaluation, does it poll
// a context? A FuncFacts record answers those per function; PkgFacts collects
// them per package, keyed "Func" for package functions and "Type.Method" for
// methods.
//
// Facts flow between packages two ways:
//
//   - in standalone/fixture mode the Loader computes them from source on
//     demand (Loader.PackageFacts);
//   - under `go vet -vettool` each compilation unit writes its facts to the
//     .vetx file cmd/go hands it (schema cmosvet/facts/v1) and reads its
//     dependencies' facts from the PackageVetx map, mirroring how
//     golang.org/x/tools analysis facts ride the export pipeline.

// FuncFacts are the per-function properties the flow-aware analyzers share.
type FuncFacts struct {
	// Hotpath is set by a //cmosvet:hotpath directive on the declaration:
	// the function promises not to heap-allocate (enforced by hotalloc).
	Hotpath bool `json:"hotpath,omitempty"`
	// Allocates reports a direct heap-allocating construct in the body
	// (make/new, slice/map or address-taken composite literals, capturing
	// closures, string concatenation, interface boxing). Direct only — no
	// call-graph closure — so a hot caller is judged against what the callee
	// itself does, not against its cold error paths' callees.
	Allocates bool `json:"allocates,omitempty"`
	// CallsEval reports that the function reaches an Engine full evaluation
	// (Delays/Energy/...), directly or through same-package calls. Loops
	// over such functions are candidate loops to ctxpoll.
	CallsEval bool `json:"callseval,omitempty"`
	// PollsCtx reports that the function observes a context.Context
	// (ctx.Err/ctx.Done), directly or through same-package calls; calling it
	// counts as a cancellation poll to ctxpoll.
	PollsCtx bool `json:"pollsctx,omitempty"`
}

// PkgFacts bundles one package's cross-package facts: per-function behavior
// facts under "Func" / "Type.Method" keys, and the unit-annotation table of
// its declaration sites (schema cmosvet/units/v1, consumed by dimcheck).
type PkgFacts struct {
	Funcs map[string]FuncFacts
	// Units maps declaration keys — "Type.Field", "ConstName",
	// "Func.param.x", "Type.Method.return" — to canonical unit expressions
	// (Dim.String() / ParseUnit round-trip).
	Units map[string]string
}

// Empty reports a facts value carrying no information (unknown package).
func (f PkgFacts) Empty() bool { return f.Funcs == nil && f.Units == nil }

// FactProvider hands a pass the facts of any package by (normalized) import
// path; the zero PkgFacts means the package is unknown (standard library,
// unanalyzed).
type FactProvider interface {
	PackageFacts(path string) PkgFacts
}

// FactsSchema identifies the vetx facts serialization.
const FactsSchema = "cmosvet/facts/v1"

type factsFile struct {
	Schema string               `json:"schema"`
	Funcs  map[string]FuncFacts `json:"funcs,omitempty"`
	// The unit table rides the same file under its own schema tag so the
	// two fact families can version independently.
	UnitsSchema string            `json:"unitsSchema,omitempty"`
	Units       map[string]string `json:"units,omitempty"`
}

// EncodeFacts serializes package facts for a .vetx file (deterministic: JSON
// object keys marshal sorted).
func EncodeFacts(f PkgFacts) []byte {
	file := factsFile{Schema: FactsSchema, Funcs: f.Funcs}
	if len(f.Units) > 0 {
		file.UnitsSchema = UnitsSchema
		file.Units = f.Units
	}
	b, err := json.Marshal(file)
	if err != nil { // maps of bools and strings cannot fail to marshal
		return []byte(`{"schema":"` + FactsSchema + `"}`)
	}
	return append(b, '\n')
}

// DecodeFacts parses a .vetx facts payload; unknown or legacy payloads (other
// tools' vetx, the pre-facts placeholder) decode to the zero PkgFacts rather
// than erroring, because missing facts only widen what the analyzers accept.
// A units block under the wrong schema is dropped on its own.
func DecodeFacts(data []byte) PkgFacts {
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil || f.Schema != FactsSchema {
		return PkgFacts{}
	}
	out := PkgFacts{Funcs: f.Funcs}
	if f.UnitsSchema == UnitsSchema {
		out.Units = f.Units
	}
	return out
}

var hotpathRx = regexp.MustCompile(`^//\s*cmosvet:hotpath\b`)

// ComputePkgFacts derives the facts of one loaded package from source: the
// directive and allocation scans per declaration, then a fixpoint closing
// CallsEval/PollsCtx over same-package calls (so core's evalPoint marks every
// helper that funnels into it, and Problem.Canceled marks its wrappers as
// polls).
func ComputePkgFacts(p *LoadedPackage) PkgFacts {
	facts := map[string]FuncFacts{}
	calls := map[string]map[string]bool{} // caller key → same-package callee keys
	selfPath := normalizePkgPath(p.Types.Path())

	for _, f := range p.Files {
		hotLines := directiveLines(p.Fset, f, hotpathRx)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declKey(fd)
			ff := FuncFacts{
				Hotpath:   hotpathMarked(p.Fset, fd, hotLines),
				Allocates: len(allocSites(fd.Body, p.Info, p.Types)) > 0,
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isEngineEvalCall(p.Info, call) {
					ff.CallsEval = true
				}
				if isCtxPollCall(p.Info, call) {
					ff.PollsCtx = true
				}
				if path, ckey, ok := calleeRef(p.Info, call); ok && normalizePkgPath(path) == selfPath {
					if calls[key] == nil {
						calls[key] = map[string]bool{}
					}
					calls[key][ckey] = true
				}
				return true
			})
			facts[key] = ff
		}
	}

	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			cf := facts[caller]
			for ckey := range callees {
				tf := facts[ckey]
				if tf.CallsEval && !cf.CallsEval {
					cf.CallsEval = true
					changed = true
				}
				if tf.PollsCtx && !cf.PollsCtx {
					cf.PollsCtx = true
					changed = true
				}
			}
			facts[caller] = cf
		}
	}
	return PkgFacts{Funcs: facts, Units: collectUnits(p.Files, p.Info).UnitDecls()}
}

// directiveLines returns the line numbers of comments matching rx in file f.
func directiveLines(fset *token.FileSet, f *ast.File, rx *regexp.Regexp) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rx.MatchString(c.Text) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// hotpathMarked reports whether fd carries a //cmosvet:hotpath directive: in
// its doc comment, or on any comment line in the gap directly above the
// declaration (which also covers directives stacked with other comments).
func hotpathMarked(fset *token.FileSet, fd *ast.FuncDecl, hotLines map[int]bool) bool {
	if len(hotLines) == 0 {
		return false
	}
	declLine := fset.Position(fd.Pos()).Line
	from := declLine - 1
	if fd.Doc != nil {
		from = fset.Position(fd.Doc.Pos()).Line
	}
	for l := from; l < declLine; l++ {
		if hotLines[l] {
			return true
		}
	}
	return false
}

// declKey is the PkgFacts key of a declaration: "Func", or "Type.Method".
func declKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
			return tn + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// calleeRef resolves a call to the callee's (package path, facts key): plain
// function calls, pkg-qualified calls and method calls on named types.
// Indirect calls through function values (closures, params) do not resolve.
func calleeRef(info *types.Info, call *ast.CallExpr) (path, key string, ok bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, isFunc := info.Uses[fn].(*types.Func); isFunc && f.Pkg() != nil {
			return f.Pkg().Path(), f.Name(), true
		}
	case *ast.SelectorExpr:
		if sel, isMethod := info.Selections[fn]; isMethod && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path(), named.Obj().Name() + "." + fn.Sel.Name, true
			}
			return "", "", false
		}
		if x, isID := fn.X.(*ast.Ident); isID {
			if pn, isPkg := info.Uses[x].(*types.PkgName); isPkg {
				return pn.Imported().Path(), fn.Sel.Name, true
			}
		}
	}
	return "", "", false
}

// engineEvalMethods are the Engine entry points that evaluate the whole
// circuit — the "one candidate evaluation" granularity of the PR 8
// cancellation contract. Per-gate probes (ProbeWidth, GateDelayWith,
// GateDelayOverride, GateEnergy) and incremental Bound* reads are deliberately
// excluded: a width-solve pass inside one candidate may loop over them
// without polling.
var engineEvalMethods = map[string]bool{
	"Delays": true, "Arrivals": true, "Slacks": true,
	"CriticalDelay": true, "CriticalPath": true,
	"Energy": true, "MeetsBudgets": true,
}

// isEngineEvalCall reports a call to an eval.Engine full-circuit evaluation.
func isEngineEvalCall(info *types.Info, call *ast.CallExpr) bool {
	path, typeName, method, ok := methodOnInfo(info, call)
	return ok && pathHasSuffix(path, "internal/eval") && typeName == "Engine" && engineEvalMethods[method]
}

// isCtxPollCall reports a direct context observation: ctx.Err() or ctx.Done()
// on a context.Context value.
func isCtxPollCall(info *types.Info, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return tv.Type.String() == "context.Context"
}

// methodOnInfo is Pass.methodOn without the Pass: resolves a method call to
// (receiver package path, receiver type name, method name).
func methodOnInfo(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), sel.Sel.Name, true
}

// funcFact looks a callee up through the pass's fact provider; the zero
// FuncFacts (with ok=false) comes back for unknown packages or functions.
func (p *Pass) funcFact(path, key string) (FuncFacts, bool) {
	if p.Facts == nil {
		return FuncFacts{}, false
	}
	pf := p.Facts.PackageFacts(normalizePkgPath(path))
	if pf.Funcs == nil {
		return FuncFacts{}, false
	}
	f, ok := pf.Funcs[key]
	return f, ok
}

// unitFact resolves a declaration's unit through the pass's fact provider;
// ⊤ (with ok=false) comes back for unknown packages or unannotated keys.
func (p *Pass) unitFact(path, key string) (Dim, bool) {
	if p.Facts == nil {
		return TopDim(), false
	}
	pf := p.Facts.PackageFacts(normalizePkgPath(path))
	expr, ok := pf.Units[key]
	if !ok {
		return TopDim(), false
	}
	d, err := ParseUnit(expr)
	if err != nil {
		return TopDim(), false
	}
	return d, true
}

// --- allocation-site scanning (shared by the Allocates fact and hotalloc) ---

type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites lists the heap-allocating constructs under root:
//
//   - make and new;
//   - composite literals of slice or map type, and address-taken composite
//     literals (&T{...} escapes);
//   - closures that capture enclosing locals;
//   - non-constant string concatenation (+ and +=);
//   - implicit interface boxing: a non-interface value converted or passed
//     where an interface is expected.
//
// append is deliberately absent — the repo's hot paths append into
// preallocated scratch (e.g. the incremental dirty heap), which stays
// allocation-free at steady state; the benchmark allocation gate backstops
// capacity bugs. Arguments of panic calls are exempt: a panic is already off
// the hot path.
func allocSites(root ast.Node, info *types.Info, pkg *types.Package) []allocSite {
	var sites []allocSite
	skipLit := map[*ast.CompositeLit]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, isID := ast.Unparen(n.Fun).(*ast.Ident); isID {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make", "new":
						sites = append(sites, allocSite{n.Pos(), id.Name})
					case "panic":
						return false // cold path: don't charge the argument
					}
					return true
				}
			}
			sites = append(sites, boxingSites(n, info)...)
		case *ast.CompositeLit:
			if skipLit[n] {
				return true
			}
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					sites = append(sites, allocSite{n.Pos(), "slice literal"})
				case *types.Map:
					sites = append(sites, allocSite{n.Pos(), "map literal"})
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					sites = append(sites, allocSite{n.Pos(), "address-taken composite literal"})
					skipLit[cl] = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstExpr(info, n) {
				sites = append(sites, allocSite{n.Pos(), "string concatenation"})
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				sites = append(sites, allocSite{n.Pos(), "string concatenation"})
			}
		case *ast.FuncLit:
			if closureCaptures(n, info, pkg) {
				sites = append(sites, allocSite{n.Pos(), "capturing closure"})
			}
		}
		return true
	})
	return sites
}

// boxingSites flags call arguments implicitly converted to interface types,
// and explicit conversions to interfaces.
func boxingSites(call *ast.CallExpr, info *types.Info) []allocSite {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		// Conversion T(x): boxes when T is an interface and x is not.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxesArg(info, call.Args[0]) {
			return []allocSite{{call.Pos(), "interface conversion"}}
		}
		return nil
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	if !isSig {
		return nil
	}
	var sites []allocSite
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // f(xs...): the slice passes through unboxed
			} else if sl, isSlice := last.(*types.Slice); isSlice {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxesArg(info, arg) {
			sites = append(sites, allocSite{arg.Pos(), "interface boxing"})
		}
	}
	return sites
}

// boxesArg reports whether passing arg to an interface parameter allocates:
// its static type is concrete (nil and existing interface values pass
// through).
func boxesArg(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// closureCaptures reports whether the function literal references a variable
// of an enclosing function (package-level variables and its own
// locals/params don't count — only captures force a heap closure).
func closureCaptures(lit *ast.FuncLit, info *types.Info, pkg *types.Package) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || captures {
			return !captures
		}
		v, isVar := info.Uses[id].(*types.Var)
		if !isVar || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent() == types.Universe || v.Parent() == pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}
