package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the PR 8 cancellation contract: optimization runs abort
// at candidate boundaries. Concretely, in internal/core and
// internal/optimize, every loop whose iteration reaches an Engine
// full-circuit evaluation (a "candidate loop") must observe the run's
// context on every path that completes an iteration — otherwise a served
// job's cancel would silently stop working for that loop shape.
//
// What counts as reaching evaluation: a direct call to an Engine
// full-evaluation method (Delays/Arrivals/Slacks/CriticalDelay/CriticalPath/
// Energy/MeetsBudgets), a call to a same-module function whose CallsEval
// fact is set (computed transitively within each package — core's evalPoint
// and everything funneling into it), or a call to a local closure whose body
// does either. Per-gate probes (ProbeWidth, GateDelayWith, GateDelayOverride)
// are deliberately not "evaluation": a width-solve pass inside one candidate
// loops over them by design and polls only at its candidate boundary.
//
// What counts as a poll: ctx.Err()/ctx.Done() on a context.Context, a call
// to a function whose PollsCtx fact is set (Problem.Canceled and its
// wrappers), or a call to a local closure that polls.
//
// The check is path-sensitive: the loop body's CFG is rebuilt in loop-body
// mode (continue and the fall-through end both reach the iteration latch;
// break/return paths leave the loop and are exempt) and a must-dataflow
// verifies a poll on every latch-reaching path. A nested loop's poll does
// not satisfy the outer loop (the nested loop may run zero iterations) —
// poll in each candidate loop.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "candidate loops reaching engine evaluation must poll the run context every iteration",
	Run:  runCtxPoll,
}

// ctxPollPkgs are the packages holding candidate loops: the optimization
// procedures and the numeric search kernels they call.
var ctxPollPkgs = []string{"internal/core", "internal/optimize"}

func runCtxPoll(pass *Pass) error {
	if !pathIn(normalizePkgPath(pass.Pkg.Path()), ctxPollPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.isTestFile(fd.Pos()) {
				continue
			}
			checkFuncLoops(pass, fd)
		}
	}
	return nil
}

// localTraits classifies the closures bound to variables inside one function
// so that calls through them resolve: `evalGroups := func(...) {...}` makes
// a later `evalGroups(g)` an evaluation call.
type localTraits struct {
	pass  *Pass
	evals map[*types.Var]bool
	polls map[*types.Var]bool
}

func gatherLocalTraits(pass *Pass, fd *ast.FuncDecl) *localTraits {
	lt := &localTraits{pass: pass, evals: map[*types.Var]bool{}, polls: map[*types.Var]bool{}}
	// Fixpoint so closures calling earlier closures classify too; bodies are
	// scanned with the traits known so far, repeated until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, isLit := ast.Unparen(rhs).(*ast.FuncLit)
				if !isLit {
					continue
				}
				id, isID := as.Lhs[i].(*ast.Ident)
				if !isID {
					continue
				}
				v := lt.lhsVar(id)
				if v == nil {
					continue
				}
				if !lt.evals[v] && lt.scan(lit.Body, lt.callsEval) {
					lt.evals[v] = true
					changed = true
				}
				if !lt.polls[v] && lt.scan(lit.Body, lt.isPoll) {
					lt.polls[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return lt
}

func (lt *localTraits) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := lt.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := lt.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// scan reports whether any call under root satisfies pred.
func (lt *localTraits) scan(root ast.Node, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pred(call) {
			found = true
		}
		return !found
	})
	return found
}

// callsEval reports whether one call reaches engine evaluation.
func (lt *localTraits) callsEval(call *ast.CallExpr) bool {
	if isEngineEvalCall(lt.pass.TypesInfo, call) {
		return true
	}
	if path, key, ok := calleeRef(lt.pass.TypesInfo, call); ok {
		if f, known := lt.pass.funcFact(path, key); known && f.CallsEval {
			return true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, isVar := lt.pass.TypesInfo.Uses[id].(*types.Var); isVar && lt.evals[v] {
			return true
		}
	}
	return false
}

// isPoll reports whether one call observes the run context.
func (lt *localTraits) isPoll(call *ast.CallExpr) bool {
	if isCtxPollCall(lt.pass.TypesInfo, call) {
		return true
	}
	if path, key, ok := calleeRef(lt.pass.TypesInfo, call); ok {
		if f, known := lt.pass.funcFact(path, key); known && f.PollsCtx {
			return true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, isVar := lt.pass.TypesInfo.Uses[id].(*types.Var); isVar && lt.polls[v] {
			return true
		}
	}
	return false
}

func checkFuncLoops(pass *Pass, fd *ast.FuncDecl) {
	lt := gatherLocalTraits(pass, fd)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch s := n.(type) {
		case *ast.LabeledStmt:
			// Keep the label with its loop so `continue L` routes to the
			// right latch in the loop-body CFG; then recurse into the body.
			switch inner := s.Stmt.(type) {
			case *ast.ForStmt:
				checkLoop(pass, lt, inner, inner.Body, s.Label.Name)
				ast.Inspect(inner.Body, visit)
				return false
			case *ast.RangeStmt:
				checkLoop(pass, lt, inner, inner.Body, s.Label.Name)
				ast.Inspect(inner.Body, visit)
				return false
			}
		case *ast.ForStmt:
			checkLoop(pass, lt, s, s.Body, "")
		case *ast.RangeStmt:
			checkLoop(pass, lt, s, s.Body, "")
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// checkLoop reports the loop when it reaches evaluation but some
// iteration-completing path carries no poll.
func checkLoop(pass *Pass, lt *localTraits, loop ast.Stmt, body *ast.BlockStmt, label string) {
	if !lt.scan(body, lt.callsEval) {
		return
	}
	cfg := BuildLoopBody(loop, label)
	if cfg == nil {
		return
	}
	// Must-analysis: state is "polled so far on every path"; meet is AND.
	transfer := func(b *Block, in bool) bool {
		if in {
			return true
		}
		for _, n := range b.Nodes {
			if lt.scan(n, lt.isPoll) {
				return true
			}
		}
		return in
	}
	meet := func(a, b bool) bool { return a && b }
	eq := func(a, b bool) bool { return a == b }
	in, _ := Forward(cfg, false, transfer, meet, eq)
	polled, latchReached := in[cfg.Exit]
	if latchReached && !polled {
		pass.Reportf(loop.Pos(), "loop reaches engine evaluation but does not poll Spec.Ctx on every iteration path; add an early `if ctx.Err() != nil` (or Canceled()) check so served jobs stay cancelable at candidate boundaries")
	}
}
