package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
)

func dim(t *testing.T, expr string) analysis.Dim {
	t.Helper()
	d, err := analysis.ParseUnit(expr)
	if err != nil {
		t.Fatalf("ParseUnit(%q): %v", expr, err)
	}
	return d
}

// TestDimAlgebra pins the group laws of the exact fragment: Mul is
// associative and commutative, every exact dimension has an inverse, and the
// dimensionless element is the identity.
func TestDimAlgebra(t *testing.T) {
	V, A, s := analysis.BaseDim("V"), analysis.BaseDim("A"), analysis.BaseDim("s")
	one := analysis.NoDim()

	if got := V.Mul(A).Mul(s); !got.Equal(s.Mul(A.Mul(V))) {
		t.Fatalf("Mul not associative/commutative: %s vs %s", got, s.Mul(A.Mul(V)))
	}
	J := dim(t, "J")
	if !V.Mul(A).Mul(s).Equal(J) {
		t.Fatalf("V·A·s = %s, want J", V.Mul(A).Mul(s))
	}
	if !J.Mul(J.Inv()).Equal(one) {
		t.Fatalf("J·J⁻¹ = %s, want 1", J.Mul(J.Inv()))
	}
	if !J.Mul(one).Equal(J) || !one.Mul(J).Equal(J) {
		t.Fatal("dimensionless is not the Mul identity")
	}
	// The physics identities the checker leans on: C·V² = J, J·Hz = W,
	// (V/A)·F = s.
	F, Hz, W := dim(t, "F"), dim(t, "Hz"), dim(t, "W")
	if !F.Mul(V).Mul(V).Equal(J) {
		t.Fatalf("F·V² = %s, want J", F.Mul(V).Mul(V))
	}
	if !J.Mul(Hz).Equal(W) {
		t.Fatalf("J·Hz = %s, want W", J.Mul(Hz))
	}
	if !V.Div(A).Mul(F).Equal(s) {
		t.Fatalf("(V/A)·F = %s, want s", V.Div(A).Mul(F))
	}
}

func TestDimSpecialElements(t *testing.T) {
	V := analysis.BaseDim("V")
	top, konst, bottom := analysis.TopDim(), analysis.ConstDim(), analysis.BottomDim()

	// ⊤ absorbs under Mul; ~ is the identity; ⊥ absorbs below everything.
	if !top.Mul(V).IsTop() || !V.Mul(top).IsTop() {
		t.Fatal("⊤ must absorb under Mul")
	}
	if !konst.Mul(V).Equal(V) || !V.Mul(konst).Equal(V) {
		t.Fatal("~ must be the Mul identity")
	}
	if !bottom.Mul(V).IsBottom() {
		t.Fatal("⊥·V must stay ⊥")
	}
	// Join: ⊥ identity, ⊤ absorbing, ~ yields to exact, exact conflict → ⊤.
	if !bottom.Join(V).Equal(V) || !V.Join(bottom).Equal(V) {
		t.Fatal("⊥ must be the Join identity")
	}
	if !top.Join(V).IsTop() {
		t.Fatal("⊤ must absorb under Join")
	}
	if !konst.Join(V).Equal(V) {
		t.Fatal("~ ⊔ V must be V")
	}
	if !V.Join(analysis.BaseDim("s")).IsTop() {
		t.Fatal("V ⊔ s must degrade to ⊤")
	}
	// Compatibility: only two unequal exacts clash.
	if V.Compatible(analysis.BaseDim("s")) {
		t.Fatal("V and s must not be compatible")
	}
	for _, d := range []analysis.Dim{top, konst, bottom} {
		if !d.Compatible(V) || !V.Compatible(d) {
			t.Fatalf("%s must be compatible with V", d)
		}
	}
	// ~ and ⊤ survive Pow unchanged; dimensionless stays dimensionless.
	if !konst.Pow(3, 1).IsConst() || !top.Pow(2, 1).IsTop() {
		t.Fatal("Pow must preserve ~ and ⊤")
	}
	if !analysis.NoDim().Pow(7, 2).IsDimensionless() {
		t.Fatal("1^r must stay dimensionless")
	}
}

func TestDimPowRational(t *testing.T) {
	s := analysis.BaseDim("s")
	if got := s.Pow(1, 2).Mul(s.Pow(1, 2)); !got.Equal(s) {
		t.Fatalf("√s·√s = %s, want s", got)
	}
	if got := s.Pow(0, 1); !got.IsDimensionless() {
		t.Fatalf("s^0 = %s, want 1", got)
	}
	J := dim(t, "J")
	half := J.Pow(1, 2)
	if got := half.String(); got != "A^1:2*V^1:2*s^1:2" {
		t.Fatalf("J^(1/2) prints %q", got)
	}
	if !half.Mul(half).Equal(J) {
		t.Fatalf("(J^1:2)² = %s, want J", half.Mul(half))
	}
}

// TestParseUnitRoundTrip checks String/ParseUnit agree on canonical and
// composite forms, including symbolic exponents.
func TestParseUnitRoundTrip(t *testing.T) {
	cases := []string{"V", "A", "s", "m", "K", "F", "W", "J", "Hz", "1",
		"A/V^a", "V^2", "s^-1", "V^1:2", "A*s/V", "V/A", "W/m", "?", "~"}
	for _, c := range cases {
		d := dim(t, c)
		again := dim(t, d.String())
		if !d.Equal(again) {
			t.Errorf("%q: %s does not re-parse to the same dimension (got %s)", c, d, again)
		}
	}
	// Canonical printing: derived names win, quotients normalize.
	prints := map[string]string{
		"V*A":     "W",
		"A*s/V":   "F",
		"V*A*s":   "J",
		"s^-1":    "Hz",
		"1/s":     "Hz",
		"J/s":     "W",
		"W/V":     "A",
		"F*V*V/J": "1",
	}
	for in, want := range prints {
		if got := dim(t, in).String(); got != want {
			t.Errorf("ParseUnit(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseUnitSymbolic(t *testing.T) {
	k := dim(t, "A/V^a")
	// (A/V^a)·V^a = A: the symbolic atom cancels against itself only.
	va := dim(t, "V^a")
	if got := k.Mul(va); !got.Equal(analysis.BaseDim("A")) {
		t.Fatalf("(A/V^a)·V^a = %s, want A", got)
	}
	// V^a must never cancel against integer powers of V.
	if got := k.Mul(analysis.BaseDim("V")); got.Equal(analysis.BaseDim("A")) {
		t.Fatal("V^a cancelled against V")
	}
	if got := dim(t, "V^2a").String(); got != "V^2a" {
		t.Fatalf("V^2a prints %q", got)
	}
	for _, bad := range []string{"J^a", "V^", "Q", "V^a^b", "1^2", ""} {
		if _, err := analysis.ParseUnit(bad); err == nil {
			t.Errorf("ParseUnit(%q) should fail", bad)
		}
	}
}
