package analysis

import (
	"go/ast"
	"strings"
)

// ObsWriteOnly enforces the PR 3 invariant: instrumentation never changes
// optimizer outputs. Outside internal/obs itself, internal/cli (the tool
// shim that freezes registries into manifests), internal/serve (which
// flattens per-job span snapshots into SSE progress events — serialization,
// never control flow), cmd/* and *_test.go files:
//
//   - obs state may be written (Counter.Add/Set, Histogram.Observe,
//     Span.Start, WorkerStat.Record, ...) but never read: calls to the read
//     API — Counter.Value, Registry.Snapshot/Wall, Histogram.Snapshot,
//     Span.Snapshot — are flagged, because a read is the only way
//     instrumentation can leak into control flow;
//   - eval.Engine.FlushObs may be invoked only from the primary-engine
//     flush path: the internal/core drivers that own the primary engine
//     (after absorbing clone metrics), internal/cli and cmd tools. A flush
//     from anywhere else — in particular from a worker body handed to
//     internal/parallel — would export clone deltas that the primary flush
//     later double-counts.
var ObsWriteOnly = &Analyzer{
	Name: "obswriteonly",
	Doc:  "obs instrumentation is write-only outside the observability and tool layers",
	Run:  runObsWriteOnly,
}

// obsReadMethods is the read API of internal/obs, per receiver type.
var obsReadMethods = map[string]map[string]bool{
	"Counter":    {"Value": true},
	"Registry":   {"Snapshot": true, "Wall": true},
	"Histogram":  {"Snapshot": true},
	"Span":       {"Snapshot": true},
	"WorkerStat": {},
}

// obsReadAllowed may read instrumentation state: the obs layer itself and
// the tool layers that serialize it.
var obsReadAllowed = []string{"internal/obs", "internal/cli", "internal/serve"}

// flushAllowed may call eval.Engine.FlushObs: the engine, the core drivers
// that own the primary engine, and the tool layers.
var flushAllowed = []string{"internal/eval", "internal/core", "internal/cli"}

func runObsWriteOnly(pass *Pass) error {
	pkgPath := normalizePkgPath(pass.Pkg.Path())
	if isCmdPkg(pkgPath) {
		return nil
	}
	readExempt := pathIn(pkgPath, obsReadAllowed...)
	flushExempt := pathIn(pkgPath, flushAllowed...)
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recvPath, recvType, method, ok := pass.methodOn(call)
			if !ok {
				return true
			}
			if !readExempt && pathHasSuffix(recvPath, "internal/obs") {
				if reads, known := obsReadMethods[recvType]; known && reads[method] {
					pass.Reportf(call.Pos(),
						"obs.%s.%s reads instrumentation state outside the observability/tool layers; obs data must never feed back into an algorithm (write-only invariant)",
						recvType, method)
				}
			}
			if pathHasSuffix(recvPath, "internal/eval") && recvType == "Engine" && method == "FlushObs" {
				if !flushExempt {
					pass.Reportf(call.Pos(),
						"FlushObs outside the primary-engine flush path (allowed: internal/core drivers, internal/cli, cmd tools); flushing elsewhere double-counts clone metrics")
				} else if inParallelBody(pass, f, call) {
					pass.Reportf(call.Pos(),
						"FlushObs inside a parallel worker body: only the primary engine flushes, after clone metrics are absorbed")
				}
			}
			return true
		})
	}
	return nil
}

// isCmdPkg reports whether the package is a command-line tool (cmd/*).
func isCmdPkg(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// inParallelBody reports whether the call lies inside a function literal
// passed to internal/parallel's For/Map/FirstError — i.e. a worker body.
func inParallelBody(pass *Pass, f *ast.File, target *ast.CallExpr) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pass.pkgFunc(outer)
		if !ok || !pathHasSuffix(path, "internal/parallel") {
			return true
		}
		switch name {
		case "For", "Map", "FirstError":
		default:
			return true
		}
		for _, arg := range outer.Args {
			lit, isLit := arg.(*ast.FuncLit)
			if isLit && lit.Pos() <= target.Pos() && target.End() <= lit.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
