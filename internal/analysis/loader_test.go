package analysis_test

import (
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"cmosopt/internal/analysis"
)

func loaderRoot(t *testing.T, elem ...string) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join(append([]string{"testdata", "loader"}, elem...)...))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasSymbol(p *analysis.LoadedPackage, name string) bool {
	return p.Types.Scope().Lookup(name) != nil
}

func TestLoaderBuildConstraints(t *testing.T) {
	l := analysis.NewLoader(analysis.Root{Prefix: "", Dir: loaderRoot(t, "src")})
	p, err := l.Load("taggy")
	if err != nil {
		t.Fatalf("Load(taggy): %v", err)
	}
	if !hasSymbol(p, "A") {
		t.Fatal("unconditional file not loaded")
	}
	// b_off.go redeclares A behind an unset build tag: loading it would have
	// failed type-checking, so reaching here already proves the exclusion —
	// the symbol check just makes the failure mode explicit.
	if hasSymbol(p, "BOff") {
		t.Fatal("file behind unset //go:build tag was loaded")
	}
	if runtime.GOOS != "windows" && hasSymbol(p, "CWindows") {
		t.Fatal("_windows GOOS-suffixed file was loaded on " + runtime.GOOS)
	}
	if hasSymbol(p, "THelper") {
		t.Fatal("_test.go file loaded without IncludeTests")
	}
}

func TestLoaderIncludeTests(t *testing.T) {
	l := analysis.NewLoader(analysis.Root{Prefix: "", Dir: loaderRoot(t, "src")})
	l.IncludeTests = true
	p, err := l.Load("taggy")
	if err != nil {
		t.Fatalf("Load(taggy): %v", err)
	}
	if !hasSymbol(p, "THelper") {
		t.Fatal("in-package _test.go symbol missing with IncludeTests")
	}
	// The external test package's file parses but must be dropped, never
	// merged into the primary package.
	for _, f := range p.Files {
		if f.Name.Name != "taggy" {
			t.Fatalf("foreign package %q mixed into taggy", f.Name.Name)
		}
	}
	if hasSymbol(p, "External") {
		t.Fatal("external test package symbol merged into the package under test")
	}
}

func TestLoaderImportCycle(t *testing.T) {
	l := analysis.NewLoader(analysis.Root{Prefix: "", Dir: loaderRoot(t, "src")})
	_, err := l.Load("cyca")
	if err == nil {
		t.Fatal("Load(cyca) succeeded; want import-cycle error")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("Load(cyca) error = %v, want mention of an import cycle", err)
	}
	// The failed load must not poison the loader: an unrelated package still
	// loads afterwards.
	if _, err := l.Load("taggy"); err != nil {
		t.Fatalf("Load(taggy) after cycle error: %v", err)
	}
}

func TestPackageDirsSkipsNonBuildTrees(t *testing.T) {
	root := loaderRoot(t, "walk")
	dirs, err := analysis.PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	sort.Strings(rel)
	want := []string{"good", "nested/deeper"}
	if len(rel) != len(want) {
		t.Fatalf("PackageDirs = %v, want %v (vendor, testdata, _skip, .hidden and file-less dirs skipped)", rel, want)
	}
	for i := range want {
		if rel[i] != want[i] {
			t.Fatalf("PackageDirs = %v, want %v", rel, want)
		}
	}
}
