// Package eval (fixture): the engine surface locksafe recognizes as "engine
// evaluation" when called under a held lock.
package eval

// Engine stubs the unified evaluation engine.
type Engine struct{ n int }

// Energy is a full-circuit evaluation: it takes the coeff-cache shard locks.
func (e *Engine) Energy(v float64) float64 { return v * float64(e.n) }
