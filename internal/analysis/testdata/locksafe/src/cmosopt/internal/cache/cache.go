// Package cache (fixture): lock-discipline cases for the locksafe analyzer,
// shaped like the coefficient-cache shards.
package cache

import (
	"sync"

	"cmosopt/internal/eval"
)

type shard struct {
	mu sync.Mutex
	m  map[int]float64
}

// Lookup is the straight-line lock/unlock idiom the shards use: no defer,
// no closure, release on the single exit path.
func (s *shard) Lookup(k int) (float64, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Deferred releases through defer: every exit path is covered.
func (s *shard) Deferred(k int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// DeferredClosure releases inside a deferred function literal.
func (s *shard) DeferredClosure(k int, hits *int) float64 {
	s.mu.Lock()
	defer func() {
		*hits++
		s.mu.Unlock()
	}()
	return s.m[k]
}

// Leak returns early with the lock held.
func (s *shard) Leak(k int) float64 {
	s.mu.Lock() // want `s.mu is not released on every exit path of Leak`
	if v, ok := s.m[k]; ok {
		return v
	}
	s.mu.Unlock()
	return 0
}

// PanicExit is clean: the path that fails ends in panic (unwinding runs the
// defers; a poisoned lock is moot), the normal path unlocks.
func (s *shard) PanicExit(k int) float64 {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		panic("cache: missing key")
	}
	s.mu.Unlock()
	return v
}

type table struct {
	mu sync.RWMutex
	m  map[int]int
}

// ReadPath pairs RLock with RUnlock.
func (t *table) ReadPath(k int) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

// Mismatch releases a read lock with Unlock: the RLock is never satisfied.
func (t *table) Mismatch(k int) int {
	t.mu.RLock() // want `t.mu is not released on every exit path of Mismatch`
	v := t.m[k]
	t.mu.Unlock()
	return v
}

type flusher struct{}

func (f *flusher) FlushObs() {}

// BadFlush flushes observability counters while holding the shard lock.
func (s *shard) BadFlush(f *flusher) {
	s.mu.Lock()
	f.FlushObs() // want `FlushObs while s.mu is held`
	s.mu.Unlock()
}

// GoodFlush flushes after releasing.
func (s *shard) GoodFlush(f *flusher) {
	s.mu.Lock()
	s.mu.Unlock()
	f.FlushObs() // ok: lock released
}

// BadSend performs a blocking channel send under the lock.
func (s *shard) BadSend(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while s.mu is held`
	s.mu.Unlock()
}

// SelectSend is exempt: a select communication cannot block the holder when
// a default (or peer) case exists.
func (s *shard) SelectSend(ch chan int) {
	s.mu.Lock()
	select {
	case ch <- 1: // ok: select communication
	default:
	}
	s.mu.Unlock()
}

// GoSend hands the send to another goroutine: the holder does not block.
func (s *shard) GoSend(ch chan int) {
	s.mu.Lock()
	go func() { ch <- 1 }() // ok: runs on another goroutine
	s.mu.Unlock()
}

// BadEval runs a full engine evaluation under the shard lock — evaluation
// takes the coeff-cache shard locks itself.
func (s *shard) BadEval(e *eval.Engine) {
	s.mu.Lock()
	_ = e.Energy(0) // want `engine evaluation while s.mu is held`
	s.mu.Unlock()
}

// Conditional uses the locked-flag idiom: beyond the analyzer's state, so it
// carries the documented suppression.
func (s *shard) Conditional(k int, early bool) float64 {
	s.mu.Lock() //cmosvet:allow locksafe — locked-flag idiom: ownership tracked by `locked`, released on both paths below
	locked := true
	if early {
		s.mu.Unlock()
		locked = false
	}
	v := s.m[k]
	if locked {
		s.mu.Unlock()
	}
	return v
}
