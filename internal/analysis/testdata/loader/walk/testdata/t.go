package tdata

func T() int { return 4 }
