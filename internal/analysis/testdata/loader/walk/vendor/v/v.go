package v

func V() int { return 3 }
