package deeper

func D() int { return 2 }
