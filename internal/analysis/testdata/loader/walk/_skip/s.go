package skip

func S() int { return 5 }
