package hidden

func H() int { return 6 }
