package good

func G() int { return 1 }
