// Package cycb (fixture): the other half of the cycle.
package cycb

import "cyca"

var W = cyca.V + 1
