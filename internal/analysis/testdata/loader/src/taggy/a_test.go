package taggy

// THelper is an in-package test symbol: visible only with IncludeTests.
func THelper() int { return A() + 1 }
