package taggy

// CWindows is selected by its GOOS file suffix only on windows.
func CWindows() int { return 3 }
