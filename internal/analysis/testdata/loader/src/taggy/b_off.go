//go:build cmosvet_fixture_off

package taggy

// BOff lives behind a build tag no configuration sets: the loader must never
// parse this file.
func BOff() int { return 2 }

// Deliberately broken if it ever compiles alongside a.go:
func A() int { return 0 }
