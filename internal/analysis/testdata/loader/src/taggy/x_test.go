// External test package: the loader must never mix this into "taggy", even
// with IncludeTests set (it cannot type-check without the taggy import graph).
package taggy_test

// External would collide with nothing, but its file must simply be dropped.
func External() int { return 4 }
