// Package taggy (fixture): exercises the loader's build-constraint and test
// file handling.
package taggy

// A is in the unconditional file: always loaded.
func A() int { return 1 }
