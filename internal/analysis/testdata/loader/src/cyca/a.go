// Package cyca (fixture): half of a deliberate import cycle.
package cyca

import "cycb"

var V = cycb.W + 1
