// Package circuit (fixture): cross-package fact sources for hotalloc.
package circuit

// CSR mirrors the real compact adjacency view.
type CSR struct {
	Order      []int32
	LevelStart []int32
}

// LevelGates is hotpath-annotated: its own body is verified here, and
// hotpath callers elsewhere may call it.
//
//cmosvet:hotpath
func (s *CSR) LevelGates(l int) []int32 {
	return s.Order[s.LevelStart[l]:s.LevelStart[l+1]] // ok: subslice of existing backing array
}

// Alloc allocates; hotpath callers in other packages are flagged through
// this function's Allocates fact.
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// Plain is allocation-free without being hotpath: hot code may call it.
func Plain(s *CSR) int {
	return len(s.Order)
}
