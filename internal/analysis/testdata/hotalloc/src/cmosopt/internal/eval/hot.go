// Package eval (fixture): positive cases of the hotalloc analyzer — every
// heap-allocating construct inside a //cmosvet:hotpath function.
package eval

import (
	"cmosopt/internal/circuit"
)

// scratch is the preallocated reusable state hot functions write into.
type scratch struct {
	buf []float64
	ids []int
}

// Sweep contains one of each directly-allocating construct.
//
//cmosvet:hotpath
func Sweep(s *scratch, n int) {
	m := make([]float64, n) // want `make in hotpath function Sweep allocates`
	_ = m
	p := new(int) // want `new in hotpath function Sweep allocates`
	_ = p
	ids := []int{1, 2, 3} // want `slice literal in hotpath function Sweep allocates`
	_ = ids
	lut := map[int]bool{0: true} // want `map literal in hotpath function Sweep allocates`
	_ = lut
	sp := &scratch{} // want `address-taken composite literal in hotpath function Sweep allocates`
	_ = sp
}

// Capture returns a closure over its parameter — a heap closure.
//
//cmosvet:hotpath
func Capture(n int) func() int {
	f := func() int { return n } // want `capturing closure in hotpath function Capture allocates`
	return f
}

// Label concatenates non-constant strings.
//
//cmosvet:hotpath
func Label(name string) string {
	return name + "-hot" // want `string concatenation in hotpath function Label allocates`
}

func sink(v interface{}) {}

// Box passes a concrete value where an interface is expected.
//
//cmosvet:hotpath
func Box(x int) {
	sink(x) // want `interface boxing in hotpath function Box allocates`
}

// CallsAlloc reaches an allocation through a cross-package callee: the
// Allocates fact of circuit.Alloc travels to this package.
//
//cmosvet:hotpath
func CallsAlloc(c *circuit.CSR) int {
	circuit.Alloc(4)    // want `hotpath function CallsAlloc calls Alloc, which allocates`
	_ = c.LevelGates(0) // ok: callee is hotpath-annotated (verified where it lives)
	return circuit.Plain(c) // ok: allocation-free by direct inspection
}
