// Negative cases: constructs hotalloc deliberately tolerates, the allow
// directive's span binding, and reachability.
package eval

// coeffs mirrors the real per-operating-point value bundle.
type coeffs struct{ a, b float64 }

// Fill appends into preallocated scratch — append is not an alloc construct
// (steady state reuses capacity; the benchmark gate backstops capacity bugs).
//
//cmosvet:hotpath
func Fill(s *scratch, n int) {
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, float64(i)) // ok: append into scratch
	}
}

// At returns a value composite literal — stack, not heap.
//
//cmosvet:hotpath
func At(x float64) coeffs {
	return coeffs{a: x, b: 2 * x} // ok: value composite literal
}

// Guard panics on misuse; panic arguments are off the hot path.
//
//cmosvet:hotpath
func Guard(ok bool, tag string) {
	if !ok {
		panic("eval: misuse: " + tag) // ok: panic argument
	}
}

// LazyInit is the allow-span regression: the standalone directive above the
// if statement suppresses everything inside that statement's span — and
// nothing after it.
//
//cmosvet:hotpath
func LazyInit(s *scratch, n int) {
	//cmosvet:allow hotalloc — one-time lazy init; steady state reuses the buffer
	if s.buf == nil {
		s.buf = make([]float64, n) // suppressed: inside the annotated statement
	}
	s.ids = append(s.ids, n)
	m := make([]int, n) // want `make in hotpath function LazyInit allocates`
	_ = m
}

// Trailing is the same-line allow form.
//
//cmosvet:hotpath
func Trailing(n int) {
	m := make([]int, n) //cmosvet:allow hotalloc — deliberate: measured and amortized
	_ = m
}

// Early allocates only after an unconditional return: unreachable paths are
// not charged.
//
//cmosvet:hotpath
func Early(n int) []int {
	return nil
	s := make([]int, n) // ok: unreachable
	return s
}

// WithDefer defers a call to an allocating helper: deferred calls run off
// the measured path and their callee facts are not checked.
//
//cmosvet:hotpath
func WithDefer(s *scratch) int {
	defer trackDone() // ok: deferred call
	return len(s.buf)
}

func trackDone() {
	_ = []int{1} // allocates, but only ever called deferred
}

// Cold is unannotated: it may allocate freely.
func Cold(n int) []float64 {
	return make([]float64, n) // ok: not a hotpath function
}
