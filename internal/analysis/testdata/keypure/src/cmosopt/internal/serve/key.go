// Package serve (fixture): taint cases for the keypure analyzer — execution
// controls must never reach the cmosopt/key/v1 cache key.
package serve

import (
	"context"
	"strconv"
)

// Request mirrors the real serving request: problem identity plus execution
// controls that are never part of the cache key.
type Request struct {
	Kind    string
	Netlist string
	Budget  float64

	TimeoutMS int
	NoCache   bool
	Workers   int
}

const keySchema = "cmosopt/key/v1"

// keyForm is the canonical hashed form — the taint sink.
type keyForm struct {
	Schema  string
	Kind    string
	Netlist string
	Budget  float64
	Extra   string
}

// cacheKeyGood builds the key from problem identity only.
func cacheKeyGood(r *Request) keyForm {
	return keyForm{Schema: keySchema, Kind: r.Kind, Netlist: r.Netlist, Budget: r.Budget} // ok
}

// cacheKeyBad puts an execution control straight into the literal.
func cacheKeyBad(r *Request) keyForm {
	return keyForm{
		Schema: keySchema,
		Kind:   r.Kind,
		Budget: float64(r.TimeoutMS), // want `execution control r.TimeoutMS flows into cmosopt/key/v1 field Budget`
	}
}

// cacheKeyFlow launders the control through locals and a call before a field
// write — the dataflow follows it.
func cacheKeyFlow(r *Request) keyForm {
	t := r.TimeoutMS
	scaled := t * 1000
	k := keyForm{Schema: keySchema, Kind: r.Kind}
	k.Extra = strconv.Itoa(scaled) // want `execution control scaled flows into cmosopt/key/v1 field Extra`
	return k
}

// cacheKeyBranch taints on one branch only: the merge keeps the taint.
func cacheKeyBranch(r *Request, fast bool) keyForm {
	x := 0
	if fast {
		x = r.Workers
	}
	return keyForm{Schema: keySchema, Budget: float64(x)} // want `execution control x flows into cmosopt/key/v1 field Budget`
}

// cacheKeyRelaid kills the taint with a strong update before the sink.
func cacheKeyRelaid(r *Request) keyForm {
	v := r.TimeoutMS
	v = 0
	return keyForm{Schema: keySchema, Budget: float64(v)} // ok: overwritten before the sink
}

// cacheKeyCtx hashes the run context itself.
func cacheKeyCtx(ctx context.Context, r *Request) keyForm {
	return keyForm{Schema: keySchema, Extra: ctxName(ctx)} // want `execution control ctx \(context.Context\) flows into cmosopt/key/v1 field Extra`
}

func ctxName(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	return "ctx"
}

// gateOnControl reads controls to steer execution, not the key: no sink, no
// finding — even in a function that also builds a key.
func gateOnControl(r *Request, cached bool) (keyForm, bool) {
	if r.NoCache { // ok: gating execution, not keying
		return keyForm{}, false
	}
	return cacheKeyGood(r), cached
}

// debugKey carries the documented suppression.
func debugKey(r *Request) keyForm {
	//cmosvet:allow keypure — debug-trace key: includes the timeout for correlation, never stored in the shared cache
	return keyForm{Schema: keySchema, Extra: strconv.Itoa(r.TimeoutMS)}
}
