// Package other (fixture): keypure scopes to internal/serve; an identically
// shaped flow elsewhere is not a cache key.
package other

type keyForm struct {
	Extra int
}

type Request struct {
	TimeoutMS int
}

// Encode is fine here: outside internal/serve.
func Encode(r *Request) keyForm {
	return keyForm{Extra: r.TimeoutMS} // ok: not the serving layer
}
