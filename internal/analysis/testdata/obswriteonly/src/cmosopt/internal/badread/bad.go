// Package badread reads instrumentation state from algorithm code: the
// positive cases of the obswriteonly analyzer.
package badread

import (
	"cmosopt/internal/eval"
	"cmosopt/internal/obs"
)

// Steer consults obs state in control flow — exactly what the write-only
// invariant forbids.
func Steer(reg *obs.Registry, e *eval.Engine) float64 {
	c := reg.Counter("eval.gate_delay_calls")
	c.Add(1) // ok: writes are always allowed
	if c.Value() > 100 { // want `obs.Counter.Value reads instrumentation state`
		return 0
	}
	s := reg.Snapshot() // want `obs.Registry.Snapshot reads instrumentation state`
	if s.WallNS > 1e9 {
		return 0
	}
	_ = reg.Wall() // want `obs.Registry.Wall reads instrumentation state`
	e.FlushObs()   // want `FlushObs outside the primary-engine flush path`
	return e.Delay()
}

// Histo reads a histogram snapshot.
func Histo(h *obs.Histogram) int64 {
	h.Observe(3)              // ok: write
	return h.Snapshot().Count // want `obs.Histogram.Snapshot reads instrumentation state`
}
