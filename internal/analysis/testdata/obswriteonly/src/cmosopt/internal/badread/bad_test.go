package badread

import (
	"testing"

	"cmosopt/internal/obs"
)

// Tests may read instrumentation state: assertions about counters are the
// point of the obs test suite.
func TestReadsAllowed(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Add(2)
	if reg.Counter("x").Value() != 2 { // ok: *_test.go
		t.Fatal("counter")
	}
	_ = reg.Snapshot() // ok: *_test.go
}
