// Package obs is a stub of the observability layer for analyzer fixtures.
package obs

// Registry is the metric sink stub.
type Registry struct{ counters map[string]*Counter }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{counters: map[string]*Counter{}} }

// Counter returns the named counter (write-path API).
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot freezes the registry (read-path API).
func (r *Registry) Snapshot() Snapshot { return Snapshot{} }

// Wall returns elapsed wall time (read-path API).
func (r *Registry) Wall() int64 { return 0 }

// Snapshot is the frozen registry state.
type Snapshot struct{ WallNS int64 }

// Counter is an int64 metric.
type Counter struct{ v int64 }

// Add increments (write-path API).
func (c *Counter) Add(n int64) { c.v += n }

// Set overwrites (write-path API).
func (c *Counter) Set(n int64) { c.v = n }

// Value reads the current value (read-path API).
func (c *Counter) Value() int64 { return c.v }

// Histogram is a log-scale histogram.
type Histogram struct{ n int64 }

// Observe records one sample (write-path API).
func (h *Histogram) Observe(v int64) { h.n++ }

// Snapshot freezes the histogram (read-path API).
func (h *Histogram) Snapshot() HistogramSnapshot { return HistogramSnapshot{Count: h.n} }

// HistogramSnapshot is the frozen histogram state.
type HistogramSnapshot struct{ Count int64 }

// Span is one node of the hierarchical timing tree.
type Span struct{}

// Root returns the registry's root span.
func (r *Registry) Root() *Span { return &Span{} }

// Child returns a named child span (write-path API).
func (s *Span) Child(name string) *Span { return &Span{} }

// Snapshot freezes the span subtree (read-path API).
func (s *Span) Snapshot() SpanSnapshot { return SpanSnapshot{} }

// SpanSnapshot is the frozen span state.
type SpanSnapshot struct{ Count int64 }
