// Package eval is a stub engine for analyzer fixtures.
package eval

// Engine is the unified evaluation engine stub.
type Engine struct{ primary bool }

// FlushObs exports metric deltas (primary-engine flush path only).
func (e *Engine) FlushObs() {}

// Delay is a stand-in evaluation method.
func (e *Engine) Delay() float64 { return 1 }
