// Package core (fixture): FlushObs placement cases. The package itself is
// on the flush allowlist, so only the worker-body misuse is flagged.
package core

import (
	"cmosopt/internal/eval"
	"cmosopt/internal/parallel"
)

// FinishResult flushes from the primary-engine flush path: allowed.
func FinishResult(e *eval.Engine) {
	defer e.FlushObs() // ok: core driver owns the primary engine
}

// WorkerFlush flushes from inside a parallel worker body: every clone would
// export deltas the primary flush later double-counts.
func WorkerFlush(e *eval.Engine, clones []*eval.Engine) {
	parallel.For(0, len(clones), func(wk, i int) {
		clones[wk].Delay()
		clones[wk].FlushObs() // want `FlushObs inside a parallel worker body`
	})
	e.FlushObs() // ok: primary flush after the pool drains
}
