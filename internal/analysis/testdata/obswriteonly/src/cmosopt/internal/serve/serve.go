// Package serve (fixture): the negative case for the serving layer. serve
// flattens per-job span snapshots into SSE progress events — a
// serialization path like internal/cli, so the obs read API is allowed.
package serve

import "cmosopt/internal/obs"

// Progress snapshots a job's span tree for the event stream.
func Progress(reg *obs.Registry) int64 {
	s := reg.Snapshot()                // ok: serve serializes obs state
	_ = reg.Root().Snapshot()          // ok: span flattening for SSE frames
	reg.Counter("serve.events").Add(1) // ok: writes are always allowed
	return s.WallNS
}
