// Package parallel is a stub worker-pool layer for analyzer fixtures.
package parallel

// For runs body(worker, i) for every i in [0, n).
func For(workers, n int, body func(worker, i int)) {
	for i := 0; i < n; i++ {
		body(0, i)
	}
}
