// Command tool (fixture): cmd/* packages serialize instrumentation, so
// reads are allowed here.
package main

import "cmosopt/internal/obs"

func main() {
	reg := obs.NewRegistry()
	reg.Counter("runs").Add(1)
	s := reg.Snapshot() // ok: cmd/* is the tool layer
	_ = s
	_ = reg.Counter("runs").Value() // ok: cmd/* is the tool layer
}
