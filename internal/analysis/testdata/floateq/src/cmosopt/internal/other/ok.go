// Package other is outside floateq's bisection/convergence scope.
package other

// RawEq is not flagged here: the invariant covers core and optimize only.
func RawEq(a, b float64) bool { return a == b }
