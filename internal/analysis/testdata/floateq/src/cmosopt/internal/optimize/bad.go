// Package optimize (fixture): positive cases of the floateq analyzer.
package optimize

// Converged compares computed floats bit-for-bit.
func Converged(prev, cur float64) bool {
	if prev == cur { // want `exact float == in convergence code`
		return true
	}
	return false
}

// Moved uses exact inequality between computed floats.
func Moved(a, b float64) bool {
	return a != b // want `exact float != in convergence code`
}

// Brent mirrors the bookkeeping equalities of a Brent minimizer.
func Brent(v, w, x float64) bool {
	return v == x || v == w // want `exact float == in convergence code` `exact float == in convergence code`
}

// Narrow flags float32 too.
func Narrow(a, b float32) bool {
	return a == b // want `exact float == in convergence code`
}
