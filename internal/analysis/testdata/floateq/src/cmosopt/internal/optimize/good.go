package optimize

const neutral = 1.0

// Sentinels compares against compile-time constants: the "knob is unset"
// convention on assigned (not computed) values is deliberate and exempt.
func Sentinels(fixedVt, factor float64) bool {
	if fixedVt != 0 { // ok: constant sentinel
		return true
	}
	if factor == neutral { // ok: constant sentinel
		return true
	}
	return false
}

// Ints are exact: integer equality is not flagged.
func Ints(a, b int) bool { return a == b }

// Deliberate carries the documented suppression.
func Deliberate(a, b float64) bool {
	//cmosvet:allow floateq — exact short-circuit keeps incremental and full paths bit-identical
	return a == b
}

// Tolerant is the steered-to pattern (a local stand-in for floats.Eq).
func Tolerant(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
