package optimize

import "testing"

// Test files are exempt: golden assertions legitimately require exactness.
func TestExactGolden(t *testing.T) {
	if got := 0.5 * 2; got != 1.0 { // ok: *_test.go
		t.Fatal("arithmetic")
	}
}
