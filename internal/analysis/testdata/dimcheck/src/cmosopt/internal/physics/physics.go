// Package physics exercises every dimcheck behavior: add/compare mismatch,
// mul/div exponent composition, math.Pow constant exponents, cross-package
// fact resolution and //cmosvet:allow suppression.
package physics

import (
	"math"

	"cmosopt/internal/devfacts"
)

// Gate is the in-package annotated surface.
type Gate struct {
	Vdd    float64 //cmosvet:unit V
	Load   float64 //cmosvet:unit F
	Delay  float64 //cmosvet:unit s
	Energy float64 //cmosvet:unit J
	Power  float64 //cmosvet:unit W
	Fc     float64 //cmosvet:unit Hz
}

// Net carries an annotated slice: the unit describes the elements.
type Net struct {
	Caps []float64 //cmosvet:unit F
}

// AddMismatch: energy plus power is the classic confusion; CV² is energy.
func AddMismatch(g Gate) float64 {
	ok := g.Energy + 0.5*g.Vdd*g.Vdd*g.Load
	bad := g.Energy + g.Power // want `dimension mismatch: J \+ W`
	return ok + bad
}

func CompareMismatch(g Gate) bool {
	if g.Delay < g.Vdd { // want `dimension mismatch: comparing s < V`
		return true
	}
	return g.Delay < 1e-9 // a literal adapts to any dimension: silent
}

// MulDiv: multiplication and division compose exponent vectors, so J·Hz is
// exactly W and J/W exactly s without further annotation.
func MulDiv(g Gate) Gate {
	g.Power = g.Energy * g.Fc
	g.Delay = g.Energy / g.Power
	g.Power = g.Energy * g.Delay // want `assigning A\*V\*s\^2 to g.Power, declared W`
	return g
}

// PowConst: a constant exponent scales the exponent vector; Sqrt halves it.
func PowConst(g Gate) Gate {
	e := math.Pow(g.Vdd, 2) * g.Load
	g.Energy = e
	g.Vdd = math.Sqrt(math.Pow(g.Vdd, 2))
	g.Energy = math.Sqrt(e) // want `assigning A\^1:2\*V\^1:2\*s\^1:2 to g.Energy, declared J`
	return g
}

// Cross resolves devfacts' annotations through the units fact table.
func Cross(t *devfacts.Tech, g Gate) Gate {
	id := t.IdUnit(g.Vdd, 0.3)
	bad := t.IdUnit(g.Delay, 0.3) // want `argument 1 of Tech.IdUnit is s; parameter vgs is declared V`
	g.Power = g.Vdd * (id + bad)
	g.Energy = t.Ct * g.Vdd * g.Vdd
	g.Delay = t.Ct // want `assigning F to g.Delay, declared s`
	return g
}

// CrossMulti: a multi-value call adopts the callee's per-result annotations,
// and an annotated cross-package const keeps its dimension.
//
//cmosvet:unit tempK K
func CrossMulti(t *devfacts.Tech, g Gate, tempK float64) Gate {
	ov, on := devfacts.Overdrive(g.Vdd, 0.3)
	if on {
		g.Vdd = ov
		g.Delay = ov // want `assigning V to g.Delay, declared s`
	}
	scale := math.Exp((tempK - devfacts.ReferenceTempK) / t.VTherm) // want `math.Exp argument has dimension K/V; must be dimensionless`
	return MulDiv(g.scale(scale))
}

func (g Gate) scale(f float64) Gate {
	g.Energy = g.Energy * f
	return g
}

// SumCaps: the range value variable inherits the container's element
// dimension, and the loop accumulator converges through the fixpoint.
func SumCaps(n Net, g Gate) Gate {
	total := 0.0
	for _, c := range n.Caps {
		total += c
	}
	g.Energy = total // want `assigning F to g.Energy, declared J`
	g.Load = total
	return g
}

// Merge: branch information joins — conflicting exact dimensions degrade to
// ⊤ (silent), a one-sided assignment keeps its dimension past the merge.
func Merge(g Gate, hot bool) Gate {
	x := 0.0
	if hot {
		x = g.Energy
	} else {
		x = g.Power
	}
	g.Energy = x // J ⊔ W = ⊤: no finding
	y := 0.0
	if hot {
		y = g.Vdd
	}
	g.Delay = y // want `assigning V to g.Delay, declared s`
	return g
}

// Subthreshold: transcendental arguments must be dimensionless.
func Subthreshold(t *devfacts.Tech, g Gate) float64 {
	okExp := math.Exp(g.Vdd / t.VTherm)
	bad := math.Exp(g.Vdd) // want `math.Exp argument has dimension V; must be dimensionless`
	return okExp + bad
}

// CycleTime: returns check against the annotated result dimension.
//
//cmosvet:unit return s
func CycleTime(g Gate) float64 {
	if g.Fc > 0 {
		return 1.0 / g.Fc
	}
	return g.Vdd // want `returning V from CycleTime, whose result is declared s`
}

// BuildTyped: composite-literal fields check against their annotations.
//
//cmosvet:unit vdd V
func BuildTyped(vdd float64) Gate {
	return Gate{
		Vdd:  vdd,
		Load: vdd * vdd, // want `field Gate.Load is declared F; assigned V\^2`
	}
}

// Allowed: suppression binds a deliberate mismatch, standalone or trailing.
func Allowed(g Gate) float64 {
	//cmosvet:allow dimcheck — fixture: deliberate unit pun under test
	a := g.Energy + g.Power
	b := g.Energy + g.Power //cmosvet:allow dimcheck — fixture: trailing form
	return a + b
}

// Malformed annotations are findings themselves.
type Wrong struct {
	// a three-token directive is rejected //cmosvet:unit V extra // want `malformed //cmosvet:unit directive`
	N float64
}
