// Package devfacts is the dimcheck fixture's cross-package fact source: its
// annotations are visible to cmosopt/internal/physics only through the
// cmosvet/units/v1 fact table, never through in-package syntax.
package devfacts

// ReferenceTempK anchors temperature scaling.
const ReferenceTempK = 373.0 //cmosvet:unit K

// Tech is a miniature device model.
type Tech struct {
	VTherm float64 // thermal voltage //cmosvet:unit V
	Ct     float64 // gate capacitance per unit width //cmosvet:unit F
	IJunc  float64 // junction leakage //cmosvet:unit A
	KSat   float64 // alpha-power drive factor //cmosvet:unit A/V^a
	Alpha  float64 // velocity-saturation exponent //cmosvet:unit 1
}

// IdUnit is the saturation drive current of a unit-width device.
//
//cmosvet:unit vgs V
//cmosvet:unit vts V
//cmosvet:unit return A
func (t *Tech) IdUnit(vgs, vts float64) float64 {
	return t.IJunc * (vgs - vts) / t.VTherm
}

// Overdrive returns the gate overdrive and whether the device conducts.
//
//cmosvet:unit vgs V
//cmosvet:unit vts V
//cmosvet:unit return V
func Overdrive(vgs, vts float64) (float64, bool) {
	return vgs - vts, vgs > vts
}
