package core

import (
	"math/rand"
	"sort"
	"time"
)

// SeededRand uses a per-substream generator: the approved pattern.
func SeededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed)) // ok: seeded substream
	return rng.Intn(n)
}

// SortedKeys appends map keys and sorts them before they escape.
func SortedKeys(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n) // ok: sorted below
	}
	sort.Strings(names)
	return names
}

// SortedBySlice is sorted through sort.Slice (the comparator receives the
// slice as its first argument).
func SortedBySlice(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// IntSum is an order-independent aggregate: integer addition is associative.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// MapToMap re-keys into another map: no order dependence.
func MapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// InstrumentedWork shows the documented suppression for obs-only timing.
func InstrumentedWork(record func(time.Duration)) {
	t0 := time.Now() //cmosvet:allow determinism — wall-clock feeds an obs histogram only
	work()
	//cmosvet:allow determinism — wall-clock feeds an obs histogram only
	record(time.Since(t0))
}
