// Package core (fixture): positive cases of the determinism analyzer.
package core

import (
	"math/rand"
	"time"
)

// WallClock consults the wall clock inside a deterministic package.
func WallClock() time.Duration {
	t0 := time.Now() // want `time.Now in a deterministic package`
	work()
	return time.Since(t0) // want `time.Since in a deterministic package`
}

// GlobalRand draws from the shared process-global source.
func GlobalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle in a deterministic package`
	return rand.Intn(n)                // want `global rand.Intn in a deterministic package`
}

// MapOrderEscape appends map keys without a subsequent sort: hash order
// leaks into the returned slice.
func MapOrderEscape(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n) // want `append of map-iteration data to "names" with no subsequent sort`
	}
	return names
}

// MapFloatSum accumulates floats in map order.
func MapFloatSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation in map-iteration order`
	}
	return sum
}

func work() {}
