package core

import (
	"testing"
	"time"
)

// Test files are exempt: benchmark harnesses legitimately time things.
func TestWallClockAllowedInTests(t *testing.T) {
	t0 := time.Now() // ok: *_test.go
	work()
	if time.Since(t0) < 0 {
		t.Fatal("impossible")
	}
}
