// Package serve (fixture): the server package is inside the deterministic
// scope — responses must be byte-identical to the offline tools, so the
// serving layer itself never reads the wall clock. Pacing primitives
// (tickers, timers) are fine; reads that could reach a response are not.
package serve

import "time"

// Latency measures a request — forbidden here; wall-clock measurement
// belongs to cmd/loadgen, outside the deterministic scope.
func Latency() time.Duration {
	t0 := time.Now() // want `time.Now in a deterministic package`
	handle()
	return time.Since(t0) // want `time.Since in a deterministic package`
}

// Pace drives the SSE progress poll. Tickers only pace emission — they
// never put a timestamp into a payload — so the analyzer leaves them alone.
func Pace(done chan struct{}) {
	tick := time.NewTicker(100 * time.Millisecond) // ok: pacing, not measurement
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			handle()
		}
	}
}

func handle() {}
