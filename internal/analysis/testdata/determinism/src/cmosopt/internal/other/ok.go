// Package other is outside the deterministic scope: wall-clock and global
// rand are not flagged here.
package other

import (
	"math/rand"
	"time"
)

// Timestamp is fine outside the deterministic packages.
func Timestamp() time.Time { return time.Now() }

// Draw is fine outside the deterministic packages.
func Draw() float64 { return rand.Float64() }
