package circuit

// Circuit is a stub of the real circuit graph for analyzer fixtures.
type Circuit struct{ Name string }
