// Package eval is the one place allowed to construct model evaluators:
// every call below is the negative case of the evalroute analyzer.
package eval

import (
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/power"
)

// Engine is a stub of the unified evaluation engine.
type Engine struct {
	dm *delay.Evaluator
	pm *power.Evaluator
}

// New may construct evaluators: eval is the engine package.
func New(c *circuit.Circuit) (*Engine, error) {
	dm, err := delay.New(c) // ok: inside internal/eval
	if err != nil {
		return nil, err
	}
	pm, err := power.New(c) // ok: inside internal/eval
	if err != nil {
		return nil, err
	}
	return &Engine{dm: dm, pm: pm}, nil
}
