package power

import "cmosopt/internal/circuit"

// Evaluator is a stub of the Appendix-A energy model evaluator.
type Evaluator struct{ C *circuit.Circuit }

// New constructs the stub evaluator.
func New(c *circuit.Circuit) (*Evaluator, error) { return &Evaluator{C: c}, nil }
