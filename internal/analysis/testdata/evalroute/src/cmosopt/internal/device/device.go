package device

// Tech is a stub technology description.
type Tech struct{ Vdd float64 }

// NewBias is a stub device-model constructor (evalroute must flag calls).
func NewBias() *Tech { return &Tech{} }
