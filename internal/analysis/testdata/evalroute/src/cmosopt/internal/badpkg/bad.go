// Package badpkg bypasses the evaluation engine: every construction below
// is a positive case of the evalroute analyzer.
package badpkg

import (
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/device"
	"cmosopt/internal/power"
)

// Bad constructs model evaluators directly instead of going through eval.New.
func Bad(c *circuit.Circuit) error {
	dm, err := delay.New(c) // want `delay.New constructs a model evaluator outside internal/eval`
	if err != nil {
		return err
	}
	_ = dm
	pm, err := power.New(c) // want `power.New constructs a model evaluator outside internal/eval`
	if err != nil {
		return err
	}
	_ = pm
	_ = device.NewBias() // want `device.NewBias constructs a model evaluator outside internal/eval`
	ev := delay.Evaluator{C: c} // want `composite literal of cmosopt/internal/delay.Evaluator outside internal/eval`
	_ = ev
	return nil
}

// Allowed shows the suppression escape hatch.
func Allowed(c *circuit.Circuit) {
	//cmosvet:allow evalroute — fixture demonstrating a reviewed bypass
	dm, _ := delay.New(c)
	_ = dm
}
