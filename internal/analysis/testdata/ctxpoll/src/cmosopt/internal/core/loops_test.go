package core

import "testing"

// Test files are exempt: benchmark and test loops drive evaluation without a
// run context by design.
func TestLoopNoPoll(t *testing.T) {
	p := &Problem{Eng: nil}
	_ = p
	for i := 0; i < 3; i++ {
		_ = i // ok: _test.go
	}
}
