// Package core (fixture): candidate loops under the ctxpoll analyzer.
package core

import (
	"context"

	"cmosopt/internal/eval"
)

// Problem mirrors the real optimization problem's cancellation surface.
type Problem struct {
	Eng *eval.Engine
	ctx context.Context
}

// Canceled polls the run context; callers through it satisfy ctxpoll via
// the PollsCtx fact.
func (p *Problem) Canceled() error {
	return p.ctx.Err()
}

// evalPoint funnels into engine evaluation; loops calling it are candidate
// loops via the (transitive) CallsEval fact.
func (p *Problem) evalPoint(v float64) float64 {
	return p.Eng.Energy(v)
}

// SweepBad reaches evaluation and never polls.
func (p *Problem) SweepBad(points []float64) float64 {
	best := 0.0
	for _, v := range points { // want `does not poll Spec.Ctx on every iteration path`
		if d := p.Eng.CriticalDelay(v); d > best {
			best = d
		}
	}
	return best
}

// SweepGood polls through the wrapper on every iteration.
func (p *Problem) SweepGood(points []float64) float64 {
	best := 0.0
	for _, v := range points {
		if p.Canceled() != nil {
			return best
		}
		if d := p.Eng.CriticalDelay(v); d > best {
			best = d
		}
	}
	return best
}

// SweepDirect polls ctx.Err directly.
func (p *Problem) SweepDirect(points []float64) float64 {
	e := 0.0
	for _, v := range points {
		if p.ctx.Err() != nil {
			return e
		}
		e += p.Eng.Energy(v)
	}
	return e
}

// GridBad reaches evaluation transitively through evalPoint.
func (p *Problem) GridBad(points []float64) float64 {
	e := 0.0
	for _, v := range points { // want `does not poll Spec.Ctx on every iteration path`
		e += p.evalPoint(v)
	}
	return e
}

// SkipBad polls, but the continue path completes an iteration unpolled.
func (p *Problem) SkipBad(points []float64) float64 {
	e := 0.0
	for _, v := range points { // want `does not poll Spec.Ctx on every iteration path`
		if v < 0 {
			continue
		}
		if p.ctx.Err() != nil {
			return e
		}
		e += p.Eng.Energy(v)
	}
	return e
}

// BreakGood is clean: the unpolled path leaves the loop, it does not
// complete an iteration.
func (p *Problem) BreakGood(points []float64) float64 {
	e := 0.0
	for _, v := range points {
		if v > 100 {
			break
		}
		if p.Canceled() != nil {
			return e
		}
		e += p.Eng.Energy(v)
	}
	return e
}

// NestedBad polls only inside the inner loop: the inner loop may run zero
// iterations, so the outer loop's iteration path carries no poll.
func (p *Problem) NestedBad(rows [][]float64) float64 {
	e := 0.0
	for _, row := range rows { // want `does not poll Spec.Ctx on every iteration path`
		for _, v := range row {
			if p.ctx.Err() != nil {
				return e
			}
			e += p.Eng.Energy(v)
		}
	}
	return e
}

// ProbeOnly loops over a per-gate probe: not a candidate loop.
func (p *Problem) ProbeOnly(points []float64) float64 {
	w := 0.0
	for _, v := range points {
		w += p.Eng.ProbeWidth(v) // ok: probe, not full evaluation
	}
	return w
}

// ClosureBad reaches evaluation through a local closure variable.
func (p *Problem) ClosureBad(points []float64) float64 {
	score := func(v float64) float64 { return p.Eng.CriticalDelay(v) }
	best := 0.0
	for _, v := range points { // want `does not poll Spec.Ctx on every iteration path`
		if s := score(v); s > best {
			best = s
		}
	}
	return best
}

// ClosurePollGood polls through a local closure variable.
func (p *Problem) ClosurePollGood(points []float64) float64 {
	done := func() bool { return p.ctx.Err() != nil }
	e := 0.0
	for _, v := range points {
		if done() {
			return e
		}
		e += p.Eng.Energy(v)
	}
	return e
}

// Allowed carries the documented suppression on the loop itself.
func (p *Problem) Allowed(points [4]float64) float64 {
	e := 0.0
	//cmosvet:allow ctxpoll — bounded 4-point scan; the caller polls at its own candidate boundary
	for _, v := range points {
		e += p.Eng.Energy(v)
	}
	return e
}
