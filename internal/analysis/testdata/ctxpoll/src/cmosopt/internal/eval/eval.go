// Package eval (fixture): the engine surface the ctxpoll analyzer
// recognizes — full-evaluation methods versus per-gate probes.
package eval

// Engine stubs the unified evaluation engine.
type Engine struct{ n int }

// CriticalDelay is a full-circuit evaluation.
func (e *Engine) CriticalDelay(v float64) float64 { return v * float64(e.n) }

// Energy is a full-circuit evaluation.
func (e *Engine) Energy(v float64) float64 { return v * v }

// ProbeWidth is a per-gate probe — deliberately not "evaluation".
func (e *Engine) ProbeWidth(v float64) float64 { return v }
