// Package other (fixture): outside internal/core and internal/optimize, so
// ctxpoll does not apply even to unpolled evaluation loops.
package other

import "cmosopt/internal/eval"

// Report loops over evaluation without polling — fine here.
func Report(e *eval.Engine, points []float64) float64 {
	sum := 0.0
	for _, v := range points {
		sum += e.Energy(v) // ok: outside the candidate-loop packages
	}
	return sum
}
