package analysis

// //cmosvet:unit annotation collection.
//
// A declaration site binds its physical unit with a directive comment:
//
//	KSat float64 // drive factor //cmosvet:unit A/V^a     (struct field)
//	const ReferenceTempK = 373.0 // //cmosvet:unit K      (package const)
//
//	// IdUnit returns the saturation drain current …
//	//cmosvet:unit vgs V
//	//cmosvet:unit vts V
//	//cmosvet:unit return A
//	func (t *Tech) IdUnit(vgs, vts float64) float64 { … } (params/results)
//
// The directive may trail other comment text on the same line (a field keeps
// its human description) but must be the line's last clause. Two forms exist:
// the bare form `//cmosvet:unit <expr>` binds to the declaration carrying the
// comment (field, const, var — or a function's single result); the named form
// `//cmosvet:unit <name> <expr>` appears in a function's doc comment and
// binds <name>, which is a parameter name, `return` (first result) or
// `returnN` (N-th result, 1-based).
//
// Units attach to float-valued declarations: float64/float32, and slices,
// arrays, maps and pointers thereof (the unit then describes the element).
// Annotating anything else, or an unparsable expression, is itself a
// dimcheck diagnostic — a typo in a unit must fail the gate, not silently
// widen it.
//
// collectUnits resolves a package's annotations twice over: a flat
// string-keyed table ("Type.Field", "Name", "Func.param.x", "Type.Meth.return")
// exported through the cmosvet/units/v1 fact schema for cross-package
// resolution, and a types.Object-keyed table for in-package precision.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// UnitsSchema identifies the unit-fact serialization riding the .vetx files.
const UnitsSchema = "cmosvet/units/v1"

var unitRx = regexp.MustCompile(`//.*?cmosvet:unit\s+(.+?)\s*$`)

// unitTable is one package's resolved unit annotations.
type unitTable struct {
	// decls is the flat fact table: declaration key → dimension.
	decls map[string]Dim
	// objects resolves in-package annotated objects (fields, consts, vars,
	// params, named results) directly.
	objects map[types.Object]Dim
	// errs are malformed annotations (bad grammar, unknown unit, non-float
	// target); dimcheck reports them as diagnostics.
	errs []unitError
}

type unitError struct {
	pos token.Pos
	msg string
}

// UnitDecls renders the table's flat fact map for serialization and the
// -units report.
func (t *unitTable) UnitDecls() map[string]string {
	if len(t.decls) == 0 {
		return nil
	}
	out := make(map[string]string, len(t.decls))
	for k, d := range t.decls {
		out[k] = d.String()
	}
	return out
}

// UnitCoverage measures how much of a package's exported physical surface is
// annotated: total counts the exported float-carrier fields of exported
// struct types, annotated counts those bound in the unit table, and missing
// lists the unannotated "Type.Field" keys in source order. The -units=coverage
// gate fails when annotated/total drops below its floor.
func UnitCoverage(p *LoadedPackage) (annotated, total int, missing []string) {
	t := collectUnits(p.Files, p.Info)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						obj := p.Info.Defs[name]
						if obj == nil || !floatCarrier(obj.Type()) {
							continue
						}
						total++
						key := ts.Name.Name + "." + name.Name
						if _, ok := t.decls[key]; ok {
							annotated++
						} else {
							missing = append(missing, key)
						}
					}
				}
			}
		}
	}
	return annotated, total, missing
}

// directive is one parsed //cmosvet:unit occurrence.
type directive struct {
	name string // "" for the bare form
	expr string
	pos  token.Pos
}

// directivesIn extracts the unit directives of a comment group.
func directivesIn(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		m := unitRx.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		fields := strings.Fields(m[1])
		switch len(fields) {
		case 1:
			out = append(out, directive{expr: fields[0], pos: c.Pos()})
		case 2:
			out = append(out, directive{name: fields[0], expr: fields[1], pos: c.Pos()})
		default:
			// Keep the malformed directive; binders report it.
			out = append(out, directive{name: "\x00malformed", expr: m[1], pos: c.Pos()})
		}
	}
	return out
}

// collectUnits walks a package's files and resolves every unit annotation.
func collectUnits(files []*ast.File, info *types.Info) *unitTable {
	t := &unitTable{
		decls:   map[string]Dim{},
		objects: map[types.Object]Dim{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				t.genDecl(d, info)
			case *ast.FuncDecl:
				t.funcDecl(d, info)
			}
		}
	}
	return t
}

func (t *unitTable) errorf(pos token.Pos, format string, args ...any) {
	t.errs = append(t.errs, unitError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// parse validates a directive's unit expression.
func (t *unitTable) parse(d directive) (Dim, bool) {
	if d.name == "\x00malformed" {
		t.errorf(d.pos, "malformed //cmosvet:unit directive %q: want `//cmosvet:unit <expr>` or `//cmosvet:unit <name> <expr>`", d.expr)
		return TopDim(), false
	}
	dim, err := ParseUnit(d.expr)
	if err != nil {
		t.errorf(d.pos, "bad //cmosvet:unit expression %q: %v", d.expr, err)
		return TopDim(), false
	}
	return dim, true
}

// floatCarrier reports whether typ can carry a unit: a float, or a slice,
// array, map or pointer whose element (transitively) is one.
func floatCarrier(typ types.Type) bool {
	for {
		switch u := typ.Underlying().(type) {
		case *types.Basic:
			return u.Info()&types.IsFloat != 0
		case *types.Slice:
			typ = u.Elem()
		case *types.Array:
			typ = u.Elem()
		case *types.Map:
			typ = u.Elem()
		case *types.Pointer:
			typ = u.Elem()
		default:
			return false
		}
	}
}

// bind records one resolved annotation under key, checking the target type.
func (t *unitTable) bind(key string, obj types.Object, dim Dim, pos token.Pos) {
	if obj != nil {
		if !floatCarrier(obj.Type()) {
			t.errorf(pos, "//cmosvet:unit on %s, whose type %s is not float-valued", key, obj.Type())
			return
		}
		t.objects[obj] = dim
	}
	t.decls[key] = dim
}

// genDecl binds annotations on struct fields and package consts/vars.
func (t *unitTable) genDecl(d *ast.GenDecl, info *types.Info) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				t.fieldDecl(ts.Name.Name, field, info)
			}
		}
	case token.CONST, token.VAR:
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ds := directivesIn(vs.Doc)
			ds = append(ds, directivesIn(vs.Comment)...)
			if len(ds) == 0 && len(d.Specs) == 1 {
				ds = directivesIn(d.Doc)
			}
			for _, dir := range ds {
				dim, ok := t.parse(dir)
				if !ok {
					continue
				}
				if dir.name != "" {
					t.errorf(dir.pos, "named //cmosvet:unit %q on a const/var declaration (use the bare form)", dir.name)
					continue
				}
				for _, name := range vs.Names {
					t.bind(name.Name, info.Defs[name], dim, dir.pos)
				}
			}
		}
	}
}

// fieldDecl binds a struct field's annotation, from its trailing comment or
// its doc lines. Key: "Type.Field".
func (t *unitTable) fieldDecl(typeName string, field *ast.Field, info *types.Info) {
	ds := directivesIn(field.Doc)
	ds = append(ds, directivesIn(field.Comment)...)
	for _, dir := range ds {
		dim, ok := t.parse(dir)
		if !ok {
			continue
		}
		if dir.name != "" {
			t.errorf(dir.pos, "named //cmosvet:unit %q on a struct field (use the bare form)", dir.name)
			continue
		}
		for _, name := range field.Names {
			t.bind(typeName+"."+name.Name, info.Defs[name], dim, dir.pos)
		}
	}
}

// funcDecl binds a function's parameter and result annotations from its doc
// comment. Keys: "<declKey>.param.<name>", "<declKey>.return[N]".
func (t *unitTable) funcDecl(fd *ast.FuncDecl, info *types.Info) {
	ds := directivesIn(fd.Doc)
	if len(ds) == 0 {
		return
	}
	key := declKey(fd)
	params := map[string]*ast.Ident{}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				params[n.Name] = n
			}
		}
	}
	var results []*ast.Field
	if fd.Type.Results != nil {
		results = fd.Type.Results.List
	}
	for _, dir := range ds {
		dim, ok := t.parse(dir)
		if !ok {
			continue
		}
		name := dir.name
		if name == "" {
			// Bare form on a function: its single result.
			if numResults(results) != 1 {
				t.errorf(dir.pos, "bare //cmosvet:unit on %s, which does not have exactly one result; name the target (`return`, `returnN` or a parameter)", key)
				continue
			}
			name = "return"
		}
		if idx, ok := resultIndex(name); ok {
			obj, resKey, err := resultAt(results, idx, key)
			if err != "" {
				t.errorf(dir.pos, "%s", err)
				continue
			}
			t.bind(resKey, objOf(info, obj), dim, dir.pos)
			continue
		}
		id, ok := params[name]
		if !ok {
			t.errorf(dir.pos, "//cmosvet:unit names %q, which is neither a parameter of %s nor return/returnN", name, key)
			continue
		}
		t.bind(key+".param."+name, info.Defs[id], dim, dir.pos)
	}
}

func numResults(results []*ast.Field) int {
	n := 0
	for _, f := range results {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// resultIndex parses "return" (0) and "returnN" (N−1); ok is false for
// anything else.
func resultIndex(name string) (int, bool) {
	if name == "return" {
		return 0, true
	}
	rest, found := strings.CutPrefix(name, "return")
	if !found || rest == "" {
		return 0, false
	}
	n := 0
	if _, err := fmt.Sscanf(rest, "%d", &n); err != nil || n < 1 {
		return 0, false
	}
	return n - 1, true
}

// resultAt locates the idx-th result field, returning its name ident (nil
// for anonymous results) and fact key.
func resultAt(results []*ast.Field, idx int, funcKey string) (*ast.Ident, string, string) {
	factKey := funcKey + ".return"
	if idx > 0 {
		factKey = fmt.Sprintf("%s.return%d", funcKey, idx+1)
	}
	i := 0
	for _, f := range results {
		names := f.Names
		if len(names) == 0 {
			if i == idx {
				return nil, factKey, ""
			}
			i++
			continue
		}
		for _, n := range names {
			if i == idx {
				return n, factKey, ""
			}
			i++
		}
	}
	return nil, "", fmt.Sprintf("//cmosvet:unit names result %d of %s, which has only %d", idx+1, funcKey, i)
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	return info.Defs[id]
}
