package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the PR 2 invariant: optimizer outputs are
// byte-identical at any worker count. In the deterministic packages —
// internal/core, internal/eval, internal/parallel, internal/optimize, plus
// internal/netgen and internal/report whose outputs (generated circuits,
// aggregated tables) are part of the same byte-identical guarantee,
// internal/circuit and internal/timing, whose CSR core and levelized sweeps
// every deterministic result is computed over, and internal/serve, whose
// responses must be byte-identical to the offline tools' output (all
// wall-clock measurement belongs to cmd/loadgen, outside the server) — it
// flags, outside *_test.go files:
//
//   - time.Now / time.Since: wall-clock must never influence a result.
//     Instrumentation sites that time work for obs histograms are the one
//     legitimate use; they carry //cmosvet:allow determinism with a reason.
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Shuffle,
//     ...): randomness must come from a seeded per-die/per-lane substream,
//     i.e. a *rand.Rand built with rand.New(rand.NewSource(seed)).
//     rand.New/rand.NewSource themselves are the approved constructors.
//   - map iteration whose element order escapes: a `range` over a map that
//     appends key/value-derived data to a slice with no subsequent sort of
//     that slice in the same function, or that accumulates floating-point
//     values (float addition is not associative, so map order changes the
//     sum's final bits).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages must not consult wall-clock, global rand, or map iteration order",
	Run:  runDeterminism,
}

// deterministicPkgs are the packages whose outputs the worker-invariance
// tests lock byte-for-byte.
var deterministicPkgs = []string{
	"internal/core", "internal/eval", "internal/parallel", "internal/optimize",
	"internal/netgen", "internal/report", "internal/circuit", "internal/timing",
	"internal/serve",
}

// globalRandFuncs draw from math/rand's package-level source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func runDeterminism(pass *Pass) error {
	if !pathIn(normalizePkgPath(pass.Pkg.Path()), deterministicPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				path, name, ok := pass.pkgFunc(n)
				if !ok {
					return true
				}
				if path == "time" && (name == "Now" || name == "Since") {
					pass.Reportf(n.Pos(),
						"time.%s in a deterministic package: wall-clock must not influence results; if this only feeds obs instrumentation, annotate with //cmosvet:allow determinism and a reason", name)
				}
				if (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name] {
					pass.Reportf(n.Pos(),
						"global rand.%s in a deterministic package: draw from a seeded substream (rand.New(rand.NewSource(seed))) so results are reproducible at any worker count", name)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrderEscapes(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapOrderEscapes walks one function body looking for map ranges whose
// iteration order leaks into an append-built slice that is never sorted, or
// into a floating-point accumulator.
func checkMapOrderEscapes(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := rangeVarObjects(pass, rng)
		if len(iterVars) == 0 {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkMapAppend(pass, body, rng, asg, iterVars)
			checkFloatAccum(pass, asg, iterVars)
			return true
		})
		return true
	})
}

// rangeVarObjects returns the objects of the range's key/value variables.
func rangeVarObjects(pass *Pass, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkMapAppend flags `s = append(s, <iter-derived>)` inside a map range
// when no later statement in the function sorts s.
func checkMapAppend(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, asg *ast.AssignStmt, iterVars []types.Object) {
	if len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		return
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if b, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return
	}
	// Order only matters when what is appended depends on the iteration.
	derived := false
	for _, arg := range call.Args[1:] {
		if referencesAny(pass, arg, iterVars) {
			derived = true
		}
	}
	if !derived {
		return
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return // appends into fields/elements: out of scope, keep conservative
	}
	slice := pass.TypesInfo.ObjectOf(lhs)
	if slice == nil {
		return
	}
	if sortedAfter(pass, fnBody, rng.End(), slice) {
		return
	}
	pass.Reportf(asg.Pos(),
		"append of map-iteration data to %q with no subsequent sort: element order escapes into the result; sort %q after the loop (or build a map and emit sorted keys)",
		lhs.Name, lhs.Name)
}

// checkFloatAccum flags compound float accumulation (`sum += v`) of
// iteration-derived values: float addition is order-sensitive in the last
// bits, so a map-ordered sum is not byte-stable.
func checkFloatAccum(pass *Pass, asg *ast.AssignStmt, iterVars []types.Object) {
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || !referencesAny(pass, asg.Rhs[0], iterVars) {
		return
	}
	t := pass.TypesInfo.TypeOf(asg.Lhs[0])
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	pass.Reportf(asg.Pos(),
		"floating-point accumulation in map-iteration order: float arithmetic is not associative, so the sum's bits depend on hash order; iterate a sorted key slice instead")
}

// referencesAny reports whether expr mentions any of the given objects.
func referencesAny(pass *Pass, expr ast.Expr, objs []types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := pass.TypesInfo.ObjectOf(id)
		for _, want := range objs {
			if o == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortedAfter reports whether any statement after pos in the function body
// passes the slice object to a sort/slices function (sort.Ints(s),
// sort.Slice(s, less), slices.Sort(s), ...).
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, pos token.Pos, slice types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		path, _, ok := pass.pkgFunc(call)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == slice {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
