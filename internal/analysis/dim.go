package analysis

// The dimcheck dimension lattice.
//
// A Dim is the physical dimension of an expression: a vector of rational
// exponents over the canonical base units volt (V), ampere (A), second (s),
// meter (m) and kelvin (K). Derived symbols of the annotation grammar expand
// into that basis when parsed — F = A·s/V, W = V·A, J = V·A·s, Hz = 1/s — so
// C·V² and J compare equal, and E·f_c multiplies out to watts, exactly the
// identities the paper's E = CV², P_static ≈ P_dynamic arguments lean on.
//
// Beyond exact dimension vectors the lattice has three special elements:
//
//   - ⊤ (top): dimension unknown. Produced by unannotated values, calls that
//     resolve to no unit facts, and math.Pow with a non-constant exponent.
//     ⊤ is absorbing under multiplication and compatible with everything in
//     additions and comparisons — missing annotations only widen what the
//     checker accepts, they never manufacture findings.
//   - ⊥ (bottom): no information, the dataflow initial element. ⊥ is the
//     identity of Join, so a variable first assigned on one branch keeps its
//     dimension at the merge.
//   - ~ (polymorphic constant): the dimension of literals and other compile-
//     time constants. A constant adapts to its context the way an untyped Go
//     constant adapts its type: it is the identity of multiplication and
//     compatible with any dimension in additions and comparisons, so
//     `vdd > 3.3` and `slack * 0.5` never flag, while `energy + power` does.
//
// Symbolic exponents cover the α-power law: `A/V^a` parses into the atoms
// {A¹, (V^a)⁻¹}, where the pseudo-atom "V^a" composes multiplicatively
// ((A/V^a)² = A²·V^-2a) but never cancels against integer powers of V. That
// is sound here because math.Pow with a non-constant exponent — the only way
// a runtime α enters an exponent — already yields ⊤.

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// rat is a normalized rational exponent (den > 0, gcd(num,den) = 1).
type rat struct{ num, den int64 }

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func makeRat(num, den int64) rat {
	if den == 0 {
		den = 1
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(num, den)
	return rat{num / g, den / g}
}

func (r rat) add(o rat) rat { return makeRat(r.num*o.den+o.num*r.den, r.den*o.den) }
func (r rat) mul(o rat) rat { return makeRat(r.num*o.num, r.den*o.den) }
func (r rat) neg() rat      { return rat{-r.num, r.den} }
func (r rat) isZero() bool  { return r.num == 0 }
func (r rat) String() string {
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d:%d", r.num, r.den)
}

// Dim kinds, ordered bottom-up in the lattice: ⊥ ⊑ ~ ⊑ exact ⊑ ⊤.
const (
	dimBottom byte = iota // no information (unreached code, Join identity)
	dimConst              // polymorphic constant (literals; Mul identity)
	dimExact              // an exact exponent vector (possibly empty = dimensionless)
	dimTop                // unknown (absorbing under Mul, compatible in checks)
)

// Dim is one element of the dimension lattice. The zero value is ⊥.
type Dim struct {
	kind byte
	// exps maps base atoms ("V", "s", …, or symbolic pseudo-atoms like
	// "V^a") to their exponents; zero entries are never stored, and an
	// empty/nil map with kind dimExact is the dimensionless element.
	exps map[string]rat
}

// The lattice's distinguished elements.
func TopDim() Dim    { return Dim{kind: dimTop} }
func BottomDim() Dim { return Dim{} }
func ConstDim() Dim  { return Dim{kind: dimConst} }
func NoDim() Dim     { return Dim{kind: dimExact} } // dimensionless ("1")

// BaseDim returns the exact dimension of one base atom.
func BaseDim(sym string) Dim {
	return Dim{kind: dimExact, exps: map[string]rat{sym: {1, 1}}}
}

func (d Dim) IsTop() bool    { return d.kind == dimTop }
func (d Dim) IsBottom() bool { return d.kind == dimBottom }
func (d Dim) IsConst() bool  { return d.kind == dimConst }

// IsExact reports an exact dimension vector (including dimensionless).
func (d Dim) IsExact() bool { return d.kind == dimExact }

// IsDimensionless reports the exact empty vector.
func (d Dim) IsDimensionless() bool { return d.kind == dimExact && len(d.exps) == 0 }

// Equal reports structural equality of lattice elements.
func (d Dim) Equal(o Dim) bool {
	if d.kind != o.kind {
		return false
	}
	if d.kind != dimExact {
		return true
	}
	if len(d.exps) != len(o.exps) {
		return false
	}
	for k, v := range d.exps {
		if o.exps[k] != v {
			return false
		}
	}
	return true
}

// Mul composes dimensions multiplicatively. ⊤ absorbs (unknown times
// anything is unknown), ⊥ absorbs below it, and ~ is the identity.
func (d Dim) Mul(o Dim) Dim {
	if d.kind == dimBottom || o.kind == dimBottom {
		return BottomDim()
	}
	if d.kind == dimTop || o.kind == dimTop {
		return TopDim()
	}
	if d.kind == dimConst {
		return o
	}
	if o.kind == dimConst {
		return d
	}
	out := map[string]rat{}
	for k, v := range d.exps {
		out[k] = v
	}
	for k, v := range o.exps {
		sum := v
		if cur, ok := out[k]; ok {
			sum = cur.add(v)
		}
		if sum.isZero() {
			delete(out, k)
		} else {
			out[k] = sum
		}
	}
	return Dim{kind: dimExact, exps: out}
}

// Inv returns the multiplicative inverse; ⊤, ⊥ and ~ are self-inverse.
func (d Dim) Inv() Dim { return d.Pow(-1, 1) }

// Div is d · o⁻¹.
func (d Dim) Div(o Dim) Dim { return d.Mul(o.Inv()) }

// Pow scales every exponent by num/den (math.Pow with a constant exponent,
// math.Sqrt with num/den = 1/2). ~^r stays ~, ⊤ stays ⊤.
func (d Dim) Pow(num, den int64) Dim {
	if d.kind != dimExact {
		return d
	}
	r := makeRat(num, den)
	if r.isZero() {
		return NoDim()
	}
	out := make(map[string]rat, len(d.exps))
	for k, v := range d.exps {
		out[k] = v.mul(r)
	}
	return Dim{kind: dimExact, exps: out}
}

// Join is the lattice join: ⊥ is the identity, ⊤ absorbs, ~ yields to any
// exact dimension, and two unequal exact dimensions join to ⊤ (a merge of
// conflicting evidence degrades to "unknown" rather than guessing).
func (d Dim) Join(o Dim) Dim {
	if d.kind == dimBottom {
		return o
	}
	if o.kind == dimBottom {
		return d
	}
	if d.kind == dimTop || o.kind == dimTop {
		return TopDim()
	}
	if d.kind == dimConst {
		return o
	}
	if o.kind == dimConst {
		return d
	}
	if d.Equal(o) {
		return d
	}
	return TopDim()
}

// Compatible reports whether two dimensions may meet in an addition,
// subtraction or comparison without a diagnostic: anything involving ⊤, ⊥ or
// ~ passes; two exact dimensions must be equal.
func (d Dim) Compatible(o Dim) bool {
	if d.kind != dimExact || o.kind != dimExact {
		return true
	}
	return d.Equal(o)
}

// baseUnits are the canonical atoms; derivedUnits expand annotation symbols
// into them. Order in namedUnits drives the pretty-printer's preference.
var derivedUnits = map[string]Dim{
	"V":  BaseDim("V"),
	"A":  BaseDim("A"),
	"s":  BaseDim("s"),
	"m":  BaseDim("m"),
	"K":  BaseDim("K"),
	"F":  BaseDim("A").Mul(BaseDim("s")).Div(BaseDim("V")), // farad = A·s/V
	"W":  BaseDim("V").Mul(BaseDim("A")),                   // watt = V·A
	"J":  BaseDim("V").Mul(BaseDim("A")).Mul(BaseDim("s")), // joule = V·A·s
	"Hz": BaseDim("s").Inv(),                               // hertz = 1/s
}

var namedUnits = []string{"J", "W", "F", "Hz", "V", "A", "s", "m", "K"}

// String renders the dimension in the annotation grammar, so facts
// serialization round-trips through ParseUnit. Exact dimensions print as the
// shortest named unit when one matches (V·A·s → "J"), otherwise as a
// product/quotient of atoms with ^ exponents (rationals as n:d).
func (d Dim) String() string {
	switch d.kind {
	case dimBottom:
		return "!"
	case dimTop:
		return "?"
	case dimConst:
		return "~"
	}
	if len(d.exps) == 0 {
		return "1"
	}
	for _, name := range namedUnits {
		if d.Equal(derivedUnits[name]) {
			return name
		}
	}
	keys := make([]string, 0, len(d.exps))
	for k := range d.exps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var num, den []string
	for _, k := range keys {
		e := d.exps[k]
		if e.num > 0 {
			num = append(num, atomString(k, e))
		} else {
			den = append(den, atomString(k, e.neg()))
		}
	}
	out := strings.Join(num, "*")
	if out == "" {
		out = "1"
	}
	if len(den) > 0 {
		out += "/" + strings.Join(den, "/")
	}
	return out
}

// atomString prints one atom with a positive exponent: "V", "s^2", "V^a",
// "V^2a", "V^1:2".
func atomString(atom string, e rat) string {
	base, sym, symbolic := strings.Cut(atom, "^")
	if !symbolic {
		if e == (rat{1, 1}) {
			return atom
		}
		return atom + "^" + e.String()
	}
	// Symbolic pseudo-atom "V^a" with coefficient e.
	if e == (rat{1, 1}) {
		return base + "^" + sym
	}
	return base + "^" + e.String() + sym
}

var exponentRx = regexp.MustCompile(`^(-?)(\d+(?::\d+)?)?([A-Za-z]*)$`)

// ParseUnit parses an annotation-grammar unit expression into a Dim:
//
//	expr     := factor (('*' | '/') factor)*
//	factor   := unit ['^' exponent]
//	unit     := 'V'|'A'|'s'|'m'|'K'|'F'|'W'|'J'|'Hz'|'1'
//	exponent := ['-'] [int [':' int]] [symbol]
//
// '1' is the dimensionless unit; a symbol exponent ("a" in `A/V^a`) names a
// model parameter such as the α-power-law exponent and is only valid on a
// base unit. "?" parses to ⊤ (it appears in serialized fact tables, not in
// source annotations).
func ParseUnit(s string) (Dim, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return TopDim(), fmt.Errorf("empty unit expression")
	case "?":
		return TopDim(), nil
	case "~":
		return ConstDim(), nil
	}
	out := NoDim()
	sign := int64(1)
	for i, tok := range splitUnitExpr(s) {
		if i > 0 {
			switch tok {
			case "*":
				sign = 1
				continue
			case "/":
				sign = -1
				continue
			}
		}
		f, err := parseFactor(tok)
		if err != nil {
			return TopDim(), err
		}
		out = out.Mul(f.Pow(sign, 1))
	}
	return out, nil
}

// splitUnitExpr tokenizes into factors and the '*'/'/' separators between
// them, preserving order.
func splitUnitExpr(s string) []string {
	var toks []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '*' || s[i] == '/' {
			toks = append(toks, s[start:i], string(s[i]))
			start = i + 1
		}
	}
	return append(toks, s[start:])
}

func parseFactor(tok string) (Dim, error) {
	name, expStr, hasExp := strings.Cut(tok, "^")
	if name == "1" {
		if hasExp {
			return TopDim(), fmt.Errorf("exponent on dimensionless unit in %q", tok)
		}
		return NoDim(), nil
	}
	base, ok := derivedUnits[name]
	if !ok {
		return TopDim(), fmt.Errorf("unknown unit %q (want V, A, s, m, K, F, W, J, Hz or 1)", name)
	}
	if !hasExp {
		return base, nil
	}
	m := exponentRx.FindStringSubmatch(expStr)
	if m == nil || (m[2] == "" && m[3] == "") {
		return TopDim(), fmt.Errorf("bad exponent %q in %q", expStr, tok)
	}
	coef := rat{1, 1}
	if m[2] != "" {
		numStr, denStr, isRat := strings.Cut(m[2], ":")
		var num, den int64 = 0, 1
		fmt.Sscanf(numStr, "%d", &num)
		if isRat {
			fmt.Sscanf(denStr, "%d", &den)
		}
		coef = makeRat(num, den)
	}
	if m[1] == "-" {
		coef = coef.neg()
	}
	if sym := m[3]; sym != "" {
		// Symbolic exponent: only on a single base atom.
		if len(base.exps) != 1 {
			return TopDim(), fmt.Errorf("symbolic exponent %q on derived unit %q", sym, name)
		}
		var atom string
		for k := range base.exps {
			atom = k
		}
		if strings.Contains(atom, "^") {
			return TopDim(), fmt.Errorf("nested symbolic exponent in %q", tok)
		}
		return Dim{kind: dimExact, exps: map[string]rat{atom + "^" + sym: coef}}, nil
	}
	return base.Pow(coef.num, coef.den), nil
}
