package analysis_test

import (
	"strings"
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestDimCheck(t *testing.T) {
	td := analysistest.Testdata(t, "dimcheck")
	analysistest.Run(t, td, analysis.DimCheck,
		"cmosopt/internal/physics",  // mismatch/composition/Pow/cross-package/allow
		"cmosopt/internal/devfacts", // cross-package fact source; own body clean
	)
}

// TestDimCheckUnitFacts pins the cmosvet/units/v1 fact table of the fixture's
// device package: the keys and canonical unit strings other packages resolve
// against.
func TestDimCheckUnitFacts(t *testing.T) {
	td := analysistest.Testdata(t, "dimcheck")
	loader := analysis.NewLoader(analysis.Root{Prefix: "", Dir: td + "/src"})
	facts := loader.PackageFacts("cmosopt/internal/devfacts")
	want := map[string]string{
		"ReferenceTempK":         "K",
		"Tech.VTherm":            "V",
		"Tech.Ct":                "F",
		"Tech.IJunc":             "A",
		"Tech.KSat":              "A/V^a",
		"Tech.Alpha":             "1",
		"Tech.IdUnit.param.vgs":  "V",
		"Tech.IdUnit.param.vts":  "V",
		"Tech.IdUnit.return":     "A",
		"Overdrive.param.vgs":    "V",
		"Overdrive.param.vts":    "V",
		"Overdrive.return":       "V",
		"CrossMulti.param.tempK": "", // belongs to physics, not devfacts
	}
	for key, unit := range want {
		got, ok := facts.Units[key]
		if unit == "" {
			if ok {
				t.Errorf("unexpected unit fact %q = %q", key, got)
			}
			continue
		}
		if got != unit {
			t.Errorf("unit fact %q = %q, want %q", key, got, unit)
		}
	}
	// Round-trip through the vetx encoding keeps the table intact.
	decoded := analysis.DecodeFacts(analysis.EncodeFacts(facts))
	if len(decoded.Units) != len(facts.Units) {
		t.Fatalf("vetx round trip lost units: %d → %d", len(facts.Units), len(decoded.Units))
	}
	if !strings.Contains(string(analysis.EncodeFacts(facts)), analysis.UnitsSchema) {
		t.Fatalf("encoded facts carry no %s schema tag", analysis.UnitsSchema)
	}
}
