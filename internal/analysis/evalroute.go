package analysis

import (
	"go/ast"
	"strings"
)

// EvalRoute enforces the PR 1 invariant: internal/eval is the only place
// that constructs delay/power/device model evaluators. Every optimizer,
// study, tool and example obtains delay and energy numbers through an
// eval.Engine (eval.New / eval.NewDelayOnly), so the coefficient cache, the
// evaluation-effort meter and the incremental re-timing machinery can never
// be bypassed by a new call site.
//
// Flagged, outside the model packages themselves and internal/eval:
//
//   - calls to any New* constructor of internal/delay, internal/power or
//     internal/device (delay.New, power.New, ...);
//   - composite literals of delay.Evaluator or power.Evaluator.
//
// The model packages (delay, power, device) and their unit tests keep
// constructing evaluators directly — they test the Appendix-A formulas the
// engine wraps.
var EvalRoute = &Analyzer{
	Name: "evalroute",
	Doc:  "all delay/power/device evaluator construction must go through internal/eval",
	Run:  runEvalRoute,
}

// modelPkgs are the packages whose constructors the engine owns.
var modelPkgs = []string{"internal/delay", "internal/power", "internal/device"}

// evalRouteAllowed are the packages that may construct evaluators directly:
// the engine itself plus the model packages (which covers their unit tests).
var evalRouteAllowed = append([]string{"internal/eval"}, modelPkgs...)

func runEvalRoute(pass *Pass) error {
	if pathIn(normalizePkgPath(pass.Pkg.Path()), evalRouteAllowed...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				path, name, ok := pass.pkgFunc(n)
				if !ok || !strings.HasPrefix(name, "New") {
					return true
				}
				if pathIn(path, modelPkgs...) {
					short := path[strings.LastIndex(path, "/")+1:]
					pass.Reportf(n.Pos(),
						"%s.%s constructs a model evaluator outside internal/eval; route evaluation through eval.New/eval.NewDelayOnly so the engine's cache and effort meter cannot be bypassed",
						short, name)
				}
			case *ast.CompositeLit:
				if sel, ok := ast.Unparen(n.Type).(*ast.SelectorExpr); ok {
					tv, haveType := pass.TypesInfo.Types[sel]
					if !haveType {
						return true
					}
					named := tv.Type.String()
					for _, mp := range modelPkgs {
						if strings.Contains(named, mp+".Evaluator") {
							pass.Reportf(n.Pos(),
								"composite literal of %s outside internal/eval; evaluators are engine-owned",
								named)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// normalizePkgPath maps the package-path variants `go vet` presents for test
// builds back to the base package: "p [p.test]" (in-package test variant)
// and "p_test [p.test]" (external test package) both normalize to "p".
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}
