package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestEvalRoute(t *testing.T) {
	td := analysistest.Testdata(t, "evalroute")
	analysistest.Run(t, td, analysis.EvalRoute,
		"cmosopt/internal/badpkg", // positive: direct construction flagged
		"cmosopt/internal/eval",   // negative: the engine may construct
	)
}
