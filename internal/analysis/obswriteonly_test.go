package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestObsWriteOnly(t *testing.T) {
	td := analysistest.Testdata(t, "obswriteonly")
	analysistest.Run(t, td, analysis.ObsWriteOnly,
		"cmosopt/internal/badread", // positive: reads + stray FlushObs flagged
		"cmosopt/internal/core",    // flush path allowed, worker-body flush flagged
		"cmosopt/cmd/tool",         // negative: cmd/* may read
		"cmosopt/internal/serve",   // negative: SSE serialization layer may read spans
	)
}
