package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KeyPure enforces the PR 8 content-addressing invariant: the result cache
// key (schema cmosopt/key/v1) is a pure function of WHAT is computed — the
// netlist, the normalized constraints, the tech overrides — and never of HOW
// the server happens to execute it. Two users submitting the same problem
// with different timeouts, worker counts or metrics flags must hit the same
// cache line, and a canceled run's deadline must not shadow a complete
// result.
//
// The analyzer does taint tracking inside internal/serve: execution-control
// sources are the well-known control fields of the serving layer's structs
// (TimeoutMS, NoCache, Workers, metrics/pprof addresses, queue tuning — see
// execControlFields) plus anything of type context.Context. Taint flows
// through assignments and expressions (a call with a tainted argument is
// tainted). Sinks are the keyForm composite literal and field writes to a
// keyForm value — the only paths into the sha256 that names a cache entry.
var KeyPure = &Analyzer{
	Name: "keypure",
	Doc:  "execution controls must not flow into the cmosopt/key/v1 cache key",
	Run:  runKeyPure,
}

// execControlFields are the struct field names that mean "how to run", not
// "what to compute". The list is the contract: adding a control to Request
// or the server config under one of these names is automatically kept out of
// the key; a new control under a new name must be added here (reviewed with
// the field).
var execControlFields = map[string]bool{
	"TimeoutMS": true, "NoCache": true, "Workers": true,
	"Metrics": true, "Pprof": true, "MetricsAddr": true, "PprofAddr": true,
	"Queue": true, "QueueLen": true, "MaxJobs": true, "Retention": true,
	"Ctx": true,
}

func runKeyPure(pass *Pass) error {
	if !pathIn(normalizePkgPath(pass.Pkg.Path()), "internal/serve") {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.isTestFile(fd.Pos()) {
				continue
			}
			checkKeyFunc(pass, fd)
		}
	}
	return nil
}

type taintState map[*types.Var]bool

func checkKeyFunc(pass *Pass, fd *ast.FuncDecl) {
	// Pre-filter: only functions that mention keyForm can sink into the key.
	if !mentionsKeyForm(pass, fd.Body) {
		return
	}
	cfg := BuildCFG(fd.Body)

	scanBlock := func(b *Block, in taintState, report bool) taintState {
		tainted := make(taintState, len(in))
		for v := range in {
			tainted[v] = true
		}
		for _, n := range b.Nodes {
			// Sinks first: report taint flowing into the key at this node.
			if report {
				reportKeySinks(pass, n, tainted)
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						id, isID := lhs.(*ast.Ident)
						if !isID {
							continue
						}
						v := assignedVar(pass, id)
						if v == nil {
							continue
						}
						if exprTainted(pass, s.Rhs[i], tainted) {
							tainted[v] = true
						} else if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
							delete(tainted, v) // strong update
						}
					}
				} else if len(s.Rhs) == 1 && exprTainted(pass, s.Rhs[0], tainted) {
					for _, lhs := range s.Lhs {
						if id, isID := lhs.(*ast.Ident); isID {
							if v := assignedVar(pass, id); v != nil {
								tainted[v] = true
							}
						}
					}
				}
			case *ast.DeclStmt:
				gd, isGen := s.Decl.(*ast.GenDecl)
				if !isGen {
					break
				}
				for _, spec := range gd.Specs {
					vs, isVS := spec.(*ast.ValueSpec)
					if !isVS {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && exprTainted(pass, vs.Values[i], tainted) {
							if v := assignedVar(pass, name); v != nil {
								tainted[v] = true
							}
						}
					}
				}
			}
		}
		return tainted
	}
	transfer := func(b *Block, in taintState) taintState { return scanBlock(b, in, false) }
	meet := func(a, b taintState) taintState {
		u := make(taintState, len(a)+len(b))
		for v := range a {
			u[v] = true
		}
		for v := range b {
			u[v] = true
		}
		return u
	}
	eq := func(a, b taintState) bool {
		if len(a) != len(b) {
			return false
		}
		for v := range a {
			if !b[v] {
				return false
			}
		}
		return true
	}
	in, _ := Forward(cfg, taintState{}, transfer, meet, eq)
	for _, b := range cfg.Blocks {
		if state, reached := in[b]; reached {
			scanBlock(b, state, true)
		}
	}
}

// reportKeySinks flags tainted expressions entering the cache key under node
// n: keyForm literal elements and writes to keyForm fields.
func reportKeySinks(pass *Pass, n ast.Node, tainted taintState) {
	// Field write: k.F = tainted where k is a keyForm.
	if as, isAssign := n.(*ast.AssignStmt); isAssign && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			sel, isSel := lhs.(*ast.SelectorExpr)
			if !isSel || !isKeyFormType(pass, sel.X) {
				continue
			}
			if why := taintReason(pass, as.Rhs[i], tainted); why != "" {
				pass.Reportf(as.Rhs[i].Pos(), "execution control %s flows into cmosopt/key/v1 field %s; cache keys must identify the problem, not the run", why, sel.Sel.Name)
			}
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		lit, isLit := c.(*ast.CompositeLit)
		if !isLit || !isKeyFormLit(pass, lit) {
			return true
		}
		for _, elt := range lit.Elts {
			value := elt
			field := ""
			if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
				value = kv.Value
				if id, isID := kv.Key.(*ast.Ident); isID {
					field = id.Name
				}
			}
			if why := taintReason(pass, value, tainted); why != "" {
				if field == "" {
					field = "a positional element"
				}
				pass.Reportf(value.Pos(), "execution control %s flows into cmosopt/key/v1 field %s; cache keys must identify the problem, not the run", why, field)
			}
		}
		return true
	})
}

// taintReason returns a human-readable source description when the
// expression carries execution-control taint, or "" when clean.
func taintReason(pass *Pass, e ast.Expr, tainted taintState) string {
	reason := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if isControlSource(pass, n) {
				reason = types.ExprString(n)
				return false
			}
		case *ast.Ident:
			if v, isVar := pass.TypesInfo.Uses[n].(*types.Var); isVar {
				if tainted[v] {
					reason = n.Name
					return false
				}
				if isCtxType(v.Type()) {
					reason = n.Name + " (context.Context)"
					return false
				}
			}
		}
		return true
	})
	return reason
}

func exprTainted(pass *Pass, e ast.Expr, tainted taintState) bool {
	return taintReason(pass, e, tainted) != ""
}

// isControlSource matches X.F where F is an execution-control field of a
// serving-layer struct.
func isControlSource(pass *Pass, sel *ast.SelectorExpr) bool {
	if !execControlFields[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return pathHasSuffix(normalizePkgPath(named.Obj().Pkg().Path()), "internal/serve")
}

func isCtxType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

func assignedVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func isKeyFormLit(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	return ok && isKeyFormT(tv.Type)
}

func isKeyFormType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isKeyFormT(tv.Type)
}

func isKeyFormT(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == "keyForm"
}

// mentionsKeyForm pre-filters to functions that can reach the sink.
func mentionsKeyForm(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, isID := n.(*ast.Ident); isID && id.Name == "keyForm" {
			found = true
		}
		return !found
	})
	return found
}
