package analysis

// dimcheck: dimensional analysis of the model's float surface.
//
// Every physical quantity in this repository — voltages, currents, delays,
// capacitances, energies, powers — travels as a bare float64. dimcheck
// retrofits a units-of-measure discipline onto those floats: declaration
// sites carry //cmosvet:unit annotations (units.go), the lattice of dimension
// vectors lives in dim.go, and this file is the checker that propagates
// dimensions through expressions and flags the operations physics forbids:
//
//   - + and -, += and -=, and the ordered/equality comparisons require both
//     operands to share a dimension (adding joules to watts is the classic
//     energy-vs-power confusion the paper's E·f_c = P identity invites);
//   - * and / compose exponent vectors, so C·V² comes out in joules and a
//     J/s quotient in watts without any annotation at the use site;
//   - math.Pow with a constant exponent scales the base's exponents (and
//     math.Sqrt halves them); a non-constant exponent yields ⊤;
//   - math.Exp/Log/trig demand dimensionless arguments;
//   - calls check annotated parameters and adopt annotated results, with
//     cross-package declarations resolved through the cmosvet/units/v1 fact
//     schema riding the same .vetx pipeline as the function facts;
//   - assignments into annotated fields, variables and composite-literal
//     fields must match the declared dimension, and returns must match the
//     declared result dimension.
//
// Dimensions flow through local variables with a forward dataflow fixpoint
// over the per-function CFG, so a value assigned on both arms of an if keeps
// its dimension at the merge and a variable rebound in a loop converges (the
// per-variable chain ⊥ → ~ → exact → ⊤ is finite). The fixpoint runs with
// reporting off; diagnostics come from one deterministic second pass per
// reachable block, so a block re-visited during iteration never reports
// twice.
//
// Missing information never manufactures findings: unannotated values are ⊤,
// which is compatible with everything, and literals are ~ (polymorphic
// constants), so `vdd > 3.3` and `0.5 * cap` stay silent while `energy +
// power` and `delay < vdd` flag. Function-literal bodies are not analyzed
// (the CFG deliberately excludes them); a closure's value is ⊤.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DimCheck is the dimensional-analysis pass.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc: "type-check physical units (V, A, s, F, W, J, Hz, …) across the model: " +
		"declaration sites annotated //cmosvet:unit seed a dimension lattice that " +
		"+/-/comparisons must preserve and */÷ compose; mismatches such as " +
		"energy+power or delay<voltage are reported",
	Run: runDimCheck,
}

func runDimCheck(pass *Pass) error {
	dc := &dimChecker{
		pass:     pass,
		units:    collectUnits(pass.Files, pass.TypesInfo),
		selfPath: normalizePkgPath(pass.Pkg.Path()),
		cache:    map[string]cachedDim{},
	}
	// Malformed annotations are findings themselves: a typo in a unit must
	// fail the gate, not silently widen it.
	for _, e := range dc.units.errs {
		pass.Reportf(e.pos, "%s", e.msg)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					dc.checkFunc(d)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					dc.checkPkgVar(d)
				}
			}
		}
	}
	return nil
}

// cachedDim memoizes one cross-package fact lookup (including misses).
type cachedDim struct {
	d  Dim
	ok bool
}

// dimChecker is the per-package state shared by every function's run.
type dimChecker struct {
	pass     *Pass
	units    *unitTable
	selfPath string
	cache    map[string]cachedDim
}

// lookup resolves a declaration key's dimension: the in-package annotation
// table for the package under analysis, the units fact table for everything
// else.
func (dc *dimChecker) lookup(path, key string) (Dim, bool) {
	if normalizePkgPath(path) == dc.selfPath {
		d, ok := dc.units.decls[key]
		return d, ok
	}
	ck := path + "\x00" + key
	if c, ok := dc.cache[ck]; ok {
		return c.d, c.ok
	}
	d, ok := dc.pass.unitFact(path, key)
	dc.cache[ck] = cachedDim{d, ok}
	return d, ok
}

// dimEnv is the dataflow state: the dimension of each tracked local. A
// missing variable is ⊥ (never assigned on this path yet).
type dimEnv map[*types.Var]Dim

func cloneEnv(env dimEnv) dimEnv {
	out := make(dimEnv, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// joinEnv is the pointwise lattice join (the Forward meet at merges).
func joinEnv(a, b dimEnv) dimEnv {
	out := make(dimEnv, len(a))
	for k, v := range a {
		out[k] = v.Join(b[k]) // zero Dim is ⊥, the Join identity
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalEnv(a, b dimEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		ov, ok := b[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// checkFunc runs the fixpoint over one function body, then reports from the
// converged block-entry states in block order (deterministic output).
func (dc *dimChecker) checkFunc(fd *ast.FuncDecl) {
	fc := &funcChecker{dc: dc, key: declKey(fd)}
	fc.results = dc.resultDimsOf(fd)
	fc.seeds = fc.rangeSeeds(fd)
	cfg := BuildCFG(fd.Body)
	reach := cfg.Reachable()
	transfer := func(b *Block, in dimEnv) dimEnv {
		env := cloneEnv(in)
		for _, n := range b.Nodes {
			fc.node(n, env)
		}
		return env
	}
	in, _ := Forward(cfg, dimEnv{}, transfer, joinEnv, equalEnv)
	fc.report = true
	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		transfer(b, in[b])
	}
}

// checkPkgVar checks package-level var initializers against their (and their
// targets') annotations.
func (dc *dimChecker) checkPkgVar(gd *ast.GenDecl) {
	fc := &funcChecker{dc: dc, report: true}
	env := dimEnv{}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		if len(vs.Values) == len(vs.Names) {
			for i, name := range vs.Names {
				fc.define(name, fc.expr(vs.Values[i], env), env)
			}
			continue
		}
		if len(vs.Names) > 1 && len(vs.Values) == 1 {
			dims := fc.resultValues(vs.Values[0], len(vs.Names), env)
			for i, name := range vs.Names {
				fc.define(name, dims[i], env)
			}
		}
	}
}

// resultDimsOf resolves a function's declared result dimensions (⊤ where
// unannotated).
func (dc *dimChecker) resultDimsOf(fd *ast.FuncDecl) []Dim {
	if fd.Type.Results == nil {
		return nil
	}
	key := declKey(fd)
	n := numResults(fd.Type.Results.List)
	out := make([]Dim, n)
	for i := range out {
		out[i] = TopDim()
		k := key + ".return"
		if i > 0 {
			k = fmt.Sprintf("%s.return%d", key, i+1)
		}
		if d, ok := dc.units.decls[k]; ok {
			out[i] = d
		}
	}
	return out
}

// funcChecker evaluates one function's statements and expressions. The same
// instance serves both the silent fixpoint and the reporting pass; report
// gates diagnostics.
type funcChecker struct {
	dc      *dimChecker
	key     string
	results []Dim
	// seeds carries range-statement value variables: the CFG exposes only the
	// ranged expression, not the key/value binding, so a prepass derives the
	// element dimension from statically-resolvable containers.
	seeds  map[*types.Var]Dim
	report bool
}

func (fc *funcChecker) info() *types.Info { return fc.dc.pass.TypesInfo }

func (fc *funcChecker) reportf(pos token.Pos, format string, args ...any) {
	if fc.report {
		fc.dc.pass.Reportf(pos, format, args...)
	}
}

// rangeSeeds pre-binds `for _, v := range x` value variables to x's element
// dimension when x resolves without local state (annotated fields, params,
// package vars). The floatCarrier convention makes a container's dimension
// its element's.
func (fc *funcChecker) rangeSeeds(fd *ast.FuncDecl) map[*types.Var]Dim {
	seeds := map[*types.Var]Dim{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		d := fc.expr(rs.X, dimEnv{})
		if !d.IsExact() {
			return true
		}
		if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
			if v, ok := fc.objVar(id); ok && floatCarrier(v.Type()) {
				seeds[v] = d
			}
		}
		return true
	})
	return seeds
}

func (fc *funcChecker) objVar(id *ast.Ident) (*types.Var, bool) {
	obj := fc.info().Defs[id]
	if obj == nil {
		obj = fc.info().Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// node dispatches one CFG node (a statement, or a bare condition/tag
// expression of a control statement).
func (fc *funcChecker) node(n ast.Node, env dimEnv) {
	switch n := n.(type) {
	case ast.Stmt:
		fc.stmt(n, env)
	case ast.Expr:
		fc.expr(n, env)
	}
}

func (fc *funcChecker) stmt(s ast.Stmt, env dimEnv) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		fc.assign(s, env)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case len(vs.Values) == len(vs.Names):
				for i, name := range vs.Names {
					fc.define(name, fc.expr(vs.Values[i], env), env)
				}
			case len(vs.Values) == 1 && len(vs.Names) > 1:
				dims := fc.resultValues(vs.Values[0], len(vs.Names), env)
				for i, name := range vs.Names {
					fc.define(name, dims[i], env)
				}
			default:
				// var x float64 — the zero value adapts like a literal 0.
				for _, name := range vs.Names {
					fc.define(name, ConstDim(), env)
				}
			}
		}
	case *ast.ReturnStmt:
		fc.returnStmt(s, env)
	case *ast.ExprStmt:
		fc.expr(s.X, env)
	case *ast.IncDecStmt:
		fc.expr(s.X, env)
	case *ast.GoStmt:
		fc.expr(s.Call, env)
	case *ast.DeferStmt:
		fc.expr(s.Call, env)
	case *ast.SendStmt:
		fc.expr(s.Chan, env)
		fc.expr(s.Value, env)
	}
}

func (fc *funcChecker) returnStmt(s *ast.ReturnStmt, env dimEnv) {
	if len(s.Results) == 0 {
		return // naked return: named results were checked at assignment
	}
	if len(s.Results) == 1 && len(fc.results) > 1 {
		dims := fc.resultValues(s.Results[0], len(fc.results), env)
		for i, d := range dims {
			fc.checkResult(s.Results[0].Pos(), i, d)
		}
		return
	}
	for i, r := range s.Results {
		d := fc.expr(r, env)
		if i < len(fc.results) {
			fc.checkResult(r.Pos(), i, d)
		}
	}
}

func (fc *funcChecker) checkResult(pos token.Pos, i int, d Dim) {
	want := fc.results[i]
	if !d.Compatible(want) {
		fc.reportf(pos, "returning %s from %s, whose result is declared %s", d, fc.key, want)
	}
}

func (fc *funcChecker) assign(s *ast.AssignStmt, env dimEnv) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			dims := fc.resultValues(s.Rhs[0], len(s.Lhs), env)
			for i, lhs := range s.Lhs {
				fc.assignTo(lhs, dims[i], env)
			}
			return
		}
		dims := make([]Dim, len(s.Rhs))
		for i, r := range s.Rhs {
			dims[i] = fc.expr(r, env)
		}
		for i, lhs := range s.Lhs {
			if i < len(dims) {
				fc.assignTo(lhs, dims[i], env)
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		l := fc.expr(s.Lhs[0], env)
		r := fc.expr(s.Rhs[0], env)
		var result Dim
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if !l.Compatible(r) {
				fc.reportf(s.TokPos, "dimension mismatch: %s %s %s", l, s.Tok, r)
			}
			result = addResult(l, r)
		case token.MUL_ASSIGN:
			result = l.Mul(r)
		default:
			result = l.Div(r)
		}
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
			fc.define(id, result, env)
			return
		}
		// Field or element target: its own declared dimension is l.
		if !result.Compatible(l) {
			fc.reportf(s.TokPos, "assigning %s to %s, declared %s", result, exprText(s.Lhs[0]), l)
		}
	default:
		for _, r := range s.Rhs {
			fc.expr(r, env)
		}
	}
}

// assignTo binds the value dimension d into an assignment target, checking
// annotated destinations.
func (fc *funcChecker) assignTo(lhs ast.Expr, d Dim, env dimEnv) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		fc.define(l, d, env)
	case *ast.SelectorExpr:
		declared := fc.selectorDim(l, env)
		if !d.Compatible(declared) {
			fc.reportf(lhs.Pos(), "assigning %s to %s, declared %s", d, exprText(lhs), declared)
		}
	case *ast.IndexExpr:
		fc.expr(l.Index, env)
		cur := fc.expr(l.X, env)
		if !d.Compatible(cur) {
			fc.reportf(lhs.Pos(), "assigning %s to %s, whose elements are %s", d, exprText(lhs), cur)
			return
		}
		// Refine an unannotated local container from its stored elements, so
		// `out := make([]float64, n); out[i] = vdd` types out as V.
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := fc.objVar(id); ok {
				if _, annotated := fc.dc.units.objects[v]; !annotated {
					env[v] = addResult(cur, d)
				}
			}
		}
	case *ast.StarExpr:
		fc.expr(l.X, env)
	default:
		fc.expr(lhs, env)
	}
}

// define binds an identifier; annotated variables (params, named results,
// package vars) check the incoming dimension and keep their declared one.
func (fc *funcChecker) define(id *ast.Ident, d Dim, env dimEnv) {
	if id.Name == "_" {
		return
	}
	v, ok := fc.objVar(id)
	if !ok {
		return
	}
	if declared, ok := fc.dc.units.objects[v]; ok {
		if !d.Compatible(declared) {
			fc.reportf(id.Pos(), "assigning %s to %s, declared %s", d, id.Name, declared)
		}
		env[v] = declared
		return
	}
	env[v] = d
}

// addResult is the value of an addition/subtraction (or a min/max-style
// merge) after compatibility was checked: exact information wins over ~ and
// ⊤, mismatched exacts degrade to ⊤.
func addResult(a, b Dim) Dim {
	switch {
	case a.IsBottom():
		return b
	case b.IsBottom():
		return a
	case !a.Compatible(b):
		return TopDim()
	case a.IsConst():
		return b
	case b.IsConst():
		return a
	case a.IsTop():
		return b
	case b.IsTop():
		return a
	default:
		return a
	}
}

// expr computes the dimension of an expression, reporting mismatches inside
// it. Named references resolve before the constant shortcut so an annotated
// package const (ReferenceTempK) keeps its declared dimension.
func (fc *funcChecker) expr(e ast.Expr, env dimEnv) Dim {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fc.expr(e.X, env)
	case *ast.Ident:
		return fc.identDim(e, env)
	case *ast.SelectorExpr:
		return fc.selectorDim(e, env)
	case *ast.BinaryExpr:
		return fc.binary(e, env)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB, token.ADD, token.AND:
			return fc.expr(e.X, env) // -x, +x keep x's dimension; &x its carrier's
		default:
			fc.expr(e.X, env)
			return fc.fallback(e)
		}
	case *ast.CallExpr:
		return fc.call(e, env)
	case *ast.IndexExpr:
		fc.expr(e.Index, env)
		return fc.expr(e.X, env) // container dimension = element dimension
	case *ast.SliceExpr:
		return fc.expr(e.X, env)
	case *ast.StarExpr:
		return fc.expr(e.X, env)
	case *ast.CompositeLit:
		return fc.composite(e, env)
	case *ast.TypeAssertExpr:
		fc.expr(e.X, env)
		return fc.fallback(e)
	case *ast.BasicLit:
		return ConstDim()
	case *ast.FuncLit:
		return TopDim() // closure bodies are outside the CFG by design
	default:
		return fc.fallback(e)
	}
}

// fallback is the dimension of an expression nothing resolved: integer-typed
// expressions are counts (dimensionless), everything else is ⊤.
func (fc *funcChecker) fallback(e ast.Expr) Dim {
	if tv, ok := fc.info().Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return NoDim()
		}
	}
	return TopDim()
}

func (fc *funcChecker) constShortcut(e ast.Expr) (Dim, bool) {
	if tv, ok := fc.info().Types[e]; ok && tv.Value != nil {
		return ConstDim(), true
	}
	return Dim{}, false
}

func (fc *funcChecker) identDim(id *ast.Ident, env dimEnv) Dim {
	if id.Name == "_" {
		return TopDim()
	}
	obj := fc.info().Uses[id]
	if obj == nil {
		obj = fc.info().Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		if d, ok := env[v]; ok && !d.IsBottom() {
			return d
		}
		if d, ok := fc.seeds[v]; ok {
			return d
		}
	}
	if obj != nil {
		if d, ok := fc.dc.units.objects[obj]; ok {
			return d
		}
	}
	if d, ok := fc.constShortcut(id); ok {
		return d
	}
	return fc.fallback(id)
}

func (fc *funcChecker) selectorDim(sel *ast.SelectorExpr, env dimEnv) Dim {
	info := fc.info()
	// pkg.Name: a qualified const, var or func value.
	if x, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[x].(*types.PkgName); ok {
			if obj := info.Uses[sel.Sel]; obj != nil {
				if d, ok := fc.dc.lookup(pn.Imported().Path(), obj.Name()); ok {
					return d
				}
			}
			if d, ok := fc.constShortcut(sel); ok {
				return d
			}
			return fc.fallback(sel)
		}
	}
	fc.expr(sel.X, env) // checks nested in the receiver expression
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		field := s.Obj()
		if d, ok := fc.dc.units.objects[field]; ok {
			return d
		}
		if path, typeName, ok := recvNamed(s.Recv()); ok {
			if d, ok := fc.dc.lookup(path, typeName+"."+field.Name()); ok {
				return d
			}
		}
		return fc.fallback(sel)
	}
	if d, ok := fc.constShortcut(sel); ok {
		return d
	}
	return fc.fallback(sel)
}

// recvNamed unwraps a selection receiver to its named type's (package path,
// type name).
func recvNamed(recv types.Type) (path, name string, ok bool) {
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

func (fc *funcChecker) binary(e *ast.BinaryExpr, env dimEnv) Dim {
	a := fc.expr(e.X, env)
	b := fc.expr(e.Y, env)
	switch e.Op {
	case token.MUL:
		return a.Mul(b)
	case token.QUO:
		return a.Div(b)
	case token.ADD, token.SUB:
		if !a.Compatible(b) {
			fc.reportf(e.OpPos, "dimension mismatch: %s %s %s", a, e.Op, b)
		}
		return addResult(a, b)
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		if !a.Compatible(b) {
			fc.reportf(e.OpPos, "dimension mismatch: comparing %s %s %s", a, e.Op, b)
		}
		return NoDim()
	default:
		return fc.fallback(e)
	}
}

func (fc *funcChecker) call(call *ast.CallExpr, env dimEnv) Dim {
	info := fc.info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return TopDim()
		}
		return fc.convDim(tv.Type, call.Args[0], env)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return fc.builtinCall(id.Name, call, env)
		}
	}
	if path, name, ok := fc.dc.pass.pkgFunc(call); ok && path == "math" {
		return fc.mathCall(name, call, env)
	}
	fn, path, key, ok := calleeFunc(info, call)
	if !ok {
		fc.evalFun(call.Fun, env)
		for _, a := range call.Args {
			fc.expr(a, env)
		}
		return fc.fallback(call)
	}
	fc.evalFun(call.Fun, env)
	fc.checkArgs(call, fn, path, key, env)
	if d, ok := fc.dc.lookup(path, key+".return"); ok {
		return d
	}
	return fc.fallback(call)
}

// evalFun checks expressions nested in the callee position (a call-returning
// call, a field holding a func value) without resolving it, taking care not
// to re-evaluate plain identifier chains.
func (fc *funcChecker) evalFun(fun ast.Expr, env dimEnv) {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			if _, isPkg := fc.info().Uses[x].(*types.PkgName); isPkg {
				return
			}
		}
		fc.expr(f.X, env)
	default:
		fc.expr(f, env)
	}
}

// checkArgs evaluates call arguments and checks them against the callee's
// annotated parameters.
func (fc *funcChecker) checkArgs(call *ast.CallExpr, fn *types.Func, path, key string, env dimEnv) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		for _, a := range call.Args {
			fc.expr(a, env)
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		ad := fc.expr(arg, env)
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			continue
		}
		p := params.At(pi)
		if p.Name() == "" {
			continue
		}
		if pd, ok := fc.dc.lookup(path, key+".param."+p.Name()); ok && !ad.Compatible(pd) {
			fc.reportf(arg.Pos(), "argument %d of %s is %s; parameter %s is declared %s",
				i+1, key, ad, p.Name(), pd)
		}
	}
}

// resultValues is the per-result dimension list of a multi-value expression
// (a call in `a, b := f()` position).
func (fc *funcChecker) resultValues(e ast.Expr, n int, env dimEnv) []Dim {
	dims := make([]Dim, n)
	for i := range dims {
		dims[i] = TopDim()
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		fc.expr(e, env)
		return dims
	}
	fn, path, key, resolved := calleeFunc(fc.info(), call)
	if !resolved {
		fc.expr(e, env)
		return dims
	}
	fc.evalFun(call.Fun, env)
	fc.checkArgs(call, fn, path, key, env)
	for i := range dims {
		k := key + ".return"
		if i > 0 {
			k = fmt.Sprintf("%s.return%d", key, i+1)
		}
		if d, ok := fc.dc.lookup(path, k); ok {
			dims[i] = d
		}
	}
	return dims
}

// convDim handles conversions T(x): float↔float preserves the dimension,
// int→float produces a dimensionless count, and anything integer-valued is a
// count.
func (fc *funcChecker) convDim(target types.Type, arg ast.Expr, env dimEnv) Dim {
	d := fc.expr(arg, env)
	tb, _ := target.Underlying().(*types.Basic)
	if tb == nil {
		return TopDim()
	}
	switch {
	case tb.Info()&types.IsFloat != 0:
		if at, ok := fc.info().Types[arg]; ok && at.Type != nil {
			if ab, ok := at.Type.Underlying().(*types.Basic); ok && ab.Info()&types.IsInteger != 0 {
				return NoDim()
			}
		}
		return d
	case tb.Info()&types.IsInteger != 0:
		return NoDim()
	default:
		return TopDim()
	}
}

func (fc *funcChecker) builtinCall(name string, call *ast.CallExpr, env dimEnv) Dim {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return TopDim()
		}
		d := fc.expr(call.Args[0], env)
		for _, a := range call.Args[1:] {
			ad := fc.expr(a, env)
			if !ad.Compatible(d) {
				fc.reportf(a.Pos(), "appending %s to a container of %s", ad, d)
				continue
			}
			d = addResult(d, ad)
		}
		return d
	case "min", "max":
		var d Dim // ⊥
		for _, a := range call.Args {
			ad := fc.expr(a, env)
			if !ad.Compatible(d) {
				fc.reportf(a.Pos(), "dimension mismatch: %s argument is %s, earlier arguments are %s", name, ad, d)
				continue
			}
			d = addResult(d, ad)
		}
		return d
	case "len", "cap":
		for _, a := range call.Args {
			fc.expr(a, env)
		}
		return NoDim()
	default:
		for _, a := range call.Args {
			fc.expr(a, env)
		}
		return fc.fallback(call)
	}
}

// mathCall gives the math package its dimensional semantics.
func (fc *funcChecker) mathCall(name string, call *ast.CallExpr, env dimEnv) Dim {
	argDim := func(i int) Dim {
		if i < len(call.Args) {
			return fc.expr(call.Args[i], env)
		}
		return TopDim()
	}
	switch name {
	case "Abs", "Floor", "Ceil", "Round", "RoundToEven", "Trunc":
		return argDim(0)
	case "Copysign":
		d := argDim(0)
		argDim(1)
		return d
	case "Sqrt":
		return argDim(0).Pow(1, 2)
	case "Cbrt":
		return argDim(0).Pow(1, 3)
	case "Pow":
		base := argDim(0)
		if num, den, ok := fc.constRat(1, call); ok {
			return base.Pow(num, den)
		}
		ed := argDim(1)
		if ed.IsExact() && !ed.IsDimensionless() {
			fc.reportf(call.Pos(), "math.Pow exponent has dimension %s; must be dimensionless", ed)
		}
		// A runtime exponent (the α-power law's alpha, temperature scaling)
		// makes the result's dimension data-dependent.
		if base.IsConst() || base.IsDimensionless() {
			return NoDim()
		}
		return TopDim()
	case "Min", "Max", "Mod", "Remainder", "Dim", "Hypot", "Nextafter":
		a, b := argDim(0), argDim(1)
		if !a.Compatible(b) {
			fc.reportf(call.Pos(), "dimension mismatch: math.%s(%s, %s)", name, a, b)
		}
		return addResult(a, b)
	case "Exp", "Exp2", "Expm1", "Log", "Log2", "Log10", "Log1p",
		"Sin", "Cos", "Tan", "Asin", "Acos", "Atan",
		"Sinh", "Cosh", "Tanh", "Asinh", "Acosh", "Atanh",
		"Erf", "Erfc", "Gamma":
		d := argDim(0)
		if d.IsExact() && !d.IsDimensionless() {
			fc.reportf(call.Pos(), "math.%s argument has dimension %s; must be dimensionless", name, d)
		}
		return NoDim()
	case "Atan2":
		a, b := argDim(0), argDim(1)
		if !a.Compatible(b) {
			fc.reportf(call.Pos(), "dimension mismatch: math.Atan2(%s, %s)", a, b)
		}
		return NoDim()
	case "Inf", "NaN":
		argDim(0)
		return ConstDim()
	case "IsNaN", "IsInf", "Signbit":
		for i := range call.Args {
			argDim(i)
		}
		return NoDim()
	default:
		for i := range call.Args {
			argDim(i)
		}
		return fc.fallback(call)
	}
}

// constRat extracts call argument i as an exact rational (math.Pow's constant
// exponent).
func (fc *funcChecker) constRat(i int, call *ast.CallExpr) (num, den int64, ok bool) {
	if i >= len(call.Args) {
		return 0, 0, false
	}
	tv, found := fc.info().Types[call.Args[i]]
	if !found || tv.Value == nil {
		return 0, 0, false
	}
	v := tv.Value
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return 0, 0, false
	}
	n, okN := constant.Int64Val(constant.Num(v))
	d, okD := constant.Int64Val(constant.Denom(v))
	if !okN || !okD || d == 0 {
		return 0, 0, false
	}
	return n, d, true
}

func (fc *funcChecker) composite(e *ast.CompositeLit, env dimEnv) Dim {
	tv := fc.info().Types[e]
	var path, typeName string
	if tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			path, typeName = named.Obj().Pkg().Path(), named.Obj().Name()
		}
	}
	for _, elt := range e.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			fc.expr(elt, env)
			continue
		}
		d := fc.expr(kv.Value, env)
		key, isField := kv.Key.(*ast.Ident)
		if isField && typeName != "" {
			if want, ok := fc.dc.lookup(path, typeName+"."+key.Name); ok && !d.Compatible(want) {
				fc.reportf(kv.Value.Pos(), "field %s.%s is declared %s; assigned %s", typeName, key.Name, want, d)
			}
			continue
		}
		if !isField {
			fc.expr(kv.Key, env) // map-literal keys
		}
	}
	return TopDim()
}

// calleeFunc mirrors calleeRef but also returns the callee object, whose
// signature names the parameters for annotation lookup.
func calleeFunc(info *types.Info, call *ast.CallExpr) (fn *types.Func, path, key string, ok bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fo, isFunc := info.Uses[f].(*types.Func); isFunc && fo.Pkg() != nil {
			return fo, fo.Pkg().Path(), fo.Name(), true
		}
	case *ast.SelectorExpr:
		if sel, isMethod := info.Selections[f]; isMethod && sel.Kind() == types.MethodVal {
			if fo, isFunc := sel.Obj().(*types.Func); isFunc {
				if path, name, ok := recvNamed(sel.Recv()); ok {
					return fo, path, name + "." + f.Sel.Name, true
				}
			}
			return nil, "", "", false
		}
		if x, isID := f.X.(*ast.Ident); isID {
			if pn, isPkg := info.Uses[x].(*types.PkgName); isPkg {
				if fo, isFunc := info.Uses[f.Sel].(*types.Func); isFunc {
					return fo, pn.Imported().Path(), f.Sel.Name, true
				}
			}
		}
	}
	return nil, "", "", false
}

// exprText renders an assignment target for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	}
	return "expression"
}
