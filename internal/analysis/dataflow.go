package analysis

// Forward runs a forward dataflow fixpoint over a CFG. The framework is
// generic in the state type S: the analyzer supplies the entry state, a
// per-block transfer function (fold your per-node logic over block.Nodes),
// the meet operator joining states at control-flow merges (union for a
// may-analysis, intersection/AND for a must-analysis) and an equality test
// that bounds the iteration. Only blocks reachable from Entry participate;
// the returned maps give the fixpoint state at block entry and exit, with
// unreachable blocks absent.
//
// Termination is the analyzer's responsibility in the usual lattice sense
// (meet monotone, finite height); a generous iteration budget cuts off a
// non-converging client instead of hanging the tool.
func Forward[S any](c *CFG, entry S, transfer func(*Block, S) S, meet func(S, S) S, equal func(S, S) bool) (in, out map[*Block]S) {
	in = map[*Block]S{c.Entry: entry}
	out = make(map[*Block]S)

	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	budget := 1000 * (len(c.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false

		o := transfer(b, in[b])
		if prev, ok := out[b]; ok && equal(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			ns, seen := in[s]
			if !seen {
				ns = o
			} else {
				ns = meet(ns, o)
				if equal(ns, in[s]) {
					continue
				}
			}
			in[s] = ns
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in, out
}
