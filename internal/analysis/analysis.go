// Package analysis is a minimal, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, plus the four cmosvet analyzers
// that enforce this repository's architectural invariants at compile time:
//
//   - evalroute (evalroute.go): every delay/power evaluator is constructed by
//     internal/eval — the PR 1 "one evaluation route" invariant;
//   - determinism (determinism.go): no wall-clock, no global math/rand, and
//     no map-iteration order escaping into outputs in the deterministic
//     packages — the PR 2 "byte-identical at any worker count" invariant;
//   - obswriteonly (obswriteonly.go): instrumentation is write-only outside
//     the observability and tool layers — the PR 3 "instrumentation never
//     changes outputs" invariant;
//   - floateq (floateq.go): no raw float ==/!= in bisection/convergence
//     code; comparisons route through internal/floats.
//
// Four flow-aware analyzers reason over a per-function CFG (cfg.go), a
// generic forward dataflow fixpoint (dataflow.go) and cross-package function
// facts (facts.go):
//
//   - hotalloc (hotalloc.go): //cmosvet:hotpath functions contain no
//     heap-allocating construct on any reachable path — the PR 6
//     "zero-allocation levelized sweeps" invariant;
//   - ctxpoll (ctxpoll.go): candidate loops that reach engine evaluation
//     poll Spec.Ctx on every iteration path — the PR 8 cancellation
//     invariant;
//   - locksafe (locksafe.go): every sync.Mutex/RWMutex Lock is released on
//     all exit paths, and no FlushObs/blocking send/engine evaluation runs
//     under a held lock — the PR 2/PR 3 sharded-cache discipline;
//   - keypure (keypure.go): execution controls never flow into the
//     cmosopt/key/v1 cache key — the PR 8 content-addressing invariant.
//
// A ninth analyzer, dimcheck (dimcheck.go), runs dimensional analysis over
// the model's float surface: //cmosvet:unit annotations on declaration sites
// (units.go) seed a lattice of physical dimensions (dim.go) that a forward
// dataflow fixpoint propagates through expressions, rejecting additions,
// subtractions and comparisons of unequal dimensions (energy+power,
// delay<voltage) while */÷ compose exponents. Cross-package declarations
// resolve through the cmosvet/units/v1 fact schema riding the same .vetx
// pipeline as the function facts.
//
// The x/tools module is deliberately not vendored (this module has zero
// dependencies); the subset reimplemented here — Analyzer, Pass, Diagnostic,
// an analysistest-style fixture runner (analysistest/) and the `go vet
// -vettool` unit-checker protocol (cmd/cmosvet) — is small and uses only the
// standard library's go/ast, go/types and go/parser.
//
// # Suppression
//
// A finding can be waived at a site whose violation is deliberate and
// documented with a line comment
//
//	//cmosvet:allow <analyzer> — <reason>
//
// on the flagged line, or on its own line directly above the annotated
// statement or declaration — in which case it binds to that node's source
// span (a directive above a declaration covers exactly that declaration,
// never the rest of the file). The reason is mandatory by convention
// (reviewed, not machine-checked): the allow comment is the audit trail for
// why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and allow comments
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// Pass holds the inputs of one analyzer run over one package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // package syntax, in file-name order
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts supplies cross-package function facts to the flow-aware
	// analyzers; nil disables fact lookups (everything resolves unknown).
	Facts FactProvider

	diagnostics []Diagnostic
	allow       map[string][]allowDirective // filename → directives
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

type allowDirective struct {
	line     int // the directive's own line (trailing-comment matches)
	from, to int // the annotated node's line span (standalone directives)
	analyzer string
}

var allowRx = regexp.MustCompile(`^//\s*cmosvet:allow\s+([a-z]+)`)

// NewPass assembles a Pass and indexes the //cmosvet:allow directives of the
// package's files, binding each standalone directive to the span of the
// statement or declaration it annotates (see bindAllowSpans).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allow:     make(map[string][]allowDirective),
	}
	for _, f := range files {
		var ds []allowDirective
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ds = append(ds, allowDirective{line: pos.Line, analyzer: m[1]})
			}
		}
		if len(ds) == 0 {
			continue
		}
		bindAllowSpans(fset, f, ds)
		name := fset.Position(f.Pos()).Filename
		p.allow[name] = append(p.allow[name], ds...)
	}
	return p
}

// bindAllowSpans resolves each directive to the line span it suppresses. A
// directive trailing code keeps matching its own line only. A directive on
// its own line binds to the next statement/declaration below it — skipping
// further comment lines, so stacked directives all reach the same node — and
// covers that node's whole source span. This is what scopes an allow on a
// declaration to exactly that declaration instead of leaking further down
// the file. With nothing to bind to (end of file), the legacy
// "line directly above" behavior remains.
func bindAllowSpans(fset *token.FileSet, f *ast.File, ds []allowDirective) {
	// Outermost node starting on each line (ast.Inspect is pre-order, so the
	// first node seen for a line is the outermost) and its end line.
	starts := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.File, *ast.CommentGroup, *ast.Comment:
			// Comments are not anchors (a doc-comment line must not read as
			// code, or a directive inside one would bind to itself).
			return true
		}
		l := fset.Position(n.Pos()).Line
		if _, seen := starts[l]; !seen {
			starts[l] = fset.Position(n.End()).Line
		}
		return true
	})
	// Lines occupied by comments, so stacked directives skip over each other.
	commentLines := map[int]bool{}
	for _, cg := range f.Comments {
		for l := fset.Position(cg.Pos()).Line; l <= fset.Position(cg.End()).Line; l++ {
			commentLines[l] = true
		}
	}
	lastLine := fset.Position(f.End()).Line
	for i := range ds {
		d := &ds[i]
		d.from, d.to = d.line+1, d.line+1 // legacy fallback: line directly above
		if _, codeHere := starts[d.line]; codeHere {
			// Trailing comment: the node on this line may span many lines,
			// but a trailing allow keeps its tight own-line scope.
			d.from, d.to = d.line, d.line
			continue
		}
		for l := d.line + 1; l <= lastLine; l++ {
			if end, ok := starts[l]; ok {
				d.from, d.to = l, end
				break
			}
			if !commentLines[l] {
				break // blank or non-anchoring line: directive dangles
			}
		}
	}
}

// Reportf records a diagnostic at pos unless an allow directive for this
// analyzer covers it: a directive on the same line, or one whose bound node
// span contains the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.allow[position.Filename] {
		if d.analyzer != p.Analyzer.Name {
			continue
		}
		if d.line == position.Line || (position.Line >= d.from && position.Line <= d.to) {
			return
		}
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings ordered by (file, line, column, analyzer)
// — the byte-stable order every cmosvet output mode preserves.
func (p *Pass) Diagnostics() []Diagnostic {
	SortDiagnostics(p.diagnostics)
	return p.diagnostics
}

// SortDiagnostics orders findings by (file, line, column, analyzer, message)
// so merged multi-analyzer output is byte-stable across runs and diff-able
// in CI.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

// All returns the cmosvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{EvalRoute, Determinism, ObsWriteOnly, FloatEq, HotAlloc, CtxPoll, LockSafe, KeyPure, DimCheck}
}

// ByName returns the named analyzers from the suite ("" or "all" → all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// --- shared AST/type helpers used by the analyzers ---

// isTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// pkgFunc resolves a call expression to (package path, function name) when
// the callee is a selector on an imported package (fmt.Println → "fmt",
// "Println"). The second result is false for method calls, local calls and
// non-selector callees.
func (p *Pass) pkgFunc(call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodOn resolves a call expression to (receiver type package path,
// receiver type name, method name) for method calls on a named type or a
// pointer to one.
func (p *Pass) methodOn(call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, isMethod := p.TypesInfo.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), sel.Sel.Name, true
}

// pathHasSuffix reports whether the package path is exactly suffix or ends
// with "/"+suffix (so "internal/eval" matches both the real module path and
// fixture paths).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathIn reports whether path matches any of the given suffixes.
func pathIn(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}
