package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe enforces the locking discipline the sharded coefficient cache
// (PR 2) and the observability registry (PR 3) rely on:
//
//   - every sync.Mutex/RWMutex Lock (and RLock) is released on every CFG
//     path that reaches the function's exit — either by a matching
//     Unlock/RUnlock on the path or by a deferred unlock of the same
//     receiver; paths that end in panic are exempt (the unwinding defers
//     run, and a poisoned lock is the least of the process's problems);
//   - no FlushObs call, no blocking channel send, and no Engine full
//     evaluation happens while any lock is held. The coeff-cache shards sit
//     on the hot path of every gate-delay call: anything slow or re-entrant
//     under a shard lock turns the sharding into a convoy. Sends that are
//     select communications are exempt (they cannot block the holder
//     forever when a default or peer case exists; the CFG keeps each comm
//     on its own path).
//
// Lock identity is the receiver expression spelled in source ("s.mu",
// "shard.mu"): path-sensitive flow does the rest, so the straight-line
// lookup/store shard code with explicit Unlock (no defer, no closure)
// verifies as-is. Conditional-flag idioms (`locked := true; ...; if locked {
// mu.Unlock() }`) are beyond the state the analyzer tracks and take an
// //cmosvet:allow with the reasoning spelled out.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "sync locks must be released on all exit paths; no FlushObs/send/eval under a held lock",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.isTestFile(fd.Pos()) {
				continue
			}
			checkLockFunc(pass, fd)
		}
	}
	return nil
}

// lockOp names the sync methods the analyzer tracks; read locks get a "#r"
// key suffix so Unlock cannot satisfy RLock.
var lockAcquire = map[string]string{"Lock": "", "RLock": "#r"}
var lockRelease = map[string]string{"Unlock": "", "RUnlock": "#r"}

func checkLockFunc(pass *Pass, fd *ast.FuncDecl) {
	// Cheap pre-scan: most functions never touch a lock.
	if !hasLockCall(pass, fd.Body) {
		return
	}
	cfg := BuildCFG(fd.Body)
	deferred := deferUnlockKeys(pass, cfg)
	selectComms := selectCommStmts(fd.Body)
	lockPos := map[string]token.Pos{}

	// scanBlock is the block transfer function; during the fixpoint it runs
	// silently (possibly several times per block), then one post-fixpoint
	// sweep over the final entry states reports with report=true.
	scanBlock := func(b *Block, in string, report bool) string {
		held := decodeHeld(in)
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				continue // runs at exit / on another goroutine
			}
			ast.Inspect(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.FuncLit:
					return false // closure body runs elsewhere
				case *ast.SendStmt:
					if report && len(held) > 0 && !selectComms[c] {
						pass.Reportf(c.Pos(), "channel send while %s is held; a blocked receiver would stall every waiter on the lock", heldNames(held))
					}
				case *ast.CallExpr:
					if key, suffix, ok := syncLockCall(pass, c, lockAcquire); ok {
						k := key + suffix
						held[k] = true
						if _, seen := lockPos[k]; !seen {
							lockPos[k] = c.Pos()
						}
						return true
					}
					if key, suffix, ok := syncLockCall(pass, c, lockRelease); ok {
						delete(held, key+suffix)
						return true
					}
					if !report || len(held) == 0 {
						return true
					}
					if sel, isSel := ast.Unparen(c.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "FlushObs" {
						pass.Reportf(c.Pos(), "FlushObs while %s is held; flush after releasing the lock", heldNames(held))
					}
					if isEngineEvalCall(pass.TypesInfo, c) {
						pass.Reportf(c.Pos(), "engine evaluation while %s is held; evaluation takes the coeff-cache shard locks and must not nest under another lock", heldNames(held))
					}
				}
				return true
			})
		}
		return encodeHeld(held)
	}
	transfer := func(b *Block, in string) string { return scanBlock(b, in, false) }
	meet := func(a, b string) string { return unionHeld(a, b) }
	eq := func(a, b string) bool { return a == b }
	in, _ := Forward(cfg, "", transfer, meet, eq)
	for _, b := range cfg.Blocks {
		if state, reached := in[b]; reached {
			scanBlock(b, state, true)
		}
	}

	leaked := decodeHeld(in[cfg.Exit])
	var keys []string
	for k := range leaked {
		if !deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pos := lockPos[k]
		if !pos.IsValid() {
			pos = fd.Pos()
		}
		pass.Reportf(pos, "%s is not released on every exit path of %s; unlock on each return or defer the unlock", displayKey(k), fd.Name.Name)
	}
}

// hasLockCall is the pre-filter: does the body mention a sync lock method?
func hasLockCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := syncLockCall(pass, call, lockAcquire); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// syncLockCall matches a call to one of the given sync.Mutex/RWMutex methods
// (including promoted embedded mutexes and sync.Locker values) and returns
// the lock's identity: the receiver expression as spelled plus the read-lock
// suffix.
func syncLockCall(pass *Pass, call *ast.CallExpr, ops map[string]string) (key, suffix string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	sfx, isOp := ops[sel.Sel.Name]
	if !isOp {
		return "", "", false
	}
	selection, isMethod := pass.TypesInfo.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sfx, true
}

// deferUnlockKeys collects the locks released by defer statements: direct
// `defer mu.Unlock()` and unlocks inside `defer func() {...}()` bodies.
func deferUnlockKeys(pass *Pass, cfg *CFG) map[string]bool {
	keys := map[string]bool{}
	for _, d := range cfg.Defers {
		ast.Inspect(d.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, sfx, ok := syncLockCall(pass, call, lockRelease); ok {
					keys[key+sfx] = true
				}
			}
			return true
		})
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, sfx, ok := syncLockCall(pass, call, lockRelease); ok {
						keys[key+sfx] = true
					}
				}
				return true
			})
		}
	}
	return keys
}

// selectCommStmts returns the send statements that are select communication
// clauses (exempt from the no-send-under-lock rule).
func selectCommStmts(body *ast.BlockStmt) map[*ast.SendStmt]bool {
	comms := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					comms[send] = true
				}
			}
		}
		return true
	})
	return comms
}

// --- held-set encoding: sorted keys joined, "" = nothing held ---

func decodeHeld(s string) map[string]bool {
	held := map[string]bool{}
	if s == "" {
		return held
	}
	for _, k := range strings.Split(s, "\x00") {
		held[k] = true
	}
	return held
}

func encodeHeld(held map[string]bool) string {
	if len(held) == 0 {
		return ""
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x00")
}

func unionHeld(a, b string) string {
	if a == b || b == "" {
		return a
	}
	if a == "" {
		return b
	}
	m := decodeHeld(a)
	for k := range decodeHeld(b) {
		m[k] = true
	}
	return encodeHeld(m)
}

func heldNames(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, displayKey(k))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func displayKey(k string) string {
	return strings.TrimSuffix(k, "#r")
}
