package analysis

import (
	"go/ast"
)

// HotAlloc enforces the PR 6 invariant: the annotated hot path — the
// levelized full/incremental sweeps, CSR level walks and dirty-set
// operations that BenchmarkEngineFullEval proves run at 0 allocs/op — stays
// allocation-free by construction, not only by benchmark.
//
// A function opts in with a //cmosvet:hotpath directive on its declaration.
// Inside such a function, every reachable path (per the function's CFG;
// statements after an unconditional return or panic are ignored) must avoid
// the heap-allocating constructs listed at allocSites: make/new, slice and
// map literals, address-taken composite literals, capturing closures,
// non-constant string concatenation, and implicit interface boxing. Value
// composite literals (Coeffs{...}) and append into preallocated scratch are
// fine — see allocSites for the rationale.
//
// Calls out of a hotpath function are checked through cross-package facts:
// a module-internal callee must either be hotpath-annotated itself (its own
// body is then checked where it lives) or be allocation-free by direct
// inspection. Calls into the standard library and through function values
// resolve to no facts and pass — the benchmark allocation gate backstops
// what the type system cannot see.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//cmosvet:hotpath functions must not heap-allocate on any reachable path",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		hotLines := directiveLines(pass.Fset, f, hotpathRx)
		if len(hotLines) == 0 {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathMarked(pass.Fset, fd, hotLines) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	cfg := BuildCFG(fd.Body)
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			for _, site := range allocSites(n, pass.TypesInfo, pass.Pkg) {
				pass.Reportf(site.pos, "%s in hotpath function %s allocates; hoist it out of the hot path or drop the //cmosvet:hotpath annotation", site.what, fd.Name.Name)
			}
			checkHotCalls(pass, fd, n)
		}
	}
}

// checkHotCalls verifies that resolvable callees of a hotpath function are
// themselves hot-safe: hotpath-annotated, or allocation-free by direct
// inspection (facts). Deferred and go'd calls run off the measured path and
// are exempt.
func checkHotCalls(pass *Pass, fd *ast.FuncDecl, n ast.Node) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "panic" {
			return false
		}
		path, key, ok := calleeRef(pass.TypesInfo, call)
		if !ok {
			return true
		}
		facts, known := pass.funcFact(path, key)
		if !known || facts.Hotpath || !facts.Allocates {
			return true
		}
		pass.Reportf(call.Pos(), "hotpath function %s calls %s, which allocates; mark the callee //cmosvet:hotpath (and fix it) or hoist the call", fd.Name.Name, key)
		return true
	})
}
