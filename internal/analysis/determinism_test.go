package analysis_test

import (
	"testing"

	"cmosopt/internal/analysis"
	"cmosopt/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	td := analysistest.Testdata(t, "determinism")
	analysistest.Run(t, td, analysis.Determinism,
		"cmosopt/internal/core",  // positive + negative cases in scope
		"cmosopt/internal/other", // negative: outside the deterministic scope
		"cmosopt/internal/serve", // serving layer: clock reads flagged, ticker pacing allowed
	)
}
