package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file gives the framework real control flow: a per-function basic-block
// CFG built from go/ast alone (no SSA, no x/tools), covering if/for/range/
// switch/type-switch/select/labeled statements, break/continue/goto/
// fallthrough, return, and path-terminating calls (panic, os.Exit,
// log.Fatal*). The flow-aware analyzers (hotalloc, ctxpoll, locksafe,
// keypure) run dataflow fixpoints over it via Forward (dataflow.go).

// Block is one basic block: a maximal straight-line node sequence with edges
// to its successors. Nodes are statements and the condition/tag expressions
// of the control statements that end a block; a node never contains a nested
// statement body except inside *ast.FuncLit (deliberate — a closure body runs
// at call time, not here, so analyzers decide how to treat it).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body (or, in loop-body mode,
// of one loop iteration — see BuildLoopBody).
type CFG struct {
	Entry *Block
	// Exit is the single normal exit: returns and falling off the end of the
	// body lead here. Paths ending in panic/os.Exit have no edge to Exit.
	Exit *Block
	// Abort is non-nil only in loop-body mode: paths that leave the loop
	// (break, return, goto out) lead here instead of Exit.
	Abort  *Block
	Blocks []*Block
	// Defers lists the defer statements of the body in source order; deferred
	// calls run at function exit, so they appear as Defers, not as extra
	// edges.
	Defers []*ast.DeferStmt
}

// BuildCFG builds the control-flow graph of a function body. Entry leads into
// the first statement; every return statement and the fall-off end of the
// body connect to Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := newCFGBuilder()
	b.retTo = b.cfg.Exit
	b.current = b.cfg.Entry
	b.stmtList(body.List)
	b.linkCurrent(b.cfg.Exit)
	b.finish(b.cfg.Exit)
	return b.cfg
}

// BuildLoopBody builds the CFG of one iteration of a for/range loop: Entry
// leads into the body, Exit is the iteration latch (reached by finishing the
// body or by `continue` targeting this loop), and Abort collects every path
// that leaves the loop instead (break, return, goto past the loop). label is
// the loop's label name, or "" for an unlabeled loop. A property that must
// hold "on every iteration path" is therefore a must-dataflow from Entry
// checked at Exit, with Abort paths exempt.
func BuildLoopBody(loop ast.Stmt, label string) *CFG {
	var body *ast.BlockStmt
	switch s := loop.(type) {
	case *ast.ForStmt:
		body = s.Body
	case *ast.RangeStmt:
		body = s.Body
	default:
		return nil
	}
	b := newCFGBuilder()
	b.cfg.Abort = b.newBlock()
	b.retTo = b.cfg.Abort
	b.targets = append(b.targets, branchTarget{label: label, isLoop: true, brk: b.cfg.Abort, cont: b.cfg.Exit})
	b.current = b.cfg.Entry
	b.stmtList(body.List)
	b.linkCurrent(b.cfg.Exit)
	b.finish(b.cfg.Abort)
	return b.cfg
}

// Reachable returns the set of blocks reachable from Entry. Statements after
// an unconditional return/panic sit in blocks outside this set.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

type branchTarget struct {
	label  string
	isLoop bool
	brk    *Block
	cont   *Block
}

type cfgBuilder struct {
	cfg     *CFG
	current *Block // nil while the next statement is unreachable
	// targets is the stack of enclosing breakable/continuable statements,
	// innermost last.
	targets []branchTarget
	// fallthroughTo is the next case block while building a switch case body.
	fallthroughTo *Block
	// retTo is where return statements jump: Exit normally, Abort in
	// loop-body mode.
	retTo  *Block
	labels map[string]*Block
	placed map[string]bool
}

func newCFGBuilder() *cfgBuilder {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
		placed: make(map[string]bool),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	return b
}

// returnTo is where return statements jump: Exit normally, Abort in
// loop-body mode.
func (b *cfgBuilder) finish(escape *Block) {
	// A goto whose label was never placed targets a label outside the built
	// region (possible only in loop-body mode); such paths leave the region.
	for name, lb := range b.labels {
		if !b.placed[name] && len(lb.Succs) == 0 {
			lb.Succs = append(lb.Succs, escape)
		}
	}
}

func (b *cfgBuilder) newBlock() *Block {
	nb := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, nb)
	return nb
}

// cur returns the block under construction, starting a fresh unreachable
// block when control cannot reach this point (so every node still lands in
// some block and purely syntactic scans keep seeing it).
func (b *cfgBuilder) cur() *Block {
	if b.current == nil {
		b.current = b.newBlock()
	}
	return b.current
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	c := b.cur()
	c.Nodes = append(c.Nodes, n)
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// linkCurrent adds an edge from the current block (if any) to `to` without
// transferring construction there.
func (b *cfgBuilder) linkCurrent(to *Block) {
	if b.current != nil {
		link(b.current, to)
	}
}

// jumpTo ends the current block with an unconditional edge to `to`.
func (b *cfgBuilder) jumpTo(to *Block) {
	b.linkCurrent(to)
	b.current = nil
}

// startBlock begins a new block with an edge from the current one.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.linkCurrent(nb)
	b.current = nb
	return nb
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.retTo)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	default:
		b.add(s)
		if terminatesFlow(s) {
			b.current = nil
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur()
	b.current = nil
	done := b.newBlock()

	then := b.newBlock()
	link(cond, then)
	b.current = then
	b.stmtList(s.Body.List)
	b.linkCurrent(done)

	if s.Else != nil {
		els := b.newBlock()
		link(cond, els)
		b.current = els
		b.stmt(s.Else)
		b.linkCurrent(done)
	} else {
		link(cond, done)
	}
	b.current = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.startBlock()
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock()
	latch := b.newBlock()
	done := b.newBlock()
	link(head, body)
	if s.Cond != nil {
		link(head, done)
	}
	b.targets = append(b.targets, branchTarget{label: label, isLoop: true, brk: done, cont: latch})
	b.current = body
	b.stmtList(s.Body.List)
	b.linkCurrent(latch)
	b.targets = b.targets[:len(b.targets)-1]
	if s.Post != nil {
		latch.Nodes = append(latch.Nodes, s.Post)
	}
	link(latch, head)
	b.current = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.startBlock()
	b.add(s.X)
	body := b.newBlock()
	done := b.newBlock()
	link(head, body)
	link(head, done)
	b.targets = append(b.targets, branchTarget{label: label, isLoop: true, brk: done, cont: head})
	b.current = body
	b.stmtList(s.Body.List)
	b.linkCurrent(head)
	b.targets = b.targets[:len(b.targets)-1]
	b.current = done
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.switchBody(s.Body, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.switchBody(s.Body, label, false)
}

func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	cond := b.cur()
	b.current = nil
	done := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: done})

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		cb := b.newBlock()
		caseBlocks = append(caseBlocks, cb)
		if cc.List == nil {
			hasDefault = true
		}
		link(cond, cb)
	}
	if !hasDefault {
		link(cond, done)
	}
	for i, cc := range clauses {
		b.current = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		saved := b.fallthroughTo
		if allowFallthrough && i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = saved
		b.linkCurrent(done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.current = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	entry := b.cur()
	b.current = nil
	done := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		link(entry, cb)
		b.current = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.linkCurrent(done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.current = done
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	b.placed[s.Label.Name] = true
	b.linkCurrent(lb)
	b.current = lb
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.newBlock()
	b.labels[name] = lb
	return lb
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(label, false); t != nil {
			b.jumpTo(t.brk)
			return
		}
	case token.CONTINUE:
		if t := b.findTarget(label, true); t != nil {
			b.jumpTo(t.cont)
			return
		}
	case token.GOTO:
		b.jumpTo(b.labelBlock(label))
		return
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.jumpTo(b.fallthroughTo)
			return
		}
	}
	// Ill-formed branch (won't type-check): just end the path.
	b.current = nil
}

func (b *cfgBuilder) findTarget(label string, needLoop bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needLoop && !t.isLoop {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

// terminatesFlow reports whether the statement never lets control continue to
// the next one: a call to panic, os.Exit, runtime.Goexit or log.Fatal*.
// Purely syntactic — good enough for paths the analyzers prune.
func terminatesFlow(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		x, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case x.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case x.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case x.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}
