// Package analysistest runs an analyzer over GOPATH-style fixture trees and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A fixture tree lives under testdata/<analyzer>/src/<importpath>/...; each
// expectation is a line comment on the offending line:
//
//	delay.New(c, tech, wire) // want `constructs a model evaluator`
//
// The backquoted (or double-quoted) argument is a regular expression matched
// against the diagnostic message; several `// want` arguments on one line
// expect several diagnostics on that line. Lines with no expectation must
// produce no diagnostic — every unmatched finding or unsatisfied
// expectation fails the test.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cmosopt/internal/analysis"
)

var wantRx = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)")
var wantArgRx = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// Run loads each fixture package below root/src, applies the analyzer, and
// reports mismatches against the fixtures' want-comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(root, "src")
	loader := analysis.NewLoader(analysis.Root{Prefix: "", Dir: src})
	loader.IncludeTests = true
	for _, pkgPath := range pkgPaths {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
			continue
		}
		diags, err := analysis.Analyze(a, pkg, loader)
		if err != nil {
			t.Errorf("%s: analyzing fixture %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkExpectations(t, a, pkg, diags)
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, a *analysis.Analyzer, pkg *analysis.LoadedPackage, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		content, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for i, line := range strings.Split(string(content), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRx.FindAllStringSubmatch(m[1], -1) {
				rx, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q at %s:%d: %v", a.Name, arg[1], filename, i+1, err)
				}
				wants = append(wants, &expectation{file: filename, line: i + 1, rx: rx, raw: arg[1]})
			}
		}
	}
	for _, d := range diags {
		if !matchWant(wants, d.Pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.raw, w.file, w.line)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Testdata returns the analyzer's fixture root, failing the test when the
// tree is missing (a wrong path would otherwise pass vacuously).
func Testdata(t *testing.T, elem ...string) string {
	t.Helper()
	root := filepath.Join(append([]string{"testdata"}, elem...)...)
	if st, err := os.Stat(filepath.Join(root, "src")); err != nil || !st.IsDir() {
		t.Fatalf("fixture root %s has no src/ directory: %v", root, err)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
