package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Root maps an import-path prefix to the directory tree holding its source:
// {"cmosopt", "/repo"} resolves "cmosopt/internal/eval" to
// /repo/internal/eval. The analysistest harness uses a root with prefix ""
// so every non-standard-library path resolves GOPATH-style under testdata.
type Root struct {
	Prefix string
	Dir    string
}

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Loader parses and type-checks packages from source, resolving module
// imports through Roots and everything else through the standard library's
// source importer. It memoizes by import path, so one Loader amortizes the
// (expensive) standard-library type-checking across every package of a run.
type Loader struct {
	Fset *token.FileSet
	// Roots are tried in order; the first prefix match wins.
	Roots []Root
	// IncludeTests adds in-package *_test.go files to each loaded package
	// (external "_test"-suffixed test packages are never loaded).
	IncludeTests bool

	std     types.ImporterFrom
	pkgs    map[string]*LoadedPackage
	facts   map[string]PkgFacts
	factsMu sync.Mutex
}

// NewLoader returns a Loader over the given roots.
func NewLoader(roots ...Root) *Loader {
	// The source importer type-checks dependencies straight from GOROOT/src;
	// with cgo disabled it selects the pure-Go fallback files, which is both
	// hermetic (no C toolchain in CI) and sufficient for type information.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		Roots: roots,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:  make(map[string]*LoadedPackage),
	}
}

// dirFor resolves an import path through Roots; ok is false when no root
// prefix matches (i.e. the path belongs to the standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.Roots {
		if r.Prefix == "" {
			// GOPATH-style root (the analysistest harness): any import path
			// with a matching directory under Dir resolves there; everything
			// else falls through to the standard-library importer.
			if l.fixtureDirExists(r.Dir, path) {
				return filepath.Join(r.Dir, filepath.FromSlash(path)), true
			}
			continue
		}
		if path == r.Prefix {
			return r.Dir, true
		}
		if rest, found := strings.CutPrefix(path, r.Prefix+"/"); found {
			return filepath.Join(r.Dir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func (l *Loader) fixtureDirExists(root, path string) bool {
	st, err := os.Stat(filepath.Join(root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// Import implements types.Importer so module-internal dependencies resolve
// recursively through the Loader itself.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom (the source importer requires it).
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// Load parses and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is outside every loader root", path)
	}
	p, err := l.loadDir(path, dir)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in dir under the given import path without
// consulting Roots (used by the standalone walker, which discovers
// directories first).
func (l *Loader) LoadDir(path, dir string) (*LoadedPackage, error) {
	if p, ok := l.pkgs[path]; ok && p != nil {
		return p, nil
	}
	p, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) loadDir(path, dir string) (*LoadedPackage, error) {
	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Parse in parallel: token.FileSet is safe for concurrent AddFile, and
	// parsing dominates load time once the standard library's type info is
	// memoized. Order is preserved by index so file lists stay name-sorted.
	parsed := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			parsed[i], errs[i] = parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}(i, name)
	}
	wg.Wait()
	var files []*ast.File
	for i, f := range parsed {
		if errs[i] != nil {
			return nil, errs[i]
		}
		// Never mix an external test package ("foo_test") into "foo".
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: only external-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Files: files, Types: pkg, Info: info, Fset: l.Fset}, nil
}

// goFilesIn lists the buildable Go file names of one directory in stable
// order, applying the active build constraints (//go:build lines and
// GOOS/GOARCH file suffixes) through go/build, so a linux-only loader never
// parses file_windows.go.
func goFilesIn(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, n); err != nil || !match {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// PackageDirs walks root and returns every directory holding buildable Go
// files, skipping hidden and underscore-prefixed directories, testdata
// fixture trees and vendored source. This is the "./..." expansion shared by
// the standalone cmd/cmosvet walker and the loader tests.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFilesIn(p, true)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// PackageFacts implements FactProvider over the loader's packages, computing
// and memoizing each package's facts on first request. Unknown paths (the
// standard library, unresolvable fixtures) return nil. The method is
// mutex-guarded so analyzers over one loaded package may run concurrently;
// loading itself (Load/LoadDir from the driver loop) must stay sequential.
func (l *Loader) PackageFacts(path string) PkgFacts {
	l.factsMu.Lock()
	defer l.factsMu.Unlock()
	if l.facts == nil {
		l.facts = make(map[string]PkgFacts)
	}
	if f, ok := l.facts[path]; ok {
		return f
	}
	l.facts[path] = PkgFacts{} // cycle guard: facts of an in-flight load resolve empty
	p := l.pkgs[path]
	if p == nil {
		if _, ok := l.dirFor(path); ok {
			p, _ = l.Load(path)
		}
	}
	var f PkgFacts
	if p != nil {
		f = ComputePkgFacts(p)
	}
	l.facts[path] = f
	return f
}

// Analyze runs one analyzer over one loaded package. facts supplies
// cross-package function facts; nil is valid (the flow-aware analyzers then
// treat every callee as unknown).
func Analyze(a *Analyzer, p *LoadedPackage, facts FactProvider) ([]Diagnostic, error) {
	pass := NewPass(a, p.Fset, p.Files, p.Types, p.Info)
	pass.Facts = facts
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, p.Path, err)
	}
	return pass.Diagnostics(), nil
}
