package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags exact ==/!= between floating-point values in the bisection
// and convergence packages (internal/core, internal/optimize). Two float
// variables that "should" be equal — an energy that stopped improving, a
// width that stopped moving — rarely are bit-identical after different
// arithmetic paths, so exact equality either never fires (a convergence
// check that cannot terminate) or fires spuriously (a branch taken on
// rounding noise). Comparisons route through the shared epsilon helper
// internal/floats (floats.Eq / floats.EqTol).
//
// Comparisons against a compile-time constant are exempt: `opts.FixedVt != 0`
// and friends are deliberate "knob is unset" sentinels on values that are
// assigned, not computed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact float ==/!= in bisection/convergence code; use internal/floats",
	Run:  runFloatEq,
}

// floatEqPkgs hold the bisection and convergence loops.
var floatEqPkgs = []string{"internal/core", "internal/optimize"}

func runFloatEq(pass *Pass) error {
	if !pathIn(normalizePkgPath(pass.Pkg.Path()), floatEqPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass, be.X) || !isFloatExpr(pass, be.Y) {
				return true
			}
			if isConstExpr(pass.TypesInfo, be.X) || isConstExpr(pass.TypesInfo, be.Y) {
				return true // sentinel comparison against a literal/constant
			}
			pass.Reportf(be.Pos(),
				"exact float %s in convergence code: bit-equality of computed floats is unreliable; use floats.Eq or floats.EqTol (internal/floats)", be.Op)
			return true
		})
	}
	return nil
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
