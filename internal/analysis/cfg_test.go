package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"cmosopt/internal/analysis"
)

// parseFuncBody parses src as a file and returns the CFG inputs of the first
// function declaration.
func parseFuncBody(t *testing.T, src string) (*ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd, fset
		}
	}
	t.Fatal("no function declaration in fixture")
	return nil, nil
}

// blockOf returns the reachable block whose Nodes contain a call to name, or
// nil when no reachable block does.
func blockOf(c *analysis.CFG, name string) *analysis.Block {
	reach := c.Reachable()
	for b := range reach {
		if blockCalls(b, name) {
			return b
		}
	}
	return nil
}

func blockCalls(b *analysis.Block, name string) bool {
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func TestBuildCFGReturnsReachExit(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(a bool) int {
	seen()
	if a {
		return 1
	}
	return 2
}
func seen() {}
`)
	c := analysis.BuildCFG(fd.Body)
	reach := c.Reachable()
	if !reach[c.Exit] {
		t.Fatal("Exit not reachable from Entry")
	}
	if c.Abort != nil {
		t.Fatal("function CFG must not have an Abort block")
	}
	if blockOf(c, "seen") == nil {
		t.Fatal("statement block not reachable")
	}
}

func TestBuildCFGUnreachableAfterReturn(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f() int {
	return 1
	dead()
	return 0
}
func dead() {}
`)
	c := analysis.BuildCFG(fd.Body)
	if blockOf(c, "dead") != nil {
		t.Fatal("code after an unconditional return must be unreachable")
	}
}

func TestBuildCFGPanicSkipsExit(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(a bool) int {
	if !a {
		panic("no")
	}
	return 1
}
`)
	c := analysis.BuildCFG(fd.Body)
	// The panic arm terminates flow: no block may reach Exit through it, but
	// Exit stays reachable via the return.
	if !c.Reachable()[c.Exit] {
		t.Fatal("Exit must stay reachable through the non-panicking path")
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				for _, s := range b.Succs {
					if s == c.Exit {
						t.Fatal("panic block must not flow to Exit")
					}
				}
			}
		}
	}
}

func TestBuildCFGCollectsDefers(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(mu interface{ Unlock() }) {
	defer mu.Unlock()
	defer func() {}()
}
`)
	c := analysis.BuildCFG(fd.Body)
	if len(c.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(c.Defers))
	}
}

func TestBuildLoopBodyEdges(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(xs []int) {
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x == 0 {
			break
		}
		if x > 100 {
			return
		}
		use(x)
	}
}
func use(int) {}
`)
	var loop ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && loop == nil {
			loop = r
			return false
		}
		return true
	})
	c := analysis.BuildLoopBody(loop, "")
	if c == nil || c.Abort == nil {
		t.Fatal("loop-body CFG must have an Abort block")
	}
	reach := c.Reachable()
	if !reach[c.Exit] {
		t.Fatal("iteration latch (Exit) must be reachable: continue and fall-through lead there")
	}
	if !reach[c.Abort] {
		t.Fatal("Abort must be reachable: break and return leave the loop")
	}
	// break and return both target Abort, so at least two distinct blocks
	// feed it; only continue and the body's tail feed Exit.
	preds := func(target *analysis.Block) int {
		n := 0
		for b := range reach {
			for _, s := range b.Succs {
				if s == target {
					n++
				}
			}
		}
		return n
	}
	if got := preds(c.Abort); got < 2 {
		t.Fatalf("Abort has %d predecessors, want >= 2 (break + return)", got)
	}
	if blockOf(c, "use") == nil {
		t.Fatal("loop body statement not reachable")
	}
}

func TestBuildLoopBodyNonLoop(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f() { g() }
func g() {}
`)
	if c := analysis.BuildLoopBody(fd.Body.List[0], ""); c != nil {
		t.Fatal("BuildLoopBody on a non-loop statement must return nil")
	}
}

// mustPoll runs the shared must-analysis shape (meet = AND) the ctxpoll
// analyzer uses: state is "a poll call was seen on every path so far".
func mustPoll(c *analysis.CFG) map[*analysis.Block]bool {
	in, _ := analysis.Forward(c, false,
		func(b *analysis.Block, s bool) bool { return s || blockCalls(b, "poll") },
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b },
	)
	return in
}

func TestForwardMustAnalysisDiamond(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(a bool) {
	if a {
		poll()
	} else {
		poll()
	}
	done()
}
func poll() {}
func done() {}
`)
	c := analysis.BuildCFG(fd.Body)
	if in := mustPoll(c); !in[c.Exit] {
		t.Fatal("poll on both arms: must-state at Exit should be true")
	}

	fd2, _ := parseFuncBody(t, `
func f(a bool) {
	if a {
		poll()
	}
	done()
}
func poll() {}
func done() {}
`)
	c2 := analysis.BuildCFG(fd2.Body)
	if in := mustPoll(c2); in[c2.Exit] {
		t.Fatal("poll on one arm only: must-state at Exit should be false")
	}
}

func TestForwardLoopConverges(t *testing.T) {
	fd, _ := parseFuncBody(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			poll()
		}
	}
	done()
}
func poll() {}
func done() {}
`)
	c := analysis.BuildCFG(fd.Body)
	in := mustPoll(c)
	// The loop may execute zero times and the poll is conditional inside it:
	// the fixpoint must converge with Exit unpolled.
	if in[c.Exit] {
		t.Fatal("conditional poll inside a maybe-zero-trip loop must not satisfy Exit")
	}
	if len(in) == 0 {
		t.Fatal("fixpoint produced no states")
	}
}

func TestDiagnosticSortIsByteStable(t *testing.T) {
	mk := func(file string, line, col int, an, msg string) analysis.Diagnostic {
		return analysis.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: an,
			Message:  msg,
		}
	}
	ds := []analysis.Diagnostic{
		mk("b.go", 1, 1, "hotalloc", "z"),
		mk("a.go", 9, 2, "locksafe", "m"),
		mk("a.go", 9, 2, "ctxpoll", "m"),
		mk("a.go", 9, 1, "locksafe", "m"),
		mk("a.go", 2, 7, "keypure", "m"),
	}
	want := []string{
		"a.go:2:7:keypure",
		"a.go:9:1:locksafe",
		"a.go:9:2:ctxpoll",
		"a.go:9:2:locksafe",
		"b.go:1:1:hotalloc",
	}
	// Sorting any permutation lands the same byte order.
	for rot := 0; rot < len(ds); rot++ {
		perm := append(append([]analysis.Diagnostic{}, ds[rot:]...), ds[:rot]...)
		analysis.SortDiagnostics(perm)
		var got []string
		for _, d := range perm {
			got = append(got, strings.Join([]string{
				d.Pos.Filename,
				itoa(d.Pos.Line),
				itoa(d.Pos.Column),
				d.Analyzer,
			}, ":"))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rotation %d: order[%d] = %s, want %s", rot, i, got[i], want[i])
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
