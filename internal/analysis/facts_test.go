package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"

	"cmosopt/internal/analysis"
)

func TestFactsRoundTrip(t *testing.T) {
	in := analysis.PkgFacts{
		Funcs: map[string]analysis.FuncFacts{
			"Engine.Energy": {CallsEval: true},
			"Helper":        {Hotpath: true, Allocates: true},
			"Canceled":      {PollsCtx: true},
		},
		Units: map[string]string{
			"Tech.VTherm":        "V",
			"Breakdown.Static":   "J",
			"Tech.KSat":          "A/V^a",
			"Tech.IdUnit.return": "A",
		},
	}
	out := analysis.DecodeFacts(analysis.EncodeFacts(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %#v, want %#v", out, in)
	}
}

func TestEncodeFactsDeterministic(t *testing.T) {
	f := analysis.PkgFacts{
		Funcs: map[string]analysis.FuncFacts{"B": {Hotpath: true}, "A": {Allocates: true}, "C": {CallsEval: true}},
		Units: map[string]string{"Z.F": "Hz", "A.F": "F", "M.F": "s^2"},
	}
	first := string(analysis.EncodeFacts(f))
	for i := 0; i < 8; i++ {
		if got := string(analysis.EncodeFacts(f)); got != first {
			t.Fatalf("encoding varies across runs:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestDecodeFactsTolerant(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "cmosvet vetx placeholder\n",
		"wrong schema":   `{"schema":"someothertool/v9","funcs":{"F":{"hotpath":true}}}`,
		"non-object":     `[1,2,3]`,
		"missing schema": `{"funcs":{"F":{"hotpath":true}}}`,
	}
	for name, payload := range cases {
		if got := analysis.DecodeFacts([]byte(payload)); !got.Empty() {
			t.Errorf("%s: DecodeFacts = %#v, want empty", name, got)
		}
	}
	// A units block under a stale schema is dropped without losing the
	// function facts riding the same file.
	mixed := `{"schema":"cmosvet/facts/v1","funcs":{"F":{"hotpath":true}},"unitsSchema":"cmosvet/units/v0","units":{"T.F":"V"}}`
	got := analysis.DecodeFacts([]byte(mixed))
	if !got.Funcs["F"].Hotpath {
		t.Errorf("mixed schema: function facts lost: %#v", got)
	}
	if got.Units != nil {
		t.Errorf("mixed schema: stale units kept: %#v", got.Units)
	}
}

// typecheckPkg type-checks a single-file package with no imports under the
// given import path, returning it shaped as the loader would.
func typecheckPkg(t *testing.T, path, src string) *analysis.LoadedPackage {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "facts_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &analysis.LoadedPackage{Path: path, Files: []*ast.File{f}, Types: pkg, Info: info, Fset: fset}
}

func TestComputePkgFacts(t *testing.T) {
	// The package claims the engine's import path so the Engine.Energy call
	// below reads as a full evaluation; the fixpoint must then carry CallsEval
	// through the same-package helper chain.
	p := typecheckPkg(t, "cmosopt/internal/eval", `package eval

//cmosvet:hotpath
func Hot(n int) int { return n + 1 }

func Alloc(n int) []int { return make([]int, n) }

func Plain(n int) int { return n * 2 }

type Engine struct{ n int }

func (e *Engine) Energy(v float64) float64 { return v * float64(e.n) }

func helper(e *Engine) float64 { return e.Energy(1) }

func outer(e *Engine) float64 { return helper(e) + 1 }
`)
	facts := analysis.ComputePkgFacts(p)

	check := func(key string, want analysis.FuncFacts) {
		t.Helper()
		got, ok := facts.Funcs[key]
		if !ok {
			t.Fatalf("no facts for %q (have %v)", key, keysOf(facts))
		}
		if got != want {
			t.Fatalf("facts[%q] = %+v, want %+v", key, got, want)
		}
	}
	check("Hot", analysis.FuncFacts{Hotpath: true})
	check("Alloc", analysis.FuncFacts{Allocates: true})
	check("Plain", analysis.FuncFacts{})
	check("helper", analysis.FuncFacts{CallsEval: true})
	// outer never touches the engine directly: CallsEval arrives only through
	// the same-package transitive closure.
	check("outer", analysis.FuncFacts{CallsEval: true})
	if f := facts.Funcs["Engine.Energy"]; f.CallsEval {
		t.Fatal("Energy's own body does not call an evaluation; closure must not mark the sink itself")
	}
}

func TestComputePkgFactsMethodKeys(t *testing.T) {
	p := typecheckPkg(t, "cmosopt/internal/fixture", `package fixture

type box struct{ v []int }

//cmosvet:hotpath
func (b *box) Get(i int) int { return b.v[i] }

func (b box) Grow(n int) { b.v = make([]int, n) }
`)
	facts := analysis.ComputePkgFacts(p)
	if !facts.Funcs["box.Get"].Hotpath {
		t.Fatalf("pointer-receiver method not keyed box.Get: %v", keysOf(facts))
	}
	if !facts.Funcs["box.Grow"].Allocates {
		t.Fatalf("value-receiver method not keyed box.Grow: %v", keysOf(facts))
	}
}

func keysOf(f analysis.PkgFacts) []string {
	var ks []string
	for k := range f.Funcs {
		ks = append(ks, k)
	}
	return ks
}
