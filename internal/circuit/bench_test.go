package circuit

import (
	"strings"
	"testing"
)

const c17Bench = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogic() != 6 {
		t.Errorf("NumLogic = %d, want 6", c.NumLogic())
	}
	if len(c.PIs) != 5 || len(c.POs) != 2 {
		t.Errorf("PIs=%d POs=%d, want 5 and 2", len(c.PIs), len(c.POs))
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	g := c.GateByName("22")
	if g == nil || g.Type != Nand || g.NumFanin() != 2 {
		t.Errorf("gate 22 = %+v", g)
	}
}

func TestParseBenchForwardReference(t *testing.T) {
	// "out" references "mid" before it is defined.
	c, err := ParseBenchString("fwd", `
INPUT(a)
INPUT(b)
OUTPUT(out)
out = NAND(mid, b)
mid = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateByName("mid") == nil {
		t.Fatal("mid missing")
	}
	if _, err := c.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestParseBenchCommentsAndBlanks(t *testing.T) {
	c, err := ParseBenchString("cb", `
# leading comment

INPUT(a)
# interior comment
OUTPUT(g)
g = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Errorf("N = %d, want 2", c.N())
	}
}

func TestParseBenchGateFunctions(t *testing.T) {
	c, err := ParseBenchString("fns", `
INPUT(a)
INPUT(b)
OUTPUT(o1)
g1 = AND(a, b)
g2 = OR(a, b)
g3 = XOR(a, b)
g4 = XNOR(a, b)
g5 = NOR(a, b)
g6 = BUFF(a)
g7 = INV(b)
o1 = NAND(g1, g2, g3, g4, g5, g6, g7)
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]GateType{
		"g1": And, "g2": Or, "g3": Xor, "g4": Xnor, "g5": Nor, "g6": Buf, "g7": Not, "o1": Nand,
	}
	for name, typ := range want {
		if g := c.GateByName(name); g == nil || g.Type != typ {
			t.Errorf("%s: got %+v, want type %s", name, g, typ)
		}
	}
	if c.GateByName("o1").NumFanin() != 7 {
		t.Error("multi-input NAND lost fanins")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"garbage", "INPUT(a)\nwhat is this", "unrecognized"},
		{"unknown fn", "INPUT(a)\ng = FROB(a)\n", "unknown gate function"},
		{"undefined signal", "INPUT(a)\ng = NOT(zz)\n", "undefined signal"},
		{"undefined output", "INPUT(a)\nOUTPUT(qq)\ng = NOT(a)\n", "undefined"},
		{"double define", "INPUT(a)\ng = NOT(a)\ng = BUFF(a)\n", "defined twice"},
		{"malformed call", "INPUT(a)\ng = NOT a\n", "malformed"},
		{"empty operand", "INPUT(a)\ng = NAND(a,)\n", "empty operand"},
		{"fanin arity", "INPUT(a)\ng = NAND(a)\nOUTPUT(g)\n", "NAND with 1 fanins"},
	}
	for _, tc := range cases {
		if _, err := ParseBenchString(tc.name, tc.text); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	orig, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(orig)
	back, err := ParseBenchString("c17", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if back.N() != orig.N() || len(back.PIs) != len(orig.PIs) || len(back.POs) != len(orig.POs) {
		t.Fatalf("round trip changed shape: %d/%d gates", back.N(), orig.N())
	}
	for i := range orig.Gates {
		og := &orig.Gates[i]
		bg := back.GateByName(og.Name)
		if bg == nil || bg.Type != og.Type || bg.NumFanin() != og.NumFanin() {
			t.Errorf("gate %q changed across round trip", og.Name)
			continue
		}
		for j, f := range og.Fanin {
			if back.Gates[bg.Fanin[j]].Name != orig.Gates[f].Name {
				t.Errorf("gate %q fanin %d changed", og.Name, j)
			}
		}
	}
}

func TestBenchRoundTripSequential(t *testing.T) {
	src := `
INPUT(in)
OUTPUT(out)
d = NAND(in, q)
q = DFF(d)
out = NOT(q)
`
	orig, err := ParseBenchString("seq", src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchString("seq", BenchString(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsSequential() {
		t.Error("sequential round trip lost the DFF")
	}
}

func TestComputeStats(t *testing.T) {
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(c)
	if s.Gates != 6 || s.Inputs != 5 || s.Outputs != 2 || s.DFFs != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
	if s.MaxFanin != 2 {
		t.Errorf("MaxFanin = %d, want 2", s.MaxFanin)
	}
	if s.TypeCounts[Nand] != 6 {
		t.Errorf("NAND count = %d, want 6", s.TypeCounts[Nand])
	}
	if !strings.Contains(s.String(), "gates=6") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestStatsAvgFanout(t *testing.T) {
	c, err := ParseBenchString("t", `
INPUT(a)
OUTPUT(o)
g1 = NOT(a)
g2 = NOT(g1)
o = NAND(g1, g2)
`)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(c)
	// a->1, g1->2, g2->1: avg over 3 drivers = 4/3.
	if s.AvgFanout < 1.33 || s.AvgFanout > 1.34 {
		t.Errorf("AvgFanout = %v, want 4/3", s.AvgFanout)
	}
}
