package circuit

import "fmt"

// PruneDead returns a copy of the circuit with every logic gate that cannot
// reach a primary output removed (dead logic — typical debris after cutting
// flops whose cones feed nothing, or after manual netlist edits). Primary
// inputs are kept even when unused, preserving the module interface.
// Returns the new circuit and the number of gates removed.
func PruneDead(c *Circuit) (*Circuit, int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	live := make([]bool, c.N())
	for _, id := range c.POs {
		live[id] = true
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !live[id] {
			continue
		}
		for _, f := range c.Gates[id].Fanin {
			live[f] = true
		}
	}
	b := NewBuilder(c.Name)
	newID := make([]int, c.N())
	removed := 0
	for _, id := range order {
		g := c.Gate(id)
		switch {
		case g.Type == Input:
			newID[id] = b.Input(g.Name) // interface preserved
		case !live[id]:
			removed++
		default:
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = newID[f]
			}
			newID[id] = b.Gate(g.Type, g.Name, fanin...)
		}
	}
	for _, po := range c.POs {
		b.Output(newID[po])
	}
	nc, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return nc, removed, nil
}

// InsertBuffers returns a copy of the circuit in which every net with more
// than maxFanout sinks is driven through a balanced tree of BUF gates, so no
// gate (or inserted buffer) drives more than maxFanout internal sinks. The
// transform preserves logic function exactly (buffers are transparent) and
// is the classical remedy for the high-fanout hubs that concentrate both
// delay and criticality; the optimizer can then size the buffer tree instead
// of one overloaded driver. The primary-output marker stays on the original
// gate. Returns the new circuit and the number of buffers inserted.
func InsertBuffers(c *Circuit, maxFanout int) (*Circuit, int, error) {
	if maxFanout < 2 {
		return nil, 0, fmt.Errorf("circuit: maxFanout %d must be at least 2", maxFanout)
	}
	if c.IsSequential() {
		return nil, 0, fmt.Errorf("circuit: %q is sequential; cut DFFs before buffering", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, 0, err
	}

	b := NewBuilder(c.Name + "+buf")
	newID := make([]int, c.N())      // original gate -> its new ID
	redirect := make(map[[2]int]int) // (orig driver, orig consumer) -> buffer ID
	buffers := 0

	// buildTree gives each consumer in sinks a source: either src directly
	// (≤ maxFanout sinks) or a level of at most maxFanout buffers, each
	// handling a chunk of the sinks recursively — arbitrarily large fanouts
	// become trees of depth ⌈log_maxFanout(fanout)⌉.
	var buildTree func(origDriver, src int, sinks []int)
	buildTree = func(origDriver, src int, sinks []int) {
		if len(sinks) <= maxFanout {
			for _, s := range sinks {
				redirect[[2]int{origDriver, s}] = src
			}
			return
		}
		groups := (len(sinks) + maxFanout - 1) / maxFanout
		if groups > maxFanout {
			groups = maxFanout
		}
		for g := 0; g < groups; g++ {
			lo := g * len(sinks) / groups
			hi := (g + 1) * len(sinks) / groups
			buf := b.Gate(Buf, fmt.Sprintf("buf%d", buffers), src)
			buffers++
			buildTree(origDriver, buf, sinks[lo:hi])
		}
	}

	for _, id := range order {
		g := c.Gate(id)
		if g.Type == Input {
			newID[id] = b.Input(g.Name)
		} else {
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				if buf, ok := redirect[[2]int{f, id}]; ok {
					fanin[i] = buf
				} else {
					fanin[i] = newID[f]
				}
			}
			newID[id] = b.Gate(g.Type, g.Name, fanin...)
		}
		if len(g.Fanout) > maxFanout {
			buildTree(id, newID[id], append([]int(nil), g.Fanout...))
		}
	}
	for _, po := range c.POs {
		b.Output(newID[po])
	}
	nc, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return nc, buffers, nil
}
