package circuit_test

import (
	"fmt"

	"cmosopt/internal/circuit"
)

func ExampleBuilder() {
	b := circuit.NewBuilder("half-adder")
	a := b.Input("a")
	bi := b.Input("b")
	sum := b.Gate(circuit.Xor, "sum", a, bi)
	carry := b.Gate(circuit.And, "carry", a, bi)
	b.Output(sum)
	b.Output(carry)
	c, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	d, _ := c.Depth()
	fmt.Printf("%d logic gates, depth %d\n", c.NumLogic(), d)
	// Output: 2 logic gates, depth 1
}

func ExampleParseBenchString() {
	c, err := circuit.ParseBenchString("demo", `
INPUT(x)
INPUT(y)
OUTPUT(z)
z = NAND(x, y)
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(c.GateByName("z").Type)
	// Output: NAND
}

func ExampleCircuit_Combinational() {
	c, _ := circuit.ParseBenchString("seq", `
INPUT(in)
OUTPUT(out)
d = NAND(in, q)
q = DFF(d)
out = NOT(q)
`)
	comb, err := c.Combinational()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sequential=%v PIs=%d POs=%d\n", comb.IsSequential(), len(comb.PIs), len(comb.POs))
	// Output: sequential=false PIs=2 POs=2
}
