package circuit

import (
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("half-adder")
	a := b.Input("a")
	bb := b.Input("b")
	sum := b.Gate(Xor, "sum", a, bb)
	carry := b.Gate(And, "carry", a, bb)
	b.Output(sum)
	b.Output(carry)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || len(c.PIs) != 2 || len(c.POs) != 2 {
		t.Errorf("got N=%d PIs=%d POs=%d", c.N(), len(c.PIs), len(c.POs))
	}
	if got := c.Gates[a].Fanout; len(got) != 2 {
		t.Errorf("input a fanout = %v, want 2 entries", got)
	}
}

func TestBuilderErrorsSticky(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a")
	b.Gate(Nand, "g", a) // NAND needs ≥2 fanins -> error
	if b.Err() == nil {
		t.Fatal("expected recorded error")
	}
	// Subsequent calls are no-ops and Build reports the first error.
	b.Gate(Not, "h", a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "NAND") {
		t.Errorf("Build err = %v, want NAND fanin error", err)
	}
}

func TestBuilderRejects(t *testing.T) {
	cases := []struct {
		name string
		run  func(b *Builder)
		want string
	}{
		{"dup name", func(b *Builder) { b.Input("a"); b.Input("a") }, "duplicate"},
		{"empty name", func(b *Builder) { b.Input("") }, "empty"},
		{"forward fanin", func(b *Builder) { a := b.Input("a"); b.Gate(Nand, "g", a, 7) }, "bad fanin"},
		{"input via Gate", func(b *Builder) { b.Gate(Input, "x") }, "use Input"},
		{"output range", func(b *Builder) { b.Input("a"); b.Output(9) }, "out of range"},
		{"no inputs", func(b *Builder) {}, "no primary inputs"},
	}
	for _, tc := range cases {
		b := NewBuilder("t")
		tc.run(b)
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestBuilderOutputIdempotent(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	g := b.Gate(Not, "g", a)
	b.Output(g)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 1 {
		t.Errorf("POs = %v, want single entry", c.POs)
	}
}
