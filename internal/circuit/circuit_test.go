package circuit

import (
	"math/rand"
	"testing"
)

// chain builds in0 -> NOT g1 -> NOT g2 -> ... -> NOT gn (PO).
func chain(t *testing.T, n int) *Circuit {
	t.Helper()
	b := NewBuilder("chain")
	prev := b.Input("in0")
	for i := 1; i <= n; i++ {
		prev = b.Gate(Not, "g"+itoa(i), prev)
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("chain build: %v", err)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// diamond builds a reconvergent circuit:
//
//	a ─┬─ NOT n1 ─┐
//	   └─ NOT n2 ─┴ NAND out (PO)
func diamond(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("diamond")
	a := b.Input("a")
	n1 := b.Gate(Not, "n1", a)
	n2 := b.Gate(Not, "n2", a)
	out := b.Gate(Nand, "out", n1, n2)
	b.Output(out)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("diamond build: %v", err)
	}
	return c
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	c := diamond(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if pos[f] >= pos[i] {
				t.Errorf("fanin %d of gate %d not earlier in topo order", f, i)
			}
		}
	}
}

func TestTopoOrderCached(t *testing.T) {
	c := diamond(t)
	o1, _ := c.TopoOrder()
	o2, _ := c.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("TopoOrder should return the cached slice")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c := chain(t, 5)
	lv, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv[c.PIs[0]] != 0 {
		t.Errorf("input level = %d, want 0", lv[c.PIs[0]])
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("Depth = %d, want 5", d)
	}
}

func TestDepthDiamond(t *testing.T) {
	c := diamond(t)
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
}

func TestNAndNumLogic(t *testing.T) {
	c := diamond(t)
	if c.N() != 4 {
		t.Errorf("N = %d, want 4", c.N())
	}
	if c.NumLogic() != 3 {
		t.Errorf("NumLogic = %d, want 3", c.NumLogic())
	}
}

func TestGateByName(t *testing.T) {
	c := diamond(t)
	if g := c.GateByName("n1"); g == nil || g.Type != Not {
		t.Errorf("GateByName(n1) = %+v", g)
	}
	if g := c.GateByName("missing"); g != nil {
		t.Errorf("GateByName(missing) = %+v, want nil", g)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestValidateRejectsBadStructures(t *testing.T) {
	base := func() *Circuit {
		c := diamond(t)
		// Deep-copy gates so mutations don't share slices.
		gates := make([]Gate, len(c.Gates))
		for i, g := range c.Gates {
			g.Fanin = append([]int(nil), g.Fanin...)
			g.Fanout = append([]int(nil), g.Fanout...)
			gates[i] = g
		}
		return &Circuit{Name: c.Name, Gates: gates, PIs: append([]int(nil), c.PIs...), POs: append([]int(nil), c.POs...)}
	}
	cases := []struct {
		name   string
		mutate func(*Circuit)
	}{
		{"id mismatch", func(c *Circuit) { c.Gates[1].ID = 3 }},
		{"empty name", func(c *Circuit) { c.Gates[2].Name = "" }},
		{"dup name", func(c *Circuit) { c.Gates[2].Name = c.Gates[1].Name }},
		{"bad fanin count", func(c *Circuit) { c.Gates[3].Fanin = c.Gates[3].Fanin[:1] }},
		{"fanin out of range", func(c *Circuit) { c.Gates[3].Fanin[0] = 99 }},
		{"dangling fanout", func(c *Circuit) { c.Gates[0].Fanout = append(c.Gates[0].Fanout, 3) }},
		{"PI not input", func(c *Circuit) { c.PIs = append(c.PIs, 3) }},
		{"PO out of range", func(c *Circuit) { c.POs = append(c.POs, -1) }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", tc.name)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	// Hand-build a 2-gate combinational cycle.
	c := &Circuit{
		Name: "cyclic",
		Gates: []Gate{
			{ID: 0, Name: "a", Type: Input, Fanout: []int{1}},
			{ID: 1, Name: "g1", Type: Nand, Fanin: []int{0, 2}, Fanout: []int{2}},
			{ID: 2, Name: "g2", Type: Not, Fanin: []int{1}, Fanout: []int{1}},
		},
		PIs: []int{0},
		POs: []int{2},
	}
	if _, err := c.TopoOrder(); err == nil {
		t.Error("TopoOrder on cyclic circuit should fail")
	}
}

func seqCircuit(t *testing.T) *Circuit {
	t.Helper()
	// in -> NAND(in, q) -> d ; q = DFF(d); out = NOT(q), PO=out.
	// The NAND->DFF->NAND loop is broken by the DFF cut.
	c, err := ParseBenchString("seq", `
INPUT(in)
OUTPUT(out)
d = NAND(in, q)
q = DFF(d)
out = NOT(q)
`)
	if err != nil {
		t.Fatalf("parse seq: %v", err)
	}
	return c
}

func TestIsSequential(t *testing.T) {
	if !seqCircuit(t).IsSequential() {
		t.Error("seq circuit should report sequential")
	}
	if diamond(t).IsSequential() {
		t.Error("diamond should not report sequential")
	}
}

func TestCombinationalCutsDFFs(t *testing.T) {
	c := seqCircuit(t)
	cc, err := c.Combinational()
	if err != nil {
		t.Fatal(err)
	}
	if cc.IsSequential() {
		t.Fatal("DFFs remain after cut")
	}
	q := cc.GateByName("q")
	if q == nil || q.Type != Input {
		t.Fatalf("q should be a pseudo-input, got %+v", q)
	}
	if len(q.Fanin) != 0 {
		t.Errorf("pseudo-input q has fanin %v", q.Fanin)
	}
	d := cc.GateByName("d")
	found := false
	for _, id := range cc.POs {
		if id == d.ID {
			found = true
		}
	}
	if !found {
		t.Error("DFF driver d should be a pseudo-PO")
	}
	// q must no longer be in d's fanout.
	for _, f := range d.Fanout {
		if f == q.ID {
			t.Error("driver still fans out to the cut flop")
		}
	}
	if err := cc.Validate(); err != nil {
		t.Errorf("cut circuit invalid: %v", err)
	}
	if _, err := cc.TopoOrder(); err != nil {
		t.Errorf("cut circuit not acyclic: %v", err)
	}
}

func TestCombinationalPreservesOriginal(t *testing.T) {
	c := seqCircuit(t)
	before := len(c.PIs)
	if _, err := c.Combinational(); err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != before {
		t.Error("Combinational mutated the original circuit")
	}
	if !c.IsSequential() {
		t.Error("original lost its DFF")
	}
}

func TestCombinationalDFFChain(t *testing.T) {
	// DFF feeding a DFF: both cut; intermediate flop is PI and PO endpoint.
	c, err := ParseBenchString("ff2", `
INPUT(in)
OUTPUT(out)
q1 = DFF(in)
q2 = DFF(q1)
out = NOT(q2)
`)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := c.Combinational()
	if err != nil {
		t.Fatal(err)
	}
	if cc.IsSequential() {
		t.Fatal("DFF remains")
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	// in drives nothing but is a pseudo-PO (it feeds a flop input).
	in := cc.GateByName("in")
	if !idIn(cc.POs, in.ID) {
		t.Error("in should be a pseudo-PO (it drove a flop)")
	}
	q1 := cc.GateByName("q1")
	if q1.Type != Input || !idIn(cc.PIs, q1.ID) {
		t.Error("q1 should be a pseudo-PI")
	}
	if !idIn(cc.POs, q1.ID) {
		t.Error("q1 drove q2, so it should also be a pseudo-PO endpoint")
	}
}

func idIn(s []int, id int) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

func TestLogicIDsTopological(t *testing.T) {
	c := diamond(t)
	ids, err := c.LogicIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("LogicIDs len = %d, want 3", len(ids))
	}
	for _, id := range ids {
		if !c.Gates[id].IsLogic() {
			t.Errorf("gate %d is not logic", id)
		}
	}
}

// TestRandomDAGsTopoProperty exercises TopoOrder/Levels on random DAGs.
func TestRandomDAGsTopoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder("rand")
		nIn := 2 + rng.Intn(4)
		ids := make([]int, 0, 40)
		for i := 0; i < nIn; i++ {
			ids = append(ids, b.Input("in"+itoa(i)))
		}
		nGates := 5 + rng.Intn(30)
		for i := 0; i < nGates; i++ {
			a := ids[rng.Intn(len(ids))]
			c := ids[rng.Intn(len(ids))]
			for c == a {
				c = ids[rng.Intn(len(ids))]
			}
			ids = append(ids, b.Gate(Nand, "g"+itoa(i), a, c))
		}
		b.Output(ids[len(ids)-1])
		c, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lv, err := c.Levels()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range c.Gates {
			for _, f := range c.Gates[i].Fanin {
				if lv[f] >= lv[i] {
					t.Fatalf("trial %d: level invariant violated: lv[%d]=%d >= lv[%d]=%d", trial, f, lv[f], i, lv[i])
				}
			}
		}
		d, _ := c.Depth()
		if d < 1 {
			t.Fatalf("trial %d: depth %d < 1", trial, d)
		}
	}
}
