package circuit

import "testing"

func TestGateTypeString(t *testing.T) {
	cases := []struct {
		t    GateType
		want string
	}{
		{Input, "INPUT"}, {Buf, "BUFF"}, {Not, "NOT"}, {And, "AND"},
		{Nand, "NAND"}, {Or, "OR"}, {Nor, "NOR"}, {Xor, "XOR"},
		{Xnor, "XNOR"}, {DFF, "DFF"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.t, got, c.want)
		}
	}
	if got := GateType(200).String(); got != "GateType(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestGateTypeValid(t *testing.T) {
	for gt := Input; gt < numGateTypes; gt++ {
		if !gt.Valid() {
			t.Errorf("%s.Valid() = false", gt)
		}
	}
	if GateType(numGateTypes).Valid() {
		t.Error("numGateTypes should be invalid")
	}
}

func TestGateTypeInverting(t *testing.T) {
	inverting := map[GateType]bool{
		Not: true, Nand: true, Nor: true, Xnor: true,
		Buf: false, And: false, Or: false, Xor: false, Input: false, DFF: false,
	}
	for gt, want := range inverting {
		if got := gt.Inverting(); got != want {
			t.Errorf("%s.Inverting() = %v, want %v", gt, got, want)
		}
	}
}

func TestGateTypeFaninBounds(t *testing.T) {
	cases := []struct {
		t        GateType
		min, max int
	}{
		{Input, 0, 0}, {Buf, 1, 1}, {Not, 1, 1}, {DFF, 1, 1},
		{And, 2, -1}, {Nand, 2, -1}, {Or, 2, -1}, {Nor, 2, -1},
		{Xor, 2, -1}, {Xnor, 2, -1},
	}
	for _, c := range cases {
		if got := c.t.MinFanin(); got != c.min {
			t.Errorf("%s.MinFanin() = %d, want %d", c.t, got, c.min)
		}
		if got := c.t.MaxFanin(); got != c.max {
			t.Errorf("%s.MaxFanin() = %d, want %d", c.t, got, c.max)
		}
	}
}

func TestGateIsLogic(t *testing.T) {
	g := Gate{Type: Nand}
	if !g.IsLogic() {
		t.Error("NAND should be logic")
	}
	for _, typ := range []GateType{Input, DFF} {
		g := Gate{Type: typ}
		if g.IsLogic() {
			t.Errorf("%s should not be logic", typ)
		}
	}
}

func TestGateFaninFanoutCounts(t *testing.T) {
	g := Gate{Fanin: []int{1, 2, 3}, Fanout: []int{4}}
	if g.NumFanin() != 3 {
		t.Errorf("NumFanin = %d, want 3", g.NumFanin())
	}
	if g.NumFanout() != 1 {
		t.Errorf("NumFanout = %d, want 1", g.NumFanout())
	}
}
