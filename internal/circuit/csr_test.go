package circuit

import (
	"fmt"
	"math/rand"
	"testing"
)

// legacyTopoOrder is the pre-CSR Kahn FIFO walk over the Gate slices, kept
// here as the reference implementation: the CSR levelized order must
// reproduce it element for element on every Validate-passing circuit.
func legacyTopoOrder(c *Circuit) ([]int, error) {
	n := len(c.Gates)
	indeg := make([]int, n)
	for i := range c.Gates {
		indeg[i] = len(c.Gates[i].Fanin)
	}
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			order = append(order, i)
		}
	}
	for head := 0; head < len(order); head++ {
		for _, f := range c.Gates[order[head]].Fanout {
			indeg[f]--
			if indeg[f] == 0 {
				order = append(order, f)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("cycle")
	}
	return order, nil
}

// legacyLevels is the pre-CSR per-gate level computation.
func legacyLevels(c *Circuit, order []int) ([]int, int) {
	lv := make([]int, len(c.Gates))
	depth := 0
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input {
			lv[id] = 0
			continue
		}
		maxIn := 0
		for _, f := range g.Fanin {
			if lv[f] > maxIn {
				maxIn = lv[f]
			}
		}
		lv[id] = maxIn + 1
		if lv[id] > depth {
			depth = lv[id]
		}
	}
	return lv, depth
}

// randomDAG builds a random layered circuit via the Builder: nIn inputs, then
// nGates logic gates each drawing 1–3 fanins from earlier gates.
func randomDAG(t *testing.T, seed int64, nIn, nGates int) *Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("rand-%d", seed))
	ids := make([]int, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, b.Input(fmt.Sprintf("in%d", i)))
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Not, Buf}
	for i := 0; i < nGates; i++ {
		tp := types[rng.Intn(len(types))]
		nf := 1
		if tp != Not && tp != Buf {
			nf = 2 + rng.Intn(2)
		}
		fanin := make([]int, 0, nf)
		for len(fanin) < nf {
			cand := ids[rng.Intn(len(ids))]
			dup := false
			for _, f := range fanin {
				if f == cand {
					dup = true
					break
				}
			}
			if !dup {
				fanin = append(fanin, cand)
			}
		}
		ids = append(ids, b.Gate(tp, fmt.Sprintf("g%d", i), fanin...))
	}
	// Mark every sink as an output so the circuit is well-formed.
	for _, id := range ids {
		b.Output(id)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("randomDAG(%d): %v", seed, err)
	}
	return c
}

// checkCSREquivalence verifies every CSR invariant against the legacy
// slice-walk reference on one circuit.
func checkCSREquivalence(t *testing.T, c *Circuit) {
	t.Helper()
	s, err := c.CSR()
	if err != nil {
		t.Fatalf("%s: CSR: %v", c.Name, err)
	}
	n := c.N()
	if s.N() != n {
		t.Fatalf("%s: CSR.N() = %d, want %d", c.Name, s.N(), n)
	}

	// Topological order matches the legacy Kahn FIFO walk exactly.
	want, err := legacyTopoOrder(c)
	if err != nil {
		t.Fatalf("%s: legacy topo: %v", c.Name, err)
	}
	got, err := c.TopoOrder()
	if err != nil {
		t.Fatalf("%s: TopoOrder: %v", c.Name, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: order length %d, want %d", c.Name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: order[%d] = %d, want %d (CSR order diverges from legacy walk)",
				c.Name, i, got[i], want[i])
		}
		if int(s.Order[i]) != want[i] {
			t.Fatalf("%s: CSR.Order[%d] = %d, want %d", c.Name, i, s.Order[i], want[i])
		}
	}

	// Levels and depth match the legacy computation.
	wantLv, wantDepth := legacyLevels(c, want)
	gotLv, err := c.Levels()
	if err != nil {
		t.Fatalf("%s: Levels: %v", c.Name, err)
	}
	gotDepth, err := c.Depth()
	if err != nil {
		t.Fatalf("%s: Depth: %v", c.Name, err)
	}
	if gotDepth != wantDepth {
		t.Fatalf("%s: depth %d, want %d", c.Name, gotDepth, wantDepth)
	}
	for id := range wantLv {
		if gotLv[id] != wantLv[id] {
			t.Fatalf("%s: level[%d] = %d, want %d", c.Name, id, gotLv[id], wantLv[id])
		}
		if int(s.Level[id]) != wantLv[id] {
			t.Fatalf("%s: CSR.Level[%d] = %d, want %d", c.Name, id, s.Level[id], wantLv[id])
		}
	}

	// Fanin/fanout views reproduce the Gate slices in declaration order.
	for id := range c.Gates {
		g := &c.Gates[id]
		fi := s.Fanins(int32(id))
		if len(fi) != len(g.Fanin) || s.NumFanin(int32(id)) != len(g.Fanin) {
			t.Fatalf("%s: gate %d fanin count %d, want %d", c.Name, id, len(fi), len(g.Fanin))
		}
		for j, f := range g.Fanin {
			if int(fi[j]) != f {
				t.Fatalf("%s: gate %d fanin[%d] = %d, want %d", c.Name, id, j, fi[j], f)
			}
		}
		fo := s.Fanouts(int32(id))
		if len(fo) != len(g.Fanout) || s.NumFanout(int32(id)) != len(g.Fanout) {
			t.Fatalf("%s: gate %d fanout count %d, want %d", c.Name, id, len(fo), len(g.Fanout))
		}
		for j, f := range g.Fanout {
			if int(fo[j]) != f {
				t.Fatalf("%s: gate %d fanout[%d] = %d, want %d", c.Name, id, j, fo[j], f)
			}
		}
		if s.IsLogic[id] != g.IsLogic() {
			t.Fatalf("%s: gate %d IsLogic %v, want %v", c.Name, id, s.IsLogic[id], g.IsLogic())
		}
	}

	// Rank is the inverse permutation of Order.
	for rank, id := range s.Order {
		if int(s.Rank[id]) != rank {
			t.Fatalf("%s: Rank[%d] = %d, want %d", c.Name, id, s.Rank[id], rank)
		}
	}

	// Level grouping: LevelStart brackets exactly the gates of each level,
	// and levels are non-decreasing along the order.
	if s.NumLevels() != s.Depth+1 {
		t.Fatalf("%s: NumLevels %d, want %d", c.Name, s.NumLevels(), s.Depth+1)
	}
	for l := 0; l < s.NumLevels(); l++ {
		for _, id := range s.LevelGates(l) {
			if int(s.Level[id]) != l {
				t.Fatalf("%s: LevelGates(%d) contains gate %d of level %d", c.Name, l, id, s.Level[id])
			}
		}
	}
	total := 0
	for l := 0; l < s.NumLevels(); l++ {
		total += len(s.LevelGates(l))
	}
	if total != n {
		t.Fatalf("%s: level groups cover %d gates, want %d", c.Name, total, n)
	}
}

func TestCSRMatchesLegacyWalkBuilder(t *testing.T) {
	// A small hand-built circuit with reconvergence and a multi-PO sink.
	b := NewBuilder("hand")
	a := b.Input("a")
	bb := b.Input("b")
	cIn := b.Input("c")
	n1 := b.Gate(Nand, "n1", a, bb)
	n2 := b.Gate(Nor, "n2", bb, cIn)
	n3 := b.Gate(And, "n3", n1, n2)
	n4 := b.Gate(Not, "n4", n3)
	b.Output(n3)
	b.Output(n4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkCSREquivalence(t, c)
}

func TestCSRMatchesLegacyWalkRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := randomDAG(t, seed, 4+int(seed)%7, 50+int(seed)*37)
		checkCSREquivalence(t, c)
	}
}

func TestCSRCountingSortFallback(t *testing.T) {
	// A hand-assembled circuit whose Kahn order is NOT level-monotone: gate
	// "late" has zero fanins but is a logic gate (degenerate; Validate rejects
	// it, but buildCSR must still levelize correctly via the fallback).
	c := &Circuit{
		Name: "degenerate",
		Gates: []Gate{
			{ID: 0, Name: "i", Type: Input},
			{ID: 1, Name: "g", Type: Not, Fanin: []int{0}, Fanout: []int{2}},
			{ID: 2, Name: "h", Type: Not, Fanin: []int{1}},
			{ID: 3, Name: "late", Type: And}, // zero-fanin logic gate: level 1, but Kahn emits it at the front
		},
		PIs: []int{0},
		POs: []int{2, 3},
	}
	c.Gates[0].Fanout = []int{1}
	s, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	// The fallback must produce a level-sorted topological order.
	prev := int32(0)
	for _, id := range s.Order {
		if s.Level[id] < prev {
			t.Fatalf("order not level-sorted: gate %d at level %d after level %d", id, s.Level[id], prev)
		}
		prev = s.Level[id]
	}
	for rank, id := range s.Order {
		if int(s.Rank[id]) != rank {
			t.Fatalf("Rank[%d] = %d, want %d after fallback", id, s.Rank[id], rank)
		}
	}
	// Topological: every fanin must precede its gate.
	for id := range c.Gates {
		for _, f := range c.Gates[id].Fanin {
			if s.Rank[f] >= s.Rank[id] {
				t.Fatalf("fanin %d does not precede gate %d", f, id)
			}
		}
	}
}

func TestCSRCycleError(t *testing.T) {
	c := &Circuit{
		Name: "cyclic",
		Gates: []Gate{
			{ID: 0, Name: "i", Type: Input, Fanout: []int{1}},
			{ID: 1, Name: "a", Type: And, Fanin: []int{0, 2}, Fanout: []int{2}},
			{ID: 2, Name: "b", Type: Not, Fanin: []int{1}, Fanout: []int{1}},
		},
		PIs: []int{0},
	}
	if _, err := c.CSR(); err == nil {
		t.Fatal("CSR on a cyclic circuit: want error, got nil")
	}
}

func TestGateByNameIndexed(t *testing.T) {
	c := randomDAG(t, 7, 5, 40)
	for i := range c.Gates {
		g := c.GateByName(c.Gates[i].Name)
		if g == nil || g.ID != i {
			t.Fatalf("GateByName(%q): got %v, want gate %d", c.Gates[i].Name, g, i)
		}
	}
	if g := c.GateByName("no-such-gate"); g != nil {
		t.Fatalf("GateByName of a missing name: got %v, want nil", g)
	}
}

func TestGateByNameFirstWinsOnDuplicates(t *testing.T) {
	// Hand-assembled duplicate names (Validate rejects these; the index must
	// still behave like the legacy linear scan: first occurrence wins).
	c := &Circuit{
		Name: "dups",
		Gates: []Gate{
			{ID: 0, Name: "x", Type: Input, Fanout: []int{1}},
			{ID: 1, Name: "x", Type: Not, Fanin: []int{0}},
		},
		PIs: []int{0},
	}
	if g := c.GateByName("x"); g == nil || g.ID != 0 {
		t.Fatalf("duplicate name lookup: got %v, want gate 0", g)
	}
}

func TestDuplicateNameRejectedAtBuild(t *testing.T) {
	b := NewBuilder("dup")
	a := b.Input("a")
	b.Gate(Not, "a", a) // same name as the input
	if _, err := b.Build(); err == nil {
		t.Fatal("Builder.Build with duplicate names: want error, got nil")
	}

	if _, err := ParseBenchString("dup", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"); err == nil {
		t.Fatal("ParseBench with duplicate definitions: want error, got nil")
	}
}

func TestInternedNamesShareBacking(t *testing.T) {
	c := randomDAG(t, 11, 4, 30)
	// All names must be findable and correct after interning (seal ran in
	// Build); spot-check content round-trips.
	for i := range c.Gates {
		want := c.Gates[i].Name
		if got := c.GateByName(want); got == nil || got.Name != want {
			t.Fatalf("interned name %q lookup failed", want)
		}
	}
}
