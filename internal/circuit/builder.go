package circuit

import "fmt"

// Builder incrementally constructs a Circuit. Methods record errors instead
// of returning them; Build reports the first one, so call sites stay terse:
//
//	b := circuit.NewBuilder("half-adder")
//	a, bIn := b.Input("a"), b.Input("b")
//	sum := b.Gate(circuit.Xor, "sum", a, bIn)
//	carry := b.Gate(circuit.And, "carry", a, bIn)
//	b.Output(sum)
//	b.Output(carry)
//	c, err := b.Build()
type Builder struct {
	name  string
	gates []Gate
	pis   []int
	pos   []int
	byN   map[string]int
	err   error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byN: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

func (b *Builder) add(t GateType, name string, fanin ...int) int {
	if b.err != nil {
		return -1
	}
	if name == "" {
		return b.fail("builder %q: empty gate name", b.name)
	}
	if _, dup := b.byN[name]; dup {
		return b.fail("builder %q: duplicate gate name %q", b.name, name)
	}
	if n := len(fanin); n < t.MinFanin() || (t.MaxFanin() >= 0 && n > t.MaxFanin()) {
		return b.fail("builder %q: gate %q: %s with %d fanins", b.name, name, t, n)
	}
	id := len(b.gates)
	for _, f := range fanin {
		if f < 0 || f >= id {
			return b.fail("builder %q: gate %q: bad fanin id %d", b.name, name, f)
		}
	}
	b.gates = append(b.gates, Gate{ID: id, Name: name, Type: t, Fanin: append([]int(nil), fanin...)})
	for _, f := range fanin {
		b.gates[f].Fanout = append(b.gates[f].Fanout, id)
	}
	b.byN[name] = id
	return id
}

// Input declares a primary input and returns its gate ID.
func (b *Builder) Input(name string) int {
	id := b.add(Input, name)
	if id >= 0 {
		b.pis = append(b.pis, id)
	}
	return id
}

// Gate adds a logic gate of the given type and returns its ID.
func (b *Builder) Gate(t GateType, name string, fanin ...int) int {
	if t == Input {
		return b.fail("builder %q: use Input to add %q", b.name, name)
	}
	return b.add(t, name, fanin...)
}

// Output marks an existing gate as a primary output.
func (b *Builder) Output(id int) {
	if b.err != nil {
		return
	}
	if id < 0 || id >= len(b.gates) {
		b.fail("builder %q: output id %d out of range", b.name, id)
		return
	}
	for _, p := range b.pos {
		if p == id {
			return // already marked
		}
	}
	b.pos = append(b.pos, id)
}

// Err returns the first error recorded so far, if any.
func (b *Builder) Err() error { return b.err }

// Build validates and returns the circuit. The Builder must not be reused.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := &Circuit{Name: b.name, Gates: b.gates, PIs: b.pis, POs: b.pos}
	if len(c.PIs) == 0 {
		return nil, fmt.Errorf("builder %q: circuit has no primary inputs", b.name)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("builder %q: %w", b.name, err)
	}
	c.seal()
	return c, nil
}
