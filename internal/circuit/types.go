// Package circuit provides the gate-level netlist representation used by the
// whole library: gate types, the directed acyclic network of static CMOS
// gates, levelization, structural statistics, the ISCAS .bench netlist format,
// and the DFF cut that turns a sequential ISCAS'89 circuit into the
// combinational network the optimizer works on.
package circuit

import "fmt"

// GateType identifies the logic function of a node in the network.
type GateType uint8

// Gate types. Input covers both true primary inputs and pseudo-inputs created
// by cutting DFFs. DFF is only present in raw sequential netlists; the
// optimizer operates on circuits where Combinational has removed them.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input: "INPUT",
	Buf:   "BUFF",
	Not:   "NOT",
	And:   "AND",
	Nand:  "NAND",
	Or:    "OR",
	Nor:   "NOR",
	Xor:   "XOR",
	Xnor:  "XNOR",
	DFF:   "DFF",
}

func (t GateType) String() string {
	if t >= numGateTypes {
		return fmt.Sprintf("GateType(%d)", uint8(t))
	}
	return gateTypeNames[t]
}

// Valid reports whether t is one of the defined gate types.
func (t GateType) Valid() bool { return t < numGateTypes }

// Inverting reports whether the gate's output is the complement of its
// "natural" function (NAND/NOR/NOT/XNOR). Used by activity propagation.
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// MinFanin returns the smallest legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the largest legal fanin count for the type, or -1 if
// unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return -1
	}
}

// Gate is one node of the network. Fanin and Fanout hold gate IDs, which are
// indices into Circuit.Gates. A Gate value is owned by its Circuit; callers
// must treat the slices as read-only.
type Gate struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int
	Fanout []int
}

// NumFanin returns the number of fanin connections (f_ii in the paper).
func (g *Gate) NumFanin() int { return len(g.Fanin) }

// NumFanout returns the number of fanout connections (f_oi in the paper).
// Primary outputs with no internal fanout report 0 here; the power and delay
// models treat such gates as driving one off-module load.
func (g *Gate) NumFanout() int { return len(g.Fanout) }

// IsLogic reports whether the gate is a combinational logic gate (i.e. it
// dissipates power and contributes delay): anything but Input and DFF.
func (g *Gate) IsLogic() bool { return g.Type != Input && g.Type != DFF }
