package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Structural Verilog support for the gate-primitive subset that synthesis
// netlists of this class use:
//
//	module s27 (G0, G1, G17);
//	  input G0, G1;
//	  output G17;
//	  wire G10;
//	  nand g1 (G10, G0, G1);   // first terminal is the output
//	  not  g2 (G17, G10);
//	  dff  g3 (Q, D);          // sequential element, as in .bench
//	endmodule
//
// Primitives: and, nand, or, nor, xor, xnor, not, buf, dff. Instance names
// are optional; comments (// and /* */) are stripped.

// ParseVerilog reads one structural-Verilog module into a Circuit.
func ParseVerilog(name string, r io.Reader) (*Circuit, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	src := stripVerilogComments(string(text))

	// Statements are ';'-separated; module header handled specially.
	type protoGate struct {
		typ    GateType
		out    string
		inputs []string
	}
	var (
		moduleName string
		inputs     []string
		outputs    []string
		protos     []protoGate
		sawModule  bool
		sawEnd     bool
	)
	// endmodule has no ';'; treat it as its own statement.
	src = strings.ReplaceAll(src, "endmodule", ";endmodule;")
	for _, stmt := range strings.Split(src, ";") {
		stmt = strings.Join(strings.Fields(stmt), " ")
		if stmt == "" {
			continue
		}
		word, rest, _ := strings.Cut(stmt, " ")
		switch strings.ToLower(word) {
		case "module":
			if sawModule {
				return nil, fmt.Errorf("%s: multiple modules are not supported", name)
			}
			sawModule = true
			moduleName = rest
			if i := strings.IndexByte(moduleName, '('); i >= 0 {
				moduleName = strings.TrimSpace(moduleName[:i])
			}
			if moduleName == "" {
				return nil, fmt.Errorf("%s: module without a name", name)
			}
		case "endmodule":
			sawEnd = true
		case "input":
			inputs = append(inputs, splitSignalList(rest)...)
		case "output":
			outputs = append(outputs, splitSignalList(rest)...)
		case "wire":
			// Declarations only; connectivity comes from the instances.
		default:
			typ, err := gateTypeFromVerilog(word)
			if err != nil {
				return nil, fmt.Errorf("%s: %v (statement %q)", name, err, stmt)
			}
			open := strings.IndexByte(rest, '(')
			if open < 0 || !strings.HasSuffix(rest, ")") {
				return nil, fmt.Errorf("%s: malformed instance %q", name, stmt)
			}
			terms := splitSignalList(rest[open+1 : len(rest)-1])
			if len(terms) < 2 {
				return nil, fmt.Errorf("%s: instance %q needs an output and at least one input", name, stmt)
			}
			protos = append(protos, protoGate{typ: typ, out: terms[0], inputs: terms[1:]})
		}
	}
	if !sawModule || !sawEnd {
		return nil, fmt.Errorf("%s: expected a module ... endmodule block", name)
	}

	// Build the circuit: inputs first, then defined signals (forward
	// references allowed, as in the bench parser).
	byName := make(map[string]int)
	var gates []Gate
	add := func(sig string, typ GateType) (int, error) {
		if _, dup := byName[sig]; dup {
			return 0, fmt.Errorf("%s: signal %q driven twice", name, sig)
		}
		id := len(gates)
		gates = append(gates, Gate{ID: id, Name: sig, Type: typ})
		byName[sig] = id
		return id, nil
	}
	var pis []int
	for _, in := range inputs {
		id, err := add(in, Input)
		if err != nil {
			return nil, err
		}
		pis = append(pis, id)
	}
	for _, p := range protos {
		if _, err := add(p.out, p.typ); err != nil {
			return nil, err
		}
	}
	for _, p := range protos {
		id := byName[p.out]
		for _, in := range p.inputs {
			fid, ok := byName[in]
			if !ok {
				return nil, fmt.Errorf("%s: instance output %q references undriven signal %q", name, p.out, in)
			}
			gates[id].Fanin = append(gates[id].Fanin, fid)
			gates[fid].Fanout = append(gates[fid].Fanout, id)
		}
	}
	var pos []int
	for _, out := range outputs {
		id, ok := byName[out]
		if !ok {
			return nil, fmt.Errorf("%s: output %q is never driven", name, out)
		}
		pos = append(pos, id)
	}
	c := &Circuit{Name: moduleName, Gates: gates, PIs: pis, POs: pos}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return c, nil
}

// ParseVerilogString is ParseVerilog over in-memory source.
func ParseVerilogString(name, src string) (*Circuit, error) {
	return ParseVerilog(name, strings.NewReader(src))
}

func stripVerilogComments(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		switch {
		case strings.HasPrefix(s[i:], "//"):
			if j := strings.IndexByte(s[i:], '\n'); j >= 0 {
				i += j
			} else {
				i = len(s)
			}
		case strings.HasPrefix(s[i:], "/*"):
			if j := strings.Index(s[i+2:], "*/"); j >= 0 {
				i += j + 4
			} else {
				i = len(s)
			}
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return sb.String()
}

func splitSignalList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func gateTypeFromVerilog(prim string) (GateType, error) {
	switch strings.ToLower(prim) {
	case "and":
		return And, nil
	case "nand":
		return Nand, nil
	case "or":
		return Or, nil
	case "nor":
		return Nor, nil
	case "xor":
		return Xor, nil
	case "xnor":
		return Xnor, nil
	case "not", "inv":
		return Not, nil
	case "buf":
		return Buf, nil
	case "dff":
		return DFF, nil
	}
	return 0, fmt.Errorf("unknown primitive %q", prim)
}

// WriteVerilog writes the circuit as a structural-Verilog module; the result
// round-trips through ParseVerilog.
func WriteVerilog(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, id := range c.PIs {
		ports = append(ports, c.Gates[id].Name)
	}
	for _, id := range c.POs {
		ports = append(ports, c.Gates[id].Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitizeModuleName(c.Name), strings.Join(ports, ", "))
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "  input %s;\n", c.Gates[id].Name)
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "  output %s;\n", c.Gates[id].Name)
	}
	poSet := map[int]bool{}
	for _, id := range c.POs {
		poSet[id] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == Input || poSet[g.ID] {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", g.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		order = make([]int, len(c.Gates))
		for i := range order {
			order[i] = i
		}
	}
	n := 0
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input {
			continue
		}
		terms := []string{g.Name}
		for _, f := range g.Fanin {
			terms = append(terms, c.Gates[f].Name)
		}
		fmt.Fprintf(bw, "  %s g%d (%s);\n", verilogPrimName(g.Type), n, strings.Join(terms, ", "))
		n++
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func verilogPrimName(t GateType) string {
	if t == Buf {
		return "buf"
	}
	return strings.ToLower(t.String())
}

func sanitizeModuleName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "top"
	}
	return sb.String()
}
