package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS .bench format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G11 = DFF(G10)
//
// Signal names may be referenced before they are defined. The returned
// circuit may be sequential (contain DFFs); cut them with Combinational
// before optimization.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type protoGate struct {
		name   string
		typ    GateType
		fanins []string
		line   int
	}
	var (
		protos  []protoGate
		inputs  []string
		outputs []string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if arg, ok := parseDirective(line, "INPUT"); ok {
			inputs = append(inputs, arg)
			continue
		}
		if arg, ok := parseDirective(line, "OUTPUT"); ok {
			outputs = append(outputs, arg)
			continue
		}
		lhs, rhs, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%s:%d: unrecognized line %q", name, lineNo, line)
		}
		gname := strings.TrimSpace(lhs)
		fn, args, err := parseCall(strings.TrimSpace(rhs))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		typ, err := gateTypeFromBench(fn)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		protos = append(protos, protoGate{name: gname, typ: typ, fanins: args, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	// Assign IDs: inputs first (declaration order), then defined gates.
	byName := make(map[string]int, len(inputs)+len(protos))
	var gates []Gate
	addGate := func(gname string, typ GateType) (int, error) {
		if _, dup := byName[gname]; dup {
			return 0, fmt.Errorf("%s: signal %q defined twice", name, gname)
		}
		id := len(gates)
		gates = append(gates, Gate{ID: id, Name: gname, Type: typ})
		byName[gname] = id
		return id, nil
	}
	var pis []int
	for _, in := range inputs {
		id, err := addGate(in, Input)
		if err != nil {
			return nil, err
		}
		pis = append(pis, id)
	}
	for _, p := range protos {
		if _, err := addGate(p.name, p.typ); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, p.line, err)
		}
	}
	// Resolve fanins.
	for _, p := range protos {
		id := byName[p.name]
		for _, fn := range p.fanins {
			fid, ok := byName[fn]
			if !ok {
				return nil, fmt.Errorf("%s:%d: gate %q references undefined signal %q", name, p.line, p.name, fn)
			}
			gates[id].Fanin = append(gates[id].Fanin, fid)
			gates[fid].Fanout = append(gates[fid].Fanout, id)
		}
	}
	var pos []int
	for _, out := range outputs {
		id, ok := byName[out]
		if !ok {
			return nil, fmt.Errorf("%s: OUTPUT(%s) references undefined signal", name, out)
		}
		pos = append(pos, id)
	}
	c := &Circuit{Name: name, Gates: gates, PIs: pis, POs: pos}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	c.seal()
	return c, nil
}

// ParseBenchString is ParseBench over an in-memory netlist.
func ParseBenchString(name, text string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(text))
}

func parseDirective(line, keyword string) (arg string, ok bool) {
	if !strings.HasPrefix(line, keyword) {
		return "", false
	}
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", false
	}
	return strings.TrimSpace(rest[1 : len(rest)-1]), true
}

func parseCall(s string) (fn string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed gate expression %q", s)
	}
	fn = strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty operand in %q", s)
		}
		args = append(args, a)
	}
	return fn, args, nil
}

func gateTypeFromBench(fn string) (GateType, error) {
	switch strings.ToUpper(fn) {
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "NOT", "INV":
		return Not, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "DFF":
		return DFF, nil
	}
	return 0, fmt.Errorf("unknown gate function %q", fn)
}

// WriteBench writes the circuit in .bench format. ParseBench(WriteBench(c))
// reproduces the circuit up to gate ID renumbering.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	// Emit defined gates in topological order when possible, else ID order.
	order, err := c.TopoOrder()
	if err != nil {
		order = make([]int, len(c.Gates))
		for i := range order {
			order[i] = i
		}
	}
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, benchFuncName(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchFuncName(t GateType) string {
	if t == Buf {
		return "BUFF"
	}
	return t.String()
}

// BenchString renders the circuit as a .bench netlist string.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = WriteBench(&sb, c)
	return sb.String()
}

// Stats summarizes the structure of a circuit the way the paper's Table 1
// header does (gate count, depth) plus fanout information used in analyses.
type Stats struct {
	Name       string
	Gates      int // logic gates (excludes inputs and DFFs)
	Inputs     int // primary inputs (pseudo-PIs included after a DFF cut)
	Outputs    int
	DFFs       int
	Depth      int
	MaxFanin   int
	MaxFanout  int
	AvgFanout  float64 // mean fanout over logic gates and inputs with fanout
	TypeCounts map[GateType]int
}

// ComputeStats gathers structural statistics. Depth is 0 (with no error) for
// sequential circuits whose raw graph is cyclic; cut DFFs first for depth.
func ComputeStats(c *Circuit) Stats {
	s := Stats{Name: c.Name, TypeCounts: make(map[GateType]int)}
	totalFanout, drivers := 0, 0
	for i := range c.Gates {
		g := &c.Gates[i]
		s.TypeCounts[g.Type]++
		switch g.Type {
		case Input:
			s.Inputs++
		case DFF:
			s.DFFs++
		default:
			s.Gates++
		}
		if n := g.NumFanin(); n > s.MaxFanin {
			s.MaxFanin = n
		}
		if n := g.NumFanout(); n > s.MaxFanout {
			s.MaxFanout = n
		}
		if g.NumFanout() > 0 {
			totalFanout += g.NumFanout()
			drivers++
		}
	}
	s.Outputs = len(c.POs)
	if drivers > 0 {
		s.AvgFanout = float64(totalFanout) / float64(drivers)
	}
	if d, err := c.Depth(); err == nil {
		s.Depth = d
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	types := make([]string, 0, len(s.TypeCounts))
	for t, n := range s.TypeCounts {
		if t == Input {
			continue
		}
		types = append(types, fmt.Sprintf("%s:%d", t, n))
	}
	sort.Strings(types)
	return fmt.Sprintf("%s: gates=%d depth=%d in=%d out=%d dff=%d maxFo=%d [%s]",
		s.Name, s.Gates, s.Depth, s.Inputs, s.Outputs, s.DFFs, s.MaxFanout, strings.Join(types, " "))
}
