package circuit

import (
	"strings"
	"testing"
)

const s27Verilog = `
// ISCAS'89 s27 in structural Verilog
module s27 (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;
  dff  q1 (G5, G10);
  dff  q2 (G6, G11);
  dff  q3 (G7, G13);
  not  u1 (G14, G0);
  not  u2 (G17, G11);
  and  u3 (G8, G14, G6);
  or   u4 (G15, G12, G8);
  or   u5 (G16, G3, G8);
  nand u6 (G9, G16, G15);
  nor  u7 (G10, G14, G11);
  nor  u8 (G11, G5, G9);
  nor  u9 (G12, G1, G7);
  nand u10 (G13, G2, G12);
endmodule
`

func TestParseVerilogS27(t *testing.T) {
	c, err := ParseVerilogString("s27.v", s27Verilog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "s27" {
		t.Errorf("module name = %q", c.Name)
	}
	s := ComputeStats(c)
	if s.Gates != 10 || s.DFFs != 3 || s.Inputs != 4 || s.Outputs != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Must match the embedded .bench version structurally.
	bench, err := ParseBenchString("s27", `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bench.Gates {
		bg := &bench.Gates[i]
		vg := c.GateByName(bg.Name)
		if vg == nil || vg.Type != bg.Type || vg.NumFanin() != bg.NumFanin() {
			t.Errorf("gate %q differs between formats", bg.Name)
		}
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	orig, err := ParseVerilogString("s27.v", s27Verilog)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilogString("rt", sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if back.N() != orig.N() || len(back.PIs) != len(orig.PIs) || len(back.POs) != len(orig.POs) {
		t.Fatalf("round trip changed shape")
	}
	for i := range orig.Gates {
		og := &orig.Gates[i]
		bg := back.GateByName(og.Name)
		if bg == nil || bg.Type != og.Type || bg.NumFanin() != og.NumFanin() {
			t.Errorf("gate %q changed across round trip", og.Name)
		}
	}
}

func TestVerilogBenchCrossConversion(t *testing.T) {
	// bench → circuit → verilog → circuit: all gate structure preserved,
	// including BUF (whose primitive name differs between the formats).
	bench, err := ParseBenchString("x", `
INPUT(a)
INPUT(b)
OUTPUT(y)
m = XNOR(a, b)
n = BUFF(m)
y = NOT(n)
`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, bench); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilogString("x.v", sb.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if g := back.GateByName("n"); g == nil || g.Type != Buf {
		t.Errorf("BUF lost in conversion: %+v", g)
	}
	if g := back.GateByName("m"); g == nil || g.Type != Xnor {
		t.Errorf("XNOR lost: %+v", g)
	}
}

func TestParseVerilogComments(t *testing.T) {
	src := `
/* block
   comment */
module t (a, y); // trailing
  input a;
  output y;
  not u1 (y, a); /* inline */
endmodule
`
	c, err := ParseVerilogString("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogic() != 1 {
		t.Errorf("gates = %d", c.NumLogic())
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no module", "input a;\n", "module"},
		{"no endmodule", "module t (a);\ninput a;\n", "endmodule"},
		{"unknown primitive", "module t (a, y);\ninput a;\noutput y;\nfrob u1 (y, a);\nendmodule\n", "unknown primitive"},
		{"undriven input", "module t (a, y);\ninput a;\noutput y;\nnot u1 (y, zz);\nendmodule\n", "undriven"},
		{"undriven output", "module t (a, y);\ninput a;\noutput y;\nendmodule\n", "never driven"},
		{"double driver", "module t (a, y);\ninput a;\noutput y;\nnot u1 (y, a);\nbuf u2 (y, a);\nendmodule\n", "driven twice"},
		{"arity", "module t (a, y);\ninput a;\noutput y;\nnot u1 (y);\nendmodule\n", "at least one input"},
		{"malformed instance", "module t (a, y);\ninput a;\noutput y;\nnot u1 y, a;\nendmodule\n", "malformed"},
		{"two modules", "module t (a);\ninput a;\nendmodule\nmodule u (b);\ninput b;\nendmodule\n", "multiple modules"},
	}
	for _, tc := range cases {
		if _, err := ParseVerilogString(tc.name, tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSanitizeModuleName(t *testing.T) {
	if got := sanitizeModuleName("s298+buf"); got != "s298_buf" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeModuleName(""); got != "top" {
		t.Errorf("empty sanitize = %q", got)
	}
}
