package circuit

import (
	"fmt"
	"strings"
)

// CSR is the compact struct-of-arrays (compressed-sparse-row) view of a
// Circuit: the whole topology flattened into a handful of int32 arrays, plus
// the levelized topological order every sweep walks. It exists so the hot
// analysis paths (full delay sweeps, incremental re-timing, criticality
// passes, streaming path enumeration) touch only dense, cache-friendly arrays
// instead of chasing per-gate slice headers — the difference between hundreds
// and a million gates.
//
// A CSR is immutable and owned by its Circuit; it is built once (lazily, or
// eagerly at Builder.Build/ParseBench time for acyclic circuits) and shared
// by every engine clone. All arrays are indexed by gate ID. Callers must
// treat every exposed slice as read-only.
type CSR struct {
	// FaninStart/FaninList: gate id's fanins are
	// FaninList[FaninStart[id]:FaninStart[id+1]], in declaration order —
	// identical to Gate.Fanin. FanoutStart/FanoutList mirror Gate.Fanout.
	FaninStart  []int32
	FaninList   []int32
	FanoutStart []int32
	FanoutList  []int32

	// Order is the topological order of all gate IDs, grouped by level:
	// Order[LevelStart[l]:LevelStart[l+1]] holds the gates of level l, in
	// the same relative sequence Kahn's FIFO walk produces (so Order is
	// element-for-element the slice TopoOrder returns). Rank is the inverse
	// permutation; Level is the longest-logic-chain level per gate (inputs
	// are 0, see Circuit.Levels).
	Order      []int32
	Rank       []int32
	Level      []int32
	LevelStart []int32

	// IsLogic[id] caches Gate.IsLogic so sweeps skip the Gate deref.
	IsLogic []bool

	// Depth is the maximum level (the circuit's logic depth).
	Depth int
}

// N returns the number of gates.
//cmosvet:hotpath
func (s *CSR) N() int { return len(s.FaninStart) - 1 }

// NumLevels returns the number of level groups (Depth+1, level 0 = inputs).
//cmosvet:hotpath
func (s *CSR) NumLevels() int { return len(s.LevelStart) - 1 }

// Fanins returns gate id's fanin IDs (read-only, declaration order).
//cmosvet:hotpath
func (s *CSR) Fanins(id int32) []int32 {
	return s.FaninList[s.FaninStart[id]:s.FaninStart[id+1]]
}

// Fanouts returns gate id's fanout IDs (read-only).
//cmosvet:hotpath
func (s *CSR) Fanouts(id int32) []int32 {
	return s.FanoutList[s.FanoutStart[id]:s.FanoutStart[id+1]]
}

// NumFanin returns gate id's fanin count without materializing the slice.
//cmosvet:hotpath
func (s *CSR) NumFanin(id int32) int {
	return int(s.FaninStart[id+1] - s.FaninStart[id])
}

// NumFanout returns gate id's fanout count.
//cmosvet:hotpath
func (s *CSR) NumFanout(id int32) int {
	return int(s.FanoutStart[id+1] - s.FanoutStart[id])
}

// LevelGates returns the gate IDs of one level, in topological-order sequence.
//cmosvet:hotpath
func (s *CSR) LevelGates(l int) []int32 {
	return s.Order[s.LevelStart[l]:s.LevelStart[l+1]]
}

// CSR returns the circuit's compact struct-of-arrays view, building and
// caching it on first use. It fails on a combinational cycle (cut DFFs with
// Combinational first). Like TopoOrder's cache, the first build is not
// goroutine-safe; construct it before fanning out (Builder.Build, ParseBench
// and netgen do so eagerly for acyclic circuits).
func (c *Circuit) CSR() (*CSR, error) {
	if c.csr != nil {
		return c.csr, nil
	}
	s, err := buildCSR(c)
	if err != nil {
		return nil, err
	}
	c.csr = s
	return s, nil
}

// buildCSR flattens the circuit into CSR form and levelizes it. The
// topological order is computed with the same Kahn FIFO walk TopoOrder has
// always used, so the order (and everything downstream of it) is
// byte-identical to the legacy slice walk.
func buildCSR(c *Circuit) (*CSR, error) {
	n := len(c.Gates)
	s := &CSR{
		FaninStart:  make([]int32, n+1),
		FanoutStart: make([]int32, n+1),
		Order:       make([]int32, 0, n),
		Rank:        make([]int32, n),
		Level:       make([]int32, n),
		IsLogic:     make([]bool, n),
	}
	var nf, no int32
	for i := range c.Gates {
		g := &c.Gates[i]
		s.FaninStart[i] = nf
		s.FanoutStart[i] = no
		nf += int32(len(g.Fanin))
		no += int32(len(g.Fanout))
		s.IsLogic[i] = g.IsLogic()
	}
	s.FaninStart[n], s.FanoutStart[n] = nf, no
	s.FaninList = make([]int32, nf)
	s.FanoutList = make([]int32, no)
	nf, no = 0, 0
	for i := range c.Gates {
		g := &c.Gates[i]
		for _, f := range g.Fanin {
			s.FaninList[nf] = int32(f)
			nf++
		}
		for _, f := range g.Fanout {
			s.FanoutList[no] = int32(f)
			no++
		}
	}

	// Kahn FIFO over the flat arrays. The queue is the Order slice itself:
	// gates are appended as they become ready and consumed by a moving head.
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		indeg[i] = s.FaninStart[i+1] - s.FaninStart[i]
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			s.Order = append(s.Order, int32(i))
		}
	}
	for head := 0; head < len(s.Order); head++ {
		id := s.Order[head]
		for _, f := range s.Fanouts(id) {
			indeg[f]--
			if indeg[f] == 0 {
				s.Order = append(s.Order, f)
			}
		}
	}
	if len(s.Order) != n {
		return nil, fmt.Errorf("circuit %q: combinational cycle involving %d gates", c.Name, n-len(s.Order))
	}

	// Levels (longest logic chain; Input gates pinned to 0) and ranks.
	depth := int32(0)
	for rank, id := range s.Order {
		s.Rank[id] = int32(rank)
		if c.Gates[id].Type == Input {
			s.Level[id] = 0
			continue
		}
		maxIn := int32(0)
		for _, f := range s.Fanins(id) {
			if s.Level[f] > maxIn {
				maxIn = s.Level[f]
			}
		}
		s.Level[id] = maxIn + 1
		if s.Level[id] > depth {
			depth = s.Level[id]
		}
	}
	s.Depth = int(depth)

	// Level group boundaries. Kahn's FIFO order visits levels monotonically
	// on every circuit Validate accepts (a gate becomes ready only when its
	// max-level fanin's group is being drained), so the grouped order IS the
	// legacy TopoOrder — verified here rather than assumed. Degenerate
	// hand-built graphs (a zero-fanin non-Input gate) can break monotonicity;
	// those fall back to a stable counting sort by level, which still yields
	// a correct levelized topological order.
	monotone := true
	prev := int32(0)
	for _, id := range s.Order {
		if s.Level[id] < prev {
			monotone = false
			break
		}
		prev = s.Level[id]
	}
	if !monotone {
		sorted := make([]int32, 0, n)
		for l := int32(0); l <= depth; l++ {
			for _, id := range s.Order {
				if s.Level[id] == l {
					sorted = append(sorted, id)
				}
			}
		}
		s.Order = sorted
		for rank, id := range s.Order {
			s.Rank[id] = int32(rank)
		}
	}
	s.LevelStart = make([]int32, depth+2)
	prev = 0
	for rank, id := range s.Order {
		for l := s.Level[id]; prev < l; prev++ {
			s.LevelStart[prev+1] = int32(rank)
		}
	}
	s.LevelStart[depth+1] = int32(n)
	return s, nil
}

// seal finalizes a freshly constructed, validated circuit: edge slices are
// repacked into shared arenas and, for acyclic circuits, the CSR view is built
// eagerly so later concurrent readers (engine clones, parallel sweeps) only
// ever see a populated cache. Sequential circuits are cyclic until
// Combinational cuts their DFFs; for those the CSR is left to be built on the
// cut copy.
func (c *Circuit) seal() {
	c.compactEdges()
	c.internNames()
	if !c.IsSequential() {
		// Best effort: a DFF-free netlist with a combinational cycle still
		// fails here; the error resurfaces on the first TopoOrder/CSR call.
		_, _ = c.CSR()
	}
}

// internNames re-points every gate's name at a slice of one shared backing
// string (the side table), so a million-gate circuit holds one name
// allocation instead of a million tiny ones. Each Gate.Name value is
// unchanged; only the backing storage is shared. The name→id index stays
// lazy (see GateByName).
func (c *Circuit) internNames() {
	total := 0
	for i := range c.Gates {
		total += len(c.Gates[i].Name)
	}
	var sb strings.Builder
	sb.Grow(total)
	for i := range c.Gates {
		sb.WriteString(c.Gates[i].Name)
	}
	table := sb.String()
	off := 0
	for i := range c.Gates {
		n := len(c.Gates[i].Name)
		c.Gates[i].Name = table[off : off+n]
		off += n
	}
}

// compactEdges repacks every gate's Fanin/Fanout slice into two shared flat
// arenas. The per-gate views keep their exact contents (the public API is
// unchanged) but the thousands-to-millions of small slice allocations a build
// accumulates collapse into two, which is what keeps allocator and GC
// overhead flat at netgen's 10⁵–10⁶-gate scale. Three-index subslicing caps
// each view so a stray append can never bleed into a neighbor.
func (c *Circuit) compactEdges() {
	nf, no := 0, 0
	for i := range c.Gates {
		nf += len(c.Gates[i].Fanin)
		no += len(c.Gates[i].Fanout)
	}
	fa := make([]int, 0, nf)
	oa := make([]int, 0, no)
	for i := range c.Gates {
		g := &c.Gates[i]
		if len(g.Fanin) > 0 {
			start := len(fa)
			fa = append(fa, g.Fanin...)
			g.Fanin = fa[start:len(fa):len(fa)]
		}
		if len(g.Fanout) > 0 {
			start := len(oa)
			oa = append(oa, g.Fanout...)
			g.Fanout = oa[start:len(oa):len(oa)]
		}
	}
}
