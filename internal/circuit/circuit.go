package circuit

import (
	"fmt"
	"sort"
)

// Circuit is an immutable gate-level network. Build one with a Builder, the
// bench parser, or the netgen package. Gate IDs are indices into Gates.
type Circuit struct {
	Name  string
	Gates []Gate
	// PIs lists primary-input gate IDs in declaration order.
	PIs []int
	// POs lists primary-output gate IDs in declaration order. A PO may also
	// have internal fanout.
	POs []int

	order  []int // cached topological order of all gates
	levels []int // cached level per gate (0 = inputs)
	depth  int   // cached logic depth

	csr    *CSR           // cached struct-of-arrays view (see csr.go)
	byName map[string]int // lazily built name→id index for GateByName
}

// N returns the total number of gates, including inputs.
func (c *Circuit) N() int { return len(c.Gates) }

// NumLogic returns the number of combinational logic gates (the N of the
// paper's "random logic network of N static CMOS gates").
func (c *Circuit) NumLogic() int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].IsLogic() {
			n++
		}
	}
	return n
}

// Gate returns the gate with the given ID. It panics on an out-of-range ID,
// which always indicates a programming error, not bad input.
func (c *Circuit) Gate(id int) *Gate { return &c.Gates[id] }

// IsSequential reports whether the circuit still contains DFF elements.
func (c *Circuit) IsSequential() bool {
	for i := range c.Gates {
		if c.Gates[i].Type == DFF {
			return true
		}
	}
	return false
}

// GateByName returns the gate with the given name, or nil. The name→id index
// is built on first use (the legacy linear scan made every lookup O(n), which
// the interactive tools felt at netgen scale). On a circuit with duplicate
// names — which Validate rejects — the first occurrence wins, matching the
// old scan.
func (c *Circuit) GateByName(name string) *Gate {
	if c.byName == nil {
		idx := make(map[string]int, len(c.Gates))
		for i := range c.Gates {
			if _, dup := idx[c.Gates[i].Name]; !dup {
				idx[c.Gates[i].Name] = i
			}
		}
		c.byName = idx
	}
	if i, ok := c.byName[name]; ok {
		return &c.Gates[i]
	}
	return nil
}

// TopoOrder returns a topological order over all gates (inputs first), the
// level-grouped order of the CSR view. The result is cached and shared; treat
// it as read-only. It fails if the circuit contains a combinational cycle;
// cut DFFs first via Combinational.
func (c *Circuit) TopoOrder() ([]int, error) {
	if c.order != nil {
		return c.order, nil
	}
	s, err := c.CSR()
	if err != nil {
		return nil, err
	}
	order := make([]int, len(s.Order))
	for i, id := range s.Order {
		order[i] = int(id)
	}
	c.order = order
	return order, nil
}

// Levels returns, per gate ID, the length of the longest chain of logic gates
// from any input up to and including that gate. Inputs are level 0; a gate
// fed only by inputs is level 1. The slice is cached; treat as read-only.
func (c *Circuit) Levels() ([]int, error) {
	if c.levels != nil {
		return c.levels, nil
	}
	s, err := c.CSR()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(s.Level))
	for i, l := range s.Level {
		lv[i] = int(l)
	}
	c.levels = lv
	return lv, nil
}

// Depth returns the logic depth: the number of logic gates on the longest
// input-to-output path (the "Depth" column of the paper's Table 1).
func (c *Circuit) Depth() (int, error) {
	if c.depth > 0 {
		return c.depth, nil
	}
	s, err := c.CSR()
	if err != nil {
		return 0, err
	}
	c.depth = s.Depth
	return s.Depth, nil
}

// Validate checks structural invariants: gate IDs match indices, fanin counts
// are legal for each type, fanin/fanout cross-references are consistent, all
// PIs are Input gates, PO IDs are in range, and names are unique.
func (c *Circuit) Validate() error {
	names := make(map[string]int, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.ID != i {
			return fmt.Errorf("gate %q: ID %d does not match index %d", g.Name, g.ID, i)
		}
		if !g.Type.Valid() || g.Type == numGateTypes {
			return fmt.Errorf("gate %q: invalid type %d", g.Name, g.Type)
		}
		if g.Name == "" {
			return fmt.Errorf("gate %d: empty name", i)
		}
		if prev, dup := names[g.Name]; dup {
			return fmt.Errorf("duplicate gate name %q (gates %d and %d)", g.Name, prev, i)
		}
		names[g.Name] = i
		if n := g.NumFanin(); n < g.Type.MinFanin() || (g.Type.MaxFanin() >= 0 && n > g.Type.MaxFanin()) {
			return fmt.Errorf("gate %q: %s with %d fanins", g.Name, g.Type, n)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("gate %q: fanin %d out of range", g.Name, f)
			}
			if !containsID(c.Gates[f].Fanout, i) {
				return fmt.Errorf("gate %q: fanin %q does not list it as fanout", g.Name, c.Gates[f].Name)
			}
		}
		for _, f := range g.Fanout {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("gate %q: fanout %d out of range", g.Name, f)
			}
			if !containsID(c.Gates[f].Fanin, i) {
				return fmt.Errorf("gate %q: fanout %q does not list it as fanin", g.Name, c.Gates[f].Name)
			}
		}
	}
	for _, id := range c.PIs {
		if id < 0 || id >= len(c.Gates) {
			return fmt.Errorf("PI id %d out of range", id)
		}
		if c.Gates[id].Type != Input {
			return fmt.Errorf("PI %q is not an Input gate", c.Gates[id].Name)
		}
	}
	for _, id := range c.POs {
		if id < 0 || id >= len(c.Gates) {
			return fmt.Errorf("PO id %d out of range", id)
		}
	}
	return nil
}

func containsID(s []int, id int) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// Combinational returns a copy of the circuit with every DFF cut: the flop's
// output becomes a pseudo primary input (an Input gate keeping the DFF's
// fanouts) and the flop's driver becomes a pseudo primary output. This is the
// standard register-to-register view under which the paper's cycle-time
// constraint applies. Circuits with no DFFs are returned as a plain copy.
func (c *Circuit) Combinational() (*Circuit, error) {
	nc := &Circuit{
		Name:  c.Name,
		Gates: make([]Gate, len(c.Gates)),
		PIs:   append([]int(nil), c.PIs...),
		POs:   append([]int(nil), c.POs...),
	}
	for i := range c.Gates {
		g := c.Gates[i]
		nc.Gates[i] = Gate{
			ID:     g.ID,
			Name:   g.Name,
			Type:   g.Type,
			Fanin:  append([]int(nil), g.Fanin...),
			Fanout: append([]int(nil), g.Fanout...),
		}
	}
	poSet := make(map[int]bool, len(nc.POs))
	for _, id := range nc.POs {
		poSet[id] = true
	}
	for i := range nc.Gates {
		g := &nc.Gates[i]
		if g.Type != DFF {
			continue
		}
		// The driver becomes a pseudo-PO (its path must settle in a cycle).
		d := g.Fanin[0]
		driver := &nc.Gates[d]
		driver.Fanout = removeID(driver.Fanout, i)
		if !poSet[d] {
			nc.POs = append(nc.POs, d)
			poSet[d] = true
		}
		// The flop output becomes a pseudo-PI feeding its old fanouts.
		g.Type = Input
		g.Fanin = nil
		nc.PIs = append(nc.PIs, i)
		delete(poSet, i) // a DFF listed as PO is no longer a timing endpoint
		if idx := indexOf(nc.POs, i); idx >= 0 {
			nc.POs = append(nc.POs[:idx], nc.POs[idx+1:]...)
		}
	}
	if _, err := nc.TopoOrder(); err != nil {
		return nil, err
	}
	if err := nc.Validate(); err != nil {
		return nil, fmt.Errorf("after DFF cut: %w", err)
	}
	nc.seal()
	return nc, nil
}

func removeID(s []int, id int) []int {
	out := s[:0]
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

func indexOf(s []int, id int) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}

// LogicIDs returns the IDs of all logic gates in topological order.
func (c *Circuit) LogicIDs() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	ids := make([]int, 0, len(order))
	for _, id := range order {
		if c.Gates[id].IsLogic() {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// SortedNames returns all gate names sorted, mainly for deterministic output.
func (c *Circuit) SortedNames() []string {
	names := make([]string, len(c.Gates))
	for i := range c.Gates {
		names[i] = c.Gates[i].Name
	}
	sort.Strings(names)
	return names
}
