package circuit

import (
	"strings"
	"testing"
)

// FuzzParseBench drives the netlist parser with arbitrary text: it must
// never panic, and anything it accepts must be a structurally valid circuit
// that survives a write/re-parse round trip.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		c17Bench,
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		"INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n",
		"# only a comment\n",
		"INPUT(a)\ny = NAND(a, a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
		"INPUT(a)\ny = NOT(\n",
		"garbage = = (((\n",
		"INPUT(é)\nOUTPUT(z)\nz = BUFF(é)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBenchString("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput: %q", verr, src)
		}
		// Accepted netlists round-trip (up to renumbering).
		out := BenchString(c)
		back, err := ParseBenchString("fuzz", out)
		if err != nil {
			t.Fatalf("round trip failed: %v\nwritten: %q", err, out)
		}
		if back.N() != c.N() {
			t.Fatalf("round trip changed gate count: %d vs %d", back.N(), c.N())
		}
	})
}

// FuzzBuilderNames stresses gate naming through the builder path.
func FuzzBuilderNames(f *testing.F) {
	f.Add("a", "g")
	f.Add("weird name", "ok")
	f.Add("", "x")
	f.Fuzz(func(t *testing.T, inName, gateName string) {
		b := NewBuilder("fz")
		in := b.Input(inName)
		g := b.Gate(Not, gateName, in)
		b.Output(g)
		c, err := b.Build()
		if err != nil {
			return
		}
		if strings.TrimSpace(inName) == "" && inName == "" {
			t.Fatal("empty input name accepted")
		}
		if c.GateByName(gateName) == nil {
			t.Fatalf("gate %q lost", gateName)
		}
	})
}

// FuzzParseVerilog mirrors FuzzParseBench for the Verilog frontend.
func FuzzParseVerilog(f *testing.F) {
	seeds := []string{
		"module t (a, y);\ninput a;\noutput y;\nnot u1 (y, a);\nendmodule\n",
		"module t (a);\ninput a;\nendmodule\n",
		"module t (a, y);\ninput a;\noutput y;\nfrob u1 (y, a);\nendmodule\n",
		"// nothing\n",
		"module m (x); /* unterminated",
		"module t (a, q);\ninput a;\noutput q;\ndff u1 (q, a);\nendmodule\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseVerilogString("fuzz", src)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput: %q", verr, src)
		}
	})
}
