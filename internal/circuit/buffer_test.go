package circuit

import (
	"math/rand"
	"testing"
)

// star builds one driver fanning out to n NOT sinks (each a PO).
func star(t *testing.T, n int) *Circuit {
	t.Helper()
	b := NewBuilder("star")
	in := b.Input("in")
	hub := b.Gate(Not, "hub", in)
	for i := 0; i < n; i++ {
		s := b.Gate(Not, "s"+itoa(i), hub)
		b.Output(s)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInsertBuffersCapsFanout(t *testing.T) {
	c := star(t, 17)
	nc, bufs, err := InsertBuffers(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bufs == 0 {
		t.Fatal("no buffers inserted")
	}
	if err := nc.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range nc.Gates {
		g := &nc.Gates[i]
		if g.NumFanout() > 4 {
			t.Errorf("gate %q fanout %d exceeds cap", g.Name, g.NumFanout())
		}
	}
	if nc.NumLogic() != c.NumLogic()+bufs {
		t.Errorf("gate count %d, want %d + %d buffers", nc.NumLogic(), c.NumLogic(), bufs)
	}
}

func TestInsertBuffersDeepTree(t *testing.T) {
	// Fanout 40 with cap 3 requires multiple tree levels (3² = 9 < 40).
	c := star(t, 40)
	nc, _, err := InsertBuffers(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nc.Gates {
		if n := nc.Gates[i].NumFanout(); n > 3 {
			t.Fatalf("gate %q fanout %d", nc.Gates[i].Name, n)
		}
	}
	if _, err := nc.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuffersNoOpBelowCap(t *testing.T) {
	c := star(t, 3)
	nc, bufs, err := InsertBuffers(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bufs != 0 || nc.NumLogic() != c.NumLogic() {
		t.Errorf("buffered a compliant circuit: %d buffers", bufs)
	}
}

func TestInsertBuffersPreservesFunction(t *testing.T) {
	// Random reconvergent circuit: outputs must match gate-for-gate on
	// random input vectors before and after buffering.
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder("fn")
	var ids []int
	for i := 0; i < 5; i++ {
		ids = append(ids, b.Input("in"+itoa(i)))
	}
	for i := 0; i < 40; i++ {
		x := ids[rng.Intn(len(ids))]
		y := ids[rng.Intn(len(ids))]
		for y == x {
			y = ids[rng.Intn(len(ids))]
		}
		types := []GateType{And, Or, Nand, Nor, Xor}
		ids = append(ids, b.Gate(types[rng.Intn(len(types))], "g"+itoa(i), x, y))
	}
	b.Output(ids[len(ids)-1])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc, _, err := InsertBuffers(c, 2)
	if err != nil {
		t.Fatal(err)
	}

	evalByName := func(ct *Circuit, inputs map[string]bool) map[string]bool {
		order, err := ct.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		val := make([]bool, ct.N())
		for _, id := range order {
			g := ct.Gate(id)
			if g.Type == Input {
				val[id] = inputs[g.Name]
				continue
			}
			v := false
			switch g.Type {
			case Buf:
				v = val[g.Fanin[0]]
			case Not:
				v = !val[g.Fanin[0]]
			case And, Nand:
				v = true
				for _, f := range g.Fanin {
					v = v && val[f]
				}
				if g.Type == Nand {
					v = !v
				}
			case Or, Nor:
				for _, f := range g.Fanin {
					v = v || val[f]
				}
				if g.Type == Nor {
					v = !v
				}
			case Xor, Xnor:
				for _, f := range g.Fanin {
					v = v != val[f]
				}
				if g.Type == Xnor {
					v = !v
				}
			}
			val[id] = v
		}
		out := map[string]bool{}
		for _, po := range ct.POs {
			out[ct.Gate(po).Name] = val[po]
		}
		return out
	}

	for trial := 0; trial < 64; trial++ {
		inputs := map[string]bool{}
		for i := 0; i < 5; i++ {
			inputs["in"+itoa(i)] = rng.Intn(2) == 1
		}
		want := evalByName(c, inputs)
		got := evalByName(nc, inputs)
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("trial %d: output %s = %v, want %v", trial, name, got[name], w)
			}
		}
	}
}

func TestInsertBuffersRejects(t *testing.T) {
	c := star(t, 5)
	if _, _, err := InsertBuffers(c, 1); err == nil {
		t.Error("maxFanout=1 accepted")
	}
	seq, _ := ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if _, _, err := InsertBuffers(seq, 4); err == nil {
		t.Error("sequential circuit accepted")
	}
}

func TestPruneDead(t *testing.T) {
	// y reaches the PO; d1/d2 form a dead cone.
	b := NewBuilder("dead")
	a := b.Input("a")
	y := b.Gate(Not, "y", a)
	d1 := b.Gate(Not, "d1", a)
	b.Gate(Not, "d2", d1)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc, removed, err := PruneDead(c)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if nc.GateByName("d1") != nil || nc.GateByName("d2") != nil {
		t.Error("dead gates survived")
	}
	if nc.GateByName("y") == nil {
		t.Error("live gate removed")
	}
	if len(nc.PIs) != 1 {
		t.Error("input interface changed")
	}
	if err := nc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneDeadNoOpOnCleanCircuit(t *testing.T) {
	c := star(t, 4)
	nc, removed, err := PruneDead(c)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || nc.NumLogic() != c.NumLogic() {
		t.Errorf("clean circuit pruned: removed=%d", removed)
	}
}

func TestPruneDeadSequentialRejected(t *testing.T) {
	seq, _ := ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\nd = NOT(a)\n")
	// The raw sequential graph may be cyclic in general; here it is acyclic,
	// so pruning works and removes the dangling NOT.
	nc, removed, err := PruneDead(seq)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1 (the dangling NOT)", removed)
	}
	if !nc.IsSequential() {
		t.Error("live DFF removed")
	}
}
