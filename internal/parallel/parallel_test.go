package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		const n = 137
		var hits [n]atomic.Int64
		For(w, n, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", w, i, got)
			}
		}
	}
}

func TestForWorkerIndexInRange(t *testing.T) {
	const w, n = 4, 100
	var bad atomic.Int64
	For(w, n, func(wk, _ int) {
		if wk < 0 || wk >= w {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d iterations saw an out-of-range worker index", bad.Load())
	}
}

func TestForSerialRunsInline(t *testing.T) {
	// workers = 1 must not spawn goroutines: body observes a strict 0..n-1
	// iteration order on the calling goroutine.
	want := 0
	For(1, 25, func(wk, i int) {
		if wk != 0 || i != want {
			t.Fatalf("serial For out of order: worker %d, i %d, want 0, %d", wk, i, want)
		}
		want++
	})
}

func TestMapOrderedResults(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		out := Map(w, 50, func(_, i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

func TestFirstErrorLowestIndexWins(t *testing.T) {
	errAt := func(bad map[int]error) func(int, int) error {
		return func(_, i int) error { return bad[i] }
	}
	e3, e7 := errors.New("three"), errors.New("seven")
	for _, w := range []int{1, 4} {
		if err := FirstError(w, 10, errAt(map[int]error{7: e7, 3: e3})); err != e3 {
			t.Errorf("workers=%d: got %v, want %v", w, err, e3)
		}
		if err := FirstError(w, 10, errAt(nil)); err != nil {
			t.Errorf("workers=%d: got %v, want nil", w, err)
		}
	}
}

func TestPoolSizeAndIndices(t *testing.T) {
	states := Pool(3, func(wk int) string { return fmt.Sprintf("s%d", wk) })
	if len(states) != 3 || states[0] != "s0" || states[2] != "s2" {
		t.Errorf("Pool(3) = %v", states)
	}
	if got := len(Pool(0, func(int) int { return 0 })); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Pool(0) made %d states", got)
	}
}

func TestPoolStatesAreExclusivePerWorker(t *testing.T) {
	// The canonical usage under -race: each worker mutates only its own state.
	type scratch struct{ sum int }
	const w, n = 4, 200
	states := Pool(w, func(int) *scratch { return &scratch{} })
	For(w, n, func(wk, i int) { states[wk].sum += i })
	total := 0
	for _, s := range states {
		total += s.sum
	}
	if want := n * (n - 1) / 2; total != want {
		t.Errorf("per-worker sums total %d, want %d", total, want)
	}
}
