// Package parallel is the worker-pool layer under every grid, sweep and
// Monte-Carlo driver: independent iterations fan out over a fixed set of
// goroutines, results land in their input slots, and reductions stay with the
// caller — so output bytes never depend on the worker count or on goroutine
// scheduling.
//
// The contract every helper follows:
//
//   - iterations are dynamically scheduled (an atomic cursor), so uneven
//     per-item cost does not idle workers;
//   - each iteration writes only state indexed by its own iteration number
//     (Map) or owned exclusively by its worker (the `worker` argument indexes
//     per-worker engine clones made with Pool), never shared scratch;
//   - workers ≤ 0 means runtime.GOMAXPROCS(0); workers == 1 (or n ≤ 1) runs
//     inline on the calling goroutine with worker index 0, so the serial path
//     is the parallel path with one worker, not separate code.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cmosopt/internal/obs"
)

// Workers normalizes a worker-count knob: values below 1 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs body(worker, i) for every i in [0, n), distributing iterations
// over up to `workers` goroutines (0 = GOMAXPROCS) and blocking until all
// complete. The worker index identifies the goroutine (0 ≤ worker < number
// of workers actually started), so callers can give each worker exclusive
// mutable state — an engine clone, a scratch assignment — via Pool.
func For(workers, n int, body func(worker, i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	// Pool utilization recording goes to the process-default registry when one
	// is installed (command-line tools with -metrics; nil otherwise). It is
	// write-only — scheduling is the same atomic cursor either way, so results
	// cannot depend on whether recording is on.
	reg := obs.Default()
	if w <= 1 {
		if reg == nil {
			for i := 0; i < n; i++ {
				body(0, i)
			}
			return
		}
		t0 := time.Now() //cmosvet:allow determinism — lane utilization feeds obs only; scheduling is unchanged
		for i := 0; i < n; i++ {
			body(0, i)
		}
		//cmosvet:allow determinism — lane utilization feeds obs only; scheduling is unchanged
		d := time.Since(t0)
		reg.Worker(0).Record(d, 0, int64(n))
		recordPool(reg, n, d)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	t0 := time.Now() //cmosvet:allow determinism — pool wall time feeds obs only; scheduling is unchanged
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			if reg == nil {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					body(wk, i)
				}
			}
			// Instrumented lane: busy is time inside iteration bodies; idle is
			// the rest of the lane's lifetime — spawn latency, cursor
			// contention and scheduling gaps (workers never block waiting for
			// items, so there is no queue-wait component).
			lane := time.Now() //cmosvet:allow determinism — lane utilization feeds obs only; scheduling is unchanged
			var busy time.Duration
			iters := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				it := time.Now() //cmosvet:allow determinism — iteration timing feeds obs only
				body(wk, i)
				//cmosvet:allow determinism — iteration timing feeds obs only
				busy += time.Since(it)
				iters++
			}
			//cmosvet:allow determinism — lane utilization feeds obs only; scheduling is unchanged
			reg.Worker(wk).Record(busy, time.Since(lane)-busy, iters)
		}(wk)
	}
	wg.Wait()
	if reg != nil {
		//cmosvet:allow determinism — pool wall time feeds obs only; scheduling is unchanged
		recordPool(reg, n, time.Since(t0))
	}
}

// recordPool records one pool drain: how many items it dispatched and how
// long the whole drain took wall-clock.
func recordPool(reg *obs.Registry, n int, wall time.Duration) {
	reg.Counter("parallel.pools").Add(1)
	reg.Counter("parallel.iterations").Add(int64(n))
	reg.Histogram("parallel.pool_items").Observe(int64(n))
	reg.Histogram("parallel.pool_wall_ns").ObserveDuration(wall)
}

// Map runs fn for every i in [0, n) over up to `workers` goroutines and
// returns the results in iteration order, regardless of scheduling.
func Map[T any](workers, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(wk, i int) {
		out[i] = fn(wk, i)
	})
	return out
}

// FirstError runs body for every i in [0, n) and returns the error of the
// lowest failing iteration index, or nil. All iterations run to completion
// (an error does not cancel the rest), matching what a serial loop that
// collects per-slot errors and reports the first one would produce.
func FirstError(workers, n int, body func(worker, i int) error) error {
	for _, err := range Map(workers, n, func(wk, i int) error { return body(wk, i) }) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pool builds one state per worker — typically an evaluation-engine clone
// plus scratch buffers — for use as `states[worker]` inside a For/Map body.
// The worker count is normalized with Workers; mk runs on the calling
// goroutine, so it may touch state that is not yet safe to share.
func Pool[S any](workers int, mk func(worker int) S) []S {
	out := make([]S, Workers(workers))
	for i := range out {
		out[i] = mk(i)
	}
	return out
}
