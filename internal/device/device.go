// Package device models the MOSFET technology the optimizer designs against.
//
// The drain current uses a single smooth "transregional" expression that
// reduces to the Sakurai–Newton α-power law above threshold and to an
// exponential subthreshold law below it (the paper's Appendix A.2 requirement
// that the delay model be accurate for both V_dd > V_TS and V_dd ≤ V_TS):
//
//	g(V)  = n·vT · ln(1 + exp((V − V_TS)/(n·vT)))   (smoothed overdrive)
//	I_D   = K · g(V_GS)^α                            (per unit-width device)
//	I_off = I_D(V_GS = 0) + I_junc
//
// g(V) → (V − V_TS) for V ≫ V_TS (α-power law) and → n·vT·exp((V−V_TS)/(n·vT))
// for V ≪ V_TS, giving a subthreshold swing of n·vT·ln10/α volts per decade.
// The expression is continuous and strictly monotone in both V_GS and V_TS —
// the property Procedure 2's directional bisection relies on.
//
// All per-device quantities are normalized to a device of one unit of
// feature-size width (the paper's w_i = 1); gate-level models scale them by
// the width multiplier.
package device

import (
	"fmt"
	"math"
)

// Tech aggregates every technology parameter of the device, capacitance and
// range model. Construct one with Default350 and override fields as needed,
// then call Validate.
type Tech struct {
	Name string

	// Device model.
	F      float64 // minimum feature size (m) //cmosvet:unit m
	Alpha  float64 // α-power-law velocity-saturation exponent //cmosvet:unit 1
	N      float64 // subthreshold ideality factor of the smooth model //cmosvet:unit 1
	VTherm float64 // thermal voltage kT/q (V) //cmosvet:unit V
	KSat   float64 // drive factor: I_D = KSat·g^α for a unit-width device (A/V^α) //cmosvet:unit A/V^a
	IJunc  float64 // drain-junction leakage of a unit-width device (A) //cmosvet:unit A
	// LeakStack is the effective number of unit-width off devices leaking
	// per gate width unit: a static CMOS gate leaks through its whole
	// pull-up or pull-down network (with the β-wider PMOS side), not one
	// minimum device. It scales I_off only.
	LeakStack float64 //cmosvet:unit 1

	// Capacitances, per unit-width device.
	Ct  float64 // gate-input capacitance C_t (F) //cmosvet:unit F
	CPD float64 // output parasitic (overlap+junction+fringing) C_PD (F) //cmosvet:unit F
	Cmi float64 // intermediate-node capacitance of series stacks C_mi (F) //cmosvet:unit F

	// Module-level loads.
	COut float64 // external load seen by each primary output (F) //cmosvet:unit F
	Beta float64 // PMOS/NMOS width ratio (documentation/energy bookkeeping) //cmosvet:unit 1

	// Optimization ranges (the paper's Procedure 2 ranges).
	VddMin, VddMax float64 // supply range (V) //cmosvet:unit V
	VtsMin, VtsMax float64 // threshold range (V) //cmosvet:unit V
	WMin, WMax     float64 // width multiplier range //cmosvet:unit 1
}

// Default350 returns a parameter set representative of a 1997-era 0.35 µm
// CMOS process at hot-chip junction temperature: a unit-width (one feature
// size, 0.35 µm) device drives ≈60 µA at V_dd = 3.3 V, V_TS = 0.7 V
// (≈170 µA/µm) with a gate off-current of ≈11 pA and a subthreshold swing of
// ≈124 mV/decade. α = 1.05 reflects the strongly velocity-saturated /
// quasi-ballistic transport the paper's delay model incorporates — the
// property that makes supply scaling nearly delay-free and enables the
// paper's low-V_dd optima. The drive/capacitance balance is calibrated so
// the benchmark suite is just feasible at 300 MHz with V_t = 0.7 V near
// V_dd = 3.3 V, matching the operating regime of the paper's Table 1; see
// DESIGN.md §2.
func Default350() Tech {
	return Tech{
		Name:      "generic-0.35um",
		F:         0.35e-6,
		Alpha:     1.05,
		N:         1.76,  // with VTherm below: ≈125 mV/dec at hot-chip temperature
		VTherm:    0.032, // kT/q at ≈100 °C junction temperature
		KSat:      3.2e-5,
		IJunc:     1.0e-17,
		LeakStack: 5.0,
		Ct:        1.5e-15,
		CPD:       0.8e-15,
		Cmi:       0.4e-15,
		COut:      6.0e-15,
		Beta:      2.0,
		VddMin:    0.1, VddMax: 3.3,
		VtsMin: 0.1, VtsMax: 0.7,
		WMin: 1, WMax: 100,
	}
}

// Default250 returns a parameter set for the next scaling node (0.25 µm,
// V_dd,max = 2.5 V): feature size and capacitances scale by ~0.7×, drive per
// unit width improves slightly, and the junction leakage floor doubles —
// the standard constant-field scaling picture. Useful for cross-node
// studies with the process-design mode (the paper's §1 application of the
// optimizer to technology definition).
func Default250() Tech {
	t := Default350()
	t.Name = "generic-0.25um"
	t.F = 0.25e-6
	t.KSat = 3.8e-5 // slightly better velocity-saturated drive per width unit
	t.IJunc = 2.0e-17
	t.Ct = 1.05e-15 // ~0.7x of the 0.35 µm values
	t.CPD = 0.56e-15
	t.Cmi = 0.28e-15
	t.COut = 4.2e-15
	t.VddMax = 2.5
	t.VtsMax = 0.6
	return t
}

// Validate checks the parameter set for physical plausibility.
func (t *Tech) Validate() error {
	pos := []struct {
		v    float64
		name string
	}{
		{t.F, "F"}, {t.Alpha, "Alpha"}, {t.N, "N"}, {t.VTherm, "VTherm"},
		{t.KSat, "KSat"}, {t.Ct, "Ct"}, {t.CPD, "CPD"}, {t.Beta, "Beta"},
	}
	pos = append(pos, struct {
		v    float64
		name string
	}{t.LeakStack, "LeakStack"})
	for _, p := range pos {
		if p.v <= 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("device: %s = %v must be positive and finite", p.name, p.v)
		}
	}
	if t.IJunc < 0 || t.Cmi < 0 || t.COut < 0 {
		return fmt.Errorf("device: IJunc, Cmi, COut must be non-negative")
	}
	if t.Alpha < 1 || t.Alpha > 2 {
		return fmt.Errorf("device: Alpha = %v outside the physical range [1,2]", t.Alpha)
	}
	if !(t.VddMin > 0 && t.VddMin < t.VddMax) {
		return fmt.Errorf("device: bad Vdd range [%v,%v]", t.VddMin, t.VddMax)
	}
	if !(t.VtsMin > 0 && t.VtsMin < t.VtsMax) {
		return fmt.Errorf("device: bad Vts range [%v,%v]", t.VtsMin, t.VtsMax)
	}
	if !(t.WMin >= 1 && t.WMin < t.WMax) {
		return fmt.Errorf("device: bad width range [%v,%v]", t.WMin, t.WMax)
	}
	return nil
}

// ReferenceTempK is the junction temperature the default parameter sets are
// calibrated at (≈100 °C hot chip).
const ReferenceTempK = 373.0 //cmosvet:unit K

// leakDoublingK is the temperature step over which junction leakage roughly
// doubles.
const leakDoublingK = 10.0 //cmosvet:unit K

// AtTemperature returns a copy of the technology re-parameterized for a
// different junction temperature (kelvin):
//
//   - the thermal voltage scales linearly (vT = kT/q), which moves the
//     subthreshold swing and, exponentially, the leakage;
//   - carrier mobility falls as (T/T_ref)^-1.5, scaling the drive factor;
//   - the junction leakage roughly doubles every 10 K.
//
// Cooling a design therefore cuts leakage dramatically while slightly
// improving drive — which is why the energy-optimal threshold drops with
// temperature (see core's temperature study).
//
//cmosvet:unit tempK K
func (t Tech) AtTemperature(tempK float64) (Tech, error) {
	if tempK < 200 || tempK > 500 {
		return t, fmt.Errorf("device: temperature %v K outside the model's [200,500] range", tempK)
	}
	out := t
	ratio := tempK / ReferenceTempK
	out.VTherm = t.VTherm * ratio
	out.KSat = t.KSat * math.Pow(ratio, -1.5)
	out.IJunc = t.IJunc * math.Pow(2, (tempK-ReferenceTempK)/leakDoublingK)
	out.Name = fmt.Sprintf("%s@%.0fK", t.Name, tempK)
	return out, nil
}

// Overdrive returns the smoothed overdrive g(V) in volts.
//
//cmosvet:unit vgs V
//cmosvet:unit vts V
//cmosvet:unit return V
func (t *Tech) Overdrive(vgs, vts float64) float64 {
	nvt := t.N * t.VTherm
	x := (vgs - vts) / nvt
	// ln(1+e^x) computed stably on both tails.
	switch {
	case x > 40:
		return nvt * x
	case x < -40:
		return nvt * math.Exp(x)
	default:
		return nvt * math.Log1p(math.Exp(x))
	}
}

// IdUnit returns the saturation drain current of a unit-width device at the
// given gate drive and threshold (A).
//
//cmosvet:unit vgs V
//cmosvet:unit vts V
//cmosvet:unit return A
func (t *Tech) IdUnit(vgs, vts float64) float64 {
	return t.KSat * math.Pow(t.Overdrive(vgs, vts), t.Alpha)
}

// IoffUnit returns the off-state leakage per unit of gate width: the
// subthreshold channel current at V_GS = 0 plus drain-junction leakage,
// scaled by the gate's effective number of leaking stacks (LeakStack).
//
//cmosvet:unit vts V
//cmosvet:unit return A
func (t *Tech) IoffUnit(vts float64) float64 {
	return t.LeakStack * (t.IdUnit(0, vts) + t.IJunc)
}

// SubthresholdSwing returns the model's subthreshold swing in volts per
// current decade: n·vT·ln10/α.
//
//cmosvet:unit return V
func (t *Tech) SubthresholdSwing() float64 {
	return t.N * t.VTherm * math.Ln10 / t.Alpha
}

// Corner describes a worst-case threshold-voltage process corner pair used by
// the variation study of the paper's Figure 2(a).
type Corner struct {
	Low  float64 // fast/leaky corner: V_TS·(1 − tol) //cmosvet:unit V
	High float64 // slow corner:       V_TS·(1 + tol) //cmosvet:unit V
}

// Corners returns the ±tol fractional corners of a nominal threshold,
// clamped to stay positive. tol = 0.1 means ±10 %.
//
//cmosvet:unit vtsNominal V
//cmosvet:unit tol 1
func Corners(vtsNominal, tol float64) Corner {
	lo := vtsNominal * (1 - tol)
	if lo < 0 {
		lo = 0
	}
	return Corner{Low: lo, High: vtsNominal * (1 + tol)}
}
