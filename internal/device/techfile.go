package device

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Technology parameter files are plain "key = value" text with '#' comments,
// so a user can run the optimizer against their own process without
// recompiling:
//
//	# my 0.25um process
//	name   = my-0.25um
//	f      = 0.25e-6
//	alpha  = 1.2
//	ksat   = 4.0e-5
//	...
//
// Unknown keys are rejected (they are almost always typos); omitted keys
// keep the value of the Tech the file is applied onto (start from
// Default350 for sensible fallbacks).

// techFields maps file keys to accessors, keeping parsing explicit.
var techFields = map[string]func(*Tech) *float64{
	"f":         func(t *Tech) *float64 { return &t.F },
	"alpha":     func(t *Tech) *float64 { return &t.Alpha },
	"n":         func(t *Tech) *float64 { return &t.N },
	"vtherm":    func(t *Tech) *float64 { return &t.VTherm },
	"ksat":      func(t *Tech) *float64 { return &t.KSat },
	"ijunc":     func(t *Tech) *float64 { return &t.IJunc },
	"leakstack": func(t *Tech) *float64 { return &t.LeakStack },
	"ct":        func(t *Tech) *float64 { return &t.Ct },
	"cpd":       func(t *Tech) *float64 { return &t.CPD },
	"cmi":       func(t *Tech) *float64 { return &t.Cmi },
	"cout":      func(t *Tech) *float64 { return &t.COut },
	"beta":      func(t *Tech) *float64 { return &t.Beta },
	"vddmin":    func(t *Tech) *float64 { return &t.VddMin },
	"vddmax":    func(t *Tech) *float64 { return &t.VddMax },
	"vtsmin":    func(t *Tech) *float64 { return &t.VtsMin },
	"vtsmax":    func(t *Tech) *float64 { return &t.VtsMax },
	"wmin":      func(t *Tech) *float64 { return &t.WMin },
	"wmax":      func(t *Tech) *float64 { return &t.WMax },
}

// ParseTech reads parameter overrides into a copy of base and validates the
// result.
func ParseTech(base Tech, r io.Reader) (Tech, error) {
	t := base
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return t, fmt.Errorf("device: tech file line %d: expected key = value, got %q", lineNo, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if key == "name" {
			t.Name = val
			continue
		}
		field, known := techFields[key]
		if !known {
			return t, fmt.Errorf("device: tech file line %d: unknown parameter %q (have name, %s)",
				lineNo, key, strings.Join(techKeys(), ", "))
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return t, fmt.Errorf("device: tech file line %d: bad value %q for %s: %v", lineNo, val, key, err)
		}
		*field(&t) = x
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	if err := t.Validate(); err != nil {
		return t, fmt.Errorf("device: tech file: %w", err)
	}
	return t, nil
}

// WriteTech writes the full parameter set in the file format; the output
// round-trips through ParseTech.
func WriteTech(w io.Writer, t Tech) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s technology parameters\n", t.Name)
	fmt.Fprintf(bw, "name = %s\n", t.Name)
	for _, key := range techKeys() {
		fmt.Fprintf(bw, "%s = %g\n", key, *techFields[key](&t))
	}
	return bw.Flush()
}

func techKeys() []string {
	keys := make([]string, 0, len(techFields))
	for k := range techFields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
