package device_test

import (
	"fmt"

	"cmosopt/internal/device"
)

func ExampleTech_IoffUnit() {
	tech := device.Default350()
	// Leakage grows by ~10x per subthreshold swing of threshold reduction.
	hi := tech.IoffUnit(0.7)
	lo := tech.IoffUnit(0.15)
	fmt.Printf("Ioff grows %.0fx going from Vt=0.7 to Vt=0.15\n", lo/hi)
	// Output: Ioff grows 27401x going from Vt=0.7 to Vt=0.15
}

func ExampleBodyBias_BiasFor() {
	// Figure 1's flow: realize a 150 mV threshold from a 100 mV natural
	// device with a static reverse substrate bias.
	bb := device.DefaultBodyBias()
	vsb, err := bb.BiasFor(0.15, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("reverse bias %.0f mV\n", vsb*1e3)
	// Output: reverse bias 192 mV
}
