package device

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTechOverrides(t *testing.T) {
	src := `
# a faster process
name = test-proc
ksat = 5e-5
alpha = 1.2
`
	tc, err := ParseTech(Default350(), strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tc.Name != "test-proc" || tc.KSat != 5e-5 || tc.Alpha != 1.2 {
		t.Errorf("overrides lost: %+v", tc)
	}
	// Untouched fields keep the base values.
	if tc.Ct != Default350().Ct {
		t.Errorf("Ct changed to %v", tc.Ct)
	}
}

func TestParseTechRejects(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown key", "frobnicate = 3\n", "unknown parameter"},
		{"bad value", "ksat = banana\n", "bad value"},
		{"no equals", "just words\n", "expected key = value"},
		{"invalid result", "alpha = 9\n", "Alpha"},
	}
	for _, tc := range cases {
		_, err := ParseTech(Default350(), strings.NewReader(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestTechRoundTrip(t *testing.T) {
	orig := Default350()
	orig.KSat = 3.14e-5
	var buf bytes.Buffer
	if err := WriteTech(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTech(Tech{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed tech:\n%+v\nvs\n%+v", back, orig)
	}
}

func TestParseTechCaseInsensitiveKeys(t *testing.T) {
	tc, err := ParseTech(Default350(), strings.NewReader("KSat = 4e-5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tc.KSat != 4e-5 {
		t.Errorf("KSat = %v", tc.KSat)
	}
}
