package device

import (
	"fmt"
	"math"
)

// The paper's Figure 1 proposes realizing the optimized threshold voltages
// without new implant masks: start from low-V_t "natural" devices (the
// threshold-adjust implant step is eliminated) and apply a static reverse
// bias to the p-substrate and the n-well to raise each device type's
// threshold to the optimizer's value. This file models that mapping through
// the standard body effect:
//
//	V_t(V_SB) = V_t0 + γ·(√(2φ_F + V_SB) − √(2φ_F))
//
// with γ the body-effect coefficient and 2φ_F the surface potential.

// BodyBias describes the natural-device parameters needed to translate a
// target threshold into a tub bias.
type BodyBias struct {
	Vt0   float64 // natural (zero-bias) threshold voltage //cmosvet:unit V
	Gamma float64 // body-effect coefficient γ //cmosvet:unit V^1:2
	Phi2F float64 // surface potential 2φ_F //cmosvet:unit V
}

// DefaultBodyBias returns natural-device parameters for the 0.35 µm flow of
// Figure 1: a 100 mV natural threshold with a typical bulk body effect.
func DefaultBodyBias() BodyBias {
	return BodyBias{Vt0: 0.10, Gamma: 0.45, Phi2F: 0.65}
}

// Validate checks physical plausibility.
func (b BodyBias) Validate() error {
	switch {
	case b.Gamma <= 0 || math.IsNaN(b.Gamma):
		return fmt.Errorf("device: body-effect gamma %v must be positive", b.Gamma)
	case b.Phi2F <= 0 || math.IsNaN(b.Phi2F):
		return fmt.Errorf("device: surface potential %v must be positive", b.Phi2F)
	case math.IsNaN(b.Vt0):
		return fmt.Errorf("device: natural threshold is NaN")
	}
	return nil
}

// Vt returns the threshold at a reverse source-to-body bias V_SB ≥ 0.
//
//cmosvet:unit vsb V
//cmosvet:unit return V
func (b BodyBias) Vt(vsb float64) float64 {
	if vsb < 0 {
		vsb = 0
	}
	return b.Vt0 + b.Gamma*(math.Sqrt(b.Phi2F+vsb)-math.Sqrt(b.Phi2F))
}

// MaxVt returns the threshold reachable at the given maximum reverse bias.
//
//cmosvet:unit vsbMax V
//cmosvet:unit return V
func (b BodyBias) MaxVt(vsbMax float64) float64 { return b.Vt(vsbMax) }

// BiasFor inverts the body-effect relation: the reverse bias that realizes
// the target threshold. It fails for targets below the natural threshold
// (forward body bias is outside the paper's static scheme) or beyond the
// practical bias limit vsbMax.
//
//cmosvet:unit vtTarget V
//cmosvet:unit vsbMax V
//cmosvet:unit return V
func (b BodyBias) BiasFor(vtTarget, vsbMax float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if vtTarget < b.Vt0-1e-12 {
		return 0, fmt.Errorf("device: target Vt %v below natural threshold %v (forward bias not supported)", vtTarget, b.Vt0)
	}
	// Invert Vt = Vt0 + γ(√(2φF+Vsb) − √(2φF)) analytically.
	root := (vtTarget-b.Vt0)/b.Gamma + math.Sqrt(b.Phi2F)
	vsb := root*root - b.Phi2F
	if vsb < 0 {
		vsb = 0
	}
	if vsb > vsbMax+1e-12 {
		return vsb, fmt.Errorf("device: target Vt %v needs %.3g V reverse bias, beyond the %.3g V limit",
			vtTarget, vsb, vsbMax)
	}
	return vsb, nil
}

// TubBiases is the static bias plan of Figure 1 for a module: the reverse
// bias applied to the p-substrate (raising NMOS V_t) and to the n-well
// (raising PMOS |V_t|), one pair per distinct threshold group.
type TubBiases struct {
	VSubstrate []float64 // per threshold group, below ground //cmosvet:unit V
	VNWell     []float64 // per threshold group, above V_dd //cmosvet:unit V
}

// PlanTubBiases maps a set of optimized threshold values to the substrate
// and n-well biases of Figure 1, assuming symmetric NMOS/PMOS natural
// devices (the paper treats both thresholds as equal in magnitude). Each
// additional distinct threshold needs its own tub, which is the "migration
// to a triple-tub process" cost the paper notes for n_v > 1.
//
//cmosvet:unit vts V
//cmosvet:unit vsbMax V
func PlanTubBiases(nmos, pmos BodyBias, vts []float64, vsbMax float64) (*TubBiases, error) {
	if len(vts) == 0 {
		return nil, fmt.Errorf("device: no threshold values to plan biases for")
	}
	out := &TubBiases{
		VSubstrate: make([]float64, len(vts)),
		VNWell:     make([]float64, len(vts)),
	}
	for i, vt := range vts {
		vsb, err := nmos.BiasFor(vt, vsbMax)
		if err != nil {
			return nil, fmt.Errorf("threshold group %d (NMOS): %w", i, err)
		}
		out.VSubstrate[i] = vsb
		vnw, err := pmos.BiasFor(vt, vsbMax)
		if err != nil {
			return nil, fmt.Errorf("threshold group %d (PMOS): %w", i, err)
		}
		out.VNWell[i] = vnw
	}
	return out, nil
}
