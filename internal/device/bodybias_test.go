package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBodyBiasValidate(t *testing.T) {
	if err := DefaultBodyBias().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BodyBias{
		{Vt0: 0.1, Gamma: 0, Phi2F: 0.65},
		{Vt0: 0.1, Gamma: 0.45, Phi2F: 0},
		{Vt0: math.NaN(), Gamma: 0.45, Phi2F: 0.65},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVtZeroBiasIsNatural(t *testing.T) {
	b := DefaultBodyBias()
	if got := b.Vt(0); math.Abs(got-b.Vt0) > 1e-12 {
		t.Errorf("Vt(0) = %v, want %v", got, b.Vt0)
	}
	// Negative (forward) bias clamps to the natural threshold.
	if got := b.Vt(-0.5); math.Abs(got-b.Vt0) > 1e-12 {
		t.Errorf("Vt(-0.5) = %v, want %v", got, b.Vt0)
	}
}

func TestVtMonotoneInBias(t *testing.T) {
	b := DefaultBodyBias()
	prev := b.Vt(0)
	for vsb := 0.1; vsb <= 3.0; vsb += 0.1 {
		cur := b.Vt(vsb)
		if cur <= prev {
			t.Fatalf("Vt not increasing at vsb=%v", vsb)
		}
		prev = cur
	}
}

func TestBiasForRoundTrip(t *testing.T) {
	b := DefaultBodyBias()
	f := func(raw float64) bool {
		target := b.Vt0 + math.Mod(math.Abs(raw), 0.35)
		vsb, err := b.BiasFor(target, 10)
		if err != nil {
			return false
		}
		return math.Abs(b.Vt(vsb)-target) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBiasForRejects(t *testing.T) {
	b := DefaultBodyBias()
	if _, err := b.BiasFor(0.05, 10); err == nil {
		t.Error("target below natural threshold accepted")
	}
	// A 0.7 V threshold from a 0.1 V natural device needs a huge bias.
	if _, err := b.BiasFor(0.7, 1.0); err == nil {
		t.Error("bias beyond limit accepted")
	}
}

func TestBiasMagnitudesRealistic(t *testing.T) {
	// Raising a 100 mV natural device to the paper's 130–190 mV range should
	// take modest (sub-volt) reverse bias.
	b := DefaultBodyBias()
	for _, vt := range []float64{0.13, 0.15, 0.19} {
		vsb, err := b.BiasFor(vt, 5)
		if err != nil {
			t.Fatalf("Vt=%v: %v", vt, err)
		}
		if vsb <= 0 || vsb > 1.0 {
			t.Errorf("Vt=%v needs %v V bias, expected sub-volt", vt, vsb)
		}
	}
}

func TestPlanTubBiases(t *testing.T) {
	n, p := DefaultBodyBias(), DefaultBodyBias()
	plan, err := PlanTubBiases(n, p, []float64{0.14, 0.25}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.VSubstrate) != 2 || len(plan.VNWell) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.VSubstrate[1] <= plan.VSubstrate[0] {
		t.Error("higher threshold group should need more substrate bias")
	}
	if _, err := PlanTubBiases(n, p, nil, 5); err == nil {
		t.Error("empty threshold list accepted")
	}
	if _, err := PlanTubBiases(n, p, []float64{0.01}, 5); err == nil {
		t.Error("unreachable threshold accepted")
	}
}
