package device

import (
	"math"
	"testing"
	"testing/quick"
)

func tech(t *testing.T) Tech {
	t.Helper()
	tc := Default350()
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestDefaultValidates(t *testing.T) { tech(t) }

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Tech){
		func(x *Tech) { x.F = 0 },
		func(x *Tech) { x.Alpha = 0.5 },
		func(x *Tech) { x.Alpha = 2.5 },
		func(x *Tech) { x.KSat = -1 },
		func(x *Tech) { x.IJunc = -1 },
		func(x *Tech) { x.Ct = 0 },
		func(x *Tech) { x.VddMin = 0 },
		func(x *Tech) { x.VddMin = 4 },
		func(x *Tech) { x.VtsMin = -0.1 },
		func(x *Tech) { x.WMin = 0.5 },
		func(x *Tech) { x.WMin = 200 },
		func(x *Tech) { x.N = math.NaN() },
	}
	for i, mut := range mutations {
		tc := Default350()
		mut(&tc)
		if err := tc.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCalibrationAnchors(t *testing.T) {
	tc := tech(t)
	// Strong-inversion drive at the 1997 operating point: ≈200 µA/µm.
	if id := tc.IdUnit(3.3, 0.7); id < 4e-5 || id > 1.5e-4 {
		t.Errorf("Id(3.3,0.7) = %v A, want ~7e-5", id)
	}
	// Off current at the high threshold: picoamps at hot-chip temperature.
	if ioff := tc.IoffUnit(0.7); ioff < 1e-14 || ioff > 1e-10 {
		t.Errorf("Ioff(0.7) = %v A, want ~5e-12", ioff)
	}
	// Off current at a low-power threshold: ~0.1 µA per width unit.
	if ioff := tc.IoffUnit(0.15); ioff < 1e-8 || ioff > 1e-6 {
		t.Errorf("Ioff(0.15) = %v A, want ~1e-7", ioff)
	}
	// Subthreshold swing ≈ 125 mV/dec at hot-chip temperature (incl. the
	// DIBL-like flattening a static-CMOS leakage stack sees).
	if s := tc.SubthresholdSwing(); s < 0.10 || s > 0.15 {
		t.Errorf("swing = %v V/dec, want ~0.125", s)
	}
}

func TestSwingMatchesIoffRatio(t *testing.T) {
	// Lowering Vts by one swing must raise Ioff by ~10x (away from the
	// junction-leakage floor).
	tc := tech(t)
	s := tc.SubthresholdSwing()
	r := tc.IdUnit(0, 0.4-s) / tc.IdUnit(0, 0.4)
	if r < 9 || r > 11 {
		t.Errorf("one-swing Ioff ratio = %v, want ~10", r)
	}
}

func TestAlphaPowerLimit(t *testing.T) {
	// Far above threshold, Id ~ K·(Vgs−Vts)^α.
	tc := tech(t)
	got := tc.IdUnit(3.3, 0.7)
	want := tc.KSat * math.Pow(3.3-0.7, tc.Alpha)
	//cmosvet:allow dimcheck — a literal overdrive raised to α cannot carry the symbolic V^a that cancels KSat's denominator
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Errorf("strong-inversion limit off by %v", rel)
	}
}

func TestOverdriveStableTails(t *testing.T) {
	tc := tech(t)
	if g := tc.Overdrive(100, 0.3); math.IsInf(g, 0) || math.IsNaN(g) {
		t.Errorf("overdrive overflows at large Vgs: %v", g)
	}
	if g := tc.Overdrive(-100, 0.3); g < 0 || math.IsNaN(g) {
		t.Errorf("overdrive broken at very negative Vgs: %v", g)
	}
	if g := tc.Overdrive(0, 5); g <= 0 {
		t.Errorf("overdrive must stay positive, got %v", g)
	}
}

func TestIdMonotoneProperty(t *testing.T) {
	tc := tech(t)
	f := func(aRaw, bRaw, vtsRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 3.3)
		b := math.Mod(math.Abs(bRaw), 3.3)
		vts := 0.1 + math.Mod(math.Abs(vtsRaw), 0.6)
		if a > b {
			a, b = b, a
		}
		// Monotone non-decreasing in Vgs.
		if tc.IdUnit(a, vts) > tc.IdUnit(b, vts)*(1+1e-12) {
			return false
		}
		// Monotone non-increasing in Vts.
		return tc.IdUnit(1.0, a/10+0.1) >= tc.IdUnit(1.0, b/10+0.1)*(1-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIdContinuousAcrossThreshold(t *testing.T) {
	// No kink near Vgs = Vts: ratio of currents a millivolt apart stays small.
	tc := tech(t)
	vts := 0.4
	prev := tc.IdUnit(vts-0.05, vts)
	for v := vts - 0.049; v < vts+0.05; v += 0.001 {
		cur := tc.IdUnit(v, vts)
		if cur < prev {
			t.Fatalf("current decreased across threshold at %v", v)
		}
		if cur/prev > 1.2 {
			t.Fatalf("current jump %vx at Vgs=%v", cur/prev, v)
		}
		prev = cur
	}
}

func TestIoffIncludesJunctionFloor(t *testing.T) {
	tc := tech(t)
	// At a very high threshold the subthreshold term dies; junction remains.
	if got := tc.IoffUnit(3.0); got < tc.IJunc {
		t.Errorf("Ioff(3.0) = %v < junction floor %v", got, tc.IJunc)
	}
}

func TestCorners(t *testing.T) {
	c := Corners(0.2, 0.15)
	if math.Abs(c.Low-0.17) > 1e-12 || math.Abs(c.High-0.23) > 1e-12 {
		t.Errorf("corners = %+v", c)
	}
	if c := Corners(0.1, 2.0); c.Low != 0 {
		t.Errorf("low corner should clamp at 0, got %v", c.Low)
	}
}

func TestSubthresholdCurrentExponential(t *testing.T) {
	// Deep subthreshold: Id(Vgs) rises one decade per swing.
	tc := tech(t)
	s := tc.SubthresholdSwing()
	r := tc.IdUnit(0.2+s, 0.6) / tc.IdUnit(0.2, 0.6)
	if r < 9 || r > 11 {
		t.Errorf("subthreshold Vgs decade ratio = %v, want ~10", r)
	}
}

func TestDefault250Scaling(t *testing.T) {
	t250 := Default250()
	if err := t250.Validate(); err != nil {
		t.Fatal(err)
	}
	t350 := Default350()
	// Constant-field scaling expectations.
	if t250.F >= t350.F {
		t.Error("feature size should shrink")
	}
	if t250.Ct >= t350.Ct || t250.CPD >= t350.CPD {
		t.Error("capacitances should shrink")
	}
	if t250.VddMax >= t350.VddMax {
		t.Error("supply ceiling should drop")
	}
	if t250.KSat <= t350.KSat {
		t.Error("drive per width unit should improve")
	}
	// A same-width inverter-style figure of merit (CV/I at full rail) must
	// improve at the new node.
	fom := func(tc Tech) float64 {
		return tc.Ct * tc.VddMax / tc.IdUnit(tc.VddMax, 0.5)
	}
	if fom(t250) >= fom(t350) {
		t.Errorf("CV/I did not improve: %v vs %v", fom(t250), fom(t350))
	}
}

func TestAtTemperature(t *testing.T) {
	hot := Default350()
	cold, err := hot.AtTemperature(300) // ~27 C
	if err != nil {
		t.Fatal(err)
	}
	// Leakage collapses when cold (steeper subthreshold slope).
	if cold.IoffUnit(0.3) >= hot.IoffUnit(0.3) {
		t.Errorf("cold leakage %v not below hot %v", cold.IoffUnit(0.3), hot.IoffUnit(0.3))
	}
	if r := hot.IoffUnit(0.3) / cold.IoffUnit(0.3); r < 3 {
		t.Errorf("hot/cold leakage ratio %v implausibly small", r)
	}
	// Drive improves slightly when cold (mobility).
	if cold.IdUnit(1.0, 0.2) <= hot.IdUnit(1.0, 0.2) {
		t.Error("cold drive should improve")
	}
	// Swing steepens when cold.
	if cold.SubthresholdSwing() >= hot.SubthresholdSwing() {
		t.Error("cold swing should steepen")
	}
	// Identity at the reference temperature.
	same, err := hot.AtTemperature(ReferenceTempK)
	if err != nil {
		t.Fatal(err)
	}
	if same.VTherm != hot.VTherm || same.KSat != hot.KSat {
		t.Error("reference temperature should be an identity")
	}
	// Range checks.
	if _, err := hot.AtTemperature(100); err == nil {
		t.Error("cryogenic temperature accepted")
	}
	if _, err := hot.AtTemperature(600); err == nil {
		t.Error("oven temperature accepted")
	}
}
