package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1.0, 1.0, true},
		{1.0, 1.0 + 1e-15, true},                // well inside RelEps
		{1.0, 1.0 + 1e-9, false},                // outside RelEps
		{1e-12, 1e-12 * (1 + 1e-15), true},      // relative test scales down
		{1e-12, 2e-12, false},                   // small but genuinely different
		{0, 1e-301, true},                       // absolute floor near zero
		{0, 1e-12, false},                       // zero vs. a real small value
		{-3.5e-10, -3.5e-10 * (1 + 1e-14), true} /* delays */,
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false}, // NaN matches == semantics
		{math.NaN(), 1.0, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(100, 101, 0.02) {
		t.Error("EqTol(100, 101, 2%) should hold")
	}
	if EqTol(100, 103, 0.02) {
		t.Error("EqTol(100, 103, 2%) should not hold")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-301) || !Zero(-1e-301) {
		t.Error("Zero should accept exact and denormal-scale zeros")
	}
	if Zero(1e-15) {
		t.Error("Zero(1e-15) should be false: that is a representable energy scale")
	}
}
