// Package floats is the shared epsilon-comparison helper for floating-point
// energies, delays and voltages. The cmosvet floateq analyzer
// (internal/analysis) forbids raw ==/!= between float variables in bisection
// and convergence code and steers every such comparison here, so the
// tolerance convention lives in exactly one place.
//
// Eq uses a relative epsilon scaled to the larger magnitude with an absolute
// floor near zero. The defaults are far below any physical resolution the
// Appendix-A models produce (delays are O(1e-10) s, energies O(1e-15) J with
// ~1e-3 relative model fidelity) yet far above accumulated float64 rounding,
// so Eq answers "did the iteration stop moving" without ever confusing two
// genuinely different operating points.
package floats

import "math"

const (
	// RelEps is the default relative tolerance of Eq.
	RelEps = 1e-12
	// AbsEps is the absolute floor of Eq for comparisons against values
	// whose magnitude underflows the relative test (e.g. exact zero).
	AbsEps = 1e-300
)

// Eq reports whether a and b are equal within the package's default
// tolerance: exactly equal, or within RelEps of the larger magnitude, or
// both within AbsEps of zero.
func Eq(a, b float64) bool {
	return EqTol(a, b, RelEps)
}

// EqTol reports whether a and b are equal within relative tolerance rel
// (with the AbsEps floor near zero). NaN compares unequal to everything,
// matching == semantics.
func EqTol(a, b, rel float64) bool {
	if a == b { //cmosvet:allow floateq — this is the helper the analyzer steers to
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // distinct infinities (or inf vs finite) are never ε-close
	}
	d := math.Abs(a - b)
	if d <= AbsEps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

// Zero reports whether x is exactly zero or within AbsEps of it.
func Zero(x float64) bool { return math.Abs(x) <= AbsEps }
