package core

import (
	"fmt"
	"math"
)

// Area-aware optimization. The wiring model's gate pitch is normally a
// constant, but the die the optimizer produces depends on its own widths:
// wider transistors stretch the standard cells, the placement grows, every
// wire gets longer, and the added load asks for still more width. This
// closes that loop: optimize, re-derive the pitch from the average cell
// width, re-elaborate, and repeat to convergence — the a-priori analogue of
// a placement-timing iteration.

// AreaAwareResult reports the converged design and the loop's trajectory.
type AreaAwareResult struct {
	Result     *Result
	Iterations int
	// PitchRatio is the final gate pitch over the technology's nominal one.
	PitchRatio float64 //cmosvet:unit 1
}

// cellWidthAreaFrac is the fraction of nominal cell area that scales with
// the width multiplier (the rest is fixed overhead: wells, rails, spacing).
const cellWidthAreaFrac = 0.35

// OptimizeAreaAware runs the joint optimizer inside the area-wiring
// fixed-point loop, up to maxIter iterations or until the pitch moves by
// less than 1 %.
func OptimizeAreaAware(spec Spec, opts Options, maxIter int) (*AreaAwareResult, error) {
	if maxIter < 1 || maxIter > 10 {
		return nil, fmt.Errorf("core: maxIter %d outside [1,10]", maxIter)
	}
	nominal := spec.Wiring.GatePitch
	ratio := 1.0
	var res *Result
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		s := spec
		s.Wiring.GatePitch = nominal * ratio
		p, err := NewProblem(s)
		if err != nil {
			return nil, err
		}
		res, err = p.OptimizeJoint(opts)
		if err != nil {
			return nil, err
		}
		// Average cell width → area → pitch.
		var sumW float64
		n := 0
		for i := range p.C.Gates {
			if p.C.Gates[i].IsLogic() {
				sumW += res.Assignment.W[i]
				n++
			}
		}
		if n == 0 {
			break
		}
		avgW := sumW / float64(n)
		next := math.Sqrt((1 - cellWidthAreaFrac) + cellWidthAreaFrac*avgW)
		if math.Abs(next-ratio)/ratio < 0.01 {
			ratio = next
			break
		}
		ratio = next
	}
	return &AreaAwareResult{Result: res, Iterations: iters, PitchRatio: ratio}, nil
}
