package core

import (
	"testing"

	"cmosopt/internal/design"
)

func TestDualVddNeverWorse(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	joint, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dv, err := p.OptimizeDualVdd(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !dv.Feasible {
		t.Fatal("dual-Vdd result infeasible")
	}
	if dv.Energy.Total() > joint.Energy.Total()*(1+1e-9) {
		t.Errorf("dual-Vdd %v worse than single rail %v", dv.Energy.Total(), joint.Energy.Total())
	}
	if dv.CriticalDelay > p.CycleBudget() {
		t.Error("dual-Vdd violates cycle time")
	}
}

func TestDualVddRespectsRailRule(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	dv, err := p.OptimizeDualVdd(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bad := p.CheckRailRule(dv.Assignment); bad != 0 {
		t.Errorf("%d low-rail gates drive higher-rail fanouts", bad)
	}
}

func TestLowRailShare(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	dv, err := p.OptimizeDualVdd(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	frac, low, high, ok := p.LowRailShare(dv)
	if dv.Assignment.VddPer == nil {
		if ok {
			t.Error("single-rail design reported as dual")
		}
		return
	}
	if !ok {
		t.Fatal("dual design not recognized")
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("low-rail fraction %v should be interior", frac)
	}
	if low >= high {
		t.Errorf("rails %v >= %v", low, high)
	}
}

func TestCheckRailRuleDetectsViolations(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	n := p.C.N()
	a := design.Uniform(n, 1.0, 0.2, 2)
	a.VddPer = make([]float64, n)
	for i := range a.VddPer {
		a.VddPer[i] = 1.0
	}
	// Put an internal driver (a logic gate with fanout) on a lower rail
	// while its fanouts stay high: must be flagged.
	for i := range p.C.Gates {
		g := p.C.Gate(i)
		if g.IsLogic() && g.NumFanout() > 0 {
			a.VddPer[i] = 0.5
			break
		}
	}
	if bad := p.CheckRailRule(a); bad == 0 {
		t.Error("rail-rule violation not detected")
	}
	if bad := p.CheckRailRule(design.Uniform(n, 1.0, 0.2, 2)); bad != 0 {
		t.Error("uniform assignment flagged")
	}
}

func TestVddAtAndDistinct(t *testing.T) {
	a := design.Uniform(3, 1.2, 0.2, 2)
	if a.VddAt(1) != 1.2 || a.MaxVdd() != 1.2 {
		t.Error("uniform VddAt/MaxVdd broken")
	}
	if got := a.DistinctVdds(); len(got) != 1 || got[0] != 1.2 {
		t.Errorf("DistinctVdds = %v", got)
	}
	a.VddPer = []float64{1.2, 0.6, 1.2}
	if a.VddAt(1) != 0.6 {
		t.Errorf("VddAt(1) = %v", a.VddAt(1))
	}
	if a.MaxVdd() != 1.2 {
		t.Errorf("MaxVdd = %v", a.MaxVdd())
	}
	if got := a.DistinctVdds(); len(got) != 2 {
		t.Errorf("DistinctVdds = %v", got)
	}
	b := a.Clone()
	b.VddPer[0] = 0.1
	if a.VddPer[0] != 1.2 {
		t.Error("Clone shares VddPer")
	}
}

func TestPerGateVddAffectsModels(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	n := p.C.N()
	uni := design.Uniform(n, 1.0, 0.2, 2)
	per := uni.Clone()
	per.VddPer = make([]float64, n)
	for i := range per.VddPer {
		per.VddPer[i] = 1.0
	}
	// Lower one sink gate's rail: its energy must drop, total must drop.
	var sink int
	for i := range p.C.Gates {
		g := p.C.Gate(i)
		if g.IsLogic() && g.NumFanout() == 0 {
			sink = i
			break
		}
	}
	per.VddPer[sink] = 0.5
	if p.Eval.GateEnergy(sink, per).Total() >= p.Eval.GateEnergy(sink, uni).Total() {
		t.Error("lower rail did not reduce the gate's energy")
	}
	if p.Eval.Energy(per).Total() >= p.Eval.Energy(uni).Total() {
		t.Error("lower rail did not reduce total energy")
	}
	// And its delay must grow.
	if p.Eval.GateDelayWith(sink, per, 0) <= p.Eval.GateDelayWith(sink, uni, 0) {
		t.Error("lower rail did not slow the gate")
	}
}
