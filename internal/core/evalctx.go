package core

import (
	"cmosopt/internal/design"
	"cmosopt/internal/eval"
	"cmosopt/internal/obs"
	"cmosopt/internal/parallel"
)

// evalCtx is one worker's view of a Problem: an evaluation engine plus the
// width-solver scratch. The Problem owns one serial context over its main
// engine (p.sctx); parallel drivers clone more, one per worker, so
// independent (V_dd, V_TS) solves never share mutable state. Everything a
// context reaches through p — circuit, budgets, technology, wiring, activity
// — is read-only after NewProblem.
type evalCtx struct {
	p   *Problem
	eng *eval.Engine
	wtd []float64 // solveWidths per-pass delay scratch (lazily allocated)
	// trace is the span node candidate evaluations attach under — set by the
	// running optimizer on the serial context (via Problem.setTrace) and
	// inherited by worker clones. Nil (spans off) without a registry.
	trace *obs.Span
}

// cloneCtx builds a fresh worker context over a clone of the main engine.
func (p *Problem) cloneCtx() *evalCtx {
	return &evalCtx{p: p, eng: p.Eval.Clone(), trace: p.sctx.trace}
}

// fork returns a worker's private copy of the problem for drivers that run
// whole optimizations concurrently (e.g. one VariationStudy corner per
// worker): shared circuit, activity, wiring, timing and budgets, a cloned
// engine with its own serial context. The caller merges the fork's effort
// counters back with absorb when the work is on-path.
func (p *Problem) fork() *Problem {
	np := &Problem{
		C:        p.C,
		Tech:     p.Tech,
		Act:      p.Act,
		Wire:     p.Wire,
		Timing:   p.Timing,
		Budgets:  p.Budgets,
		Fc:       p.Fc,
		Skew:     p.Skew,
		logicIDs: p.logicIDs,
		Eval:     p.Eval.Clone(),
		otrace:   p.otrace,
		ctx:      p.ctx,
	}
	np.sctx = &evalCtx{p: np, eng: np.Eval, trace: p.sctx.trace}
	return np
}

// absorb merges a worker engine's effort counters into the problem's main
// meter. Counter totals are sums, so the merge order cannot change them:
// after all on-path work is absorbed, the main meter reads exactly what a
// serial run would have counted.
func (p *Problem) absorb(e *eval.Engine) {
	p.Eval.Metrics().Add(*e.Metrics())
}

// workersFor clamps a worker-count knob (0 = GOMAXPROCS) to the job count.
func workersFor(workers, n int) int {
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	return w
}

// mapEval runs n independent evaluation jobs over per-worker engine clones
// and merges every clone's effort counters back into the main meter — every
// job here is work a serial loop would also perform (exhaustive scans, not
// speculation), so all of it is billed. Jobs must write only state indexed
// by their own iteration number; reductions belong to the caller, in index
// order, so results are byte-identical at any worker count.
func (p *Problem) mapEval(workers, n int, job func(c *evalCtx, i int)) {
	w := workersFor(workers, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(p.sctx, i)
		}
		return
	}
	ctxs := parallel.Pool(w, func(int) *evalCtx { return p.cloneCtx() })
	parallel.For(w, n, func(wk, i int) { job(ctxs[wk], i) })
	for _, c := range ctxs {
		p.absorb(c.eng)
	}
}

// pointRes is the outcome of one evalPoint candidate.
type pointRes struct {
	e  float64
	a  *design.Assignment
	ok bool
}

// scanPoints evaluates a list of (V_dd, V_TS) candidates — grid cells, line
// scans — and returns results in input order, billing all of the work.
func (p *Problem) scanPoints(workers int, pts [][2]float64, o *Options) []pointRes {
	out := make([]pointRes, len(pts))
	p.mapEval(workers, len(pts), func(c *evalCtx, i int) {
		e, a, ok := c.evalPoint(pts[i][0], pts[i][1], o)
		out[i] = pointRes{e, a, ok}
	})
	return out
}

// specPoints evaluates a small batch of candidates concurrently, one fresh
// engine clone per candidate, and returns the results together with each
// candidate's own effort snapshot. Unlike scanPoints nothing is billed here:
// speculative drivers bill only the candidates the serial walk would have
// evaluated, which keeps reported evaluation counts byte-identical at any
// worker count.
func (p *Problem) specPoints(pts [][2]float64, o *Options) ([]pointRes, []eval.Metrics) {
	out := make([]pointRes, len(pts))
	mets := make([]eval.Metrics, len(pts))
	ctxs := make([]*evalCtx, len(pts))
	for i := range ctxs {
		ctxs[i] = p.cloneCtx()
	}
	parallel.For(len(pts), len(pts), func(_, i int) {
		e, a, ok := ctxs[i].evalPoint(pts[i][0], pts[i][1], o)
		out[i] = pointRes{e, a, ok}
		mets[i] = *ctxs[i].eng.Metrics()
	})
	return out, mets
}
