package core

import (
	"fmt"
	"math"

	"cmosopt/internal/parallel"
)

// The paper's introduction contrasts its fixed-performance formulation with
// the metric of its reference [2] (Burr & Shott): minimize energy·delay when
// no hard clock target exists, trading the two off instead of pinning one.
// EDPStudy provides that mode: it sweeps the required clock frequency,
// re-runs the joint optimizer at each point, and reports the
// energy-per-cycle × critical-delay product, whose interior minimum is the
// "most efficient" operating point of the design.

// EDPPoint is one sample of the energy-delay-product sweep.
type EDPPoint struct {
	Fc     float64 // the clock target of this sample //cmosvet:unit Hz
	Result *Result // joint optimization result at that target
	EDP    float64 // Energy.Total() · CriticalDelay //cmosvet:unit J*s
}

// EDPStudy sweeps clock targets and returns all feasible samples plus the
// index of the EDP-minimal one. Infeasible targets are skipped; it fails
// only when no target is feasible. Targets are independent whole-optimizer
// runs and fan out over opts.Workers workers; results are identical at any
// worker count.
//
//cmosvet:unit fcs Hz
func EDPStudy(spec Spec, fcs []float64, opts Options) ([]EDPPoint, int, error) {
	if len(fcs) == 0 {
		return nil, -1, fmt.Errorf("core: EDP study needs at least one clock target")
	}
	type slot struct {
		res *Result
		err error
	}
	slots := make([]slot, len(fcs))
	w := workersFor(opts.Workers, len(fcs))
	inner := opts
	if w > 1 {
		inner.Workers = 1 // the sweep level owns the parallelism
		warmCircuit(spec.Circuit)
	}
	parallel.For(w, len(fcs), func(_, i int) {
		if spec.Ctx != nil && spec.Ctx.Err() != nil {
			return // canceled: the post-loop Canceled check reports it
		}
		s := spec
		s.Fc = fcs[i]
		p, err := NewProblem(s)
		if err != nil {
			slots[i].err = fmt.Errorf("core: EDP study at fc=%v: %w", fcs[i], err)
			return
		}
		res, err := p.OptimizeJoint(inner)
		if err != nil {
			// A canceled run must surface as cancellation, not masquerade as
			// an infeasible clock target.
			if cerr := p.Canceled(); cerr != nil {
				slots[i].err = cerr
			}
			return // this clock target is infeasible; skip the sample
		}
		slots[i].res = res
	})
	if spec.Ctx != nil && spec.Ctx.Err() != nil {
		return nil, -1, fmt.Errorf("core: EDP study canceled: %w", spec.Ctx.Err())
	}
	var out []EDPPoint
	bestIdx := -1
	bestEDP := math.Inf(1)
	for i, s := range slots {
		if s.err != nil {
			return nil, -1, s.err
		}
		if s.res == nil {
			continue
		}
		pt := EDPPoint{Fc: fcs[i], Result: s.res, EDP: s.res.Energy.Total() * s.res.CriticalDelay}
		if pt.EDP < bestEDP {
			bestEDP = pt.EDP
			bestIdx = len(out)
		}
		out = append(out, pt)
	}
	if bestIdx < 0 {
		return nil, -1, fmt.Errorf("core: no feasible clock target in the EDP sweep")
	}
	return out, bestIdx, nil
}
