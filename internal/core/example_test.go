package core_test

import (
	"fmt"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// Example runs the paper's full flow on the genuine ISCAS'89 s27 netlist:
// elaborate (the DFF cut happens inside), then jointly optimize supply,
// threshold and widths for a 300 MHz target.
func Example() {
	p, err := core.NewProblem(core.Spec{
		Circuit:      netgen.S27(),
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := p.OptimizeJoint(core.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("feasible=%v thresholds=%d static<dynamic*10=%v\n",
		res.Feasible, len(res.VtsValues),
		res.Energy.Static < res.Energy.Dynamic*10)
	// Output: feasible=true thresholds=1 static<dynamic*10=true
}
