package core

import (
	"reflect"
	"testing"

	"cmosopt/internal/obs"
)

// TestObsDoesNotChangeOptimizerOutput is the acceptance contract for the
// observability layer: running the full joint optimizer with a registry
// attached must produce byte-identical results to an uninstrumented run —
// instrumentation is write-only.
func TestObsDoesNotChangeOptimizerOutput(t *testing.T) {
	c := smallCircuit(t)
	opts := DefaultOptions()

	plain := problemFor(t, c, 0.5)
	want, err := plain.OptimizeJoint(opts)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	spec := specFor(c, 0.5)
	spec.Obs = reg
	ip, err := NewProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.OptimizeJoint(opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("instrumented result diverged:\ngot  %+v\nwant %+v", got, want)
	}

	// And the run must actually have been observed: the span tree carries the
	// elaborate and optimize phases with nonzero time.
	reg.Finish()
	snap := reg.Snapshot()
	byName := map[string]obs.SpanSnapshot{}
	for _, ch := range snap.Spans.Children {
		byName[ch.Name] = ch
	}
	for _, phase := range []string{"elaborate", "optimize.joint"} {
		s, ok := byName[phase]
		if !ok || s.Count < 1 || s.DurationNS <= 0 {
			t.Errorf("phase %q missing or empty in span tree: %+v", phase, s)
		}
	}
	if snap.Counters["eval.full_delay_sweeps"] < 1 {
		t.Errorf("engine counters not flushed: %v", snap.Counters)
	}
}

// TestObsSpanTreeShape checks the joint optimizer's tree: vdd-level nests
// point, which nests widths and energy.
func TestObsSpanTreeShape(t *testing.T) {
	c := smallCircuit(t)
	reg := obs.NewRegistry()
	spec := specFor(c, 0.5)
	spec.Obs = reg
	p, err := NewProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeJoint(DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	reg.Finish()

	find := func(s obs.SpanSnapshot, name string) (obs.SpanSnapshot, bool) {
		for _, ch := range s.Children {
			if ch.Name == name {
				return ch, true
			}
		}
		return obs.SpanSnapshot{}, false
	}
	root := reg.Snapshot().Spans
	joint, ok := find(*root, "optimize.joint")
	if !ok {
		t.Fatalf("no optimize.joint under root: %+v", root)
	}
	lvl, ok := find(joint, "vdd-level")
	if !ok || lvl.Count < 2 {
		t.Fatalf("vdd-level missing or ran once: %+v", joint)
	}
	pt, ok := find(lvl, "point")
	if !ok || pt.Count < lvl.Count {
		t.Fatalf("point missing or undercounted: %+v", lvl)
	}
	w, ok := find(pt, "widths")
	if !ok || w.Count < pt.Count {
		t.Errorf("widths missing under point: %+v", pt)
	}
	// Energy is only computed for width-feasible points, so its count is
	// positive but can trail the point count.
	e, ok := find(pt, "energy")
	if !ok || e.Count < 1 || e.Count > pt.Count {
		t.Errorf("energy missing under point: %+v", pt)
	}
}
