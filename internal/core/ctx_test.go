package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// countdownCtx is a deterministic cancellation source: Err returns nil for
// the first `left` polls and context.Canceled afterwards. It lets tests
// cancel "mid-optimization" at an exact poll count instead of racing a
// timer against the optimizer.
type countdownCtx struct {
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func ctxSpec(t *testing.T, name string, ctx context.Context) Spec {
	t.Helper()
	c, err := netgen.LoadNamed(name)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: 0.5,
		Ctx:          ctx,
	}
}

func TestOptimizeJointCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := NewProblem(ctxSpec(t, "s27", ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeJoint(DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimizeJoint with pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestOptimizeJointCancelMidRun(t *testing.T) {
	// Allow a handful of polls, then cancel: the run must abort with the
	// context error, not return a (partial) result.
	p, err := NewProblem(ctxSpec(t, "s298", &countdownCtx{left: 5}))
	if err != nil {
		t.Fatal(err)
	}
	evBefore := p.Evaluations()
	res, err := p.OptimizeJoint(DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v (res=%v), want context.Canceled", err, res)
	}
	// Prompt abort: a full joint run costs hundreds of evaluation
	// equivalents; five polls' worth must stay well under that.
	opts := DefaultOptions()
	full := opts.M * opts.M
	if used := p.Evaluations() - evBefore; used >= full {
		t.Fatalf("canceled run consumed %d evaluation equivalents, want < %d", used, full)
	}
}

func TestOptimizeBaselineCancel(t *testing.T) {
	p, err := NewProblem(ctxSpec(t, "s27", &countdownCtx{left: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeBaseline(DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("baseline cancel: err = %v, want context.Canceled", err)
	}
}

func TestOptimizeAnnealCancel(t *testing.T) {
	p, err := NewProblem(ctxSpec(t, "s27", &countdownCtx{left: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeAnneal(DefaultAnnealOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("anneal cancel: err = %v, want context.Canceled", err)
	}
}

func TestEDPStudyCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := ctxSpec(t, "s27", ctx)
	if _, _, err := EDPStudy(spec, []float64{100e6, 200e6}, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("EDP study cancel: err = %v, want context.Canceled", err)
	}
}

// TestCancelThenFreshRunByteIdentical is the server-cache safety property:
// a canceled run must leave nothing behind that could perturb a later run
// of the same problem. A fresh elaboration after a mid-run cancel must
// reproduce the uncanceled result bit for bit.
func TestCancelThenFreshRunByteIdentical(t *testing.T) {
	ref, err := NewProblem(ctxSpec(t, "s298", nil))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	canceled, err := NewProblem(ctxSpec(t, "s298", &countdownCtx{left: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := canceled.OptimizeJoint(DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected mid-run cancel, got %v", err)
	}

	fresh, err := NewProblem(ctxSpec(t, "s298", nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Vdd != want.Vdd || got.VtsValues[0] != want.VtsValues[0] {
		t.Fatalf("post-cancel rerun diverged: (Vdd,Vts) = (%v,%v), want (%v,%v)",
			got.Vdd, got.VtsValues[0], want.Vdd, want.VtsValues[0])
	}
	if got.Energy != want.Energy || got.CriticalDelay != want.CriticalDelay {
		t.Fatalf("post-cancel rerun diverged: energy %+v delay %v, want %+v / %v",
			got.Energy, got.CriticalDelay, want.Energy, want.CriticalDelay)
	}
	for i := range want.Assignment.W {
		if got.Assignment.W[i] != want.Assignment.W[i] {
			t.Fatalf("width[%d] = %v, want %v", i, got.Assignment.W[i], want.Assignment.W[i])
		}
	}
}
