package core

import (
	"math"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// specFor builds the standard experiment spec of the paper's tables.
func specFor(c *circuit.Circuit, act float64) Spec {
	return Spec{
		Circuit:      c,
		Tech:         device.Default350(),
		Wiring:       wiring.Default350(),
		Fc:           300e6,
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: act,
	}
}

func problemFor(t *testing.T, c *circuit.Circuit, act float64) *Problem {
	t.Helper()
	p, err := NewProblem(specFor(c, act))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := netgen.Generate(netgen.Config{Name: "small", Gates: 60, Depth: 6, PIs: 5, POs: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func s298(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewProblemValidation(t *testing.T) {
	c := smallCircuit(t)
	good := specFor(c, 0.5)
	mutations := []struct {
		name string
		mod  func(*Spec)
	}{
		{"nil circuit", func(s *Spec) { s.Circuit = nil }},
		{"zero fc", func(s *Spec) { s.Fc = 0 }},
		{"skew zero", func(s *Spec) { s.Skew = 0 }},
		{"skew above 1", func(s *Spec) { s.Skew = 1.5 }},
		{"bad tech", func(s *Spec) { s.Tech.KSat = -1 }},
		{"bad wiring", func(s *Spec) { s.Wiring.RentP = 0 }},
		{"bad activity", func(s *Spec) { s.InputDensity = 5 }},
		{"unknown input name", func(s *Spec) {
			s.Inputs = map[string]activity.InputSpec{"nope": {Prob: 0.5, Density: 0.1}}
		}},
	}
	for _, m := range mutations {
		s := good
		m.mod(&s)
		if _, err := NewProblem(s); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestNewProblemCutsSequential(t *testing.T) {
	p := problemFor(t, netgen.S27(), 0.5)
	if p.C.IsSequential() {
		t.Error("problem circuit still sequential")
	}
	if len(p.C.PIs) != 7 { // 4 PIs + 3 flop outputs
		t.Errorf("cut s27 PIs = %d, want 7", len(p.C.PIs))
	}
}

func TestNewProblemPerInputOverride(t *testing.T) {
	c := smallCircuit(t)
	s := specFor(c, 0.2)
	s.Inputs = map[string]activity.InputSpec{"pi0": {Prob: 0.9, Density: 0.05}}
	p, err := NewProblem(s)
	if err != nil {
		t.Fatal(err)
	}
	id := p.C.GateByName("pi0").ID
	if p.Act.Prob[id] != 0.9 || p.Act.Density[id] != 0.05 {
		t.Errorf("override not applied: p=%v d=%v", p.Act.Prob[id], p.Act.Density[id])
	}
}

func TestBaselinePaperShapes(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	res, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("baseline infeasible")
	}
	if len(res.VtsValues) != 1 || res.VtsValues[0] != 0.7 {
		t.Errorf("baseline thresholds %v, want [0.7]", res.VtsValues)
	}
	// At Vt = 0.7 leakage is negligible next to switching.
	if res.Energy.Static > res.Energy.Dynamic/100 {
		t.Errorf("baseline static %v not ≪ dynamic %v", res.Energy.Static, res.Energy.Dynamic)
	}
	if res.CriticalDelay > p.CycleBudget() {
		t.Errorf("critical delay %v exceeds budget %v", res.CriticalDelay, p.CycleBudget())
	}
}

func TestBaselineDeepCircuitPinsNearFullSupply(t *testing.T) {
	// The paper's Table 1 baseline "coincidentally returned Vdd values close
	// to 3.3 V": the benchmarks at the 300 MHz feasibility edge. In our
	// calibration the deep (depth-20) circuits are at that edge.
	c, err := netgen.Profile("s344")
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, c, 0.5)
	res, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Vdd < 2.8 {
		t.Errorf("deep-circuit baseline Vdd = %v, want near 3.3", res.Vdd)
	}
}

func TestBaselineFixedVddReference(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	o := DefaultOptions()
	o.FixedVdd = 3.3
	ref, err := p.OptimizeBaseline(o)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Vdd != 3.3 {
		t.Errorf("reference Vdd = %v, want pinned 3.3", ref.Vdd)
	}
	if ref.Method != "baseline-fixed-vdd" {
		t.Errorf("method = %q", ref.Method)
	}
	free, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if free.Energy.Total() > ref.Energy.Total() {
		t.Error("free-Vdd baseline should not be worse than the pinned reference")
	}
	o.FixedVdd = 9
	if _, err := p.OptimizeBaseline(o); err == nil {
		t.Error("out-of-range FixedVdd accepted")
	}
}

func TestJointPaperShapes(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	base, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	joint, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !joint.Feasible {
		t.Fatal("joint infeasible")
	}
	// Headline: over an order of magnitude savings with no performance loss.
	if s := joint.Savings(base); s < 8 {
		t.Errorf("savings = %vx, want > 8x", s)
	}
	// Returned voltages land in (a slightly widened version of) the paper's
	// reported ranges: Vdd 0.6–1.2 V, Vt 0.13–0.19 V.
	if joint.Vdd < 0.35 || joint.Vdd > 1.35 {
		t.Errorf("joint Vdd = %v, paper reports 0.6–1.2 V", joint.Vdd)
	}
	vt := joint.VtsValues[0]
	if vt < 0.1 || vt > 0.3 {
		t.Errorf("joint Vt = %v, paper reports 0.13–0.19 V", vt)
	}
	// Static and dynamic components approximately equal at the optimum.
	r := joint.Energy.Static / joint.Energy.Dynamic
	if r < 0.1 || r > 10 {
		t.Errorf("static/dynamic = %v, want within an order of magnitude", r)
	}
	if joint.CriticalDelay > p.CycleBudget() {
		t.Errorf("joint critical delay %v exceeds budget %v", joint.CriticalDelay, p.CycleBudget())
	}
	// O(M³) accounting at probe granularity: M (Vdd) × M (Vts) width solves,
	// each costing per pass at most 2·(M+2)+2 gate probes per gate (two
	// binary searches when the fallback fires, plus the final delay) and one
	// full verification sweep — all in full-circuit-evaluation equivalents.
	const M, passes = 12, 4
	if bound := M * M * (passes*(2*M+6) + 1); joint.Evaluations > bound {
		t.Errorf("evaluations %d exceed O(M³) probe bound %d", joint.Evaluations, bound)
	}
}

func TestSavingsIncreaseWithActivity(t *testing.T) {
	c := s298(t)
	sav := func(act float64) float64 {
		p := problemFor(t, c, act)
		base, err := p.OptimizeBaseline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		joint, err := p.OptimizeJoint(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return joint.Savings(base)
	}
	lo, hi := sav(0.1), sav(0.5)
	if hi <= lo {
		t.Errorf("savings should grow with activity: a=0.1 → %v, a=0.5 → %v", lo, hi)
	}
}

func TestJointRejectsFixedVt(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	o := DefaultOptions()
	o.FixedVt = 0.7
	if _, err := p.OptimizeJoint(o); err == nil {
		t.Error("OptimizeJoint accepted FixedVt")
	}
}

func TestBaselineFixedVtRange(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	o := DefaultOptions()
	o.FixedVt = 2.0
	if _, err := p.OptimizeBaseline(o); err == nil {
		t.Error("out-of-range FixedVt accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	bad := []Options{
		{M: -1},
		{M: 100},
		{M: 8, WidthPasses: 40},
		{M: 8, WidthPasses: 2, VtTimingFactor: 0.5},
		{M: 8, WidthPasses: 2, VtPowerFactor: 1.5},
	}
	for i, o := range bad {
		if _, err := p.OptimizeJoint(o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestInfeasibleFrequencyReported(t *testing.T) {
	s := specFor(s298(t), 0.5)
	s.Fc = 5e9 // 5 GHz in 0.35 µm: impossible
	p, err := NewProblem(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeJoint(DefaultOptions()); err == nil {
		t.Error("joint at 5 GHz should fail")
	}
	if _, err := p.OptimizeBaseline(DefaultOptions()); err == nil {
		t.Error("baseline at 5 GHz should fail")
	}
}

func TestJointNeverWorseThanBaseline(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.3)
	base, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	joint, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if joint.Energy.Total() > base.Energy.Total() {
		t.Errorf("joint %v worse than baseline %v", joint.Energy.Total(), base.Energy.Total())
	}
}

func TestMultiVtAtLeastAsGood(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	joint, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mv, err := p.OptimizeMultiVt(2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Feasible {
		t.Fatal("multi-Vt result infeasible")
	}
	if mv.Energy.Total() > joint.Energy.Total()*(1+1e-9) {
		t.Errorf("multi-Vt %v worse than single-Vt %v", mv.Energy.Total(), joint.Energy.Total())
	}
	if len(mv.VtsValues) > 2 {
		t.Errorf("multi-Vt used %d distinct thresholds, budget was 2", len(mv.VtsValues))
	}
	if mv.CriticalDelay > p.CycleBudget() {
		t.Error("multi-Vt violates cycle time")
	}
}

func TestMultiVtNvOne(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.3)
	mv, err := p.OptimizeMultiVt(1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mv.Method != "joint" {
		t.Errorf("nv=1 should reduce to the joint optimizer, got %q", mv.Method)
	}
	if _, err := p.OptimizeMultiVt(0, DefaultOptions()); err == nil {
		t.Error("nv=0 accepted")
	}
	if _, err := p.OptimizeMultiVt(9, DefaultOptions()); err == nil {
		t.Error("nv=9 accepted")
	}
}

func TestAnnealFeasibleButNoBetterThanHeuristic(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	joint, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ao := DefaultAnnealOptions()
	ao.StepsPerPass = 800 // keep the test fast; §5's conclusion holds anyway
	sa, err := p.OptimizeAnneal(ao)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Feasible {
		t.Fatal("annealing found no feasible state")
	}
	if sa.CriticalDelay > p.CycleBudget() {
		t.Error("anneal result violates cycle time")
	}
	// The paper's §5 finding: annealing does not beat the heuristic.
	if sa.Energy.Total() < joint.Energy.Total()*0.95 {
		t.Errorf("anneal %v beat the heuristic %v by >5%%; paper (and schedule sizing) say it should not",
			sa.Energy.Total(), joint.Energy.Total())
	}
}

func TestVariationStudyShape(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	base, err := p.OptimizeBaseline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := p.VariationStudy([]float64{0, 0.1, 0.2, 0.3}, DefaultOptions(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, pt := range pts {
		if !pt.Feasible {
			t.Fatalf("point %d infeasible", i)
		}
		if pt.Savings <= 1 {
			t.Errorf("tol %v: savings %v should stay > 1", pt.Tol, pt.Savings)
		}
	}
	// Figure 2(a): savings shrink as the tolerated variation grows.
	if pts[len(pts)-1].Savings >= pts[0].Savings {
		t.Errorf("savings should fall with Vt tolerance: %v → %v",
			pts[0].Savings, pts[len(pts)-1].Savings)
	}
	if _, err := p.VariationStudy([]float64{-0.1}, DefaultOptions(), base); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := p.VariationStudy([]float64{0.1}, DefaultOptions(), nil); err == nil {
		t.Error("nil baseline accepted")
	}
}

func TestSlackStudyShape(t *testing.T) {
	spec := specFor(smallCircuit(t), 0.5)
	pts, err := SlackStudy(spec, []float64{0.7, 0.95}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if !pt.Feasible {
			t.Fatalf("skew %v infeasible", pt.Skew)
		}
	}
	// Figure 2(b): more available cycle time → larger savings.
	if pts[1].Savings <= pts[0].Savings*0.9 {
		t.Errorf("savings should not shrink with more slack: b=0.7 → %v, b=0.95 → %v",
			pts[0].Savings, pts[1].Savings)
	}
}

func TestResultSavingsDegenerate(t *testing.T) {
	a := &Result{}
	b := &Result{}
	b.Energy.Dynamic = 1
	if s := a.Savings(b); !math.IsInf(s, 1) {
		t.Errorf("zero-energy savings = %v, want +Inf", s)
	}
}

func TestEvaluationCounterMonotone(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.3)
	before := p.Evaluations()
	if _, err := p.OptimizeBaseline(DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if p.Evaluations() <= before {
		t.Error("evaluation counter did not advance")
	}
}

func TestSampledNetsOptimization(t *testing.T) {
	// With per-net sampled wire loads, the flow still produces a feasible
	// design, and the result differs from the mean-wire one (the variance
	// reaches the models).
	s := specFor(s298(t), 0.5)
	s.SampleNets = true
	s.NetSeed = 9
	p, err := NewProblem(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("sampled-net optimization infeasible")
	}
	mean := problemFor(t, s298(t), 0.5)
	meanRes, err := mean.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() == meanRes.Energy.Total() {
		t.Error("sampled wire loads had no effect on the optimum")
	}
	// Same order of magnitude: sampling redistributes load, not its total.
	r := res.Energy.Total() / meanRes.Energy.Total()
	if r < 0.5 || r > 2 {
		t.Errorf("sampled/mean energy ratio %v outside [0.5,2]", r)
	}
}

func TestCorrelatedActivityOption(t *testing.T) {
	s := specFor(s298(t), 0.5)
	s.CorrelatedActivity = true
	p, err := NewProblem(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("correlated-activity optimization infeasible")
	}
	// The corrected (generally lower) activities shift the reported energy
	// relative to the independence profile.
	indep := problemFor(t, s298(t), 0.5)
	indepRes, err := indep.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() == indepRes.Energy.Total() {
		t.Error("correlated activities had no effect")
	}
	// Oversized circuits are rejected, not silently blown up.
	big := specFor(s298(t), 0.5)
	big.CorrelatedActivity = true
	c85, err := netgen.Profile85("c2670")
	if err != nil {
		t.Fatal(err)
	}
	big.Circuit = c85
	if _, err := NewProblem(big); err == nil {
		t.Error("oversized correlated-activity circuit accepted")
	}
}

func TestTechnologyScalingImprovesEnergy(t *testing.T) {
	// The same circuit at the scaled node (0.25 µm): smaller capacitances
	// and better drive must yield a lower-energy joint optimum at the same
	// clock — the cross-node view of the paper's process-design application.
	run := func(tech device.Tech) float64 {
		s := specFor(s298(t), 0.5)
		s.Tech = tech
		p, err := NewProblem(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.OptimizeJoint(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("%s: infeasible", tech.Name)
		}
		return res.Energy.Total()
	}
	e350 := run(device.Default350())
	e250 := run(device.Default250())
	if e250 >= e350 {
		t.Errorf("0.25 µm optimum %v not below 0.35 µm %v", e250, e350)
	}
}

func TestColdOperationLowersOptimalThreshold(t *testing.T) {
	// Cooling collapses leakage, so the joint optimum can afford a lower
	// threshold (or at least no higher) and less total energy.
	run := func(tempK float64) *Result {
		s := specFor(s298(t), 0.5)
		tech, err := s.Tech.AtTemperature(tempK)
		if err != nil {
			t.Fatal(err)
		}
		s.Tech = tech
		p, err := NewProblem(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.OptimizeJoint(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hot := run(373)
	cold := run(300)
	if cold.Energy.Total() >= hot.Energy.Total() {
		t.Errorf("cold optimum %v not below hot %v", cold.Energy.Total(), hot.Energy.Total())
	}
	if cold.Energy.Static >= hot.Energy.Static {
		t.Errorf("cold static %v not below hot %v", cold.Energy.Static, hot.Energy.Static)
	}
	if cold.VtsValues[0] > hot.VtsValues[0]+0.02 {
		t.Errorf("cold threshold %v above hot %v", cold.VtsValues[0], hot.VtsValues[0])
	}
}
