package core

import (
	"testing"

	"cmosopt/internal/netgen"
)

// TestJointPropertiesAcrossRandomCircuits sweeps random circuit structures
// and verifies the optimizer's contract on each: feasibility, never worse
// than the fixed-Vt baseline, voltages inside the technology box, and the
// width assignment within range.
func TestJointPropertiesAcrossRandomCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-circuit optimization sweep")
	}
	cfgs := []netgen.Config{
		{Name: "pa", Gates: 50, Depth: 5, PIs: 5, POs: 4},
		{Name: "pb", Gates: 90, Depth: 10, PIs: 6, POs: 5, DFFs: 4},
		{Name: "pc", Gates: 70, Depth: 7, PIs: 4, POs: 3, MaxFan: 3},
	}
	for i, cfg := range cfgs {
		c, err := netgen.Generate(cfg, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		p := problemFor(t, c, 0.4)
		base, err := p.OptimizeBaseline(DefaultOptions())
		if err != nil {
			t.Fatalf("%s baseline: %v", cfg.Name, err)
		}
		joint, err := p.OptimizeJoint(DefaultOptions())
		if err != nil {
			t.Fatalf("%s joint: %v", cfg.Name, err)
		}
		if !joint.Feasible || !base.Feasible {
			t.Errorf("%s: infeasible results", cfg.Name)
		}
		if joint.Energy.Total() > base.Energy.Total() {
			t.Errorf("%s: joint %v worse than baseline %v", cfg.Name, joint.Energy.Total(), base.Energy.Total())
		}
		if joint.Vdd < p.Tech.VddMin || joint.Vdd > p.Tech.VddMax {
			t.Errorf("%s: Vdd %v out of range", cfg.Name, joint.Vdd)
		}
		for _, vt := range joint.VtsValues {
			if vt < p.Tech.VtsMin || vt > p.Tech.VtsMax {
				t.Errorf("%s: Vt %v out of range", cfg.Name, vt)
			}
		}
		for gi := range p.C.Gates {
			if !p.C.Gates[gi].IsLogic() {
				continue
			}
			w := joint.Assignment.W[gi]
			if w < p.Tech.WMin || w > p.Tech.WMax {
				t.Errorf("%s: gate %d width %v out of range", cfg.Name, gi, w)
			}
		}
		if joint.CriticalDelay > p.CycleBudget() {
			t.Errorf("%s: cycle time violated", cfg.Name)
		}
	}
}
