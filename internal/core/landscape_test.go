package core

import (
	"math"
	"testing"
)

func TestSampleLandscapeShape(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	ls, err := p.SampleLandscape(7, 7, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.E) != 7 || len(ls.E[0]) != 7 {
		t.Fatalf("grid %dx%d", len(ls.E), len(ls.E[0]))
	}
	frac := ls.FeasibleFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("feasible fraction %v should be interior (wall exists)", frac)
	}
	vdd, vts, e, ok := ls.Min()
	if !ok || math.IsInf(e, 1) {
		t.Fatal("no feasible grid point")
	}
	// §3 physics: the grid minimum sits at low supply and low threshold, far
	// from the (VddMax, VtsMax) corner.
	if vdd > 2.0 || vts > 0.45 {
		t.Errorf("grid minimum at (%v, %v), expected low-voltage corner region", vdd, vts)
	}
	// Feasibility is monotone in Vdd at fixed Vts: once feasible, staying
	// feasible as the supply rises.
	for j := range ls.Vts {
		seen := false
		for i := range ls.Vdd {
			feas := !math.IsInf(ls.E[i][j], 1)
			if seen && !feas {
				t.Errorf("feasibility not monotone in Vdd at Vts=%v", ls.Vts[j])
				break
			}
			if feas {
				seen = true
			}
		}
	}
}

func TestSampleLandscapeValidation(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	if _, err := p.SampleLandscape(1, 5, DefaultOptions()); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestLandscapeMinNearProcedure2Optimum(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.SampleLandscape(9, 9, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, e, ok := ls.Min()
	if !ok {
		t.Fatal("no feasible grid point")
	}
	// The heuristic must be at least as good as a coarse grid scan.
	if res.Energy.Total() > e*1.2 {
		t.Errorf("Procedure 2 result %v much worse than grid minimum %v", res.Energy.Total(), e)
	}
}

func TestPolishNelderMeadNeverWorse(t *testing.T) {
	p := problemFor(t, s298(t), 0.5)
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	polished, err := p.PolishNelderMead(res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if polished.Energy.Total() > res.Energy.Total()*(1+1e-9) {
		t.Errorf("NM polish made it worse: %v vs %v", polished.Energy.Total(), res.Energy.Total())
	}
	if !polished.Feasible {
		t.Error("polished result infeasible")
	}
}

func TestYieldStudyBasics(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Zero variation: every die identical, full yield.
	y0, err := p.YieldStudy(res.Assignment, 0, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y0.TimingYield != 1 {
		t.Errorf("zero-sigma yield %v, want 1", y0.TimingYield)
	}
	if math.Abs(y0.MeanEnergy-res.Energy.Total())/res.Energy.Total() > 1e-9 {
		t.Errorf("zero-sigma mean energy %v != %v", y0.MeanEnergy, res.Energy.Total())
	}
	// Growing variation cannot raise the yield.
	y10, err := p.YieldStudy(res.Assignment, 0.10, 300, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	y25, err := p.YieldStudy(res.Assignment, 0.25, 300, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y25.TimingYield > y10.TimingYield+0.02 {
		t.Errorf("yield rose with sigma: %v -> %v", y10.TimingYield, y25.TimingYield)
	}
	if y10.P95Energy < y10.MeanEnergy {
		t.Errorf("P95 %v below mean %v", y10.P95Energy, y10.MeanEnergy)
	}
}

func TestCornerOptimizedDesignYieldsBetter(t *testing.T) {
	// The Figure 2(a) methodology's point, statistically: a design optimized
	// under ±20 % worst-case corners must survive random ±7 % variation at
	// least as often as the nominal design.
	p := problemFor(t, s298(t), 0.5)
	nominal, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.VtTimingFactor = 1.2
	o.VtPowerFactor = 0.8
	guarded, err := p.OptimizeJoint(o)
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 0.07
	yNom, err := p.YieldStudy(nominal.Assignment, sigma, 400, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	yGuard, err := p.YieldStudy(guarded.Assignment, sigma, 400, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if yGuard.TimingYield < yNom.TimingYield-0.02 {
		t.Errorf("corner-optimized yield %v below nominal %v", yGuard.TimingYield, yNom.TimingYield)
	}
}

func TestYieldStudyValidation(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.YieldStudy(res.Assignment, -0.1, 10, 1, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := p.YieldStudy(res.Assignment, 0.1, 0, 1, 1); err == nil {
		t.Error("zero samples accepted")
	}
}
