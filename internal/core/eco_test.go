package core

import (
	"testing"

	"cmosopt/internal/circuit"
)

// editCircuit appends a small output-side cone to an existing circuit,
// mimicking a typical ECO.
func editCircuit(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder(c.Name)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	newID := make([]int, c.N())
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == circuit.Input {
			newID[id] = b.Input(g.Name)
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = newID[f]
		}
		newID[id] = b.Gate(g.Type, g.Name, fanin...)
	}
	for _, po := range c.POs {
		b.Output(newID[po])
	}
	// The edit: two extra gates watching the first two outputs.
	x := b.Gate(circuit.Xor, "eco_x", newID[c.POs[0]], newID[c.POs[1]])
	y := b.Gate(circuit.Not, "eco_y", x)
	b.Output(y)
	nc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

func TestWarmStartReusesAndStaysFeasible(t *testing.T) {
	base := s298(t)
	p1 := problemFor(t, base, 0.5)
	res1, err := p1.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	edited := editCircuit(t, p1.C)
	p2 := problemFor(t, edited, 0.5)
	res2, reused, fast, err := p2.WarmStart(p1.C, res1.Assignment, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Feasible {
		t.Fatal("ECO result infeasible")
	}
	if reused < p1.C.NumLogic()*9/10 {
		t.Errorf("only %d/%d gates reused", reused, p1.C.NumLogic())
	}
	if fast {
		// The fast path must be dramatically cheaper than a full rerun.
		if res2.Evaluations > res1.Evaluations/10 {
			t.Errorf("warm start used %d evaluations vs full %d", res2.Evaluations, res1.Evaluations)
		}
		// And not grossly worse in energy: the transplanted point is the old
		// optimum plus a small cone.
		if res2.Energy.Total() > res1.Energy.Total()*1.5 {
			t.Errorf("warm energy %v vs original %v", res2.Energy.Total(), res1.Energy.Total())
		}
	}
	if res2.CriticalDelay > p2.CycleBudget() {
		t.Error("cycle time violated")
	}
}

func TestWarmStartFallsBackWhenHopeless(t *testing.T) {
	// Previous design from a slow clock transplanted onto a much faster
	// target: the widths/voltages no longer fit, forcing the full flow.
	base := smallCircuit(t)
	slow := specFor(base, 0.5)
	slow.Fc = 50e6
	pSlow, err := NewProblem(slow)
	if err != nil {
		t.Fatal(err)
	}
	resSlow, err := pSlow.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast := specFor(base, 0.5)
	fast.Fc = 400e6
	pFast, err := NewProblem(fast)
	if err != nil {
		t.Fatal(err)
	}
	res, _, fastPath, err := pFast.WarmStart(pSlow.C, resSlow.Assignment, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fastPath {
		// Acceptable only if genuinely feasible (widths could stretch).
		if !res.Feasible {
			t.Error("fast path returned infeasible design")
		}
	} else if res.Method != "eco-full" {
		t.Errorf("fallback method = %q", res.Method)
	}
	if !res.Feasible {
		t.Error("final ECO result infeasible")
	}
}

func TestWarmStartValidation(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	if _, _, _, err := p.WarmStart(nil, nil, DefaultOptions()); err == nil {
		t.Error("nil previous design accepted")
	}
}
