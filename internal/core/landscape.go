package core

import (
	"fmt"
	"math"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// Landscape samples the constrained energy surface E*(V_dd, V_ts) — the
// total energy after the width solve, +Inf where the timing constraint
// cannot be met — on a grid over the technology's search ranges. It makes
// the §3 physics visible: the feasibility wall at low supply, the leakage
// cliff at low threshold, and the unique interior optimum where they
// balance.
type Landscape struct {
	Vdd []float64   // grid abscissae (rows) //cmosvet:unit V
	Vts []float64   // grid ordinates (columns) //cmosvet:unit V
	E   [][]float64 // E[i][j] at (Vdd[i], Vts[j]); +Inf = infeasible //cmosvet:unit J
}

// SampleLandscape evaluates an nVdd × nVts grid. Each sample is a full
// width solve, so keep the grid modest (8×8 ≈ one Procedure 2 run). Cells
// are independent and fan out over opts.Workers engine clones; the grid is
// byte-identical at any worker count.
func (p *Problem) SampleLandscape(nVdd, nVts int, opts Options) (*Landscape, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if nVdd < 2 || nVts < 2 {
		return nil, fmt.Errorf("core: landscape grid %dx%d too small", nVdd, nVts)
	}
	ls := &Landscape{
		Vdd: optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}.Linspace(nVdd),
		Vts: optimize.Range{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax}.Linspace(nVts),
	}
	ls.E = make([][]float64, nVdd)
	for i := range ls.E {
		ls.E[i] = make([]float64, nVts)
	}
	p.mapEval(opts.Workers, nVdd*nVts, func(c *evalCtx, k int) {
		i, j := k/nVts, k%nVts
		e, _, ok := c.evalPoint(ls.Vdd[i], ls.Vts[j], &opts)
		if !ok {
			e = math.Inf(1)
		}
		ls.E[i][j] = e
	})
	return ls, nil
}

// Min returns the grid minimum and its coordinates; ok is false when the
// whole grid is infeasible.
//
//cmosvet:unit return1 V
//cmosvet:unit return2 V
//cmosvet:unit return3 J
func (l *Landscape) Min() (vdd, vts, e float64, ok bool) {
	e = math.Inf(1)
	for i := range l.E {
		for j, v := range l.E[i] {
			if v < e {
				e = v
				vdd, vts = l.Vdd[i], l.Vts[j]
				ok = true
			}
		}
	}
	return vdd, vts, e, ok
}

// FeasibleFraction reports how much of the grid meets timing.
//
//cmosvet:unit return 1
func (l *Landscape) FeasibleFraction() float64 {
	total, feas := 0, 0
	for i := range l.E {
		for _, v := range l.E[i] {
			total++
			if !math.IsInf(v, 1) {
				feas++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(feas) / float64(total)
}

// PolishNelderMead refines an optimizer result with a bounded downhill
// simplex over (V_dd, V_ts), the width solver underneath — an alternative to
// the golden-section polish for the steering ablation. The returned result
// is never worse than the input.
func (p *Problem) PolishNelderMead(res *Result, opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(res.VtsValues) != 1 {
		return res, nil // only single-threshold results have a 2-D surface
	}
	evals0 := p.Eval.FullEvalEquivalents()
	bestE := res.Energy.Total()
	var bestA *design.Assignment
	obj := func(x []float64) float64 {
		e, a, ok := p.evalPoint(x[0], x[1], &opts)
		if !ok {
			return math.Inf(1)
		}
		if e < bestE {
			bestE, bestA = e, a
		}
		return e
	}
	bounds := []optimize.Range{
		{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax},
		{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax},
	}
	optimize.NelderMead(obj, []float64{res.Vdd, res.VtsValues[0]}, bounds, 0.05, 1e-18, 60)
	if bestA == nil {
		return res, nil
	}
	out := p.finishResult(res.Method+"+nm", bestA, true, evals0)
	out.Objective = bestE
	out.Evaluations += res.Evaluations
	return out, nil
}
