package core

import (
	"math"
	"sort"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// OptimizeDualVdd exercises the paper's other §4 flexibility: "more than one
// … power supply voltage if desired". The practical scheme is clustered
// voltage scaling: a second, lower supply rail for gates with timing slack,
// subject to the structural rule that a low-rail gate may only drive
// low-rail gates or primary outputs — a reduced-swing signal into a
// full-rail gate would leave its PMOS half-on (level converters, which the
// simple scheme avoids, would otherwise be required).
//
// The algorithm: start from the single-supply joint optimum and measure each
// gate's realized slack there; then run a two-dimensional (high rail, low
// rail) search — for each candidate pair, grow the low-rail cluster from the
// outputs backwards (a gate joins only when its slack absorbs the estimated
// slowdown and every fanout is already on the low rail), re-solve all widths,
// and keep the best feasible point. Splits that collapse to a single rail
// are reported as such.
func (p *Problem) OptimizeDualVdd(opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	base, err := p.OptimizeJoint(opts)
	if err != nil {
		return nil, err
	}
	evals0 := p.Eval.FullEvalEquivalents()

	node := p.span("optimize.dualvdd")
	nT := node.Start()
	defer nT.Stop()
	oldTrace := p.setTrace(node)
	defer p.setTrace(oldTrace)

	ids, err := p.C.LogicIDs()
	if err != nil {
		return nil, err
	}
	// Engine scratch, consumed immediately below.
	td := p.Eval.Delays(base.Assignment)
	slackFrac := make([]float64, p.C.N())
	for _, id := range ids {
		if b := p.Budgets.TMax[id]; b > 0 {
			slackFrac[id] = (b - td[id]) / b
		}
	}

	baseVt := base.VtsValues[0]
	n := p.C.N()
	vddR := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}
	order, err := p.C.TopoOrder()
	if err != nil {
		return nil, err
	}

	// delayScale estimates how much slower a gate gets when its rail moves
	// from the base supply to v: delay ∝ Vdd / I_D(Vdd).
	delayScale := func(v float64) float64 {
		baseD := base.Vdd / p.Tech.IdUnit(base.Vdd, baseVt)
		return (v / p.Tech.IdUnit(v, baseVt)) / baseD
	}

	// cluster grows the low-rail set output-first (reverse topological order
	// so a gate's fanouts are decided before the gate itself): a gate joins
	// only when its estimated slack at the candidate rails absorbs the
	// slowdown with margin, and every fanout is already on the low rail —
	// the no-low-drives-high rule.
	inLow := make([]bool, n)
	cluster := func(high, low float64) int {
		_ = delayScale(high) // high-rail gates only get faster; no test needed
		rLow := delayScale(low)
		members := 0
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			g := p.C.Gate(id)
			inLow[id] = false
			if !g.IsLogic() {
				continue
			}
			// The slowed gate must still fit its absolute Procedure 1
			// budget: delay·rLow ≤ budget·(1 − margin), i.e.
			// (1 − slack)·rLow ≤ 0.95. Width re-growth in the solve below
			// recovers part of the slowdown, so this is conservative.
			if (1-slackFrac[id])*rLow > 0.95 {
				continue
			}
			eligible := true
			for _, f := range g.Fanout {
				if !inLow[f] {
					eligible = false
					break
				}
			}
			if eligible {
				inLow[id] = true
				members++
			}
		}
		return members
	}

	evalRails := func(highVdd, lowVdd float64) (float64, *design.Assignment, bool) {
		rT := node.StartChild("rail-point")
		defer rT.Stop()
		if cluster(highVdd, lowVdd) == 0 {
			return math.Inf(1), nil, false
		}
		a := design.Uniform(n, highVdd, baseVt, p.Tech.WMin)
		a.VddPer = make([]float64, n)
		for i := range a.VddPer {
			a.VddPer[i] = highVdd
		}
		for _, id := range ids {
			if inLow[id] {
				a.VddPer[id] = lowVdd
			}
		}
		if !p.solveWidths(a, opts.M, opts.WidthPasses) {
			return math.Inf(1), a, false
		}
		return p.Eval.Energy(a).Total(), a, true
	}

	// Two-dimensional search: the single-rail optimum is already the lowest
	// supply the critical gates tolerate, so a profitable split usually
	// *raises* the high rail a little (buying the critical gates speed at a
	// quadratic cost on few gates) while dropping the slack cluster's rail
	// well below. Coarse grid, then a golden polish of the low rail at the
	// best high rail.
	bestE := base.Energy.Total()
	var bestA *design.Assignment
	bestHigh := base.Vdd
	for _, hf := range []float64{1.0, 1.15, 1.3, 1.5} {
		if err := p.Canceled(); err != nil {
			return nil, err
		}
		high := vddR.Clamp(base.Vdd * hf)
		for _, lf := range []float64{0.45, 0.55, 0.65, 0.75, 0.85} {
			if err := p.Canceled(); err != nil {
				return nil, err
			}
			low := vddR.Clamp(high * lf)
			if e, a, ok := evalRails(high, low); ok && e < bestE {
				bestE, bestA, bestHigh = e, a, high
			}
		}
	}
	if bestA != nil {
		lowR := optimize.Range{Lo: vddR.Lo, Hi: bestHigh}
		optimize.GoldenSection(func(v float64) float64 {
			e, a, ok := evalRails(bestHigh, v)
			if ok && e < bestE {
				bestE, bestA = e, a
			}
			if !ok {
				return math.Inf(1)
			}
			return e
		}, optimize.Range{Lo: lowR.Clamp(bestHigh * 0.35), Hi: lowR.Clamp(bestHigh * 0.95)}, 1e-3, 12)
	}

	if bestA == nil {
		return base, nil
	}
	// Collapse degenerate "splits" where every logic gate landed on the same
	// rail (the search is then just reporting a better uniform supply).
	rails := map[float64]bool{}
	for _, id := range ids {
		rails[bestA.VddPer[id]] = true
	}
	method := "dual-vdd"
	if len(rails) == 1 {
		for v := range rails {
			bestA.Vdd = v
		}
		bestA.VddPer = nil
		method = "dual-vdd(collapsed)"
	}
	res := p.finishResult(method, bestA, true, evals0)
	res.Objective = bestE
	res.Evaluations += base.Evaluations
	return res, nil
}

// LowRailShare reports, for a dual-Vdd result, the fraction of logic gates
// on the lower rail and the two rail voltages. It returns ok = false for
// single-rail assignments.
//
//cmosvet:unit return1 1
//cmosvet:unit return2 V
//cmosvet:unit return3 V
func (p *Problem) LowRailShare(r *Result) (frac float64, low, high float64, ok bool) {
	a := r.Assignment
	if a.VddPer == nil {
		return 0, a.Vdd, a.Vdd, false
	}
	// Distinct rails over logic gates only (Input entries are placeholders).
	var rails []float64
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		v := a.VddPer[i]
		seen := false
		for _, u := range rails {
			if math.Abs(u-v) < 1e-9 {
				seen = true
				break
			}
		}
		if !seen {
			rails = append(rails, v)
		}
	}
	if len(rails) < 2 {
		return 0, a.Vdd, a.Vdd, false
	}
	sort.Float64s(rails)
	low, high = rails[0], rails[len(rails)-1]
	total, cnt := 0, 0
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		total++
		if math.Abs(a.VddPer[i]-low) < 1e-9 {
			cnt++
		}
	}
	if total == 0 {
		return 0, low, high, false
	}
	return float64(cnt) / float64(total), low, high, true
}

// CheckRailRule verifies the clustered-voltage-scaling structural rule on an
// assignment: no gate drives a fanout with a strictly higher supply. It
// returns the number of violating edges (0 for legal designs).
func (p *Problem) CheckRailRule(a *design.Assignment) int {
	if a.VddPer == nil {
		return 0
	}
	bad := 0
	for i := range p.C.Gates {
		g := p.C.Gate(i)
		if !g.IsLogic() {
			continue
		}
		for _, f := range g.Fanout {
			if a.VddPer[f] > a.VddPer[i]+1e-9 {
				bad++
			}
		}
	}
	return bad
}
