// Package core implements the paper's power-minimization algorithms: the
// Procedure 1 + Procedure 2 heuristic that jointly selects the module supply
// voltage, one or more threshold voltages and per-gate device widths under a
// cycle-time constraint; the conventional fixed-threshold baseline it is
// compared against (Table 1); a multi-pass simulated-annealing comparator
// (§5); and the process-variation and cycle-slack studies of Figure 2.
package core

import (
	"context"
	"fmt"
	"math"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/eval"
	"cmosopt/internal/obs"
	"cmosopt/internal/power"
	"cmosopt/internal/timing"
	"cmosopt/internal/wiring"
)

// Spec describes one optimization problem instance: the paper's "Given"
// clause (§2).
type Spec struct {
	Circuit *circuit.Circuit // may be sequential; DFFs are cut automatically
	Tech    device.Tech
	Wiring  wiring.Params
	Fc      float64 // required clock frequency //cmosvet:unit Hz
	Skew    float64 // clock-skew derating b ∈ (0,1]; budget is b/Fc //cmosvet:unit 1

	// Input activity: either a uniform (Prob, Density) applied to every
	// primary input, or an explicit per-PI map (by gate name).
	InputProb    float64                       //cmosvet:unit 1
	InputDensity float64                       //cmosvet:unit 1
	Inputs       map[string]activity.InputSpec // optional override

	// Budget repair parameters (see timing.RepairBudgets). Zero values take
	// the defaults kappa = 0.16, gamma = 0.75, which track the delay model's
	// slope coefficient over the search range.
	RepairKappa float64 //cmosvet:unit 1
	RepairGamma float64 //cmosvet:unit 1

	// SampleNets draws an individual wire length per net from the full
	// Davis distribution (deterministically from NetSeed) instead of using
	// the distribution's mean for every net — wire-load variance then
	// reaches the delay and energy models.
	SampleNets bool
	NetSeed    int64

	// CorrelatedActivity replaces the first-order Najm propagation with the
	// correlation-coefficient engine (the paper's [11] direction) for both
	// signal probabilities and transition densities. Quadratic memory in the
	// circuit size; limited to module-scale networks (≤ ~1000 gates).
	CorrelatedActivity bool

	// Obs, when non-nil, collects timing spans, evaluation counters and
	// worker utilization for this problem and every optimizer run on it.
	// Purely observational: attaching a registry never changes any result.
	Obs *obs.Registry

	// Ctx, when non-nil, bounds every optimizer run on the elaborated
	// problem: the long bisection loops poll it between candidate
	// evaluations and abort with a wrapped context error once it is
	// canceled or past its deadline. A run that completes uncanceled is
	// byte-identical to one with no context at all — the polls read, they
	// never steer.
	Ctx context.Context
}

// Problem is a fully elaborated optimization instance: combinational circuit,
// activity profile, wiring model, the evaluation engine, and per-gate delay
// budgets from Procedure 1.
type Problem struct {
	C       *circuit.Circuit
	Tech    device.Tech
	Act     *activity.Profile
	Wire    *wiring.Model
	Eval    *eval.Engine
	Timing  *timing.Analysis
	Budgets *timing.BudgetResult
	Fc      float64 //cmosvet:unit Hz
	Skew    float64 //cmosvet:unit 1

	logicIDs []int           // logic gate IDs in topological order (read-only)
	sctx     *evalCtx        // the problem's own serial evaluation context
	otrace   *obs.Span       // root span of the attached registry (nil without one)
	ctx      context.Context // cancellation bound (never nil; Background without one)
}

// Canceled reports whether the problem's context has been canceled or has
// exceeded its deadline, wrapping the context error so callers can both
// errors.Is it and read which optimizer gave up. Nil while the run may
// continue.
func (p *Problem) Canceled() error {
	if err := p.ctx.Err(); err != nil {
		return fmt.Errorf("core: optimization canceled: %w", err)
	}
	return nil
}

// span returns the named top-level span node for this problem's run — a
// child of the attached registry's root, or nil (every use is a no-op) when
// no registry was attached.
func (p *Problem) span(name string) *obs.Span { return p.otrace.Child(name) }

// setTrace points the serial context's span node at s and returns the prior
// node for the caller to defer-restore; worker contexts cloned while the
// trace is set inherit it, so parallel scans attach to the same node.
func (p *Problem) setTrace(s *obs.Span) *obs.Span {
	old := p.sctx.trace
	p.sctx.trace = s
	return old
}

// NewProblem elaborates a Spec: cuts DFFs, propagates activities, builds the
// wiring and model evaluators, and runs Procedure 1 (with repair) to budget
// every gate.
func NewProblem(s Spec) (*Problem, error) {
	if s.Circuit == nil {
		return nil, fmt.Errorf("core: nil circuit")
	}
	if s.Fc <= 0 {
		return nil, fmt.Errorf("core: clock frequency %v must be positive", s.Fc)
	}
	if s.Skew <= 0 || s.Skew > 1 {
		return nil, fmt.Errorf("core: skew factor %v outside (0,1]", s.Skew)
	}
	if err := s.Tech.Validate(); err != nil {
		return nil, err
	}
	c := s.Circuit
	if c.IsSequential() {
		var err error
		if c, err = c.Combinational(); err != nil {
			return nil, err
		}
	}

	elab := s.Obs.Root().Child("elaborate")
	elabT := elab.Start()
	defer elabT.Stop()

	// Activity profile.
	actT := elab.StartChild("activity")
	specs := make(map[int]activity.InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		specs[id] = activity.InputSpec{Prob: s.InputProb, Density: s.InputDensity}
	}
	for name, is := range s.Inputs {
		g := c.GateByName(name)
		if g == nil || g.Type != circuit.Input {
			return nil, fmt.Errorf("core: input spec for %q does not name a primary input", name)
		}
		specs[g.ID] = is
	}
	act, err := activity.Propagate(c, specs)
	if err != nil {
		return nil, err
	}
	if s.CorrelatedActivity {
		const corrGateLimit = 1000 // O(signals²) memory beyond this
		if n := c.NumLogic(); n > corrGateLimit {
			return nil, fmt.Errorf("core: correlated activity limited to %d gates, circuit has %d", corrGateLimit, n)
		}
		corr, err := activity.CorrelatedProbabilities(c, specs)
		if err != nil {
			return nil, err
		}
		act = &activity.Profile{Prob: corr.Prob, Density: corr.Density}
	}
	actT.Stop()

	wire, err := wiring.New(s.Wiring, max(c.NumLogic(), 1))
	if err != nil {
		return nil, err
	}
	if s.SampleNets {
		wire.SampleNets(c.N(), s.NetSeed)
	}
	ta, err := timing.NewAnalysis(c)
	if err != nil {
		return nil, err
	}

	budget := s.Skew / s.Fc
	p1T := elab.StartChild("procedure1")
	bres, err := timing.AssignBudgets(ta, budget)
	if err != nil {
		return nil, err
	}
	// Defaults track the slope coefficient of the delay model over the
	// search range (≈0.08–0.16 for this technology's α).
	kappa, gamma := s.RepairKappa, s.RepairGamma
	if kappa == 0 {
		kappa = 0.16
	}
	if gamma == 0 {
		gamma = 0.75
	}
	if _, err := timing.RepairBudgets(ta, bres, kappa, gamma); err != nil {
		return nil, err
	}
	p1T.Stop()

	p := &Problem{
		C:       c,
		Tech:    s.Tech,
		Act:     act,
		Wire:    wire,
		Timing:  ta,
		Budgets: bres,
		Fc:      s.Fc,
		Skew:    s.Skew,
	}
	if p.Eval, err = eval.New(c, &p.Tech, act, wire, s.Fc); err != nil {
		return nil, err
	}
	if p.logicIDs, err = c.LogicIDs(); err != nil {
		return nil, err
	}
	p.otrace = s.Obs.Root()
	p.ctx = s.Ctx
	if p.ctx == nil {
		p.ctx = context.Background()
	}
	p.Eval.AttachObs(s.Obs)
	p.sctx = &evalCtx{p: p, eng: p.Eval}
	p.repairUnreachableBudgets()
	return p, nil
}

// CycleBudget returns the skew-derated cycle time b·T_c.
//
//cmosvet:unit return s
func (p *Problem) CycleBudget() float64 { return p.Skew / p.Fc }

// Evaluations returns the full-circuit-evaluation-equivalent work performed
// so far (the unit of the paper's O(M³) complexity claim): every single-gate
// delay-model call — full sweeps, width-bisection probes, incremental cone
// updates — counts as 1/M of a full circuit evaluation.
func (p *Problem) Evaluations() int { return int(math.Round(p.Eval.FullEvalEquivalents())) }

// Result is the outcome of one optimization run.
type Result struct {
	Method        string
	Assignment    *design.Assignment
	Energy        power.Breakdown // per-cycle energy at the solution
	CriticalDelay float64         // achieved critical path delay //cmosvet:unit s
	Feasible      bool            // critical delay ≤ b·T_c with all budgets met
	Vdd           float64         //cmosvet:unit V
	VtsValues     []float64       // distinct threshold voltages in use //cmosvet:unit V
	Evaluations   int             // full-circuit evaluations consumed by this run
	// Objective is the energy metric the optimizer minimized: equal to
	// Energy.Total() at nominal corners, and the worst-case (leaky-corner)
	// energy in variation studies.
	Objective float64 //cmosvet:unit J
}

// Savings returns the total-energy ratio other/this (how many times less
// energy this result consumes than other).
//
//cmosvet:unit return 1
func (r *Result) Savings(other *Result) float64 {
	t := r.Energy.Total()
	if t <= 0 {
		return math.Inf(1)
	}
	return other.Energy.Total() / t
}

func (p *Problem) finishResult(method string, a *design.Assignment, feasible bool, evalsBefore float64) *Result {
	e := p.Eval.Energy(a)
	defer p.Eval.FlushObs()
	return &Result{
		Method:        method,
		Assignment:    a,
		Energy:        e,
		CriticalDelay: p.Eval.CriticalDelay(a),
		Feasible:      feasible && p.Eval.CriticalDelay(a) <= p.CycleBudget()*(1+1e-9),
		Vdd:           a.Vdd,
		VtsValues:     p.distinctLogicVts(a),
		Evaluations:   int(math.Round(p.Eval.FullEvalEquivalents() - evalsBefore)),
		Objective:     e.Total(),
	}
}

// distinctLogicVts returns the set of distinct thresholds actually used by
// logic gates (Input-gate placeholder entries are ignored).
//
//cmosvet:unit return V
func (p *Problem) distinctLogicVts(a *design.Assignment) []float64 {
	const tol = 1e-9
	var out []float64
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		v := a.Vts[i]
		seen := false
		for _, u := range out {
			if math.Abs(u-v) < tol {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}
