package core

import (
	"reflect"
	"runtime"
	"testing"
)

// workerCounts are the fan-out widths every invariance test compares: serial,
// two workers (forces real interleaving even on a 1-CPU host), four, and
// whatever the host actually has.
func workerCounts() []int {
	ws := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 1 && n != 2 && n != 4 {
		ws = append(ws, n)
	}
	return ws
}

// The parallel layer's contract is byte-identity, not mere closeness: every
// reduction happens in index order and every worker owns its mutable state,
// so the same bits must come out at any worker count. These tests pin that
// contract (and, under -race, double as data-race probes for the shared
// engine state).

func TestSampleLandscapeWorkerInvariance(t *testing.T) {
	c := smallCircuit(t)
	var ref *Landscape
	for _, w := range workerCounts() {
		p := problemFor(t, c, 0.5)
		opts := DefaultOptions()
		opts.Workers = w
		ls, err := p.SampleLandscape(6, 6, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = ls
			continue
		}
		if !reflect.DeepEqual(ls, ref) {
			t.Errorf("workers=%d: landscape differs from serial grid", w)
		}
	}
}

func TestYieldStudyWorkerInvariance(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var ref *YieldResult
	for _, w := range workerCounts() {
		y, err := p.YieldStudy(res.Assignment, 0.1, 100, 42, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = y
			continue
		}
		if *y != *ref {
			t.Errorf("workers=%d: yield result %+v differs from serial %+v", w, y, ref)
		}
	}
}

func TestOptimizeJointRefineWorkerInvariance(t *testing.T) {
	c := smallCircuit(t)
	var ref *Result
	for _, w := range workerCounts() {
		p := problemFor(t, c, 0.5)
		opts := DefaultOptions()
		opts.Workers = w
		opts.Refine = true
		res, err := p.OptimizeJoint(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		// Everything must match bit for bit — including the effort counter,
		// which speculative evaluation bills on-path only.
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d: result differs from serial\n got %+v\nwant %+v", w, res, ref)
		}
	}
}

func TestEDPStudyWorkerInvariance(t *testing.T) {
	c := smallCircuit(t)
	fcs := []float64{100e6, 200e6, 400e6}
	var refPts []EDPPoint
	refBest := -1
	for _, w := range workerCounts() {
		opts := DefaultOptions()
		opts.Workers = w
		pts, best, err := EDPStudy(specFor(c, 0.5), fcs, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if refPts == nil {
			refPts, refBest = pts, best
			continue
		}
		if best != refBest || !reflect.DeepEqual(pts, refPts) {
			t.Errorf("workers=%d: EDP sweep differs from serial", w)
		}
	}
}

func TestVariationStudyWorkerInvariance(t *testing.T) {
	c := smallCircuit(t)
	tols := []float64{0, 0.1, 0.2}
	var ref []VariationPoint
	for _, w := range workerCounts() {
		p := problemFor(t, c, 0.5)
		base, err := p.OptimizeBaseline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Workers = w
		pts, err := p.VariationStudy(tols, opts, base)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = pts
			continue
		}
		if !reflect.DeepEqual(pts, ref) {
			t.Errorf("workers=%d: variation sweep differs from serial", w)
		}
	}
}
