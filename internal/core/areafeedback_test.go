package core

import "testing"

func TestOptimizeAreaAwareConverges(t *testing.T) {
	spec := specFor(s298(t), 0.5)
	aa, err := OptimizeAreaAware(spec, DefaultOptions(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !aa.Result.Feasible {
		t.Fatal("area-aware result infeasible")
	}
	if aa.Iterations < 1 || aa.Iterations > 5 {
		t.Errorf("iterations = %d", aa.Iterations)
	}
	// Widths average above 1, so the converged pitch is above nominal but
	// bounded (the loop must not run away).
	if aa.PitchRatio < 1.0 || aa.PitchRatio > 2.0 {
		t.Errorf("pitch ratio %v implausible", aa.PitchRatio)
	}
	// The honest (longer-wire) energy is at least the fixed-pitch figure.
	p, err := NewProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if aa.Result.Energy.Total() < fixed.Energy.Total()*0.98 {
		t.Errorf("area-aware energy %v implausibly below fixed-pitch %v",
			aa.Result.Energy.Total(), fixed.Energy.Total())
	}
}

func TestOptimizeAreaAwareValidation(t *testing.T) {
	spec := specFor(smallCircuit(t), 0.5)
	if _, err := OptimizeAreaAware(spec, DefaultOptions(), 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
	if _, err := OptimizeAreaAware(spec, DefaultOptions(), 50); err == nil {
		t.Error("maxIter=50 accepted")
	}
	bad := spec
	bad.Fc = 0
	if _, err := OptimizeAreaAware(bad, DefaultOptions(), 3); err == nil {
		t.Error("bad spec accepted")
	}
}
