package core

import (
	"fmt"
	"math"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// Sensitivity-based sizing, in the TILOS tradition (the greedy ancestor of
// the exact convex sizing of the paper's reference [10], Sapatnekar et al.).
// Where Procedure 2's inner loop sizes each gate against a precomputed
// Procedure 1 delay budget, the sensitivity sizer needs no budgets at all:
// starting from minimum widths, it repeatedly upsizes the gate on the
// current critical path with the best delay improvement per unit of width,
// until the whole circuit meets the cycle time. It serves as a comparator
// for the ablation "budget-driven vs sensitivity-driven sizing".

// sizeSensitivity grows widths greedily until the critical delay fits the
// cycle budget. Returns false when even aggressive upsizing cannot meet it.
//
// The loop runs on the engine's incremental mode: the assignment is bound
// once, each accepted move re-times only the widened gate's fanin loads and
// fanout cone, and candidate moves are scored with width-override probes —
// no full-circuit sweep per iteration and no mutate-and-restore on a.W.
func (p *Problem) sizeSensitivity(a *design.Assignment, step float64) bool {
	budget := p.CycleBudget()
	ids, err := p.C.LogicIDs()
	if err != nil {
		return false
	}
	p.Eval.Bind(a)
	defer p.Eval.Unbind()
	const maxIters = 4000
	for iter := 0; iter < maxIters; iter++ {
		cd := p.Eval.BoundCriticalDelay()
		if cd <= budget {
			return true
		}
		if math.IsInf(cd, 1) {
			return false
		}
		// Gates on (near-)critical paths: those with arrival + downstream
		// criticality close to cd. Use slacks for the candidate set.
		slack := p.Eval.BoundSlacks(budget)
		td := p.Eval.BoundDelays()
		bestGate, bestGain := -1, 0.0
		for _, id := range ids {
			if slack[id] > 0 || a.W[id] >= p.Tech.WMax {
				continue
			}
			old := a.W[id]
			next := min(old*(1+step), p.Tech.WMax)
			// Local sensitivity: delay change of the gate itself plus the
			// loading penalty on its drivers, per width increment.
			before := p.localDelay(a, id, td, -1, 0)
			after := p.localDelay(a, id, td, id, next)
			gain := (before - after) / (next - old)
			if gain > bestGain {
				bestGain, bestGate = gain, id
			}
		}
		if bestGate < 0 {
			return false // no improving move left
		}
		p.Eval.SetWidth(bestGate, min(a.W[bestGate]*(1+step), p.Tech.WMax))
	}
	return p.Eval.BoundCriticalDelay() <= budget
}

// localDelay scores the timing cost of gate id and its fanin drivers (whose
// loads it contributes to), using the current per-gate delays for slope
// inputs — a cheap local proxy for the global critical delay change. When
// ov ≥ 0, gate ov's width is taken as wOv wherever it appears (its own
// switching width and the load it presents to its drivers).
func (p *Problem) localDelay(a *design.Assignment, id int, td []float64, ov int, wOv float64) float64 {
	g := p.C.Gate(id)
	maxIn := 0.0
	for _, f := range g.Fanin {
		if td[f] > maxIn {
			maxIn = td[f]
		}
	}
	sum := p.Eval.GateDelayOverride(id, a, ov, wOv, maxIn)
	for _, f := range g.Fanin {
		d := p.C.Gate(f)
		if !d.IsLogic() {
			continue
		}
		dIn := 0.0
		for _, ff := range d.Fanin {
			if td[ff] > dIn {
				dIn = td[ff]
			}
		}
		sum += p.Eval.GateDelayOverride(f, a, ov, wOv, dIn)
	}
	return sum
}

// OptimizeJointSensitivity runs the outer Procedure 2 voltage bisections
// with the sensitivity sizer in place of the budget-driven width solver.
func (p *Problem) OptimizeJointSensitivity(opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	evals0 := p.Eval.FullEvalEquivalents()
	const step = 0.25

	node := p.span("optimize.sensitivity")
	nT := node.Start()
	defer nT.Stop()

	bestE := math.Inf(1)
	var bestA *design.Assignment
	eval := func(vdd, vts float64) (float64, bool) {
		a := design.Uniform(p.C.N(), vdd, vts, p.Tech.WMin)
		szT := node.StartChild("size")
		ok := p.sizeSensitivity(a, step)
		szT.Stop()
		if !ok {
			return math.Inf(1), false
		}
		e := p.Eval.Energy(a).Total()
		if e < bestE {
			bestE, bestA = e, a
		}
		return e, true
	}

	vddR := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}
	prevV := math.Inf(1)
	for i := 0; i < opts.M; i++ {
		if err := p.Canceled(); err != nil {
			return nil, err
		}
		vdd := vddR.Mid()
		vtsR := optimize.Range{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax}
		prevT := math.Inf(1)
		bestHere := math.Inf(1)
		for j := 0; j < opts.M; j++ {
			if err := p.Canceled(); err != nil {
				return nil, err
			}
			vts := vtsR.Mid()
			e, ok := eval(vdd, vts)
			if e < bestHere {
				bestHere = e
			}
			if ok && e <= prevT {
				vtsR = vtsR.Higher()
			} else {
				vtsR = vtsR.Lower()
			}
			if e < prevT {
				prevT = e
			}
		}
		if !math.IsInf(bestHere, 1) && bestHere <= prevV {
			vddR = vddR.Lower()
		} else {
			vddR = vddR.Higher()
		}
		if bestHere < prevV {
			prevV = bestHere
		}
	}
	if bestA == nil {
		return nil, fmt.Errorf("core: sensitivity sizing found no feasible point for %q", p.C.Name)
	}
	res := p.finishResult("joint-sensitivity", bestA, true, evals0)
	res.Objective = bestE
	return res, nil
}
