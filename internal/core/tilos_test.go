package core

import (
	"testing"

	"cmosopt/internal/design"
)

func TestSensitivitySizerMeetsTiming(t *testing.T) {
	p := problemFor(t, smallCircuit(t), 0.5)
	a := design.Uniform(p.C.N(), 1.0, 0.15, p.Tech.WMin)
	if !p.sizeSensitivity(a, 0.25) {
		t.Fatal("sizer failed at a comfortable operating point")
	}
	if cd := p.Eval.CriticalDelay(a); cd > p.CycleBudget() {
		t.Errorf("critical delay %v exceeds budget %v", cd, p.CycleBudget())
	}
	// Widths stay in range.
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		if a.W[i] < p.Tech.WMin || a.W[i] > p.Tech.WMax {
			t.Fatalf("gate %d width %v out of range", i, a.W[i])
		}
	}
}

func TestSensitivitySizerReportsInfeasible(t *testing.T) {
	s := specFor(smallCircuit(t), 0.5)
	s.Fc = 20e9
	p, err := NewProblem(s)
	if err != nil {
		t.Fatal(err)
	}
	a := design.Uniform(p.C.N(), 3.3, 0.1, p.Tech.WMin)
	if p.sizeSensitivity(a, 0.25) {
		t.Error("20 GHz accepted")
	}
}

func TestJointSensitivityComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy sizing across the voltage grid is slow")
	}
	p := problemFor(t, s298(t), 0.5)
	budget, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.M = 8 // the greedy sizer is costlier per point
	sens, err := p.OptimizeJointSensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if !sens.Feasible {
		t.Fatal("sensitivity result infeasible")
	}
	if sens.CriticalDelay > p.CycleBudget() {
		t.Error("cycle time violated")
	}
	// The two sizing philosophies should land within ~2x of each other —
	// they search the same (Vdd, Vt) space with different width policies.
	r := sens.Energy.Total() / budget.Energy.Total()
	if r > 2.0 || r < 0.5 {
		t.Errorf("sensitivity/budget energy ratio %v outside [0.5, 2]", r)
	}
	t.Logf("budget-driven %.3e J vs sensitivity-driven %.3e J (ratio %.2f)",
		budget.Energy.Total(), sens.Energy.Total(), r)
}
