package core

import "testing"

func TestEDPStudyShape(t *testing.T) {
	spec := specFor(smallCircuit(t), 0.5)
	fcs := []float64{50e6, 150e6, 300e6, 600e6}
	pts, best, err := EDPStudy(spec, fcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("only %d feasible samples", len(pts))
	}
	if best < 0 || best >= len(pts) {
		t.Fatalf("best index %d out of range", best)
	}
	for i, pt := range pts {
		if pt.EDP <= 0 {
			t.Errorf("sample %d EDP %v", i, pt.EDP)
		}
		if pt.EDP < pts[best].EDP {
			t.Errorf("best index wrong: sample %d has %v < %v", i, pt.EDP, pts[best].EDP)
		}
	}
	// Energy per cycle must fall as the clock relaxes (more room to scale
	// voltages), which is what creates the interior EDP trade-off: the
	// slowest target (first sample) spends the least energy per cycle.
	first, last := pts[0], pts[len(pts)-1]
	if first.Fc < last.Fc && first.Result.Energy.Total() >= last.Result.Energy.Total() {
		t.Errorf("energy did not fall with relaxed clock: %v@%v vs %v@%v",
			first.Result.Energy.Total(), first.Fc, last.Result.Energy.Total(), last.Fc)
	}
}

func TestEDPStudySkipsInfeasibleTargets(t *testing.T) {
	spec := specFor(s298(t), 0.5)
	pts, best, err := EDPStudy(spec, []float64{300e6, 50e9}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("expected the 50 GHz target to be skipped, got %d samples", len(pts))
	}
	if best != 0 {
		t.Errorf("best = %d", best)
	}
}

func TestEDPStudyErrors(t *testing.T) {
	spec := specFor(smallCircuit(t), 0.5)
	if _, _, err := EDPStudy(spec, nil, DefaultOptions()); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, _, err := EDPStudy(spec, []float64{50e9}, DefaultOptions()); err == nil {
		t.Error("all-infeasible sweep accepted")
	}
	bad := spec
	bad.Skew = -1
	if _, _, err := EDPStudy(bad, []float64{300e6}, DefaultOptions()); err == nil {
		t.Error("bad spec accepted")
	}
}
