package core

import (
	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// solveWidths is the innermost loop of Procedure 2: for the supply and
// threshold voltages already set in a, find for every gate the smallest width
// in [WMin, WMax] whose delay meets the gate's Procedure 1 budget, by binary
// search (delay is monotone decreasing in the gate's own width).
//
// A gate's delay also depends on its fanouts' widths (load) and its fanin
// gates' delays (slope term), so one topological sweep is not a fixed point;
// the sweep is iterated up to `passes` times or until widths stop changing.
// passes = 1 reproduces the paper's literal single-pass Procedure 2 (kept for
// the ablation benchmark); the default in Options is a small fixed-point
// iteration, which strictly dominates it.
//
// It returns true only if, after the final sweep, a full delay recomputation
// meets every budget. Widths are left in a (best effort) either way.
//
// solveWidths runs on an evalCtx so that parallel drivers can solve
// independent candidates on worker engine clones; the Problem method below
// is the serial entry point over the main engine.
func (p *Problem) solveWidths(a *design.Assignment, mSteps, passes int) bool {
	return p.sctx.solveWidths(a, mSteps, passes)
}

func (c *evalCtx) solveWidths(a *design.Assignment, mSteps, passes int) bool {
	p := c.p
	ids := p.logicIDs
	budget := p.Budgets.TMax
	wRange := optimize.Range{Lo: p.Tech.WMin, Hi: p.Tech.WMax}
	if c.wtd == nil {
		c.wtd = make([]float64, p.C.N())
	}
	td := c.wtd

	// The per-gate search targets a slightly tightened budget so the small
	// delay drift caused by fanouts widening in later sweeps (a gate's load)
	// cannot push an exactly-met budget into violation; the final
	// verification below uses the true budgets.
	const searchMargin = 0.97

	for pass := 0; pass < passes; pass++ {
		changed := false
		for i := range td {
			td[i] = 0
		}
		for _, id := range ids {
			g := p.C.Gate(id)
			maxIn := 0.0
			for _, f := range g.Fanin {
				if td[f] > maxIn {
					maxIn = td[f]
				}
			}
			target := budget[id] * searchMargin
			pred := func(w float64) bool {
				return c.eng.ProbeWidth(id, a, w, maxIn) <= target
			}
			w, ok := optimize.MinSatisfying(wRange, mSteps, pred)
			if !ok {
				// The budget is unreachable at any width (a squeezed
				// Procedure 1 target; the paper repairs such assignments in
				// §4.2's post-processing). Take the smallest width within
				// 10 % of the best achievable delay instead of paying the
				// full WMax energy; the cycle-time check below still
				// guards the real constraint.
				dBest := c.eng.ProbeWidth(id, a, wRange.Hi, maxIn)
				w, _ = optimize.MinSatisfying(wRange, mSteps, func(wc float64) bool {
					return c.eng.ProbeWidth(id, a, wc, maxIn) <= dBest*1.1
				})
				// The change detection below measures against the width the
				// gate ends the search with; on this path that was WMax.
				a.W[id] = wRange.Hi
			}
			if rel := w - a.W[id]; rel > 1e-3*a.W[id] || rel < -1e-3*a.W[id] {
				changed = true
			}
			a.W[id] = w
			td[id] = c.eng.GateDelayWith(id, a, maxIn)
		}
		if !changed {
			break
		}
	}
	// Budgets are verified with a small relative tolerance: the width
	// fixed-point leaves each gate within a couple of percent of its target
	// (neighbor widths shift after a gate is sized), and a uniform ε-overrun
	// of per-gate budgets perturbs path sums by at most the same ε. The
	// strict cycle-time constraint is re-checked on the final result.
	const budgetTol = 1.03
	final := c.eng.Delays(a)
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		if final[i] > budget[i]*budgetTol {
			return false
		}
	}
	return true
}
