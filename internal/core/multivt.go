package core

import (
	"fmt"
	"math"
	"sort"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// OptimizeMultiVt exercises the paper's n_v > 1 option: instead of one
// threshold for the whole module, gates are partitioned into nv groups and
// each group receives its own threshold voltage (physically: extra implant
// masks or distinct tub biases, Figure 1).
//
// The algorithm starts from the single-threshold joint optimum, partitions
// the logic gates into nv groups by their *realized* timing slack at that
// optimum (gates sitting on their budgets — the critical ones — go to the
// low-threshold group; gates with slack go to high-threshold groups where
// trading speed for leakage is free), then runs coordinate descent over the
// group thresholds with golden-section line searches, re-solving all widths
// at every trial point. V_dd stays at the single-Vt optimum's value, then
// gets one final golden-section polish.
//
// The 11-point grid pre-scan of each coordinate-descent line search fans its
// candidates out over opts.Workers engine clones; the sequential
// golden-section polish stays on the main engine. Results are identical at
// any worker count.
func (p *Problem) OptimizeMultiVt(nv int, opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if nv < 1 || nv > 8 {
		return nil, fmt.Errorf("core: nv = %d outside [1,8]", nv)
	}
	base, err := p.OptimizeJoint(opts)
	if err != nil {
		return nil, err
	}
	if nv == 1 {
		return base, nil
	}
	evals0 := p.Eval.FullEvalEquivalents()

	node := p.span("optimize.multivt")
	nT := node.Start()
	defer nT.Stop()
	oldTrace := p.setTrace(node.Child("coord-descent"))
	defer p.setTrace(oldTrace)

	// Partition logic gates by realized slack fraction at the single-Vt
	// optimum: group 0 = least slack (most critical). The Delays result is
	// engine scratch, consumed immediately below.
	ids := p.logicIDs
	td := p.Eval.Delays(base.Assignment)
	slackFrac := make([]float64, p.C.N())
	for _, id := range ids {
		b := p.Budgets.TMax[id]
		if b > 0 {
			slackFrac[id] = (b - td[id]) / b
		}
	}
	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		return slackFrac[sorted[i]] < slackFrac[sorted[j]]
	})
	group := make([]int, p.C.N())
	for rank, id := range sorted {
		group[id] = rank * nv / len(sorted)
	}

	vdd := base.Vdd
	baseVt := base.VtsValues[0]
	groupVts := make([]float64, nv)
	for g := range groupVts {
		groupVts[g] = baseVt
	}

	n := p.C.N()
	// evalGroups prices one vector of group thresholds on ctx's engine; the
	// parallel grid scans hand worker contexts fresh gv slices, so the only
	// shared captures (vdd, group, ids) are read-only during a scan.
	evalGroups := func(c *evalCtx, gv []float64) (float64, *design.Assignment, bool) {
		gT := c.trace.StartChild("group-point")
		defer gT.Stop()
		a := design.Uniform(n, vdd, baseVt, p.Tech.WMin)
		for _, id := range ids {
			a.Vts[id] = gv[group[id]]
		}
		if !c.solveWidths(a, opts.M, opts.WidthPasses) {
			return math.Inf(1), a, false
		}
		return c.eng.Energy(a).Total(), a, true
	}

	bestE, bestA, ok := evalGroups(p.sctx, groupVts)
	if !ok {
		// The single-Vt solution is feasible by construction, so this can
		// only be numeric noise; fall back to it.
		return base, nil
	}

	vtR := optimize.Range{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax}
	for sweep := 0; sweep < 3; sweep++ {
		if err := p.Canceled(); err != nil {
			return nil, err
		}
		improved := false
		for g := 0; g < nv; g++ {
			if err := p.Canceled(); err != nil {
				return nil, err
			}
			trial := append([]float64(nil), groupVts...)
			obj := func(vt float64) float64 {
				trial[g] = vt
				e, _, ok := evalGroups(p.sctx, trial)
				if !ok {
					return math.Inf(1)
				}
				return e
			}
			// Grid pre-scan first: most of the threshold range is an
			// infeasible +Inf plateau, which defeats golden-section
			// bracketing on its own. The candidates are independent, so they
			// fan out over worker clones; the argmin reduction walks them in
			// index order, matching GridMin's serial first-strict-minimum.
			cands := vtR.Linspace(11)
			ces := make([]float64, len(cands))
			p.mapEval(opts.Workers, len(cands), func(c *evalCtx, k int) {
				gv := append([]float64(nil), groupVts...)
				gv[g] = cands[k]
				e, _, ok := evalGroups(c, gv)
				if !ok {
					e = math.Inf(1)
				}
				ces[k] = e
			})
			gx, ge := vtR.Lo, math.Inf(1)
			for k, e := range ces {
				if e < ge {
					gx, ge = cands[k], e
				}
			}
			if math.IsInf(ge, 1) {
				continue
			}
			step := vtR.Width() / 10
			local := optimize.Range{Lo: vtR.Clamp(gx - step), Hi: vtR.Clamp(gx + step)}
			v, _ := optimize.GoldenSection(obj, local, 1e-3, 12)
			if obj(v) > ge {
				v = gx
			}
			trial[g] = v
			if e, a, ok := evalGroups(p.sctx, trial); ok && e < bestE {
				bestE, bestA = e, a
				groupVts[g] = v
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	// Final supply polish at the chosen thresholds.
	p.setTrace(node.Child("vdd-polish"))
	vddR := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}
	optimize.GoldenSection(func(v float64) float64 {
		old := vdd
		vdd = v
		e, a, ok := evalGroups(p.sctx, groupVts)
		if ok && e < bestE {
			bestE, bestA = e, a
		} else if !ok {
			vdd = old
		}
		if !ok {
			return math.Inf(1)
		}
		return e
	}, vddR, 5e-3, 12)
	vdd = bestA.Vdd

	if bestE >= base.Energy.Total() {
		return base, nil // never return worse than the nv = 1 solution
	}
	res := p.finishResult(fmt.Sprintf("multi-vt(%d)", nv), bestA, true, evals0)
	res.Objective = bestE
	res.Evaluations += base.Evaluations
	return res, nil
}
