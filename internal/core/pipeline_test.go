package core

import (
	"bytes"
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/netgen"
)

// TestFullPipeline walks the complete user journey in-process: write a
// sequential netlist to .bench text, re-parse it, elaborate the problem (DFF
// cut inside), optimize, save the design to JSON, load it back against a
// *fresh* parse of the same netlist, and verify timing and energy reproduce
// exactly.
func TestFullPipeline(t *testing.T) {
	// 1. A sequential netlist, via the generator + sequentializer, rendered
	// to the interchange format and re-parsed (exactly what a user's file
	// would go through).
	comb, err := netgen.Generate(netgen.Config{Name: "pipe", Gates: 70, Depth: 7, PIs: 5, POs: 4, DFFs: 6}, 77)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := netgen.Sequentialize(comb, 77)
	if err != nil {
		t.Fatal(err)
	}
	text := circuit.BenchString(seq)
	parsed, err := circuit.ParseBenchString("pipe-seq", text)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.IsSequential() {
		t.Fatal("netlist lost its flops in transit")
	}

	// 2. Elaborate and optimize.
	p, err := NewProblem(specFor(parsed, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.OptimizeJoint(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("optimization infeasible")
	}

	// 3. Save the design, then bind it to a completely fresh parse (new gate
	// IDs) via names.
	var buf bytes.Buffer
	if err := design.Save(&buf, p.C, res.Assignment); err != nil {
		t.Fatal(err)
	}
	fresh, err := circuit.ParseBenchString("pipe-seq", text)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProblem(specFor(fresh, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	// The saved file describes the cut circuit; bind against p2.C.
	loaded, err := design.Load(&buf, p2.C)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Verification must reproduce the optimizer's numbers bit-for-bit
	// (same models, same values, different gate numbering).
	cd := p2.Eval.CriticalDelay(loaded)
	if math.Abs(cd-res.CriticalDelay)/res.CriticalDelay > 1e-12 {
		t.Errorf("critical delay %v != optimizer's %v", cd, res.CriticalDelay)
	}
	e := p2.Eval.Energy(loaded)
	if math.Abs(e.Total()-res.Energy.Total())/res.Energy.Total() > 1e-12 {
		t.Errorf("energy %v != optimizer's %v", e.Total(), res.Energy.Total())
	}
	if cd > p2.CycleBudget() {
		t.Error("sign-off failed on a feasible design")
	}
}
