package core

import (
	"fmt"
	"math"
)

// VariationPoint is one sample of the paper's Figure 2(a): power savings as a
// function of the tolerated threshold-voltage process variation.
type VariationPoint struct {
	Tol         float64 // fractional Vt tolerance (0.1 = ±10 %)
	WorstEnergy float64 // worst-case (leaky-corner) per-cycle energy of the optimized design
	Savings     float64 // baseline energy / WorstEnergy
	Vdd         float64
	Vts         float64 // nominal threshold chosen under the corners
	Feasible    bool
}

// VariationStudy reproduces Figure 2(a): for each tolerance, the optimizer is
// re-run with worst-case threshold corners — delays evaluated at the slow
// corner V_ts·(1+tol) so timing is guaranteed across variation, energy at the
// leaky corner V_ts·(1−tol) so the reported power is worst case. Savings are
// measured against the given (nominal, fixed-Vt) baseline, as in the paper.
func (p *Problem) VariationStudy(tols []float64, opts Options, baseline *Result) ([]VariationPoint, error) {
	if baseline == nil || baseline.Energy.Total() <= 0 {
		return nil, fmt.Errorf("core: variation study needs a valid baseline result")
	}
	out := make([]VariationPoint, 0, len(tols))
	for _, tol := range tols {
		if tol < 0 || tol >= 1 {
			return nil, fmt.Errorf("core: Vt tolerance %v outside [0,1)", tol)
		}
		o := opts
		o.fill()
		o.VtTimingFactor = 1 + tol
		o.VtPowerFactor = 1 - tol
		pt := VariationPoint{Tol: tol}
		res, err := p.OptimizeJoint(o)
		if err == nil {
			pt.WorstEnergy = res.Objective
			pt.Savings = baseline.Energy.Total() / res.Objective
			pt.Vdd = res.Vdd
			pt.Vts = res.VtsValues[0]
			pt.Feasible = true
		} else {
			pt.WorstEnergy = math.Inf(1)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SlackPoint is one sample of the paper's Figure 2(b): power savings as a
// function of the available cycle time.
type SlackPoint struct {
	Skew           float64 // skew factor b (available budget = b·T_c)
	JointEnergy    float64
	BaselineEnergy float64
	Savings        float64 // baseline / joint at the same budget
	JointVdd       float64
	JointVts       float64
	Feasible       bool
}

// SlackStudy reproduces Figure 2(b): the joint optimizer is re-run across a
// sweep of clock-skew factors (each skew value changes the usable cycle
// budget b·T_c), and its energy is compared against the *fixed* Table 1
// baseline computed once at the spec's own skew — the same reference the
// paper measures Figure 2 savings against. A fresh Problem is elaborated per
// point because Procedure 1's budgets depend on b.
func SlackStudy(spec Spec, skews []float64, opts Options) ([]SlackPoint, error) {
	pRef, err := NewProblem(spec)
	if err != nil {
		return nil, err
	}
	base, err := pRef.OptimizeBaseline(opts)
	if err != nil {
		return nil, fmt.Errorf("core: slack study baseline: %w", err)
	}
	out := make([]SlackPoint, 0, len(skews))
	for _, b := range skews {
		s := spec
		s.Skew = b
		p, err := NewProblem(s)
		if err != nil {
			return nil, fmt.Errorf("core: slack study at b=%v: %w", b, err)
		}
		pt := SlackPoint{Skew: b, BaselineEnergy: base.Energy.Total()}
		joint, jerr := p.OptimizeJoint(opts)
		if jerr == nil {
			pt.JointEnergy = joint.Energy.Total()
			pt.Savings = pt.BaselineEnergy / pt.JointEnergy
			pt.JointVdd = joint.Vdd
			pt.JointVts = joint.VtsValues[0]
			pt.Feasible = true
		} else {
			pt.JointEnergy = math.Inf(1)
		}
		out = append(out, pt)
	}
	return out, nil
}
