package core

import (
	"fmt"
	"math"

	"cmosopt/internal/circuit"
	"cmosopt/internal/parallel"
)

// warmCircuit materializes a shared combinational circuit's lazily cached
// analyses (topological order, levels, depth) before workers elaborate
// Problems against it concurrently; the caches are read-only afterwards.
// Errors are ignored here — each worker's NewProblem reports them
// deterministically. Sequential circuits need no warming: every NewProblem
// cuts its own private combinational copy.
func warmCircuit(c *circuit.Circuit) {
	if c == nil || c.IsSequential() {
		return
	}
	if _, err := c.TopoOrder(); err != nil {
		return
	}
	if _, err := c.Levels(); err != nil {
		return
	}
	_, _ = c.Depth()
}

// VariationPoint is one sample of the paper's Figure 2(a): power savings as a
// function of the tolerated threshold-voltage process variation.
type VariationPoint struct {
	Tol         float64 // fractional Vt tolerance (0.1 = ±10 %)
	WorstEnergy float64 // worst-case (leaky-corner) per-cycle energy of the optimized design
	Savings     float64 // baseline energy / WorstEnergy
	Vdd         float64
	Vts         float64 // nominal threshold chosen under the corners
	Feasible    bool
}

// VariationStudy reproduces Figure 2(a): for each tolerance, the optimizer is
// re-run with worst-case threshold corners — delays evaluated at the slow
// corner V_ts·(1+tol) so timing is guaranteed across variation, energy at the
// leaky corner V_ts·(1−tol) so the reported power is worst case. Savings are
// measured against the given (nominal, fixed-Vt) baseline, as in the paper.
// Tolerances are independent whole-optimizer runs: they fan out over
// opts.Workers problem forks (each with its own engine clone), and each
// point's result is identical at any worker count.
func (p *Problem) VariationStudy(tols []float64, opts Options, baseline *Result) ([]VariationPoint, error) {
	if baseline == nil || baseline.Energy.Total() <= 0 {
		return nil, fmt.Errorf("core: variation study needs a valid baseline result")
	}
	for _, tol := range tols {
		if tol < 0 || tol >= 1 {
			return nil, fmt.Errorf("core: Vt tolerance %v outside [0,1)", tol)
		}
	}
	out := make([]VariationPoint, len(tols))
	w := workersFor(opts.Workers, len(tols))
	inner := opts
	if w > 1 {
		inner.Workers = 1 // the sweep level owns the parallelism
	}
	run := func(q *Problem, i int) {
		o := inner
		o.fill()
		o.VtTimingFactor = 1 + tols[i]
		o.VtPowerFactor = 1 - tols[i]
		pt := VariationPoint{Tol: tols[i]}
		res, err := q.OptimizeJoint(o)
		if err == nil {
			pt.WorstEnergy = res.Objective
			pt.Savings = baseline.Energy.Total() / res.Objective
			pt.Vdd = res.Vdd
			pt.Vts = res.VtsValues[0]
			pt.Feasible = true
		} else {
			pt.WorstEnergy = math.Inf(1)
		}
		out[i] = pt
	}
	if w <= 1 {
		for i := range tols {
			run(p, i)
		}
		return out, nil
	}
	forks := parallel.Pool(w, func(int) *Problem { return p.fork() })
	parallel.For(w, len(tols), func(wk, i int) { run(forks[wk], i) })
	for _, f := range forks {
		p.absorb(f.Eval)
	}
	p.Eval.FlushObs()
	return out, nil
}

// SlackPoint is one sample of the paper's Figure 2(b): power savings as a
// function of the available cycle time.
type SlackPoint struct {
	Skew           float64 // skew factor b (available budget = b·T_c)
	JointEnergy    float64
	BaselineEnergy float64
	Savings        float64 // baseline / joint at the same budget
	JointVdd       float64
	JointVts       float64
	Feasible       bool
}

// SlackStudy reproduces Figure 2(b): the joint optimizer is re-run across a
// sweep of clock-skew factors (each skew value changes the usable cycle
// budget b·T_c), and its energy is compared against the *fixed* Table 1
// baseline computed once at the spec's own skew — the same reference the
// paper measures Figure 2 savings against. A fresh Problem is elaborated per
// point because Procedure 1's budgets depend on b; the points are
// independent and fan out over opts.Workers workers (the reference problem
// built first also warms the shared circuit's caches).
func SlackStudy(spec Spec, skews []float64, opts Options) ([]SlackPoint, error) {
	pRef, err := NewProblem(spec)
	if err != nil {
		return nil, err
	}
	base, err := pRef.OptimizeBaseline(opts)
	if err != nil {
		return nil, fmt.Errorf("core: slack study baseline: %w", err)
	}
	out := make([]SlackPoint, len(skews))
	errs := make([]error, len(skews))
	w := workersFor(opts.Workers, len(skews))
	inner := opts
	if w > 1 {
		inner.Workers = 1
	}
	parallel.For(w, len(skews), func(_, i int) {
		s := spec
		s.Skew = skews[i]
		q, err := NewProblem(s)
		if err != nil {
			errs[i] = fmt.Errorf("core: slack study at b=%v: %w", skews[i], err)
			return
		}
		pt := SlackPoint{Skew: skews[i], BaselineEnergy: base.Energy.Total()}
		joint, jerr := q.OptimizeJoint(inner)
		if jerr == nil {
			pt.JointEnergy = joint.Energy.Total()
			pt.Savings = pt.BaselineEnergy / pt.JointEnergy
			pt.JointVdd = joint.Vdd
			pt.JointVts = joint.VtsValues[0]
			pt.Feasible = true
		} else {
			pt.JointEnergy = math.Inf(1)
		}
		out[i] = pt
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}
