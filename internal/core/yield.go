package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cmosopt/internal/design"
)

// YieldResult summarizes a Monte-Carlo process-variation run: the paper's
// Figure 2(a) handles variation with deterministic worst-case corners; this
// complements it with the statistical view — per-gate thresholds drawn
// independently around their nominal values, timing yield and the energy
// distribution measured across the sampled dies.
type YieldResult struct {
	Samples     int
	TimingYield float64 // fraction of dies meeting the cycle budget
	MeanEnergy  float64 // mean per-cycle energy over all dies (J)
	P95Energy   float64 // 95th-percentile per-cycle energy (J)
	WorstDelay  float64 // worst sampled critical delay (s)
}

// YieldStudy samples `samples` dies: each logic gate's threshold is drawn
// from N(V_ts·1, (sigmaFrac·V_ts)²), clamped positive, and the die's timing
// and energy are evaluated with the fixed widths and supply of the given
// design. Deterministic for a given seed.
func (p *Problem) YieldStudy(a *design.Assignment, sigmaFrac float64, samples int, seed int64) (*YieldResult, error) {
	if sigmaFrac < 0 || sigmaFrac >= 1 {
		return nil, fmt.Errorf("core: sigma fraction %v outside [0,1)", sigmaFrac)
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: need at least one sample, got %d", samples)
	}
	rng := rand.New(rand.NewSource(seed))
	budget := p.CycleBudget()
	die := a.Clone()
	energies := make([]float64, 0, samples)
	pass := 0
	worst := 0.0
	var sum float64
	for s := 0; s < samples; s++ {
		for i := range a.Vts {
			if !p.C.Gates[i].IsLogic() {
				continue
			}
			vt := a.Vts[i] * (1 + sigmaFrac*rng.NormFloat64())
			if vt < 1e-3 {
				vt = 1e-3
			}
			die.Vts[i] = vt
		}
		cd := p.Eval.CriticalDelay(die)
		if cd <= budget {
			pass++
		}
		if cd > worst && !math.IsInf(cd, 1) {
			worst = cd
		}
		e := p.Eval.Energy(die).Total()
		energies = append(energies, e)
		sum += e
	}
	sort.Float64s(energies)
	return &YieldResult{
		Samples:     samples,
		TimingYield: float64(pass) / float64(samples),
		MeanEnergy:  sum / float64(samples),
		P95Energy:   energies[(len(energies)-1)*95/100],
		WorstDelay:  worst,
	}, nil
}
