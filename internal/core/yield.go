package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cmosopt/internal/design"
	"cmosopt/internal/eval"
	"cmosopt/internal/parallel"
)

// YieldResult summarizes a Monte-Carlo process-variation run: the paper's
// Figure 2(a) handles variation with deterministic worst-case corners; this
// complements it with the statistical view — per-gate thresholds drawn
// independently around their nominal values, timing yield and the energy
// distribution measured across the sampled dies.
type YieldResult struct {
	Samples     int
	TimingYield float64 // fraction of dies meeting the cycle budget
	MeanEnergy  float64 // mean per-cycle energy over all dies (J)
	P95Energy   float64 // 95th-percentile per-cycle energy (J)
	WorstDelay  float64 // worst sampled critical delay (s)
}

// substream returns die i's private RNG, derived from (seed, i) through a
// SplitMix64 finalizer so neighbouring indices land on decorrelated streams.
// Per-die substreams make every sample's draws independent of iteration
// order — the property that lets dies run on any worker in any order and
// still produce the exact bits a serial loop would.
func substream(seed int64, i int) *rand.Rand {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// YieldStudy samples `samples` dies: each logic gate's threshold is drawn
// from N(V_ts·1, (sigmaFrac·V_ts)²), clamped positive, and the die's timing
// and energy are evaluated with the fixed widths and supply of the given
// design. Each die draws from its own (seed, index) RNG substream and dies
// fan out over `workers` engine clones (0 = GOMAXPROCS, 1 = serial); the
// result depends on the seed only, never on the worker count.
func (p *Problem) YieldStudy(a *design.Assignment, sigmaFrac float64, samples int, seed int64, workers int) (*YieldResult, error) {
	if sigmaFrac < 0 || sigmaFrac >= 1 {
		return nil, fmt.Errorf("core: sigma fraction %v outside [0,1)", sigmaFrac)
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: need at least one sample, got %d", samples)
	}
	budget := p.CycleBudget()

	// die holds one worker's scratch assignment; sample prices die s on it.
	sample := func(eng *eval.Engine, die *design.Assignment, s int) (cd, e float64) {
		rng := substream(seed, s)
		for i := range a.Vts {
			if !p.C.Gates[i].IsLogic() {
				continue
			}
			vt := a.Vts[i] * (1 + sigmaFrac*rng.NormFloat64())
			if vt < 1e-3 {
				vt = 1e-3
			}
			die.Vts[i] = vt
		}
		return eng.CriticalDelay(die), eng.Energy(die).Total()
	}

	cds := make([]float64, samples)
	es := make([]float64, samples)
	w := workersFor(workers, samples)
	if w <= 1 {
		die := a.Clone()
		for s := 0; s < samples; s++ {
			if err := p.Canceled(); err != nil {
				return nil, err
			}
			cds[s], es[s] = sample(p.Eval, die, s)
		}
	} else {
		type yieldWorker struct {
			eng *eval.Engine
			die *design.Assignment
		}
		ws := parallel.Pool(w, func(int) *yieldWorker {
			return &yieldWorker{eng: p.Eval.Clone(), die: a.Clone()}
		})
		parallel.For(w, samples, func(wk, s int) {
			cds[s], es[s] = sample(ws[wk].eng, ws[wk].die, s)
		})
		for _, yw := range ws {
			p.absorb(yw.eng)
		}
		p.Eval.FlushObs()
	}

	// Reduce in sample order: the float sums are then bit-for-bit the same
	// at any worker count.
	pass := 0
	worst := 0.0
	var sum float64
	for s := 0; s < samples; s++ {
		if cds[s] <= budget {
			pass++
		}
		if cds[s] > worst && !math.IsInf(cds[s], 1) {
			worst = cds[s]
		}
		sum += es[s]
	}
	energies := append([]float64(nil), es...)
	sort.Float64s(energies)
	return &YieldResult{
		Samples:     samples,
		TimingYield: float64(pass) / float64(samples),
		MeanEnergy:  sum / float64(samples),
		P95Energy:   energies[(len(energies)-1)*95/100],
		WorstDelay:  worst,
	}, nil
}
