package core

import (
	"fmt"
	"math"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
	"cmosopt/internal/parallel"
)

// Options parameterizes the heuristic optimizers.
type Options struct {
	// M is the number of bisection steps in each of Procedure 2's nested
	// loops (the paper's M; total cost is O(M³) circuit evaluations).
	M int
	// WidthPasses is the number of fixed-point sweeps in the width solver.
	// 1 reproduces the paper's literal single pass.
	WidthPasses int
	// FixedVt, when > 0, pins every gate's threshold (the Table 1 baseline
	// uses 0.7 V) and optimizes only Vdd and widths.
	FixedVt float64 //cmosvet:unit V
	// FixedVdd, when > 0, additionally pins the supply in OptimizeBaseline,
	// leaving only widths free — the conventional full-supply reference
	// design (the paper's Table 1 runs returned Vdd ≈ 3.3 V, making its
	// reference numerically a fixed-3.3 V design).
	FixedVdd float64 //cmosvet:unit V
	// Refine runs a local grid + golden-section polish over (Vdd, Vts)
	// around the best point after the directional bisection ends. Costlier,
	// used by the steering ablation.
	Refine bool
	// VtTimingFactor scales thresholds during delay evaluation (slow process
	// corner, ≥ 1 in variation studies). Zero means 1 (nominal).
	VtTimingFactor float64 //cmosvet:unit 1
	// VtPowerFactor scales thresholds during energy evaluation (leaky
	// process corner, ≤ 1 in variation studies). Zero means 1 (nominal).
	VtPowerFactor float64 //cmosvet:unit 1
	// Workers caps the goroutines used by the parallel drivers (landscape
	// grids, Refine's scans, speculative candidate evaluation, the study
	// sweeps). 0 means one worker per CPU (GOMAXPROCS); 1 forces serial
	// execution. Results are byte-identical for any value — only wall-clock
	// time changes.
	Workers int
}

// DefaultOptions returns the settings used for the paper's result tables.
func DefaultOptions() Options {
	return Options{M: 12, WidthPasses: 4}
}

func (o *Options) fill() {
	if o.M == 0 {
		o.M = 12
	}
	if o.WidthPasses == 0 {
		o.WidthPasses = 4
	}
	if o.VtTimingFactor == 0 {
		o.VtTimingFactor = 1
	}
	if o.VtPowerFactor == 0 {
		o.VtPowerFactor = 1
	}
}

func (o *Options) validate() error {
	if o.M < 1 || o.M > 64 {
		return fmt.Errorf("core: M = %d outside [1,64]", o.M)
	}
	if o.WidthPasses < 1 || o.WidthPasses > 32 {
		return fmt.Errorf("core: WidthPasses = %d outside [1,32]", o.WidthPasses)
	}
	if o.VtTimingFactor < 1 {
		return fmt.Errorf("core: VtTimingFactor %v < 1 (timing corner must be slow)", o.VtTimingFactor)
	}
	if o.VtPowerFactor <= 0 || o.VtPowerFactor > 1 {
		return fmt.Errorf("core: VtPowerFactor %v outside (0,1]", o.VtPowerFactor)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers = %d negative (0 means GOMAXPROCS)", o.Workers)
	}
	return nil
}

// evalPoint solves widths at one (Vdd, Vts) candidate and returns the
// objective energy (corner-adjusted when variation factors are set), the
// solved nominal assignment, and feasibility. Infeasible points get +Inf.
// It runs on an evalCtx so parallel drivers can price independent candidates
// on worker engine clones; the Problem method is the serial entry point.
func (p *Problem) evalPoint(vdd, vts float64, o *Options) (float64, *design.Assignment, bool) {
	return p.sctx.evalPoint(vdd, vts, o)
}

func (c *evalCtx) evalPoint(vdd, vts float64, o *Options) (float64, *design.Assignment, bool) {
	p := c.p
	n := p.C.N()
	node := c.trace.Child("point")
	ptT := node.Start()
	defer ptT.Stop()
	// Timing view: thresholds at the slow corner share the width slice with
	// the nominal assignment, so the width solve writes through.
	nominal := design.Uniform(n, vdd, vts, p.Tech.WMin)
	timingView := nominal
	if o.VtTimingFactor != 1 {
		timingView = &design.Assignment{Vdd: vdd, Vts: make([]float64, n), W: nominal.W}
		for i := range timingView.Vts {
			timingView.Vts[i] = vts * o.VtTimingFactor
		}
	}
	wT := node.StartChild("widths")
	ok := c.solveWidths(timingView, o.M, o.WidthPasses)
	wT.Stop()
	if !ok {
		return math.Inf(1), nominal, false
	}
	powerView := nominal
	if o.VtPowerFactor != 1 {
		powerView = &design.Assignment{Vdd: vdd, Vts: make([]float64, n), W: nominal.W}
		for i := range powerView.Vts {
			powerView.Vts[i] = vts * o.VtPowerFactor
		}
	}
	eT := node.StartChild("energy")
	e := c.eng.Energy(powerView).Total()
	eT.Stop()
	return e, nominal, true
}

// OptimizeJoint runs the paper's Procedure 2: nested directional bisection of
// the Vdd and Vts ranges with a per-gate minimum-width binary search inside,
// steered by "all delay budgets met and total energy decreased". The best
// feasible point seen anywhere during the search is returned (the procedure's
// final iterate is never better than its incumbent).
func (p *Problem) OptimizeJoint(opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.FixedVt != 0 {
		return nil, fmt.Errorf("core: OptimizeJoint with FixedVt set; use OptimizeBaseline")
	}
	evals0 := p.Eval.FullEvalEquivalents()

	joint := p.span("optimize.joint")
	jointT := joint.Start()
	defer jointT.Stop()
	lvl := joint.Child("vdd-level")
	oldTrace := p.setTrace(lvl)
	defer p.setTrace(oldTrace)

	type incumbent struct {
		e   float64
		a   *design.Assignment
		vdd float64
		vts float64
		ok  bool
	}
	best := incumbent{e: math.Inf(1)}

	consider := func(e float64, a *design.Assignment, vdd, vts float64, ok bool) {
		if ok && e < best.e {
			best = incumbent{e: e, a: a, vdd: vdd, vts: vts, ok: true}
		}
	}

	// evalVts runs the middle (threshold) loop at one supply voltage and
	// returns the best objective found there. The bisection chain is
	// sequential — each candidate's result steers the next range — but both
	// possible next ranges are known before the result is: with ≥ 3 workers
	// the loop prices the current candidate and the two reachable next
	// candidates in one speculative batch on engine clones, resolving two
	// bisection levels per batch. Only on-path candidates feed the incumbent,
	// the steering state and the effort meter, so the walk — and the reported
	// evaluation count — is byte-identical to the serial one at any worker
	// count; the discarded branch's work is the price of the latency win.
	speculate := parallel.Workers(opts.Workers) >= 3
	evalVts := func(vdd float64) float64 {
		vtsR := optimize.Range{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax}
		bestHere := math.Inf(1)
		prev := math.Inf(1)
		// step applies one bisection level exactly as the paper's serial walk
		// does and reports whether the range moved higher.
		step := func(r pointRes, vts float64) bool {
			consider(r.e, r.a, vdd, vts, r.ok)
			if r.e < bestHere {
				bestHere = r.e
			}
			// Paper: feasible and energy decreased → raise the threshold
			// range (chase lower leakage); otherwise lower it (buy speed).
			higher := r.ok && r.e <= prev
			if higher {
				vtsR = vtsR.Higher()
			} else {
				vtsR = vtsR.Lower()
			}
			if r.e < prev {
				prev = r.e
			}
			return higher
		}
		for j := 0; j < opts.M; {
			// Cancellation poll: between candidates, never inside one, so
			// an uncanceled run takes the exact same steps.
			if p.ctx.Err() != nil {
				break
			}
			vts := vtsR.Mid()
			if !speculate || j+1 >= opts.M {
				e, a, ok := p.evalPoint(vdd, vts, &opts)
				step(pointRes{e, a, ok}, vts)
				j++
				continue
			}
			hi, lo := vtsR.Higher().Mid(), vtsR.Lower().Mid()
			rs, mets := p.specPoints([][2]float64{{vdd, vts}, {vdd, hi}, {vdd, lo}}, &opts)
			joint.Add("speculative_batches", 1)
			p.Eval.Metrics().Add(mets[0])
			next, nextVts, nextMet := rs[2], lo, mets[2]
			if step(rs[0], vts) {
				next, nextVts, nextMet = rs[1], hi, mets[1]
			}
			j++
			// The chosen branch's candidate is already priced: consume it as
			// the next level without waiting.
			p.Eval.Metrics().Add(nextMet)
			step(next, nextVts)
			j++
		}
		return bestHere
	}

	vddR := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}
	prevVdd := math.Inf(1)
	for i := 0; i < opts.M; i++ {
		if p.ctx.Err() != nil {
			break
		}
		vdd := vddR.Mid()
		lvlT := lvl.Start()
		e := evalVts(vdd)
		lvlT.Stop()
		// Paper: feasible and energy decreased → lower the supply range
		// (chase lower switching energy); otherwise raise it.
		if !math.IsInf(e, 1) && e <= prevVdd {
			vddR = vddR.Lower()
		} else {
			vddR = vddR.Higher()
		}
		if e < prevVdd {
			prevVdd = e
		}
	}

	if err := p.Canceled(); err != nil {
		return nil, err
	}

	if opts.Refine && best.ok {
		p.refine(&best.e, &best.a, &best.vdd, &best.vts, &opts)
		if err := p.Canceled(); err != nil {
			return nil, err
		}
	}

	if !best.ok {
		return nil, fmt.Errorf("core: no feasible design point for %q at fc=%v (budget %v s)", p.C.Name, p.Fc, p.CycleBudget())
	}
	res := p.finishResult("joint", best.a, true, evals0)
	res.Objective = best.e
	return res, nil
}

// refine polishes the incumbent with a local search around it: a coarse grid
// pre-scan (robust against the infeasible plateaus that break pure
// golden-section bracketing — at low V_dd most of the V_ts range is
// infeasible and evaluates to +Inf), then golden-section over V_ts at the
// best few supplies near the incumbent.
//
// The supply candidates are sequentially dependent (each is relative to the
// incumbent the previous ones left behind) and golden-section is a dependent
// chain, but each supply's 9-point threshold pre-scan is embarrassingly
// parallel: it fans out over worker engine clones, with the incumbent
// updates and the argmin applied afterwards in grid order, exactly as the
// serial scan would have.
func (p *Problem) refine(bestE *float64, bestA **design.Assignment, bestVdd, bestVts *float64, opts *Options) {
	node := p.span("optimize.joint").Child("refine")
	nT := node.Start()
	defer nT.Stop()
	oldTrace := p.setTrace(node)
	defer p.setTrace(oldTrace)
	track := func(vdd, vts float64) float64 {
		e, a, ok := p.evalPoint(vdd, vts, opts)
		if ok && e < *bestE {
			*bestE, *bestA, *bestVdd, *bestVts = e, a, vdd, vts
		}
		return e
	}
	// Local supply candidates around the incumbent (multiplicative steps so
	// the scan is scale-free).
	for _, f := range []float64{0.85, 0.93, 1.0, 1.08, 1.18} {
		// Candidate boundary: a canceled run stops refining and keeps the
		// incumbent (the caller re-polls and surfaces the error).
		if p.Canceled() != nil {
			return
		}
		vdd := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}.Clamp(*bestVdd * f)
		// Robust threshold scan, then a short golden polish around it.
		vtR := optimize.Range{Lo: p.Tech.VtsMin, Hi: p.Tech.VtsMax}
		cands := vtR.Linspace(9)
		pts := make([][2]float64, len(cands))
		for i, v := range cands {
			pts[i] = [2]float64{vdd, v}
		}
		rs := p.scanPoints(opts.Workers, pts, opts)
		gx, ge := vtR.Lo, math.Inf(1)
		for i, r := range rs {
			if r.ok && r.e < *bestE {
				*bestE, *bestA, *bestVdd, *bestVts = r.e, r.a, vdd, cands[i]
			}
			if r.e < ge {
				gx, ge = cands[i], r.e
			}
		}
		if math.IsInf(ge, 1) {
			continue
		}
		step := vtR.Width() / 8
		local := optimize.Range{Lo: vtR.Clamp(gx - step), Hi: vtR.Clamp(gx + step)}
		optimize.GoldenSection(func(v float64) float64 { return track(vdd, v) }, local, 1e-3, 12)
	}
}

// OptimizeBaseline reproduces the paper's Table 1 reference flow: the
// threshold voltage is pinned (700 mV in the paper) and only the supply
// voltage and device widths are optimized, with the same steering rule.
func (p *Problem) OptimizeBaseline(opts Options) (*Result, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	vt := opts.FixedVt
	if vt == 0 {
		vt = 0.7
	}
	if vt < p.Tech.VtsMin || vt > p.Tech.VtsMax {
		return nil, fmt.Errorf("core: fixed Vt %v outside tech range [%v,%v]", vt, p.Tech.VtsMin, p.Tech.VtsMax)
	}
	evals0 := p.Eval.FullEvalEquivalents()

	node := p.span("optimize.baseline")
	nT := node.Start()
	defer nT.Stop()
	oldTrace := p.setTrace(node)
	defer p.setTrace(oldTrace)

	bestE := math.Inf(1)
	var bestA *design.Assignment
	method := "baseline"
	if opts.FixedVdd > 0 {
		// Widths-only reference at a pinned supply.
		if opts.FixedVdd < p.Tech.VddMin || opts.FixedVdd > p.Tech.VddMax {
			return nil, fmt.Errorf("core: fixed Vdd %v outside tech range [%v,%v]", opts.FixedVdd, p.Tech.VddMin, p.Tech.VddMax)
		}
		method = "baseline-fixed-vdd"
		e, a, ok := p.evalPoint(opts.FixedVdd, vt, &opts)
		if ok {
			bestE, bestA = e, a
		}
	} else {
		vddR := optimize.Range{Lo: p.Tech.VddMin, Hi: p.Tech.VddMax}
		prev := math.Inf(1)
		for i := 0; i < opts.M; i++ {
			if p.ctx.Err() != nil {
				break
			}
			vdd := vddR.Mid()
			e, a, ok := p.evalPoint(vdd, vt, &opts)
			if ok && e < bestE {
				bestE, bestA = e, a
			}
			if ok && e <= prev {
				vddR = vddR.Lower()
			} else {
				vddR = vddR.Higher()
			}
			if e < prev {
				prev = e
			}
		}
	}
	if err := p.Canceled(); err != nil {
		return nil, err
	}
	if bestA == nil {
		return nil, fmt.Errorf("core: no feasible baseline design for %q at fc=%v with Vt=%v", p.C.Name, p.Fc, vt)
	}
	res := p.finishResult(method, bestA, true, evals0)
	res.Objective = bestE
	return res, nil
}
