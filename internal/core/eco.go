package core

import (
	"fmt"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
)

// ECO (engineering-change-order) flow: after a small netlist edit, a full
// Procedure 2 rerun wastes the previous solution. WarmStart transplants the
// prior design onto the edited circuit by gate name — unchanged gates keep
// their threshold and width, new gates start at the prior solution's
// threshold and minimum width — then re-solves only the widths against the
// new circuit's Procedure 1 budgets. When the transplant cannot be made
// feasible, it falls back to a full joint optimization.
//
// Returns the result, the number of gates that kept their sizing, and
// whether the fast path (no full re-optimization) sufficed.
func (p *Problem) WarmStart(prevC *circuit.Circuit, prev *design.Assignment, opts Options) (*Result, int, bool, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, 0, false, err
	}
	if prevC == nil || prev == nil {
		return nil, 0, false, fmt.Errorf("core: WarmStart needs the previous circuit and design")
	}
	if len(prev.Vts) != prevC.N() {
		return nil, 0, false, fmt.Errorf("core: previous design sized %d, previous circuit has %d gates", len(prev.Vts), prevC.N())
	}
	evals0 := p.Eval.FullEvalEquivalents()

	// Default threshold for new gates: the previous design's dominant value.
	defVt := p.Tech.VtsMin
	if len(prev.Vts) > 0 {
		counts := map[float64]int{}
		for i := range prevC.Gates {
			if prevC.Gates[i].IsLogic() {
				counts[prev.Vts[i]]++
			}
		}
		best := 0
		for v, n := range counts {
			if n > best {
				best, defVt = n, v
			}
		}
	}

	a := design.Uniform(p.C.N(), prev.Vdd, defVt, p.Tech.WMin)
	reused := 0
	for i := range p.C.Gates {
		g := &p.C.Gates[i]
		if !g.IsLogic() {
			continue
		}
		old := prevC.GateByName(g.Name)
		if old == nil || !old.IsLogic() {
			continue
		}
		a.Vts[i] = prev.Vts[old.ID]
		a.W[i] = prev.W[old.ID]
		reused++
	}

	// Fast path: a couple of width sweeps from the transplanted state.
	if p.solveWidths(a, opts.M, opts.WidthPasses) {
		res := p.finishResult("eco-warm", a, true, evals0)
		if res.Feasible {
			return res, reused, true, nil
		}
	}
	// Fall back to the full flow.
	res, err := p.OptimizeJoint(opts)
	if err != nil {
		return nil, reused, false, err
	}
	res.Method = "eco-full"
	return res, reused, false, nil
}
