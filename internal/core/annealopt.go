package core

import (
	"math"
	"math/rand"

	"cmosopt/internal/design"
	"cmosopt/internal/optimize"
)

// AnnealOptions parameterizes the simulated-annealing comparator of the
// paper's §5 ("we have also implemented an optimization tool ... using
// multiple-pass simulated annealing. Our approach performed significantly
// better than annealing over all the circuits").
type AnnealOptions struct {
	optimize.AnnealConfig
	// VddSigma / VtsSigma are the Gaussian move sizes for the voltages;
	// WidthSigma is the log-space move size for one gate's width.
	VddSigma   float64 //cmosvet:unit V
	VtsSigma   float64 //cmosvet:unit V
	WidthSigma float64 //cmosvet:unit 1
	// Penalty is the multiplier applied per unit of relative cycle-time
	// violation (soft constraint so annealing can traverse the boundary).
	Penalty float64 //cmosvet:unit 1
}

// DefaultAnnealOptions returns a schedule comparable in circuit evaluations
// to Procedure 2 at the default M.
func DefaultAnnealOptions() AnnealOptions {
	return AnnealOptions{
		AnnealConfig: optimize.AnnealConfig{Passes: 3, StepsPerPass: 1500, T0: 1, TFinal: 1e-4, Seed: 1},
		VddSigma:     0.15,
		VtsSigma:     0.04,
		WidthSigma:   0.4,
		Penalty:      30,
	}
}

// annealState is a full design point: one Vdd, one shared Vts (n_v = 1, as in
// the heuristic it is compared against), and per-gate widths.
type annealState struct {
	a *design.Assignment
}

// OptimizeAnneal searches the same (V_dd, V_ts, {w_i}) space as Procedure 2
// with multi-pass simulated annealing over a soft-constrained objective:
// total energy, multiplied by a penalty when the critical delay exceeds the
// cycle budget. The returned result reports the best *feasible* state seen;
// the error is non-nil only for bad configuration.
func (p *Problem) OptimizeAnneal(opts AnnealOptions) (*Result, error) {
	evals0 := p.Eval.FullEvalEquivalents()
	n := p.C.N()
	budget := p.CycleBudget()

	node := p.span("optimize.anneal")
	nT := node.Start()
	defer nT.Stop()
	scoreNode := node.Child("score")

	// The annealer scores states by energy with a delay penalty; feasible
	// incumbents are tracked separately so the result is always legal.
	var bestFeasible *design.Assignment
	bestFeasibleE := math.Inf(1)

	score := func(s annealState) float64 {
		sT := scoreNode.Start()
		defer sT.Stop()
		e := p.Eval.Energy(s.a).Total()
		cd := p.Eval.CriticalDelay(s.a)
		if cd <= budget {
			if e < bestFeasibleE {
				bestFeasibleE = e
				bestFeasible = s.a.Clone()
			}
			return e
		}
		if math.IsInf(cd, 1) {
			return math.Inf(1)
		}
		return e * (1 + opts.Penalty*(cd/budget-1))
	}

	neighbor := func(s annealState, rng *rand.Rand) annealState {
		a := s.a.Clone()
		switch rng.Intn(4) {
		case 0:
			a.Vdd = clamp(a.Vdd+rng.NormFloat64()*opts.VddSigma, p.Tech.VddMin, p.Tech.VddMax)
		case 1:
			vt := clamp(a.Vts[0]+rng.NormFloat64()*opts.VtsSigma, p.Tech.VtsMin, p.Tech.VtsMax)
			a.SetVts(vt)
		default: // widths get double weight: they are most of the variables
			id := rng.Intn(n)
			a.W[id] = clamp(a.W[id]*math.Exp(rng.NormFloat64()*opts.WidthSigma), p.Tech.WMin, p.Tech.WMax)
		}
		return annealState{a: a}
	}

	// Start from a safe high-drive corner (known feasible for any problem the
	// baseline can solve).
	init := annealState{a: design.Uniform(n, p.Tech.VddMax, p.Tech.VtsMax, 4)}
	cfg := opts.AnnealConfig
	cfg.Stop = func() bool { return p.ctx.Err() != nil }
	if _, _, err := optimize.Anneal(cfg, init, score, neighbor); err != nil {
		return nil, err
	}
	if err := p.Canceled(); err != nil {
		return nil, err
	}

	if bestFeasible == nil {
		// Report the infeasible search honestly: fall back to the initial
		// state so callers can still inspect energy numbers.
		res := p.finishResult("anneal", init.a, false, evals0)
		return res, nil
	}
	res := p.finishResult("anneal", bestFeasible, true, evals0)
	res.Objective = bestFeasibleE
	return res, nil
}

func clamp(x, lo, hi float64) float64 { return min(max(x, lo), hi) }
