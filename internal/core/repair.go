package core

import (
	"cmosopt/internal/design"
)

// repairUnreachableBudgets implements the paper's §4.2 post-processing:
// "some post processing of delay assignments (typically for a very small
// fraction of the total number of logic gates) is done in order for the
// heuristic algorithm to be able to find a solution to the problem without
// violating the overall delay constraint."
//
// A fanout-proportional budget can fall below what any width can achieve.
// The achievable floor of a gate has two parts at the reference corner
// (V_dd = VddMax, V_ts = VtsMax — the Table 1 baseline point, and the
// slowest-threshold case, so lower-threshold operating points are covered):
//
//   - the slope inheritance kappa·max(fanin budgets): the delay model makes a
//     gate at least this slow when its drivers use their full budgets;
//   - the intrinsic switching floor: the gate's delay at maximum width with
//     minimum-width fanout loads.
//
// Budgets below their floor are raised in topological order (so driver
// budgets are final when a gate's slope term is computed), then gates still
// above their own floor on over-subscribed paths are scaled back down to
// restore the per-path Σ budgets ≤ T invariant wherever the floors leave
// room. Returns the number of budgets raised.
func (p *Problem) repairUnreachableBudgets() int {
	n := p.C.N()
	ids, err := p.C.LogicIDs()
	if err != nil {
		return 0
	}
	T := p.CycleBudget()
	tMax := p.Budgets.TMax
	slope := p.Eval.SlopeCoeff(p.Tech.VddMax, p.Tech.VtsMax)

	// Per-gate floors, topological so fanin budgets are final before use.
	// The switching floor uses uniform maximum widths: on a tightly budgeted
	// cluster every gate widens together, so a gate's load scales with its
	// own width and the floor is essentially V_dd·(C_PD+Σfo·C_t)/(2·I_D) —
	// the self-consistent limit uniform upsizing cannot beat.
	aRef := design.Uniform(n, p.Tech.VddMax, p.Tech.VtsMax, p.Tech.WMax)
	floor := make([]float64, n)
	raised := 0
	for _, id := range ids {
		g := p.C.Gate(id)
		maxFB := 0.0
		for _, f := range g.Fanin {
			if p.C.Gate(f).IsLogic() && tMax[f] > maxFB {
				maxFB = tMax[f]
			}
		}
		floor[id] = slope*maxFB + p.Eval.GateDelayWith(id, aRef, 0)
		if tMax[id] < floor[id] {
			tMax[id] = floor[id]
			raised++
		}
	}
	if raised == 0 {
		return 0
	}

	// Rebalance: pull non-floored budgets back down where paths are now
	// over-subscribed. A few passes converge for practical circuits.
	order, _ := p.C.TopoOrder()
	up := make([]float64, n)
	down := make([]float64, n)
	for pass := 0; pass < 3; pass++ {
		for _, id := range order {
			g := p.C.Gate(id)
			if !g.IsLogic() {
				up[id] = 0
				continue
			}
			best := 0.0
			for _, f := range g.Fanin {
				if p.C.Gate(f).IsLogic() && up[f] > best {
					best = up[f]
				}
			}
			up[id] = best + tMax[id]
		}
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			g := p.C.Gate(id)
			if !g.IsLogic() {
				down[id] = 0
				continue
			}
			best := 0.0
			for _, f := range g.Fanout {
				if down[f] > best {
					best = down[f]
				}
			}
			down[id] = best + tMax[id]
		}
		changed := false
		for _, id := range ids {
			worst := up[id] + down[id] - tMax[id]
			if worst > T && tMax[id] > floor[id] {
				nt := tMax[id] * T / worst
				if nt < floor[id] {
					nt = floor[id]
				}
				if nt < tMax[id] {
					tMax[id] = nt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return raised
}
