package cli

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"cmosopt/internal/device"
)

func TestSweepCSV(t *testing.T) {
	var out bytes.Buffer
	err := Sweep([]string{"-circuit", "s27", "-points", "3", "-from", "1e8", "-to", "3e8", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header plus one row per sweep point (infeasible points are skipped;
	// s27 at these clocks is feasible everywhere).
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4:\n%s", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "<- min EDP") {
		t.Fatalf("no EDP-minimum marker in output:\n%s", out.String())
	}
}

func TestSweepBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-points", "1"},
		{"-from", "0"},
		{"-circuit", "no-such-circuit"},
		{"-format", "xml", "-circuit", "s27", "-points", "2"},
	} {
		var out bytes.Buffer
		if err := Sweep(append([]string{"-circuit", "s27"}, args...), &out); err == nil {
			t.Fatalf("Sweep(%v) succeeded, want error", args)
		}
	}
}

// TestRunSweepDeterministic locks the server-vs-offline byte-identity
// contract at its root: two runs with identical parameters (at different
// worker counts, one canceled context-free and one with a live context)
// render identical bytes.
func TestRunSweepDeterministic(t *testing.T) {
	params := SweepParams{Circuit: "s27", FromHz: 1e8, ToHz: 3e8, Points: 3}
	render := func(workers int, ctx context.Context) string {
		p := params
		p.Workers = workers
		ct, pts, best, err := RunSweep(p, device.Default350(), nil, ctx)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := RenderSweep(&b, "csv", SweepTable(ct.Name, 0.5, pts, best)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(1, nil)
	parallel := render(0, context.Background())
	if serial != parallel {
		t.Fatalf("worker-count / context presence changed sweep bytes:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}
}

func TestRunSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := RunSweep(SweepParams{Circuit: "s27", FromHz: 1e8, ToHz: 3e8, Points: 2}, device.Default350(), nil, ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep err = %v, want context.Canceled", err)
	}
}
