package cli

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// FuzzParseBench drives ParseBench with arbitrary bench-output text. The
// parser fronts the CI regression gate, so it must hold its invariants on any
// input `go test -bench` (or a truncated/corrupted log of it) can produce:
//
//   - never panic, whatever the line shape;
//   - on success, return records sorted by name with no duplicates, each
//     folded from at least one measurement line;
//   - be deterministic: the same bytes parse to the same records, so the gate
//     cannot flap on re-runs.
//
// The committed corpus under testdata/fuzz/FuzzParseBench seeds the
// interesting shapes: well-formed multi-count output, missing -N suffixes,
// sub-benchmark names with real hyphens, non-numeric run counts, malformed
// ns/op values (the one parse error), and oversized/blank lines.
func FuzzParseBench(f *testing.F) {
	f.Add(benchOutput)
	f.Add("BenchmarkX-8 3 100 ns/op\nBenchmarkX-8 3 90 ns/op\n")
	f.Add("BenchmarkX 3 nan ns/op\n")
	f.Add("BenchmarkX three 100 ns/op\nBenchmark\n\nok cmosopt 1.2s\n")
	f.Add("BenchmarkA/sub-case-2 1 5 ns/op 16 B/op 1 allocs/op\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ParseBench(strings.NewReader(input))
		if err != nil {
			return // rejected input; the only contract is "no panic"
		}
		for i, r := range recs {
			if r.Name == "" {
				t.Fatalf("record %d has empty name", i)
			}
			if !strings.HasPrefix(r.Name, "Benchmark") {
				t.Fatalf("record %d name %q lacks Benchmark prefix", i, r.Name)
			}
			if r.Samples < 1 {
				t.Fatalf("record %q folded from %d lines", r.Name, r.Samples)
			}
			// NaN/Inf ns/op must be rejected at parse time: NaN compares
			// false to everything, so it could never trip the CI gate.
			if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) {
				t.Fatalf("record %q has non-finite NsPerOp %v", r.Name, r.NsPerOp)
			}
			if i > 0 && recs[i-1].Name >= r.Name {
				t.Fatalf("records unsorted or duplicated: %q before %q",
					recs[i-1].Name, r.Name)
			}
		}
		if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name }) {
			t.Fatal("records not sorted by name")
		}
		again, err := ParseBench(strings.NewReader(input))
		if err != nil {
			t.Fatalf("second parse of accepted input failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-parse changed record count: %d vs %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("re-parse changed record %d: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
