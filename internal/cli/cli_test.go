package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLowPowerJointReport(t *testing.T) {
	var out bytes.Buffer
	if err := LowPower([]string{"-circuit", "s27", "-mode", "joint"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"circuit    s27", "method     joint", "feasible   true",
		"Vdd", "static E", "dynamic E", "total E", "tub bias"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestLowPowerModes(t *testing.T) {
	for _, mode := range []string{"baseline", "multivt"} {
		var out bytes.Buffer
		if err := LowPower([]string{"-circuit", "s27", "-mode", mode, "-M", "8"}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	var out bytes.Buffer
	if err := LowPower([]string{"-circuit", "s27", "-mode", "frob"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestLowPowerFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // neither circuit nor bench
		{"-circuit", "nosuch"},                  // unknown benchmark
		{"-circuit", "s27", "-bench", "x"},      // both sources
		{"-circuit", "s27", "-fc", "0"},         // bad frequency
		{"-bench", "/nonexistent/file.bench"},   // missing file
		{"-circuit", "s27", "-tech", "/no/way"}, // missing tech file
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := LowPower(args, &out); err == nil {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
}

func TestSaveVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	designPath := filepath.Join(dir, "d.json")
	var out bytes.Buffer
	if err := LowPower([]string{"-circuit", "s27", "-save", designPath}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(designPath); err != nil {
		t.Fatalf("design not written: %v", err)
	}
	out.Reset()
	if err := Verify([]string{"-design", designPath, "-circuit", "s27"}, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "TIMING PASS") {
		t.Errorf("missing pass marker:\n%s", out.String())
	}
	// The same design must fail sign-off at a doubled clock.
	out.Reset()
	if err := Verify([]string{"-design", designPath, "-circuit", "s27", "-fc", "6e8"}, &out); err == nil {
		t.Error("doubled clock passed sign-off")
	}
	if !strings.Contains(out.String(), "TIMING FAIL") {
		t.Errorf("missing fail marker:\n%s", out.String())
	}
}

func TestVerifyFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := Verify([]string{"-circuit", "s27"}, &out); err == nil {
		t.Error("missing -design accepted")
	}
	if err := Verify([]string{"-design", "/no/file", "-circuit", "s27"}, &out); err == nil {
		t.Error("missing design file accepted")
	}
}

func TestLowPowerWithBenchFileAndTechFile(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "t.bench")
	netlist := `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`
	if err := os.WriteFile(benchPath, []byte(netlist), 0o644); err != nil {
		t.Fatal(err)
	}
	techPath := filepath.Join(dir, "t.tech")
	if err := os.WriteFile(techPath, []byte("name = test\nksat = 3e-5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := LowPower([]string{"-bench", benchPath, "-tech", techPath, "-fc", "1e8"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "feasible   true") {
		t.Errorf("expected feasible run:\n%s", out.String())
	}
}

func TestLowPowerWithVerilogFile(t *testing.T) {
	dir := t.TempDir()
	vPath := filepath.Join(dir, "t.v")
	src := `
module t (a, b, y);
  input a, b;
  output y;
  wire g;
  nand u1 (g, a, b);
  not  u2 (y, g);
endmodule
`
	if err := os.WriteFile(vPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := LowPower([]string{"-bench", vPath, "-fc", "1e8"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "circuit    t ") {
		t.Errorf("module name missing:\n%s", out.String())
	}
}

func TestECOFlow(t *testing.T) {
	dir := t.TempDir()
	oldBench := filepath.Join(dir, "old.bench")
	newBench := filepath.Join(dir, "new.bench")
	oldNetlist := `
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOT(g1)
y = NOT(g2)
`
	// The edit adds one observer gate.
	newNetlist := oldNetlist + "OUTPUT(z)\nz = XOR(g1, g2)\n"
	if err := os.WriteFile(oldBench, []byte(oldNetlist), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newBench, []byte(newNetlist), 0o644); err != nil {
		t.Fatal(err)
	}
	designPath := filepath.Join(dir, "old.json")
	var out bytes.Buffer
	if err := LowPower([]string{"-bench", oldBench, "-fc", "1e8", "-save", designPath}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	newDesign := filepath.Join(dir, "new.json")
	if err := ECO([]string{"-design", designPath, "-prev", oldBench, "-bench", newBench,
		"-fc", "1e8", "-save", newDesign}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "reused     3/4") {
		t.Errorf("expected 3/4 gates reused:\n%s", s)
	}
	if !strings.Contains(s, "feasible   true") {
		t.Errorf("ECO result infeasible:\n%s", s)
	}
	// The updated design verifies against the edited netlist.
	out.Reset()
	if err := Verify([]string{"-design", newDesign, "-bench", newBench, "-fc", "1e8"}, &out); err != nil {
		t.Fatalf("verify after ECO: %v\n%s", err, out.String())
	}
}

func TestECOFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := ECO([]string{"-design", "x.json"}, &out); err == nil {
		t.Error("missing -prev accepted")
	}
	if err := ECO([]string{"-prev", "x.bench"}, &out); err == nil {
		t.Error("missing -design accepted")
	}
}
