package cli

import (
	"flag"
	"fmt"
	"io"

	"cmosopt/internal/core"
	"cmosopt/internal/obs"
)

// ObsFlags is the observability flag pair every command-line tool shares:
// -metrics writes a run manifest (schema obs.SchemaVersion) on exit, -pprof
// serves /debug/pprof and /debug/vars for the duration of the run. With
// neither flag set no registry exists and instrumentation is off entirely.
type ObsFlags struct {
	MetricsPath string
	PprofAddr   string
}

// Register adds the -metrics and -pprof flags to a flag set.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsPath, "metrics", "", "write a run-manifest JSON (spans, counters, histograms) to this file")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
}

// Begin creates the run's registry when either flag was set (nil otherwise),
// installs it as the process default so the worker pools record into it, and
// starts the debug endpoint when -pprof was given.
func (f *ObsFlags) Begin(out io.Writer) (*obs.Registry, error) {
	if f.MetricsPath == "" && f.PprofAddr == "" {
		return nil, nil
	}
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	if f.PprofAddr != "" {
		addr, err := obs.ServeDebug(f.PprofAddr)
		if err != nil {
			// Uninstall the default again: a failed Begin must not leave a
			// half-started run recording into a registry nobody will End.
			obs.SetDefault(nil)
			return nil, err
		}
		fmt.Fprintf(out, "pprof      serving /debug/pprof and /debug/vars on http://%s\n", addr)
	}
	return reg, nil
}

// End finalizes the run: freezes the registry into the manifest, writes the
// manifest when -metrics was given, and uninstalls the default registry so a
// finished run never keeps recording (the cli functions are reused by tests
// within one process). No-op when Begin returned nil.
func (f *ObsFlags) End(m *obs.Manifest, reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	obs.SetDefault(nil)
	m.Finish(reg)
	if f.MetricsPath == "" {
		return nil
	}
	return m.WriteFile(f.MetricsPath)
}

// ResultRecord converts one optimization result into its manifest form.
func ResultRecord(label string, fcHz float64, r *core.Result) obs.ResultRecord {
	return obs.ResultRecord{
		Label:          label,
		Method:         r.Method,
		FcHz:           fcHz,
		Vdd:            r.Vdd,
		Vts:            r.VtsValues,
		EnergyStatic:   r.Energy.Static,
		EnergyDynamic:  r.Energy.Dynamic,
		EnergyTotal:    r.Energy.Total(),
		CriticalDelayS: r.CriticalDelay,
		Feasible:       r.Feasible,
		Evaluations:    r.Evaluations,
	}
}
