package cli

import (
	"strings"
	"testing"

	"cmosopt/internal/obs"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: cmosopt
BenchmarkProcedure2-8                3     41000000 ns/op
BenchmarkProcedure2-8                3     39500000 ns/op
BenchmarkProcedure2-8                3     40200000 ns/op
BenchmarkEngineFullEval-8         1000      1100000 ns/op        512 B/op       3 allocs/op
BenchmarkEngineFullEval-8         1000      1050000 ns/op        512 B/op       3 allocs/op
BenchmarkEngineIncremental          50       220000 ns/op
PASS
ok      cmosopt 12.3s
`

func TestParseBench(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	// Sorted by name; -8 suffix stripped; min across repeats kept.
	want := []struct {
		name    string
		ns      float64
		samples int
	}{
		{"BenchmarkEngineFullEval", 1050000, 2},
		{"BenchmarkEngineIncremental", 220000, 1},
		{"BenchmarkProcedure2", 39500000, 3},
	}
	for i, w := range want {
		r := recs[i]
		if r.Name != w.name || r.NsPerOp != w.ns || r.Samples != w.samples {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestParseBenchMemColumns(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.BenchRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	fe := byName["BenchmarkEngineFullEval"]
	if !fe.MemMeasured || fe.BytesPerOp != 512 || fe.AllocsPerOp != 3 {
		t.Errorf("FullEval mem columns = %+v, want 512 B/op, 3 allocs/op", fe)
	}
	p2 := byName["BenchmarkProcedure2"]
	if p2.MemMeasured || p2.BytesPerOp != 0 || p2.AllocsPerOp != 0 {
		t.Errorf("Procedure2 should carry no mem columns: %+v", p2)
	}
}

func TestParseBenchMemMinAcrossRepeats(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(
		"BenchmarkX-8 10 1000 ns/op 256 B/op 4 allocs/op\n" +
			"BenchmarkX-8 10 900 ns/op 128 B/op 2 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.NsPerOp != 900 || r.BytesPerOp != 128 || r.AllocsPerOp != 2 || !r.MemMeasured {
		t.Errorf("min folding wrong: %+v", r)
	}
}

func TestParseBenchBadMemColumn(t *testing.T) {
	if _, err := ParseBench(strings.NewReader(
		"BenchmarkX 10 1000 ns/op NaN B/op 0 allocs/op\n")); err == nil {
		t.Error("NaN B/op accepted")
	}
	if _, err := ParseBench(strings.NewReader(
		"BenchmarkX 10 1000 ns/op 64 B/op +Inf allocs/op\n")); err == nil {
		t.Error("Inf allocs/op accepted")
	}
}

func TestParseBenchNoSuffix(t *testing.T) {
	// Serial runs (GOMAXPROCS=1) emit no -N suffix; names with real hyphens
	// keep them.
	recs, err := ParseBench(strings.NewReader(
		"BenchmarkSTA 100 5000 ns/op\nBenchmarkSweep/fc-hi-4 10 900 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "BenchmarkSTA" || recs[1].Name != "BenchmarkSweep/fc-hi" {
		t.Fatalf("got %+v", recs)
	}
}

func TestCompareBench(t *testing.T) {
	base := []obs.BenchRecord{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
	}
	cur := []obs.BenchRecord{
		{Name: "A", NsPerOp: 1100}, // 1.1x: within gate
		{Name: "B", NsPerOp: 2000}, // 2.0x: regression
		// C deleted: must be flagged
		{Name: "D", NsPerOp: 9999}, // new benchmark: ignored
	}
	deltas := CompareBench(base, cur, 1.25)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	byName := map[string]BenchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["A"]; d.Regressed || d.Missing {
		t.Errorf("A should pass: %+v", d)
	}
	if d := byName["B"]; !d.Regressed {
		t.Errorf("B should regress: %+v", d)
	}
	if d := byName["C"]; !d.Missing {
		t.Errorf("C should be missing: %+v", d)
	}
	var sb strings.Builder
	if failed := RenderBenchDeltas(&sb, deltas); failed != 2 {
		t.Errorf("failed = %d, want 2\n%s", failed, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"ok      A", "FAIL    B", "MISSING C"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBenchAllocGate(t *testing.T) {
	base := []obs.BenchRecord{
		{Name: "Zero", NsPerOp: 1000, MemMeasured: true},                  // 0 allocs/op baseline
		{Name: "Some", NsPerOp: 1000, AllocsPerOp: 100, MemMeasured: true},
		{Name: "NoMem", NsPerOp: 1000},
	}
	cur := []obs.BenchRecord{
		// ns/op flat everywhere; only allocations move.
		{Name: "Zero", NsPerOp: 1000, AllocsPerOp: 500, MemMeasured: true},  // 0 → 500: fail
		{Name: "Some", NsPerOp: 1000, AllocsPerOp: 104, MemMeasured: true},  // within slack: pass
		{Name: "NoMem", NsPerOp: 1000, AllocsPerOp: 1e6, MemMeasured: true}, // baseline unmeasured: not gated
	}
	deltas := CompareBench(base, cur, 1.25)
	byName := map[string]BenchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["Zero"]; !d.AllocRegressed {
		t.Errorf("Zero should alloc-regress: %+v", d)
	}
	if d := byName["Some"]; d.AllocRegressed {
		t.Errorf("Some is within slack, should pass: %+v", d)
	}
	if d := byName["NoMem"]; d.AllocRegressed {
		t.Errorf("NoMem has no measured baseline, should not be gated: %+v", d)
	}
	var sb strings.Builder
	if failed := RenderBenchDeltas(&sb, deltas); failed != 1 {
		t.Errorf("failed = %d, want 1\n%s", failed, sb.String())
	}
	if !strings.Contains(sb.String(), "allocs/op") {
		t.Errorf("alloc failure not rendered:\n%s", sb.String())
	}
}

func TestCompareBenchAllocSlackCapsZeroEscape(t *testing.T) {
	// The relative threshold alone can't gate a zero baseline (0 × anything
	// is 0); the absolute slack must cap the escape at allocSlack.
	base := []obs.BenchRecord{{Name: "Z", NsPerOp: 100, MemMeasured: true}}
	within := []obs.BenchRecord{{Name: "Z", NsPerOp: 100, AllocsPerOp: allocSlack, MemMeasured: true}}
	beyond := []obs.BenchRecord{{Name: "Z", NsPerOp: 100, AllocsPerOp: allocSlack + 1, MemMeasured: true}}
	if d := CompareBench(base, within, 1.25)[0]; d.AllocRegressed {
		t.Errorf("allocs/op at the slack bound should pass: %+v", d)
	}
	if d := CompareBench(base, beyond, 1.25)[0]; !d.AllocRegressed {
		t.Errorf("allocs/op beyond the slack bound should fail: %+v", d)
	}
}
