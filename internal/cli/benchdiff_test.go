package cli

import (
	"strings"
	"testing"

	"cmosopt/internal/obs"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: cmosopt
BenchmarkProcedure2-8                3     41000000 ns/op
BenchmarkProcedure2-8                3     39500000 ns/op
BenchmarkProcedure2-8                3     40200000 ns/op
BenchmarkEngineFullEval-8         1000      1100000 ns/op        512 B/op       3 allocs/op
BenchmarkEngineFullEval-8         1000      1050000 ns/op        512 B/op       3 allocs/op
BenchmarkEngineIncremental          50       220000 ns/op
PASS
ok      cmosopt 12.3s
`

func TestParseBench(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	// Sorted by name; -8 suffix stripped; min across repeats kept.
	want := []struct {
		name    string
		ns      float64
		samples int
	}{
		{"BenchmarkEngineFullEval", 1050000, 2},
		{"BenchmarkEngineIncremental", 220000, 1},
		{"BenchmarkProcedure2", 39500000, 3},
	}
	for i, w := range want {
		r := recs[i]
		if r.Name != w.name || r.NsPerOp != w.ns || r.Samples != w.samples {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestParseBenchNoSuffix(t *testing.T) {
	// Serial runs (GOMAXPROCS=1) emit no -N suffix; names with real hyphens
	// keep them.
	recs, err := ParseBench(strings.NewReader(
		"BenchmarkSTA 100 5000 ns/op\nBenchmarkSweep/fc-hi-4 10 900 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "BenchmarkSTA" || recs[1].Name != "BenchmarkSweep/fc-hi" {
		t.Fatalf("got %+v", recs)
	}
}

func TestCompareBench(t *testing.T) {
	base := []obs.BenchRecord{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
	}
	cur := []obs.BenchRecord{
		{Name: "A", NsPerOp: 1100}, // 1.1x: within gate
		{Name: "B", NsPerOp: 2000}, // 2.0x: regression
		// C deleted: must be flagged
		{Name: "D", NsPerOp: 9999}, // new benchmark: ignored
	}
	deltas := CompareBench(base, cur, 1.25)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	byName := map[string]BenchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["A"]; d.Regressed || d.Missing {
		t.Errorf("A should pass: %+v", d)
	}
	if d := byName["B"]; !d.Regressed {
		t.Errorf("B should regress: %+v", d)
	}
	if d := byName["C"]; !d.Missing {
		t.Errorf("C should be missing: %+v", d)
	}
	var sb strings.Builder
	if failed := RenderBenchDeltas(&sb, deltas); failed != 2 {
		t.Errorf("failed = %d, want 2\n%s", failed, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"ok      A", "FAIL    B", "MISSING C"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
