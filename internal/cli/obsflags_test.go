package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmosopt/internal/obs"
)

func TestObsFlagsRegisterAndOff(t *testing.T) {
	var f ObsFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-metrics", "m.json", "-pprof", "localhost:0"}); err != nil {
		t.Fatal(err)
	}
	if f.MetricsPath != "m.json" || f.PprofAddr != "localhost:0" {
		t.Fatalf("parsed flags = %+v", f)
	}

	// Neither flag set: Begin is a no-op and installs nothing.
	var off ObsFlags
	reg, err := off.Begin(os.Stderr)
	if err != nil || reg != nil {
		t.Fatalf("Begin with no flags = (%v, %v), want (nil, nil)", reg, err)
	}
	if obs.Default() != nil {
		t.Fatal("Begin with no flags installed a default registry")
	}
	if err := off.End(obs.NewManifest("test"), nil); err != nil {
		t.Fatalf("End with nil registry: %v", err)
	}
}

func TestObsFlagsBeginBadPprofAddr(t *testing.T) {
	f := ObsFlags{PprofAddr: "host:not-a-port"}
	reg, err := f.Begin(os.Stderr)
	if err == nil {
		t.Fatal("Begin with unlistenable -pprof address succeeded")
	}
	if reg != nil {
		t.Fatalf("Begin returned a registry alongside error %v", err)
	}
	if !strings.Contains(err.Error(), "host:not-a-port") {
		t.Errorf("error %q does not name the bad address", err)
	}
	// The failed Begin must not leave the process-default registry installed:
	// worker pools would keep recording into a run nobody will ever End.
	if obs.Default() != nil {
		obs.SetDefault(nil)
		t.Fatal("failed Begin left the default registry installed")
	}
}

func TestObsFlagsEndUnwritableMetricsPath(t *testing.T) {
	f := ObsFlags{MetricsPath: filepath.Join(t.TempDir(), "no-such-dir", "run.json")}
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	err := f.End(obs.NewManifest("test"), reg)
	if err == nil {
		t.Fatal("End with unwritable -metrics path succeeded")
	}
	// Even when the manifest write fails, End must uninstall the default so a
	// finished run never keeps recording.
	if obs.Default() != nil {
		obs.SetDefault(nil)
		t.Fatal("End left the default registry installed after write error")
	}
}

func TestObsFlagsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	f := ObsFlags{MetricsPath: path}
	reg, err := f.Begin(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil || obs.Default() != reg {
		t.Fatal("Begin with -metrics did not install the registry as default")
	}
	reg.Counter("test.count").Add(3)
	if err := f.End(obs.NewManifest("test"), reg); err != nil {
		t.Fatal(err)
	}
	if obs.Default() != nil {
		obs.SetDefault(nil)
		t.Fatal("End left the default registry installed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if !strings.Contains(string(data), "test.count") {
		t.Errorf("manifest missing recorded counter:\n%s", data)
	}
}
