package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

// SweepParams is the clock-sweep study of cmd/sweep in parameter form, so
// the same run can be driven by command-line flags, by the optimization
// server (internal/serve), or in-process by the load generator's
// byte-identity check — all three produce the identical table for identical
// parameters.
type SweepParams struct {
	Circuit  string  // built-in benchmark name
	FromHz   float64 // lowest clock target (Hz)
	ToHz     float64 // highest clock target (Hz)
	Points   int     // number of log-spaced sweep points
	Activity float64 // input transition density per cycle
	Workers  int     // parallel workers (0 = one per CPU)
}

// SetDefaults fills zero fields with the cmd/sweep flag defaults.
func (p *SweepParams) SetDefaults() {
	if p.Circuit == "" {
		p.Circuit = "s298"
	}
	if p.FromHz == 0 {
		p.FromHz = 50e6
	}
	if p.ToHz == 0 {
		p.ToHz = 600e6
	}
	if p.Points == 0 {
		p.Points = 8
	}
	if p.Activity == 0 {
		p.Activity = 0.5
	}
}

// Validate rejects unusable sweep ranges.
func (p *SweepParams) Validate() error {
	if p.FromHz <= 0 || p.ToHz <= p.FromHz || p.Points < 2 {
		return fmt.Errorf("bad sweep range [%v, %v] x %d", p.FromHz, p.ToHz, p.Points)
	}
	if p.Points > 256 {
		return fmt.Errorf("sweep of %d points exceeds the 256-point cap", p.Points)
	}
	if p.Workers < 0 {
		return fmt.Errorf("bad worker count %d", p.Workers)
	}
	if p.Activity < 0 || p.Activity > 1 {
		return fmt.Errorf("activity %v outside [0,1]", p.Activity)
	}
	return nil
}

// Clocks returns the log-spaced clock targets. Spaced by exponent rather
// than by running product: fcs[i] = from·ratio^i has no accumulated rounding
// drift, so the last point lands exactly on ToHz.
func (p *SweepParams) Clocks() []float64 {
	fcs := make([]float64, p.Points)
	ratio := p.ToHz / p.FromHz
	for i := range fcs {
		fcs[i] = p.FromHz * math.Pow(ratio, float64(i)/float64(p.Points-1))
	}
	fcs[p.Points-1] = p.ToHz
	return fcs
}

// RunSweep resolves the circuit and runs the EDP study. ctx, when non-nil,
// cancels the underlying optimizer loops; reg, when non-nil, collects the
// run's spans and counters. Neither changes the returned points.
func RunSweep(p SweepParams, tech device.Tech, reg *obs.Registry, ctx context.Context) (*circuit.Circuit, []core.EDPPoint, int, error) {
	p.SetDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, -1, err
	}
	ct, err := netgen.LoadNamed(p.Circuit)
	if err != nil {
		return nil, nil, -1, err
	}
	spec := core.Spec{
		Circuit:      ct,
		Tech:         tech,
		Wiring:       wiring.Default350(),
		Fc:           p.FromHz, // per-point override inside EDPStudy
		Skew:         0.95,
		InputProb:    0.5,
		InputDensity: p.Activity,
		Obs:          reg,
		Ctx:          ctx,
	}
	opts := core.DefaultOptions()
	opts.Workers = p.Workers
	pts, best, err := core.EDPStudy(spec, p.Clocks(), opts)
	if err != nil {
		return nil, nil, -1, err
	}
	return ct, pts, best, nil
}

// SweepTable renders the study into the report table cmd/sweep prints.
func SweepTable(name string, activity float64, pts []core.EDPPoint, best int) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("clock sweep: %s (activity %.2f)", name, activity),
		Headers: []string{"fc (MHz)", "Vdd (V)", "Vt (V)", "Static E (J)",
			"Dynamic E (J)", "Total E (J)", "EDP (J*s)", "note"},
	}
	for i, pt := range pts {
		note := ""
		if i == best {
			note = "<- min EDP"
		}
		r := pt.Result
		t.AddRow(
			fmt.Sprintf("%.0f", pt.Fc/1e6),
			fmt.Sprintf("%.2f", r.Vdd),
			fmt.Sprintf("%.3f", r.VtsValues[0]),
			report.Sci(r.Energy.Static),
			report.Sci(r.Energy.Dynamic),
			report.Sci(r.Energy.Total()),
			report.Sci(pt.EDP),
			note,
		)
	}
	return t
}

// RenderSweep writes the table in the requested format ("text" or "csv").
func RenderSweep(w io.Writer, format string, t *report.Table) error {
	switch format {
	case "text":
		return t.Render(w)
	case "csv":
		return t.RenderCSV(w)
	}
	return fmt.Errorf("unknown format %q", format)
}

// Sweep implements cmd/sweep: parse flags, run the study, print the table,
// and emit the run manifest.
func Sweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(out)
	name := fs.String("circuit", "s298", "benchmark circuit")
	from := fs.Float64("from", 50e6, "lowest clock target (Hz)")
	to := fs.Float64("to", 600e6, "highest clock target (Hz)")
	points := fs.Int("points", 8, "number of sweep points (log-spaced)")
	act := fs.Float64("activity", 0.5, "input transition density per cycle")
	format := fs.String("format", "text", "output format: text, csv")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU, 1 = serial; same output either way)")
	var of ObsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg, err := of.Begin(out)
	if err != nil {
		return err
	}
	params := SweepParams{
		Circuit: *name, FromHz: *from, ToHz: *to, Points: *points,
		Activity: *act, Workers: *workers,
	}
	// Validate the raw flag values: a zero -from is a user error here, not a
	// request for the default (SetDefaults only backfills absent API fields).
	if err := params.Validate(); err != nil {
		return err
	}
	ct, pts, best, err := RunSweep(params, device.Default350(), reg, nil)
	if err != nil {
		return err
	}
	if err := RenderSweep(out, *format, SweepTable(ct.Name, *act, pts, best)); err != nil {
		return err
	}

	man := obs.NewManifest("sweep")
	man.Circuit = ct.Name
	man.Gates = ct.NumLogic()
	man.Workers = *workers
	for _, pt := range pts {
		man.Results = append(man.Results,
			ResultRecord(fmt.Sprintf("fc=%.0fMHz", pt.Fc/1e6), pt.Fc, pt.Result))
	}
	return of.End(man, reg)
}
