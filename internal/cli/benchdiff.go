package cli

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"cmosopt/internal/obs"
)

// ParseBench reads `go test -bench` text output and folds it into one
// BenchRecord per benchmark. With -count N each benchmark emits N measurement
// lines; NsPerOp keeps the minimum across them — a benchmark can run slow
// from scheduler interference but never fast by luck, so the minimum is the
// noise-robust statistic for a regression gate. The -<GOMAXPROCS> suffix go
// test appends is stripped so baselines survive core-count changes.
func ParseBench(r io.Reader) ([]obs.BenchRecord, error) {
	type agg struct {
		runs      int
		minNs     float64
		samples   int
		minBytes  float64
		minAllocs float64
		mem       bool
	}
	byName := map[string]*agg{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8   3   123456789 ns/op [117 B/op] [0 allocs/op] [extra unit pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx, bIdx, aIdx := -1, -1, -1
		for i := 3; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				if nsIdx < 0 {
					nsIdx = i - 1
				}
			case "B/op":
				bIdx = i - 1
			case "allocs/op":
				aIdx = i - 1
			}
		}
		if nsIdx < 2 {
			continue
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		// Non-finite ns/op is as malformed as a non-number: NaN in particular
		// would poison the regression gate, since every NaN comparison is
		// false and the benchmark could never be flagged as regressed.
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil || math.IsNaN(ns) || math.IsInf(ns, 0) {
			return nil, fmt.Errorf("benchdiff: bad ns/op %q in %q", fields[nsIdx], sc.Text())
		}
		// Memory columns are optional (-benchmem / b.ReportAllocs); when
		// present they must parse, by the same poisoning argument.
		bytesOp, allocsOp, mem := 0.0, 0.0, false
		if bIdx >= 2 && aIdx >= 2 {
			bytesOp, err = strconv.ParseFloat(fields[bIdx], 64)
			if err != nil || math.IsNaN(bytesOp) || math.IsInf(bytesOp, 0) {
				return nil, fmt.Errorf("benchdiff: bad B/op %q in %q", fields[bIdx], sc.Text())
			}
			allocsOp, err = strconv.ParseFloat(fields[aIdx], 64)
			if err != nil || math.IsNaN(allocsOp) || math.IsInf(allocsOp, 0) {
				return nil, fmt.Errorf("benchdiff: bad allocs/op %q in %q", fields[aIdx], sc.Text())
			}
			mem = true
		}
		name := trimProcsSuffix(fields[0])
		a := byName[name]
		if a == nil {
			a = &agg{minNs: ns}
			byName[name] = a
			order = append(order, name)
		} else if ns < a.minNs {
			a.minNs = ns
		}
		if mem {
			if !a.mem || bytesOp < a.minBytes {
				a.minBytes = bytesOp
			}
			if !a.mem || allocsOp < a.minAllocs {
				a.minAllocs = allocsOp
			}
			a.mem = true
		}
		a.runs += runs
		a.samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	recs := make([]obs.BenchRecord, 0, len(order))
	for _, name := range order {
		a := byName[name]
		recs = append(recs, obs.BenchRecord{
			Name: name, Runs: a.runs, NsPerOp: a.minNs, Samples: a.samples,
			BytesPerOp: a.minBytes, AllocsPerOp: a.minAllocs, MemMeasured: a.mem,
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	return recs, nil
}

// trimProcsSuffix removes the "-<n>" GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkProcedure2-8" → "BenchmarkProcedure2").
func trimProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// BenchDelta is one baseline/current pair from CompareBench.
type BenchDelta struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64 // current / baseline
	Regressed  bool    // Ratio > threshold
	Missing    bool    // present in baseline, absent in current

	// Allocation gate (only when both records carry memory columns).
	BaselineAllocs float64
	CurrentAllocs  float64
	AllocRegressed bool
}

// allocSlack is the absolute allocs/op headroom the allocation gate ignores:
// a handful of allocations can appear from one-time warm-up amortized over a
// small -benchtime iteration count without meaning the steady state regressed.
const allocSlack = 8

// CompareBench pairs current measurements against a committed baseline.
// A benchmark regresses when current exceeds baseline × threshold (the CI
// gate uses 1.25, i.e. >25% slower fails). When both sides measured memory,
// allocs/op is gated too: growing more than threshold× AND by more than
// allocSlack absolute fails — the relative test alone would let a
// zero-allocation baseline accept any count, so the absolute slack doubles as
// the cap on a 0 → N escape. Benchmarks that exist only in the current run
// are new and pass by definition; benchmarks that vanished from the current
// run are flagged Missing so a gate can't be dodged by deleting the slow
// benchmark.
func CompareBench(baseline, current []obs.BenchRecord, threshold float64) []BenchDelta {
	cur := make(map[string]obs.BenchRecord, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	deltas := make([]BenchDelta, 0, len(baseline))
	for _, b := range baseline {
		d := BenchDelta{Name: b.Name, BaselineNs: b.NsPerOp}
		c, ok := cur[b.Name]
		if !ok {
			d.Missing = true
		} else {
			d.CurrentNs = c.NsPerOp
			if b.NsPerOp > 0 {
				d.Ratio = c.NsPerOp / b.NsPerOp
			}
			d.Regressed = d.Ratio > threshold
			if b.MemMeasured && c.MemMeasured {
				d.BaselineAllocs = b.AllocsPerOp
				d.CurrentAllocs = c.AllocsPerOp
				d.AllocRegressed = c.AllocsPerOp > b.AllocsPerOp*threshold &&
					c.AllocsPerOp > b.AllocsPerOp+allocSlack
			}
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// RenderBenchDeltas writes a human-readable comparison table and returns how
// many entries fail the gate (regressed, alloc-regressed, or missing).
func RenderBenchDeltas(w io.Writer, deltas []BenchDelta) int {
	failed := 0
	for _, d := range deltas {
		switch {
		case d.Missing:
			failed++
			fmt.Fprintf(w, "MISSING %-40s baseline %12.0f ns/op, absent from current run\n",
				d.Name, d.BaselineNs)
		case d.Regressed:
			failed++
			fmt.Fprintf(w, "FAIL    %-40s %12.0f -> %12.0f ns/op (%.2fx)\n",
				d.Name, d.BaselineNs, d.CurrentNs, d.Ratio)
		case d.AllocRegressed:
			failed++
			fmt.Fprintf(w, "FAIL    %-40s %12.0f -> %12.0f allocs/op\n",
				d.Name, d.BaselineAllocs, d.CurrentAllocs)
		default:
			fmt.Fprintf(w, "ok      %-40s %12.0f -> %12.0f ns/op (%.2fx)\n",
				d.Name, d.BaselineNs, d.CurrentNs, d.Ratio)
		}
	}
	return failed
}
