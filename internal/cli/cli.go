// Package cli holds the testable implementations of the command-line tools:
// each command's main() is a thin wrapper over a function here that takes an
// argument vector and an output writer, so the full flag-to-report paths are
// exercised by unit tests.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/obs"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

// LoadCircuit resolves the shared -circuit/-bench flag pair: a built-in
// benchmark name or a netlist file (ISCAS .bench, or structural Verilog when
// the path ends in .v).
func LoadCircuit(name, benchPath string) (*circuit.Circuit, error) {
	switch {
	case name != "" && benchPath != "":
		return nil, fmt.Errorf("use either -circuit or -bench, not both")
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(benchPath, ".v") {
			return circuit.ParseVerilog(benchPath, f)
		}
		return circuit.ParseBench(benchPath, f)
	case name != "":
		return netgen.LoadNamed(name)
	}
	return nil, fmt.Errorf("specify -circuit <name> or -bench <file>")
}

// LoadTech returns the default technology, optionally overridden by a
// parameter file.
func LoadTech(path string) (device.Tech, error) {
	tech := device.Default350()
	if path == "" {
		return tech, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return tech, err
	}
	defer f.Close()
	return device.ParseTech(tech, f)
}

// LowPower implements cmd/lowpower: optimize one circuit and print the
// design report. It returns an error for bad flags or infeasible problems.
func LowPower(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lowpower", flag.ContinueOnError)
	fs.SetOutput(out)
	name := fs.String("circuit", "", "built-in benchmark name (s27, c17, s298, ...)")
	benchPath := fs.String("bench", "", "path to an ISCAS .bench netlist")
	mode := fs.String("mode", "joint", "optimizer: joint, baseline, anneal, multivt, dualvdd, sensitivity")
	nv := fs.Int("nv", 2, "distinct threshold voltages for -mode multivt")
	fc := fs.Float64("fc", 300e6, "required clock frequency (Hz)")
	skew := fs.Float64("skew", 0.95, "clock-skew derating b (0,1]")
	prob := fs.Float64("prob", 0.5, "input signal probability")
	act := fs.Float64("activity", 0.5, "input transition density per cycle")
	m := fs.Int("M", 12, "bisection steps per Procedure 2 loop")
	techPath := fs.String("tech", "", "technology parameter file")
	savePath := fs.String("save", "", "write the optimized design as JSON to this file")
	var of ObsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ct, err := LoadCircuit(*name, *benchPath)
	if err != nil {
		return err
	}
	tech, err := LoadTech(*techPath)
	if err != nil {
		return err
	}
	reg, err := of.Begin(out)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      ct,
		Tech:         tech,
		Wiring:       wiring.Default350(),
		Fc:           *fc,
		Skew:         *skew,
		InputProb:    *prob,
		InputDensity: *act,
		Obs:          reg,
	})
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.M = *m

	var res *core.Result
	switch *mode {
	case "joint":
		res, err = p.OptimizeJoint(opts)
	case "baseline":
		res, err = p.OptimizeBaseline(opts)
	case "anneal":
		res, err = p.OptimizeAnneal(core.DefaultAnnealOptions())
	case "multivt":
		res, err = p.OptimizeMultiVt(*nv, opts)
	case "dualvdd":
		res, err = p.OptimizeDualVdd(opts)
	case "sensitivity":
		res, err = p.OptimizeJointSensitivity(opts)
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return err
	}
	PrintResult(out, p, res)

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := design.Save(f, p.C, res.Assignment); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "design     saved to %s (verify with: go run ./cmd/verify -design %s ...)\n",
			*savePath, *savePath)
	}
	man := obs.NewManifest("lowpower")
	man.Circuit = p.C.Name
	man.Gates = p.C.NumLogic()
	man.FcHz = *fc
	man.Results = append(man.Results, ResultRecord(*mode, *fc, res))
	return of.End(man, reg)
}

// PrintResult renders the optimization report of cmd/lowpower.
func PrintResult(out io.Writer, p *core.Problem, res *core.Result) {
	stats := circuit.ComputeStats(p.C)
	fmt.Fprintf(out, "circuit    %s (%d gates, depth %d)\n", p.C.Name, stats.Gates, stats.Depth)
	fmt.Fprintf(out, "method     %s\n", res.Method)
	fmt.Fprintf(out, "feasible   %v (critical delay %s vs budget %s)\n",
		res.Feasible, report.Eng(res.CriticalDelay, "s"), report.Eng(p.CycleBudget(), "s"))
	if frac, low, high, dual := p.LowRailShare(res); dual {
		fmt.Fprintf(out, "Vdd        %s (high rail) + %s (low rail, %.0f%% of gates)\n",
			report.Eng(high, "V"), report.Eng(low, "V"), frac*100)
	} else {
		fmt.Fprintf(out, "Vdd        %s\n", report.Eng(res.Vdd, "V"))
	}
	for i, vt := range res.VtsValues {
		fmt.Fprintf(out, "Vt[%d]      %s\n", i, report.Eng(vt, "V"))
	}
	fmt.Fprintf(out, "static E   %s/cycle\n", report.Eng(res.Energy.Static, "J"))
	fmt.Fprintf(out, "dynamic E  %s/cycle\n", report.Eng(res.Energy.Dynamic, "J"))
	fmt.Fprintf(out, "total E    %s/cycle\n", report.Eng(res.Energy.Total(), "J"))
	fmt.Fprintf(out, "power      %s at %s\n", report.Eng(p.Eval.AvgPower(res.Energy), "W"), report.Eng(p.Fc, "Hz"))
	fmt.Fprintf(out, "evals      %d full-circuit evaluation equivalents\n", res.Evaluations)

	minW, maxW, sumW, n := 1e18, 0.0, 0.0, 0
	for i := range p.C.Gates {
		if !p.C.Gates[i].IsLogic() {
			continue
		}
		w := res.Assignment.W[i]
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
		sumW += w
		n++
	}
	fmt.Fprintf(out, "widths     min %.1f / avg %.1f / max %.1f (x min feature width)\n", minW, sumW/float64(n), maxW)

	edges := 0
	for i := range p.C.Gates {
		edges += p.C.Gates[i].NumFanout()
	}
	fmt.Fprintf(out, "placement  ~%s die edge, ~%s total routed wire (Rent estimate)\n",
		report.Eng(p.Wire.DieEdge(), "m"), report.Eng(p.Wire.TotalWireEstimate(edges), "m"))

	bb := device.DefaultBodyBias()
	if plan, err := device.PlanTubBiases(bb, bb, res.VtsValues, 5); err == nil {
		for i := range res.VtsValues {
			fmt.Fprintf(out, "tub bias   Vt=%s: substrate %s below GND, n-well %s above Vdd\n",
				report.Eng(res.VtsValues[i], "V"),
				report.Eng(plan.VSubstrate[i], "V"),
				report.Eng(plan.VNWell[i], "V"))
		}
	} else {
		fmt.Fprintf(out, "tub bias   not realizable from natural devices: %v\n", err)
	}
}

// ECO implements cmd/eco: transplant a saved design onto an edited netlist
// (warm start), re-solving only what the edit disturbed, and save the
// updated design.
func ECO(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eco", flag.ContinueOnError)
	fs.SetOutput(out)
	designPath := fs.String("design", "", "previous design JSON (required)")
	prevBench := fs.String("prev", "", "previous netlist file (required)")
	name := fs.String("circuit", "", "edited built-in benchmark name")
	benchPath := fs.String("bench", "", "edited netlist file")
	fc := fs.Float64("fc", 300e6, "required clock frequency (Hz)")
	skew := fs.Float64("skew", 0.95, "clock-skew derating b (0,1]")
	prob := fs.Float64("prob", 0.5, "input signal probability")
	act := fs.Float64("activity", 0.5, "input transition density per cycle")
	techPath := fs.String("tech", "", "technology parameter file")
	savePath := fs.String("save", "", "write the updated design JSON here")
	var of ObsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *designPath == "" || *prevBench == "" {
		return fmt.Errorf("-design and -prev are required")
	}
	prevC, err := LoadCircuit("", *prevBench)
	if err != nil {
		return err
	}
	if prevC.IsSequential() {
		if prevC, err = prevC.Combinational(); err != nil {
			return err
		}
	}
	editedC, err := LoadCircuit(*name, *benchPath)
	if err != nil {
		return err
	}
	tech, err := LoadTech(*techPath)
	if err != nil {
		return err
	}
	reg, err := of.Begin(out)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      editedC,
		Tech:         tech,
		Wiring:       wiring.Default350(),
		Fc:           *fc,
		Skew:         *skew,
		InputProb:    *prob,
		InputDensity: *act,
		Obs:          reg,
	})
	if err != nil {
		return err
	}
	df, err := os.Open(*designPath)
	if err != nil {
		return err
	}
	prev, err := design.Load(df, prevC)
	df.Close()
	if err != nil {
		return err
	}
	res, reused, fast, err := p.WarmStart(prevC, prev, core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "reused     %d/%d gate sizings from the previous design\n", reused, p.C.NumLogic())
	if fast {
		fmt.Fprintln(out, "path       warm start (widths only)")
	} else {
		fmt.Fprintln(out, "path       full re-optimization (warm start could not close timing)")
	}
	PrintResult(out, p, res)
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := design.Save(f, p.C, res.Assignment); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "design     saved to %s\n", *savePath)
	}
	man := obs.NewManifest("eco")
	man.Circuit = p.C.Name
	man.Gates = p.C.NumLogic()
	man.FcHz = *fc
	man.Results = append(man.Results, ResultRecord("eco", *fc, res))
	return of.End(man, reg)
}

// Verify implements cmd/verify: load a saved design and re-check it.
// A timing failure returns an error (the command maps it to exit status 1).
func Verify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(out)
	designPath := fs.String("design", "", "saved design JSON (required)")
	name := fs.String("circuit", "", "built-in benchmark name")
	benchPath := fs.String("bench", "", "path to an ISCAS .bench netlist")
	fc := fs.Float64("fc", 300e6, "required clock frequency (Hz)")
	skew := fs.Float64("skew", 0.95, "clock-skew derating b (0,1]")
	prob := fs.Float64("prob", 0.5, "input signal probability")
	act := fs.Float64("activity", 0.5, "input transition density per cycle")
	techPath := fs.String("tech", "", "technology parameter file")
	var of ObsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *designPath == "" {
		return fmt.Errorf("-design is required")
	}
	ct, err := LoadCircuit(*name, *benchPath)
	if err != nil {
		return err
	}
	tech, err := LoadTech(*techPath)
	if err != nil {
		return err
	}
	reg, err := of.Begin(out)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      ct,
		Tech:         tech,
		Wiring:       wiring.Default350(),
		Fc:           *fc,
		Skew:         *skew,
		InputProb:    *prob,
		InputDensity: *act,
		Obs:          reg,
	})
	if err != nil {
		return err
	}

	df, err := os.Open(*designPath)
	if err != nil {
		return err
	}
	a, err := design.Load(df, p.C)
	df.Close()
	if err != nil {
		return err
	}
	if err := a.Validate(&p.Tech, p.C.N()); err != nil {
		return fmt.Errorf("design violates technology limits: %v", err)
	}

	cd := p.Eval.CriticalDelay(a)
	e := p.Eval.Energy(a)
	budget := p.CycleBudget()
	fmt.Fprintf(out, "circuit        %s (%d gates)\n", p.C.Name, p.C.NumLogic())
	fmt.Fprintf(out, "critical delay %s (budget %s)\n", report.Eng(cd, "s"), report.Eng(budget, "s"))
	fmt.Fprintf(out, "static energy  %s/cycle\n", report.Eng(e.Static, "J"))
	fmt.Fprintf(out, "dynamic energy %s/cycle\n", report.Eng(e.Dynamic, "J"))
	fmt.Fprintf(out, "total energy   %s/cycle (%s at %s)\n",
		report.Eng(e.Total(), "J"), report.Eng(p.Eval.AvgPower(e), "W"), report.Eng(p.Fc, "Hz"))
	p.Eval.FlushObs()
	man := obs.NewManifest("verify")
	man.Circuit = p.C.Name
	man.Gates = p.C.NumLogic()
	man.FcHz = *fc
	man.Results = append(man.Results, obs.ResultRecord{
		Label:          "verify",
		Vdd:            a.Vdd,
		EnergyStatic:   e.Static,
		EnergyDynamic:  e.Dynamic,
		EnergyTotal:    e.Total(),
		CriticalDelayS: cd,
		Feasible:       cd <= budget,
	})
	if err := of.End(man, reg); err != nil {
		return err
	}
	if cd <= budget {
		fmt.Fprintln(out, "TIMING PASS")
		return nil
	}
	fmt.Fprintf(out, "TIMING FAIL: exceeds budget by %s\n", report.Eng(cd-budget, "s"))
	return fmt.Errorf("timing check failed")
}
