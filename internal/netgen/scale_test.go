package netgen

import (
	"testing"
)

func TestScaleNamesOrdered(t *testing.T) {
	names := ScaleNames()
	if len(names) != 2 || names[0] != "s100k" || names[1] != "s1m" {
		t.Fatalf("ScaleNames() = %v, want [s100k s1m]", names)
	}
}

func TestScaleConfigUnknown(t *testing.T) {
	if _, err := ScaleConfig("s9999x"); err == nil {
		t.Fatal("unknown scale profile accepted")
	}
	if _, err := ScaleProfile("s9999x"); err == nil {
		t.Fatal("unknown scale profile generated")
	}
}

func TestLoadNamedResolvesScaleProfiles(t *testing.T) {
	// Resolution only — generating s100k here would slow every tier-1 run;
	// TestScaleGenerationBounded below covers the real build.
	if _, err := ScaleConfig("s100k"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNamed("definitely-not-a-benchmark"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestScaleGenerationBounded generates the full 10⁵-gate profile and checks
// the two scaling contracts of the reworked generator: near-linear time
// (implicitly — the test would blow its timeout with the old quadratic
// pickSource) and bounded allocations per gate (the Fenwick sampler and
// epoch sets must not regress into per-draw garbage).
func TestScaleGenerationBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("scale generation in -short")
	}
	cfg, err := ScaleConfig("s100k")
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		c, err := ScaleProfile("s100k")
		if err != nil {
			t.Fatal(err)
		}
		if c.N() < cfg.Gates {
			t.Fatalf("generated %d gates, want ≥ %d", c.N(), cfg.Gates)
		}
	})
	perGate := allocs / float64(cfg.Gates)
	t.Logf("s100k generation: %.0f allocs total, %.2f per gate", allocs, perGate)
	if perGate > 20 {
		t.Fatalf("generation allocates %.2f per gate; the samplers should keep this in single digits", perGate)
	}

	// Structural sanity of the generated network at scale.
	c, err := ScaleProfile("s100k")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := c.Combinational()
	if err != nil {
		t.Fatal(err)
	}
	depth, err := cc.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if depth < cfg.Depth/2 || depth > cfg.Depth*2 {
		t.Fatalf("depth %d far from configured %d", depth, cfg.Depth)
	}
}
