package netgen

import (
	"fmt"
	"sort"

	"cmosopt/internal/circuit"
)

// profiles85 holds structural parameters matched to the ISCAS'85
// combinational benchmarks (no flip-flops), from the published benchmark
// descriptions. They extend the paper's ISCAS'89 suite with circuits up to
// ~3500 gates for scalability studies; the paper's own tables use only the
// ISCAS'89 set.
var profiles85 = map[string]Config{
	"c432":  {Name: "c432", Gates: 160, Depth: 17, PIs: 36, POs: 7},
	"c499":  {Name: "c499", Gates: 202, Depth: 11, PIs: 41, POs: 32},
	"c880":  {Name: "c880", Gates: 383, Depth: 24, PIs: 60, POs: 26},
	"c1355": {Name: "c1355", Gates: 546, Depth: 24, PIs: 41, POs: 32},
	"c1908": {Name: "c1908", Gates: 880, Depth: 40, PIs: 33, POs: 25},
	"c2670": {Name: "c2670", Gates: 1193, Depth: 32, PIs: 233, POs: 140},
	"c3540": {Name: "c3540", Gates: 1669, Depth: 47, PIs: 50, POs: 22},
	"c5315": {Name: "c5315", Gates: 2307, Depth: 49, PIs: 178, POs: 123},
	"c6288": {Name: "c6288", Gates: 2406, Depth: 124, PIs: 32, POs: 32},
	"c7552": {Name: "c7552", Gates: 3512, Depth: 43, PIs: 207, POs: 108},
}

// Suite85Names returns the ISCAS'85-profile benchmark names in ascending
// size order.
func Suite85Names() []string {
	names := make([]string, 0, len(profiles85))
	for n := range profiles85 {
		names = append(names, n)
	}
	// Total order: size, then name — a size-only key would let sort.Slice's
	// instability leak map-iteration order through gate-count ties.
	sort.Slice(names, func(i, j int) bool {
		gi, gj := profiles85[names[i]].Gates, profiles85[names[j]].Gates
		if gi != gj {
			return gi < gj
		}
		return names[i] < names[j]
	})
	return names
}

// Profile85 generates the synthetic circuit matched to the named ISCAS'85
// benchmark, deterministically.
func Profile85(name string) (*circuit.Circuit, error) {
	cfg, ok := profiles85[name]
	if !ok {
		return nil, fmt.Errorf("netgen: unknown ISCAS'85 profile %q (have %v)", name, Suite85Names())
	}
	return Generate(cfg, profileSeed(name))
}

// Profile85Config returns the structural parameters of a named profile.
func Profile85Config(name string) (Config, error) {
	cfg, ok := profiles85[name]
	if !ok {
		return Config{}, fmt.Errorf("netgen: unknown ISCAS'85 profile %q", name)
	}
	return cfg, nil
}
