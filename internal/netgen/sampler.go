package netgen

// Support structures that keep Generate near-linear at 10⁵–10⁶ gates. Both
// replace map/slice scans whose answers they reproduce exactly, so the RNG
// draw sequence — and therefore every generated netlist — is unchanged.

// sinkSet is an ordered set of gate IDs (gates currently driving nothing)
// over a fixed ID universe [0, n), backed by a Fenwick tree so that
// membership updates and "k-th smallest present ID" queries are O(log n).
// The old code answered the k-th query by sorting the map's keys on every
// call — O(n log n) per fanin draw, quadratic-plus over a whole generation.
type sinkSet struct {
	tree    []int32 // Fenwick (binary indexed) tree over 1-based IDs
	present []bool
	count   int
	top     int // largest power of two ≤ n, the binary-descent start
}

func newSinkSet(n int) *sinkSet {
	top := 1
	for top*2 <= n {
		top *= 2
	}
	return &sinkSet{tree: make([]int32, n+1), present: make([]bool, n), top: top}
}

func (s *sinkSet) update(id, delta int) {
	for i := id + 1; i < len(s.tree); i += i & -i {
		s.tree[i] += int32(delta)
	}
}

// add inserts id; no-op when already present.
func (s *sinkSet) add(id int) {
	if s.present[id] {
		return
	}
	s.present[id] = true
	s.count++
	s.update(id, 1)
}

// remove deletes id; no-op when absent (fanin gates are removed
// unconditionally, mirroring the old delete(map, id)).
func (s *sinkSet) remove(id int) {
	if !s.present[id] {
		return
	}
	s.present[id] = false
	s.count--
	s.update(id, -1)
}

// kth returns the present ID with exactly k smaller present IDs — the value
// sort(keys)[k] used to produce. k must be in [0, count).
func (s *sinkSet) kth(k int) int {
	pos, rem := 0, int32(k)
	for step := s.top; step > 0; step >>= 1 {
		if next := pos + step; next < len(s.tree) && s.tree[next] <= rem {
			pos = next
			rem -= s.tree[next]
		}
	}
	return pos // pos is 1-based index minus one == 0-based ID
}

// epochSet is a dense membership set cleared in O(1) by bumping the epoch,
// used for the per-gate duplicate-fanin check (the old code rescanned the
// fanin slice on every retry draw).
type epochSet struct {
	mark  []int32
	epoch int32
}

func newEpochSet(n int) *epochSet { return &epochSet{mark: make([]int32, n), epoch: 1} }

// reset empties the set.
func (e *epochSet) reset() { e.epoch++ }

func (e *epochSet) add(id int)           { e.mark[id] = e.epoch }
func (e *epochSet) contains(id int) bool { return e.mark[id] == e.epoch }
