package netgen

import "testing"

func TestSuite85NamesOrdered(t *testing.T) {
	names := Suite85Names()
	if len(names) != 10 {
		t.Fatalf("got %d names", len(names))
	}
	prev := 0
	for _, n := range names {
		cfg, err := Profile85Config(n)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Gates < prev {
			t.Fatalf("names not size-ordered at %s", n)
		}
		prev = cfg.Gates
	}
}

func TestProfile85Structure(t *testing.T) {
	// Spot-check small, medium and the deep multiplier profile.
	for _, name := range []string{"c432", "c1908", "c6288"} {
		cfg, err := Profile85Config(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Profile85(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := c.NumLogic(); got != cfg.Gates {
			t.Errorf("%s: gates %d, want %d", name, got, cfg.Gates)
		}
		d, err := c.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if d != cfg.Depth {
			t.Errorf("%s: depth %d, want %d", name, d, cfg.Depth)
		}
		if len(c.PIs) != cfg.PIs {
			t.Errorf("%s: PIs %d, want %d", name, len(c.PIs), cfg.PIs)
		}
		if c.IsSequential() {
			t.Errorf("%s: ISCAS'85 profiles are combinational", name)
		}
	}
}

func TestProfile85Deterministic(t *testing.T) {
	a, err := Profile85("c880")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile85("c880")
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Error("not deterministic")
	}
}

func TestProfile85Unknown(t *testing.T) {
	if _, err := Profile85("c9999"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Profile85Config("c9999"); err == nil {
		t.Error("unknown config accepted")
	}
}
