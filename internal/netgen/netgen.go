// Package netgen supplies the benchmark circuits for the reproduction: two
// genuine embedded ISCAS netlists (s27, c17) and a deterministic synthetic
// random-logic generator that produces circuits structurally matched to the
// ISCAS'89 benchmarks used in the paper's Tables 1 and 2 (same logic-gate
// count, logic depth, and PI/PO/DFF counts, with an ISCAS-like gate-type and
// fanin/fanout mix).
//
// The paper's algorithm consumes only network structure and activities, so a
// structure-matched synthetic circuit exercises exactly the same code paths
// as the real netlist; see DESIGN.md §2 for the substitution rationale.
package netgen

import (
	"fmt"
	"math/rand"

	"cmosopt/internal/circuit"
)

// Config describes the synthetic random-logic network to generate. The
// generator emits the *combinational expansion* directly: the DFFs counted in
// the profile appear as extra pseudo primary inputs and pseudo primary
// outputs, which is the form the optimizer consumes (see
// circuit.Combinational).
type Config struct {
	Name   string
	Gates  int // logic gates to generate
	Depth  int // target logic depth (longest gate chain)
	PIs    int // true primary inputs
	POs    int // true primary outputs
	DFFs   int // flops of the original sequential circuit (become pseudo PI/PO pairs)
	MaxFan int // maximum fanin per gate; 0 means default (4)
}

func (c Config) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("netgen: empty name")
	case c.Gates < 1:
		return fmt.Errorf("netgen %s: need at least 1 gate", c.Name)
	case c.Depth < 1 || c.Depth > c.Gates:
		return fmt.Errorf("netgen %s: depth %d out of range [1,%d]", c.Name, c.Depth, c.Gates)
	case c.PIs+c.DFFs < 1:
		return fmt.Errorf("netgen %s: need at least one input", c.Name)
	case c.POs+c.DFFs < 1:
		return fmt.Errorf("netgen %s: need at least one output", c.Name)
	}
	return nil
}

// Generate builds a random combinational network per cfg, deterministically
// for a given seed. The result is validated and acyclic by construction.
func Generate(cfg Config, seed int64) (*circuit.Circuit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxFan := cfg.MaxFan
	if maxFan <= 0 {
		maxFan = 4
	}
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(cfg.Name)

	nIn := cfg.PIs + cfg.DFFs
	inputs := make([]int, nIn)
	for i := 0; i < cfg.PIs; i++ {
		inputs[i] = b.Input(fmt.Sprintf("pi%d", i))
	}
	for i := 0; i < cfg.DFFs; i++ {
		inputs[cfg.PIs+i] = b.Input(fmt.Sprintf("ff%d", i))
	}

	// Distribute gates over levels 1..Depth, at least one per level, the
	// remainder spread with a mild bias toward early levels (cone shape).
	perLevel := make([]int, cfg.Depth)
	for i := range perLevel {
		perLevel[i] = 1
	}
	for extra := cfg.Gates - cfg.Depth; extra > 0; extra-- {
		// Triangular bias: earlier levels more likely.
		l := min(rng.Intn(cfg.Depth), rng.Intn(cfg.Depth))
		perLevel[l]++
	}

	nTotal := nIn + cfg.Gates
	levelGates := make([][]int, cfg.Depth+1)
	levelGates[0] = inputs
	all := make([]int, 0, nTotal) // fanin sources from completed levels only
	all = append(all, inputs...)
	isSink := newSinkSet(nTotal)
	inFanin := newEpochSet(nTotal)
	fanin := make([]int, 0, maxFan)
	gateNum := 0
	for l := 1; l <= cfg.Depth; l++ {
		for k := 0; k < perLevel[l-1]; k++ {
			nf := pickFanin(rng, maxFan)
			prev := levelGates[l-1]
			first := prev[rng.Intn(len(prev))]
			fanin = fanin[:0]
			fanin = append(fanin, first)
			inFanin.reset()
			inFanin.add(first)
			for len(fanin) < nf {
				src := pickSource(rng, all, isSink)
				if inFanin.contains(src) {
					// Avoid duplicate connections to the same driver; retry,
					// giving up gracefully when few sources exist.
					if len(all) <= len(fanin) {
						break
					}
					continue
				}
				fanin = append(fanin, src)
				inFanin.add(src)
			}
			typ := pickType(rng, len(fanin))
			id := b.Gate(typ, fmt.Sprintf("n%d", gateNum), fanin...)
			gateNum++
			for _, f := range fanin {
				isSink.remove(f)
			}
			levelGates[l] = append(levelGates[l], id)
		}
		// Gates become visible as fanin sources (and sink candidates) only
		// after their level is complete, so the longest chain equals Depth.
		for _, id := range levelGates[l] {
			isSink.add(id)
			all = append(all, id)
		}
	}

	// Primary outputs: every sink logic gate must be observable, plus random
	// extra gates up to the requested count. DFF-driver pseudo-POs come first.
	// The sink set is dense and ordered, so ascending iteration reproduces the
	// old sort-the-map-keys enumeration.
	wantPOs := cfg.POs + cfg.DFFs
	isPO := make([]bool, nTotal)
	nPO := 0
	for id, sink := range isSink.present {
		if sink {
			b.Output(id)
			isPO[id] = true
			nPO++
		}
	}
	for attempts := 0; nPO < wantPOs && attempts < 100*cfg.Gates; attempts++ {
		// Mark a random not-yet-chosen logic gate as an additional PO.
		id := all[nIn+rng.Intn(cfg.Gates)]
		if !isPO[id] {
			b.Output(id)
			isPO[id] = true
			nPO++
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("netgen %s: %w", cfg.Name, err)
	}
	return c, nil
}

// pickFanin draws a fanin count with an ISCAS-like distribution:
// 1 input 15%, 2 inputs 55%, 3 inputs 20%, 4+ inputs 10%.
func pickFanin(rng *rand.Rand, maxFan int) int {
	var n int
	switch r := rng.Float64(); {
	case r < 0.15:
		n = 1
	case r < 0.70:
		n = 2
	case r < 0.90:
		n = 3
	default:
		n = 4
	}
	if n > maxFan {
		n = maxFan
	}
	return n
}

// pickSource chooses a fanin source, preferring gates that currently have no
// fanout (70%), which keeps the natural sink count near the target PO count.
func pickSource(rng *rand.Rand, all []int, isSink *sinkSet) int {
	if isSink.count > 0 && rng.Float64() < 0.70 {
		// Deterministic selection among sinks: k-th smallest.
		return isSink.kth(rng.Intn(isSink.count))
	}
	return all[rng.Intn(len(all))]
}

// pickType draws a gate type with an ISCAS-like mix.
func pickType(rng *rand.Rand, fanin int) circuit.GateType {
	if fanin == 1 {
		if rng.Float64() < 0.8 {
			return circuit.Not
		}
		return circuit.Buf
	}
	switch r := rng.Float64(); {
	case r < 0.35:
		return circuit.Nand
	case r < 0.55:
		return circuit.Nor
	case r < 0.75:
		return circuit.And
	case r < 0.90:
		return circuit.Or
	case r < 0.97:
		return circuit.Xor
	default:
		return circuit.Xnor
	}
}
