package netgen

import (
	"testing"

	"cmosopt/internal/circuit"
)

func TestGenerateMatchesConfig(t *testing.T) {
	cfg := Config{Name: "t1", Gates: 80, Depth: 8, PIs: 5, POs: 4, DFFs: 3}
	c, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumLogic(); got != cfg.Gates {
		t.Errorf("logic gates = %d, want %d", got, cfg.Gates)
	}
	if got := len(c.PIs); got != cfg.PIs+cfg.DFFs {
		t.Errorf("PIs = %d, want %d", got, cfg.PIs+cfg.DFFs)
	}
	if got := len(c.POs); got < cfg.POs+cfg.DFFs {
		t.Errorf("POs = %d, want >= %d", got, cfg.POs+cfg.DFFs)
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != cfg.Depth {
		t.Errorf("depth = %d, want %d", d, cfg.Depth)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "det", Gates: 60, Depth: 6, PIs: 4, POs: 3}
	a, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Error("same seed produced different circuits")
	}
	c, err := Generate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if circuit.BenchString(a) == circuit.BenchString(c) {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGenerateAcyclicAndConnected(t *testing.T) {
	c, err := Generate(Config{Name: "big", Gates: 300, Depth: 15, PIs: 10, POs: 8, DFFs: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopoOrder(); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	// Every sink logic gate must be a PO (full observability).
	poSet := make(map[int]bool)
	for _, id := range c.POs {
		poSet[id] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsLogic() && g.NumFanout() == 0 && !poSet[g.ID] {
			t.Errorf("sink gate %q is not a PO", g.Name)
		}
	}
}

func TestGenerateNoDuplicateFanins(t *testing.T) {
	c, err := Generate(Config{Name: "dup", Gates: 200, Depth: 10, PIs: 6, POs: 5}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		seen := map[int]bool{}
		for _, f := range c.Gates[i].Fanin {
			if seen[f] {
				t.Fatalf("gate %q has duplicate fanin %d", c.Gates[i].Name, f)
			}
			seen[f] = true
		}
	}
}

func TestGenerateMaxFanRespected(t *testing.T) {
	c, err := Generate(Config{Name: "mf", Gates: 150, Depth: 8, PIs: 5, POs: 4, MaxFan: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if n := c.Gates[i].NumFanin(); n > 2 {
			t.Fatalf("gate %q fanin %d exceeds MaxFan 2", c.Gates[i].Name, n)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Name: "x"},
		{Name: "x", Gates: 5, Depth: 0, PIs: 1},
		{Name: "x", Gates: 5, Depth: 6, PIs: 1},
		{Name: "x", Gates: 5, Depth: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestSuiteProfilesMatchPaper(t *testing.T) {
	for _, name := range SuiteNames() {
		cfg, err := ProfileConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Profile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := c.NumLogic(); got != cfg.Gates {
			t.Errorf("%s: gates %d, want %d", name, got, cfg.Gates)
		}
		d, err := c.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if d != cfg.Depth {
			t.Errorf("%s: depth %d, want %d", name, d, cfg.Depth)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	a, err := Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Error("Profile not deterministic")
	}
}

func TestProfileUnknown(t *testing.T) {
	if _, err := Profile("s9999"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := ProfileConfig("s9999"); err == nil {
		t.Error("unknown profile config accepted")
	}
}

func TestSuite(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 8 {
		t.Fatalf("suite size = %d, want 8", len(suite))
	}
	for _, c := range suite {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestEmbeddedS27(t *testing.T) {
	c := S27()
	s := circuit.ComputeStats(c)
	if s.Gates != 10 || s.DFFs != 3 || s.Inputs != 4 || s.Outputs != 1 {
		t.Errorf("s27 stats = %+v", s)
	}
	cc, err := c.Combinational()
	if err != nil {
		t.Fatal(err)
	}
	if cc.IsSequential() {
		t.Error("s27 cut left DFFs")
	}
	if len(cc.PIs) != 7 { // 4 true PIs + 3 flop outputs
		t.Errorf("s27 cut PIs = %d, want 7", len(cc.PIs))
	}
}

func TestEmbeddedC17(t *testing.T) {
	c := C17()
	s := circuit.ComputeStats(c)
	if s.Gates != 6 || s.Inputs != 5 || s.Outputs != 2 || s.Depth != 3 {
		t.Errorf("c17 stats = %+v", s)
	}
	if s.TypeCounts[circuit.Nand] != 6 {
		t.Errorf("c17 should be all NAND, got %v", s.TypeCounts)
	}
}

func TestSequentializeRoundTrip(t *testing.T) {
	c, err := Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequentialize(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSequential() {
		t.Fatal("sequentialized circuit has no DFFs")
	}
	stats := circuit.ComputeStats(seq)
	cfg, _ := ProfileConfig("s298")
	if stats.DFFs != cfg.DFFs {
		t.Errorf("DFFs = %d, want %d", stats.DFFs, cfg.DFFs)
	}
	// Cutting the flops recovers the original structure.
	cut, err := seq.Combinational()
	if err != nil {
		t.Fatal(err)
	}
	if cut.NumLogic() != c.NumLogic() {
		t.Errorf("cut logic gates %d, want %d", cut.NumLogic(), c.NumLogic())
	}
	if len(cut.PIs) != len(c.PIs) {
		t.Errorf("cut PIs %d, want %d", len(cut.PIs), len(c.PIs))
	}
	d1, _ := cut.Depth()
	d2, _ := c.Depth()
	if d1 != d2 {
		t.Errorf("cut depth %d, want %d", d1, d2)
	}
}

func TestSequentializeCombinationalPassThrough(t *testing.T) {
	c := C17() // no ff* inputs
	seq, err := Sequentialize(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.IsSequential() {
		t.Error("c17 should stay combinational")
	}
	if seq.NumLogic() != c.NumLogic() {
		t.Error("gate count changed")
	}
}
