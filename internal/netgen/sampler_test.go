package netgen

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSinkSetMatchesSortedKeys drives a sinkSet and a reference map through
// the same random add/remove/kth sequence: kth(k) must always equal the k-th
// element of the map's sorted key list — the exact semantics the old
// sort-the-keys code had, which Generate's RNG draw sequence depends on.
func TestSinkSetMatchesSortedKeys(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(42))
	s := newSinkSet(n)
	ref := map[int]bool{}
	for step := 0; step < 20000; step++ {
		switch rng.Intn(3) {
		case 0:
			id := rng.Intn(n)
			s.add(id)
			ref[id] = true
		case 1:
			id := rng.Intn(n)
			s.remove(id)
			delete(ref, id)
		case 2:
			if len(ref) == 0 {
				if s.count != 0 {
					t.Fatalf("step %d: count %d, ref empty", step, s.count)
				}
				continue
			}
			if s.count != len(ref) {
				t.Fatalf("step %d: count %d, want %d", step, s.count, len(ref))
			}
			keys := make([]int, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			k := rng.Intn(len(keys))
			if got := s.kth(k); got != keys[k] {
				t.Fatalf("step %d: kth(%d) = %d, want %d", step, k, got, keys[k])
			}
		}
	}
}

func TestSinkSetEdgeCases(t *testing.T) {
	s := newSinkSet(1)
	s.add(0)
	if s.count != 1 || s.kth(0) != 0 {
		t.Fatalf("singleton: count=%d kth(0)=%d", s.count, s.kth(0))
	}
	s.add(0) // idempotent
	if s.count != 1 {
		t.Fatalf("double add: count=%d", s.count)
	}
	s.remove(0)
	s.remove(0) // idempotent
	if s.count != 0 {
		t.Fatalf("double remove: count=%d", s.count)
	}

	// Non-power-of-two universe, boundary IDs.
	s = newSinkSet(7)
	for _, id := range []int{0, 3, 6} {
		s.add(id)
	}
	for k, want := range []int{0, 3, 6} {
		if got := s.kth(k); got != want {
			t.Fatalf("kth(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestEpochSet(t *testing.T) {
	e := newEpochSet(10)
	// A fresh set contains nothing, even though mark[] is zeroed.
	for i := 0; i < 10; i++ {
		if e.contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
	}
	e.add(3)
	e.add(7)
	if !e.contains(3) || !e.contains(7) || e.contains(5) {
		t.Fatal("membership wrong after adds")
	}
	e.reset()
	if e.contains(3) || e.contains(7) {
		t.Fatal("reset did not clear the set")
	}
	e.add(3)
	if !e.contains(3) {
		t.Fatal("add after reset lost")
	}
}
