package netgen

import (
	"fmt"
	"sort"

	"cmosopt/internal/circuit"
)

// Scale profiles: synthetic random-logic networks far beyond the ISCAS
// suites, for exercising the production engine at the 10⁵–10⁶-gate frontier
// the ROADMAP targets. The shapes extrapolate the ISCAS'89 trend (depth and
// I/O counts grow much slower than gate count) rather than matching any
// published netlist. s100k backs the checked-in `/s100k` benchmarks; s1m is
// the opt-in `-tags=bigbench` smoke target.
var scaleProfiles = map[string]Config{
	"s100k": {Name: "s100k", Gates: 100_000, Depth: 120, PIs: 1_500, POs: 1_200, DFFs: 2_500},
	"s1m":   {Name: "s1m", Gates: 1_000_000, Depth: 180, PIs: 6_000, POs: 5_000, DFFs: 12_000},
}

// ScaleNames returns the scale-profile names in ascending size order.
func ScaleNames() []string {
	names := make([]string, 0, len(scaleProfiles))
	for n := range scaleProfiles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		gi, gj := scaleProfiles[names[i]].Gates, scaleProfiles[names[j]].Gates
		if gi != gj {
			return gi < gj
		}
		return names[i] < names[j]
	})
	return names
}

// ScaleProfile generates the named scale circuit, deterministically.
func ScaleProfile(name string) (*circuit.Circuit, error) {
	cfg, ok := scaleProfiles[name]
	if !ok {
		return nil, fmt.Errorf("netgen: unknown scale profile %q (have %v)", name, ScaleNames())
	}
	return Generate(cfg, profileSeed(name))
}

// ScaleConfig returns the structural parameters of a named scale profile.
func ScaleConfig(name string) (Config, error) {
	cfg, ok := scaleProfiles[name]
	if !ok {
		return Config{}, fmt.Errorf("netgen: unknown scale profile %q", name)
	}
	return cfg, nil
}
