package netgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cmosopt/internal/circuit"
)

// profiles holds the structural parameters of the ISCAS'89 circuits used in
// the paper's Tables 1 and 2 (logic-gate count, depth, PI/PO/DFF counts from
// the published benchmark descriptions). The generator reproduces these
// shapes; see DESIGN.md §2.
var profiles = map[string]Config{
	"s298": {Name: "s298", Gates: 119, Depth: 9, PIs: 3, POs: 6, DFFs: 14},
	"s344": {Name: "s344", Gates: 160, Depth: 20, PIs: 9, POs: 11, DFFs: 15},
	"s349": {Name: "s349", Gates: 161, Depth: 20, PIs: 9, POs: 11, DFFs: 15},
	"s382": {Name: "s382", Gates: 158, Depth: 9, PIs: 3, POs: 6, DFFs: 21},
	"s386": {Name: "s386", Gates: 159, Depth: 11, PIs: 7, POs: 7, DFFs: 6},
	"s400": {Name: "s400", Gates: 162, Depth: 9, PIs: 3, POs: 6, DFFs: 21},
	"s444": {Name: "s444", Gates: 181, Depth: 11, PIs: 3, POs: 6, DFFs: 21},
	"s510": {Name: "s510", Gates: 211, Depth: 12, PIs: 19, POs: 7, DFFs: 6},
}

// profileSeed gives each profile a fixed generation seed so benchmark
// circuits are bit-identical across runs and machines.
func profileSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for _, r := range name {
		h ^= int64(r)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// SuiteNames returns the benchmark circuit names of the paper's result
// tables, in the paper's order.
func SuiteNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile generates the synthetic circuit matched to the named ISCAS'89
// benchmark. The result is deterministic.
func Profile(name string) (*circuit.Circuit, error) {
	cfg, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("netgen: unknown benchmark profile %q (have %v)", name, SuiteNames())
	}
	return Generate(cfg, profileSeed(name))
}

// ProfileConfig returns the structural parameters of a named profile.
func ProfileConfig(name string) (Config, error) {
	cfg, ok := profiles[name]
	if !ok {
		return Config{}, fmt.Errorf("netgen: unknown benchmark profile %q", name)
	}
	return cfg, nil
}

// LoadNamed resolves any built-in benchmark name: the embedded genuine
// netlists ("s27", "c17"), the ISCAS'89-profile suite, or the ISCAS'85-scale
// profiles.
func LoadNamed(name string) (*circuit.Circuit, error) {
	switch name {
	case "s27":
		return S27(), nil
	case "c17":
		return C17(), nil
	}
	if c, err := Profile(name); err == nil {
		return c, nil
	}
	if c, err := Profile85(name); err == nil {
		return c, nil
	}
	if c, err := ScaleProfile(name); err == nil {
		return c, nil
	}
	return nil, fmt.Errorf("netgen: unknown benchmark %q (have s27, c17, %v, %v, %v)",
		name, SuiteNames(), Suite85Names(), ScaleNames())
}

// Suite generates all benchmark circuits of the paper's tables.
func Suite() ([]*circuit.Circuit, error) {
	names := SuiteNames()
	out := make([]*circuit.Circuit, 0, len(names))
	for _, n := range names {
		c, err := Profile(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Sequentialize converts a generated combinational circuit (whose "ff*"
// pseudo-inputs stand for cut flip-flop outputs) back into a true sequential
// netlist: each ff* input becomes a DFF whose D pin is driven by a
// deterministically chosen primary-output gate. The result exercises the
// same DFF-cut path as a real ISCAS'89 netlist: Combinational(Sequentialize
// (c)) is structurally equivalent to c.
func Sequentialize(c *circuit.Circuit, seed int64) (*circuit.Circuit, error) {
	text := circuit.BenchString(c)
	// Collect the pseudo flip-flop inputs and the PO gates to feed them.
	var ffs []string
	for _, id := range c.PIs {
		name := c.Gate(id).Name
		if len(name) >= 2 && name[:2] == "ff" {
			ffs = append(ffs, name)
		}
	}
	if len(ffs) == 0 {
		return circuit.ParseBenchString(c.Name+"-seq", text)
	}
	if len(c.POs) == 0 {
		return nil, fmt.Errorf("netgen: cannot sequentialize %q: no outputs to feed flops", c.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		skip := false
		for _, ff := range ffs {
			if trimmed == "INPUT("+ff+")" {
				skip = true
				break
			}
		}
		if !skip && trimmed != "" {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	for _, ff := range ffs {
		driver := c.Gate(c.POs[rng.Intn(len(c.POs))]).Name
		fmt.Fprintf(&sb, "%s = DFF(%s)\n", ff, driver)
	}
	return circuit.ParseBenchString(c.Name+"-seq", sb.String())
}

// s27Bench is the genuine ISCAS'89 s27 netlist (10 logic gates, 3 DFFs).
const s27Bench = `# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// c17Bench is the genuine ISCAS'85 c17 netlist (6 NAND gates).
const c17Bench = `# c17 (ISCAS'85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
`

// S27 returns the genuine ISCAS'89 s27 circuit (sequential; cut DFFs with
// Combinational before optimizing).
func S27() *circuit.Circuit {
	c, err := circuit.ParseBenchString("s27", s27Bench)
	if err != nil {
		panic("netgen: embedded s27 netlist invalid: " + err.Error())
	}
	return c
}

// C17 returns the genuine ISCAS'85 c17 circuit (combinational).
func C17() *circuit.Circuit {
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		panic("netgen: embedded c17 netlist invalid: " + err.Error())
	}
	return c
}
