// Package wiring estimates interconnect loads for a random logic network
// using the complete stochastic wire-length distribution of Davis, De and
// Meindl (the paper's references [4,5]), derived from recursive application
// of Rent's rule and conservation of I/O. The distribution gives the expected
// number of point-to-point connections of each Manhattan length l (in gate
// pitches) in a placed network of N gates:
//
//	region 1 (1 ≤ l ≤ √N):    i(l) ∝ (l³/3 − 2√N·l² + 2N·l) · l^(2p−4)
//	region 2 (√N < l ≤ 2√N):  i(l) ∝ (1/3)·(2√N − l)³ · l^(2p−4)
//
// with p the Rent exponent. The model converts expected lengths into the
// per-fanout interconnect capacitance C_INT, resistance R_INT and
// time-of-flight used by the paper's energy and delay equations.
package wiring

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params sets the stochastic wiring model's technology and architecture
// parameters.
type Params struct {
	RentP     float64 // Rent exponent (≈0.6 for random logic) //cmosvet:unit 1
	RentK     float64 // Rent coefficient (≈4) //cmosvet:unit 1
	AvgFanout float64 // average fanout used in the distribution's α = f/(f+1) //cmosvet:unit 1
	GatePitch float64 // distance between adjacent gate sites //cmosvet:unit m
	CPerLen   float64 // interconnect capacitance per length //cmosvet:unit F/m
	RPerLen   float64 // interconnect resistance (Ω = V/A) per length //cmosvet:unit V/A/m
	Velocity  float64 // signal propagation velocity on interconnect //cmosvet:unit m/s
}

// Default350 returns wiring parameters representative of a 0.35 µm-era
// aluminum/oxide interconnect stack and standard-cell fabric.
func Default350() Params {
	return Params{
		RentP:     0.6,
		RentK:     4.0,
		AvgFanout: 2.0,
		GatePitch: 5.25e-6, // 15 feature sizes at F = 0.35 µm
		CPerLen:   2.0e-10, // 0.2 fF/µm
		RPerLen:   1.0e5,   // 0.1 Ω/µm
		Velocity:  1.5e8,   // ~c/2 on-chip
	}
}

func (p Params) validate() error {
	switch {
	case p.RentP <= 0 || p.RentP >= 1:
		return fmt.Errorf("wiring: Rent exponent %v outside (0,1)", p.RentP)
	case p.RentK <= 0:
		return fmt.Errorf("wiring: Rent coefficient %v must be positive", p.RentK)
	case p.AvgFanout <= 0:
		return fmt.Errorf("wiring: average fanout %v must be positive", p.AvgFanout)
	case p.GatePitch <= 0:
		return fmt.Errorf("wiring: gate pitch %v must be positive", p.GatePitch)
	case p.CPerLen < 0 || p.RPerLen < 0:
		return fmt.Errorf("wiring: negative per-length C or R")
	case p.Velocity <= 0:
		return fmt.Errorf("wiring: velocity %v must be positive", p.Velocity)
	}
	return nil
}

// Model is the wiring estimate for one placed network of N gates.
//
// By default every fanout branch carries the distribution's mean length;
// SampleNets draws an individual length per driver net from the full Davis
// distribution instead, so wire-load variance (short local hops vs the long
// tail) reaches the delay and energy models.
type Model struct {
	P Params
	N int

	meanPitches float64   // expected point-to-point length in gate pitches //cmosvet:unit 1
	netPitches  []float64 // per-net sampled lengths (nil = use the mean) //cmosvet:unit 1
}

// New builds the wiring model for a network of n logic gates.
func New(p Params, n int) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("wiring: gate count %d must be positive", n)
	}
	m := &Model{P: p, N: n}
	m.meanPitches = m.computeMean()
	return m, nil
}

// Density returns the (unnormalized) expected number of connections of
// length l gate pitches, the two-region Davis distribution. It is zero
// outside [1, 2√N].
//
//cmosvet:unit l 1
//cmosvet:unit return 1
func (m *Model) Density(l float64) float64 {
	sqN := math.Sqrt(float64(m.N))
	if l < 1 || l > 2*sqN {
		return 0
	}
	alpha := m.P.AvgFanout / (m.P.AvgFanout + 1)
	scale := alpha * m.P.RentK / 2
	pow := math.Pow(l, 2*m.P.RentP-4)
	if l <= sqN {
		return scale * (l*l*l/3 - 2*sqN*l*l + 2*float64(m.N)*l) * pow
	}
	d := 2*sqN - l
	return scale / 3 * d * d * d * pow
}

// computeMean integrates l·i(l) / i(l) over the discrete lengths 1..2√N.
//
//cmosvet:unit return 1
func (m *Model) computeMean() float64 {
	lMax := int(math.Ceil(2 * math.Sqrt(float64(m.N))))
	var num, den float64
	for l := 1; l <= lMax; l++ {
		w := m.Density(float64(l))
		num += float64(l) * w
		den += w
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// MeanPitches returns the expected point-to-point connection length in gate
// pitches.
//
//cmosvet:unit return 1
func (m *Model) MeanPitches() float64 { return m.meanPitches }

// SampleNets draws one length per driver net (indexed by the driving gate's
// ID, nNets entries) from the Davis distribution by inverse-CDF sampling,
// deterministically for a given seed. Subsequent *Net accessors use these
// lengths; the aggregate mean still converges to MeanPitches.
func (m *Model) SampleNets(nNets int, seed int64) {
	if nNets <= 0 {
		m.netPitches = nil
		return
	}
	// Discrete CDF over l = 1..2√N.
	lMax := int(math.Ceil(2 * math.Sqrt(float64(m.N))))
	cdf := make([]float64, lMax)
	sum := 0.0
	for l := 1; l <= lMax; l++ {
		sum += m.Density(float64(l))
		cdf[l-1] = sum
	}
	rng := rand.New(rand.NewSource(seed))
	m.netPitches = make([]float64, nNets)
	for i := range m.netPitches {
		u := rng.Float64() * sum
		idx := sort.SearchFloat64s(cdf, u)
		if idx >= lMax {
			idx = lMax - 1
		}
		m.netPitches[i] = float64(idx + 1)
	}
}

// pitchesOf returns the length in pitches of the net driven by gate id
// (mean when nets are not sampled or the id is out of range).
//
//cmosvet:unit return 1
func (m *Model) pitchesOf(id int) float64 {
	if m.netPitches == nil || id < 0 || id >= len(m.netPitches) {
		return m.meanPitches
	}
	return m.netPitches[id]
}

// BranchLength returns the expected length in meters of one fanout branch
// (one point-to-point connection of a net).
//
//cmosvet:unit return m
func (m *Model) BranchLength() float64 { return m.meanPitches * m.P.GatePitch }

// BranchLengthNet returns the branch length of the net driven by gate id,
// which differs per net after SampleNets.
//
//cmosvet:unit return m
func (m *Model) BranchLengthNet(id int) float64 { return m.pitchesOf(id) * m.P.GatePitch }

// NetLength returns the expected total routed length of a net with the given
// fanout, modeled as a star of point-to-point branches.
//
//cmosvet:unit return m
func (m *Model) NetLength(fanout int) float64 {
	if fanout < 1 {
		fanout = 1
	}
	return float64(fanout) * m.BranchLength()
}

// BranchCap returns C_INTij: the interconnect capacitance of one fanout
// branch (F).
//
//cmosvet:unit return F
func (m *Model) BranchCap() float64 { return m.BranchLength() * m.P.CPerLen }

// BranchCapNet is BranchCap for the net driven by gate id.
//
//cmosvet:unit return F
func (m *Model) BranchCapNet(id int) float64 { return m.BranchLengthNet(id) * m.P.CPerLen }

// BranchRes returns R_INTij: the interconnect resistance of one fanout
// branch (Ω = V/A).
//
//cmosvet:unit return V/A
func (m *Model) BranchRes() float64 { return m.BranchLength() * m.P.RPerLen }

// BranchResNet is BranchRes for the net driven by gate id.
//
//cmosvet:unit return V/A
func (m *Model) BranchResNet(id int) float64 { return m.BranchLengthNet(id) * m.P.RPerLen }

// FlightTime returns the time-of-flight over one fanout branch (s).
//
//cmosvet:unit return s
func (m *Model) FlightTime() float64 { return m.BranchLength() / m.P.Velocity }

// FlightTimeNet is FlightTime for the net driven by gate id.
//
//cmosvet:unit return s
func (m *Model) FlightTimeNet(id int) float64 { return m.BranchLengthNet(id) / m.P.Velocity }

// RCDelay returns the distributed RC delay of one fanout branch (s), using
// the 0.5·R·C distributed-line factor: (V/A)·F composes to s.
//
//cmosvet:unit return s
func (m *Model) RCDelay() float64 { return 0.5 * m.BranchRes() * m.BranchCap() }

// DieEdge returns the edge length of the (square) placement region implied
// by the gate count and pitch (m).
//
//cmosvet:unit return m
func (m *Model) DieEdge() float64 { return math.Sqrt(float64(m.N)) * m.P.GatePitch }

// TotalWireEstimate returns the expected total routed wire length of the
// module (m), summing one branch per fanout connection: Σ_nets fanout·L̄ =
// E · L̄ where E is the number of point-to-point connections. This is the
// aggregate the Davis model was built to predict for wiring-layer planning.
//
//cmosvet:unit return m
func (m *Model) TotalWireEstimate(totalFanoutEdges int) float64 {
	if totalFanoutEdges < 0 {
		totalFanoutEdges = 0
	}
	return float64(totalFanoutEdges) * m.BranchLength()
}
