package wiring

import (
	"math"
	"testing"
	"testing/quick"
)

func model(t *testing.T, n int) *Model {
	t.Helper()
	m, err := New(Default350(), n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidation(t *testing.T) {
	good := Default350()
	if _, err := New(good, 100); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.RentP = 0 },
		func(p *Params) { p.RentP = 1 },
		func(p *Params) { p.RentK = -1 },
		func(p *Params) { p.AvgFanout = 0 },
		func(p *Params) { p.GatePitch = 0 },
		func(p *Params) { p.CPerLen = -1 },
		func(p *Params) { p.Velocity = 0 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if _, err := New(p, 100); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(good, 0); err == nil {
		t.Error("zero gate count accepted")
	}
}

func TestDensitySupport(t *testing.T) {
	m := model(t, 400) // √N = 20
	if m.Density(0.5) != 0 {
		t.Error("density below l=1 should be 0")
	}
	if m.Density(41) != 0 {
		t.Error("density beyond 2√N should be 0")
	}
	for _, l := range []float64{1, 5, 19, 20, 21, 39} {
		if d := m.Density(l); d <= 0 {
			t.Errorf("density(%v) = %v, want > 0", l, d)
		}
	}
}

func TestDensityContinuousAtRegionBoundary(t *testing.T) {
	m := model(t, 900) // √N = 30
	below := m.Density(30 - 1e-9)
	above := m.Density(30 + 1e-9)
	if rel := math.Abs(below-above) / below; rel > 1e-6 {
		t.Errorf("discontinuity at √N: %v vs %v", below, above)
	}
}

func TestDensityDecreasingTail(t *testing.T) {
	m := model(t, 400)
	// In region 2 the density must fall monotonically to 0 at 2√N.
	prev := m.Density(21)
	for l := 22.0; l <= 40; l++ {
		cur := m.Density(l)
		if cur > prev {
			t.Fatalf("density rising in tail at l=%v: %v > %v", l, cur, prev)
		}
		prev = cur
	}
}

func TestMeanPitchesBounds(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%5000 + 2
		m, err := New(Default350(), n)
		if err != nil {
			return false
		}
		mean := m.MeanPitches()
		return mean >= 1 && mean <= 2*math.Sqrt(float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanGrowsWithNForHighRent(t *testing.T) {
	p := Default350()
	p.RentP = 0.7
	small, _ := New(p, 100)
	large, _ := New(p, 10000)
	if large.MeanPitches() <= small.MeanPitches() {
		t.Errorf("mean should grow with N for p=0.7: %v vs %v",
			small.MeanPitches(), large.MeanPitches())
	}
}

func TestHigherRentExponentLongerWires(t *testing.T) {
	lo, hi := Default350(), Default350()
	lo.RentP, hi.RentP = 0.45, 0.75
	ml, _ := New(lo, 2000)
	mh, _ := New(hi, 2000)
	if mh.MeanPitches() <= ml.MeanPitches() {
		t.Errorf("p=0.75 should give longer wires than p=0.45: %v vs %v",
			mh.MeanPitches(), ml.MeanPitches())
	}
}

func TestDerivedQuantities(t *testing.T) {
	m := model(t, 200)
	bl := m.BranchLength()
	if bl <= 0 {
		t.Fatal("non-positive branch length")
	}
	if got := m.NetLength(3); math.Abs(got-3*bl) > 1e-18 {
		t.Errorf("NetLength(3) = %v, want %v", got, 3*bl)
	}
	if got := m.NetLength(0); got != bl {
		t.Errorf("NetLength(0) should clamp to one branch, got %v", got)
	}
	if got := m.BranchCap(); math.Abs(got-bl*m.P.CPerLen) > 1e-30 {
		t.Errorf("BranchCap = %v", got)
	}
	if got := m.BranchRes(); math.Abs(got-bl*m.P.RPerLen) > 1e-12 {
		t.Errorf("BranchRes = %v", got)
	}
	if got := m.FlightTime(); math.Abs(got-bl/m.P.Velocity) > 1e-24 {
		t.Errorf("FlightTime = %v", got)
	}
	if got := m.RCDelay(); math.Abs(got-0.5*m.BranchRes()*m.BranchCap()) > 1e-30 {
		t.Errorf("RCDelay = %v", got)
	}
}

func TestRealisticMagnitudes(t *testing.T) {
	// A ~200-gate module in 0.35 µm: branch length tens of µm, cap a few fF,
	// flight time well under a ps — sanity anchors for the delay model.
	m := model(t, 200)
	if l := m.BranchLength(); l < 5e-6 || l > 500e-6 {
		t.Errorf("branch length %v m implausible", l)
	}
	if c := m.BranchCap(); c < 0.5e-15 || c > 100e-15 {
		t.Errorf("branch cap %v F implausible", c)
	}
	if ft := m.FlightTime(); ft > 5e-12 {
		t.Errorf("flight time %v s implausible", ft)
	}
}

func TestSampleNetsStatistics(t *testing.T) {
	m := model(t, 400)
	const nets = 20000
	m.SampleNets(nets, 7)
	var sum, minL, maxL float64
	minL = math.Inf(1)
	for i := 0; i < nets; i++ {
		l := m.BranchLengthNet(i) / m.P.GatePitch
		sum += l
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	mean := sum / nets
	if rel := math.Abs(mean-m.MeanPitches()) / m.MeanPitches(); rel > 0.05 {
		t.Errorf("sampled mean %v deviates from analytic %v by %v", mean, m.MeanPitches(), rel)
	}
	if minL < 1 || maxL > 2*math.Sqrt(400)+1 {
		t.Errorf("sampled lengths [%v, %v] outside distribution support", minL, maxL)
	}
	if maxL == minL {
		t.Error("sampling produced no variance")
	}
}

func TestSampleNetsDeterministic(t *testing.T) {
	m1, m2 := model(t, 200), model(t, 200)
	m1.SampleNets(50, 3)
	m2.SampleNets(50, 3)
	for i := 0; i < 50; i++ {
		if m1.BranchLengthNet(i) != m2.BranchLengthNet(i) {
			t.Fatalf("net %d differs across same-seed samples", i)
		}
	}
	m2.SampleNets(50, 4)
	same := true
	for i := 0; i < 50; i++ {
		if m1.BranchLengthNet(i) != m2.BranchLengthNet(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestSampleNetsFallbacks(t *testing.T) {
	m := model(t, 100)
	// Without sampling, per-net accessors return the mean-based values.
	if m.BranchLengthNet(5) != m.BranchLength() {
		t.Error("unsampled per-net length should equal the mean")
	}
	m.SampleNets(10, 1)
	// Out-of-range IDs fall back to the mean.
	if m.BranchLengthNet(99) != m.BranchLength() {
		t.Error("out-of-range net should fall back to the mean")
	}
	if m.BranchCapNet(3) != m.BranchLengthNet(3)*m.P.CPerLen {
		t.Error("BranchCapNet inconsistent")
	}
	if m.BranchResNet(3) != m.BranchLengthNet(3)*m.P.RPerLen {
		t.Error("BranchResNet inconsistent")
	}
	if m.FlightTimeNet(3) != m.BranchLengthNet(3)/m.P.Velocity {
		t.Error("FlightTimeNet inconsistent")
	}
	// Disabling restores the mean.
	m.SampleNets(0, 1)
	if m.BranchLengthNet(3) != m.BranchLength() {
		t.Error("SampleNets(0) should disable sampling")
	}
}

func TestDieAndTotalWireEstimates(t *testing.T) {
	m := model(t, 400)
	// 400 gates on a 5.25 um pitch: 20 x 20 sites -> 105 um edge.
	if edge := m.DieEdge(); math.Abs(edge-20*m.P.GatePitch) > 1e-12 {
		t.Errorf("die edge = %v", edge)
	}
	if got := m.TotalWireEstimate(800); math.Abs(got-800*m.BranchLength()) > 1e-9 {
		t.Errorf("total wire = %v", got)
	}
	if got := m.TotalWireEstimate(-5); got != 0 {
		t.Errorf("negative edges should clamp to 0, got %v", got)
	}
}
