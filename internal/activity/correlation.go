package activity

import (
	"fmt"

	"cmosopt/internal/circuit"
)

// Correlation-coefficient signal-probability propagation, after the method
// of Ercolani et al. that the Stamoulis–Hajj line of work (the paper's
// reference [11] for handling signal correlations) builds on. Where the
// first-order Najm propagation assumes every pair of fanins independent,
// this engine tracks a pairwise correlation coefficient
//
//	C(x, y) = P(x ∧ y) / (P(x)·P(y))
//
// between every pair of signals, propagating it through each gate with
// first-order composition rules. Reconvergent fanout — the whole error
// source of the independence assumption — is captured exactly for one
// reconvergence level and approximately beyond.
//
// Gates are decomposed into AND/NOT primitives (OR by De Morgan, XOR by its
// sum-of-products form), so only two composition rules are needed:
//
//	AND:  P(y) = P(a)·P(b)·C(a,b),  C(y,w) ≈ C(a,w)·C(b,w)
//	NOT:  P(y) = 1 − P(a),          C(y,w) = (1 − P(a)·C(a,w))/(1 − P(a))
//
// CorrelationProfile holds the result for the circuit's visible gates. The
// densities use Najm's Boolean-difference formula with the sensitization
// probabilities P(∂y/∂x_i) evaluated on the correlated engine rather than
// under independence.
type CorrelationProfile struct {
	Prob    []float64 // P(output = 1), correlation-aware, per gate ID //cmosvet:unit 1
	Density []float64 // transitions per cycle, correlation-aware //cmosvet:unit 1
}

// corrEngine carries the growing signal set: visible gates plus the virtual
// primitives created by gate decomposition.
type corrEngine struct {
	prob []float64
	// corr[i][j] for j < i: correlation coefficient between signals i and j.
	corr [][]float64
}

func (e *corrEngine) n() int { return len(e.prob) }

func (e *corrEngine) c(i, j int) float64 {
	if i == j {
		// C(x,x) = P(x∧x)/P(x)² = 1/P(x).
		if e.prob[i] <= 0 {
			return 1
		}
		return 1 / e.prob[i]
	}
	if j > i {
		i, j = j, i
	}
	return e.corr[i][j]
}

// addLeaf introduces an independent signal (a primary input).
func (e *corrEngine) addLeaf(p float64) int {
	id := e.n()
	row := make([]float64, id)
	for j := range row {
		row[j] = 1 // independent of everything before it
	}
	e.prob = append(e.prob, p)
	e.corr = append(e.corr, row)
	return id
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clampCorr keeps a coefficient within its feasibility bounds given the two
// probabilities: max(0, (pa+pb−1)/(pa·pb)) ≤ C ≤ min(1/pa, 1/pb).
func clampCorr(cv, pa, pb float64) float64 {
	if pa <= 0 || pb <= 0 {
		return 1
	}
	lo := (pa + pb - 1) / (pa * pb)
	if lo < 0 {
		lo = 0
	}
	hi := 1 / pa
	if h2 := 1 / pb; h2 < hi {
		hi = h2
	}
	if cv < lo {
		return lo
	}
	if cv > hi {
		return hi
	}
	return cv
}

// addNot introduces y = ¬a.
func (e *corrEngine) addNot(a int) int {
	id := e.n()
	pa := e.prob[a]
	py := clamp01(1 - pa)
	row := make([]float64, id)
	for w := 0; w < id; w++ {
		pw := e.prob[w]
		var cv float64
		switch {
		case py <= 0 || pw <= 0:
			cv = 1
		default:
			// P(¬a ∧ w) = P(w) − P(a ∧ w).
			cv = (pw - pa*pw*e.c(a, w)) / (py * pw)
		}
		row[w] = clampCorr(cv, py, pw)
	}
	e.prob = append(e.prob, py)
	e.corr = append(e.corr, row)
	return id
}

// addAnd introduces y = a ∧ b.
func (e *corrEngine) addAnd(a, b int) int {
	id := e.n()
	pa, pb := e.prob[a], e.prob[b]
	py := clamp01(pa * pb * e.c(a, b))
	row := make([]float64, id)
	for w := 0; w < id; w++ {
		cv := e.c(a, w) * e.c(b, w)
		row[w] = clampCorr(cv, py, e.prob[w])
	}
	e.prob = append(e.prob, py)
	e.corr = append(e.corr, row)
	return id
}

// addOr introduces y = a ∨ b via De Morgan.
func (e *corrEngine) addOr(a, b int) int {
	return e.addNot(e.addAnd(e.addNot(a), e.addNot(b)))
}

// CorrelatedProbabilities computes correlation-aware signal probabilities
// for a combinational circuit. Memory is O(S²) in the total signal count
// (visible gates plus decomposition primitives), so it is intended for
// module-sized networks — exactly the scale of the paper's benchmarks.
func CorrelatedProbabilities(c *circuit.Circuit, inputs map[int]InputSpec) (*CorrelationProfile, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("activity: circuit %q is sequential; cut DFFs first", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &corrEngine{}
	sig := make([]int, c.N()) // gate ID -> engine signal
	dens := make([]float64, c.N())
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == circuit.Input {
			spec, ok := inputs[id]
			if !ok {
				return nil, fmt.Errorf("activity: no input spec for PI %q", g.Name)
			}
			if err := spec.validate(); err != nil {
				return nil, fmt.Errorf("PI %q: %w", g.Name, err)
			}
			sig[id] = e.addLeaf(spec.Prob)
			dens[id] = spec.Density
			continue
		}
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = sig[f]
		}
		switch g.Type {
		case circuit.Buf:
			sig[id] = fan[0]
		case circuit.Not:
			sig[id] = e.addNot(fan[0])
		case circuit.And, circuit.Nand:
			cur := fan[0]
			for _, x := range fan[1:] {
				cur = e.addAnd(cur, x)
			}
			if g.Type == circuit.Nand {
				cur = e.addNot(cur)
			}
			sig[id] = cur
		case circuit.Or, circuit.Nor:
			cur := fan[0]
			for _, x := range fan[1:] {
				cur = e.addOr(cur, x)
			}
			if g.Type == circuit.Nor {
				cur = e.addNot(cur)
			}
			sig[id] = cur
		case circuit.Xor, circuit.Xnor:
			// a ⊕ b = (a ∧ ¬b) ∨ (¬a ∧ b), folded pairwise.
			cur := fan[0]
			for _, x := range fan[1:] {
				left := e.addAnd(cur, e.addNot(x))
				right := e.addAnd(e.addNot(cur), x)
				cur = e.addOr(left, right)
			}
			if g.Type == circuit.Xnor {
				cur = e.addNot(cur)
			}
			sig[id] = cur
		default:
			return nil, fmt.Errorf("activity: unsupported gate type %s", g.Type)
		}

		// Correlation-aware transition density: Najm's formula with the
		// Boolean-difference probabilities read off the correlated engine.
		d := 0.0
		switch g.Type {
		case circuit.Buf, circuit.Not, circuit.Xor, circuit.Xnor:
			// ∂y/∂x_i = 1 for these.
			for _, f := range g.Fanin {
				d += dens[f]
			}
		case circuit.And, circuit.Nand:
			// ∂y/∂x_i = AND of the other fanins.
			for i, f := range g.Fanin {
				d += e.probOfAnd(excluding(g.Fanin, i), sig) * dens[f]
			}
		case circuit.Or, circuit.Nor:
			// ∂y/∂x_i = NOR of the other fanins: AND of their complements.
			for i, f := range g.Fanin {
				d += e.probOfAndNot(excluding(g.Fanin, i), sig) * dens[f]
			}
		}
		dens[id] = d
	}
	out := &CorrelationProfile{Prob: make([]float64, c.N()), Density: dens}
	for id := range sig {
		out.Prob[id] = e.prob[sig[id]]
	}
	return out, nil
}

func excluding(fanin []int, i int) []int {
	out := make([]int, 0, len(fanin)-1)
	for j, f := range fanin {
		if j != i {
			out = append(out, f)
		}
	}
	return out
}

// probOfAnd returns P(∧ gates) on the correlated engine (1 for an empty set).
func (e *corrEngine) probOfAnd(gateIDs []int, sig []int) float64 {
	if len(gateIDs) == 0 {
		return 1
	}
	cur := sig[gateIDs[0]]
	for _, g := range gateIDs[1:] {
		cur = e.addAnd(cur, sig[g])
	}
	return e.prob[cur]
}

// probOfAndNot returns P(∧ ¬gates) on the correlated engine.
func (e *corrEngine) probOfAndNot(gateIDs []int, sig []int) float64 {
	if len(gateIDs) == 0 {
		return 1
	}
	cur := e.addNot(sig[gateIDs[0]])
	for _, g := range gateIDs[1:] {
		cur = e.addAnd(cur, e.addNot(sig[g]))
	}
	return e.prob[cur]
}

// CorrelatedProbabilitiesUniform applies one probability to every input.
func CorrelatedProbabilitiesUniform(c *circuit.Circuit, prob float64) (*CorrelationProfile, error) {
	in := make(map[int]InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = InputSpec{Prob: prob}
	}
	return CorrelatedProbabilities(c, in)
}
