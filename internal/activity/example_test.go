package activity_test

import (
	"fmt"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
)

func ExamplePropagateUniform() {
	// A 2-input NAND with p = 0.5, 0.2 transitions/cycle at each input:
	// P(y) = 1 − 0.25 = 0.75, D(y) = 2 · 0.5 · 0.2 = 0.2.
	b := circuit.NewBuilder("g")
	a1, a2 := b.Input("a"), b.Input("b")
	y := b.Gate(circuit.Nand, "y", a1, a2)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	prof, err := activity.PropagateUniform(c, 0.5, 0.2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("P=%.2f D=%.2f\n", prof.Prob[y], prof.Density[y])
	// Output: P=0.75 D=0.20
}

func ExampleExactProbabilitiesUniform() {
	// Reconvergent fanout: AND(a, NOT a) is constant 0. Exact enumeration
	// knows that; independence-based propagation reports 0.25.
	b := circuit.NewBuilder("rc")
	a := b.Input("a")
	na := b.Gate(circuit.Not, "na", a)
	y := b.Gate(circuit.And, "y", a, na)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	exact, err := activity.ExactProbabilitiesUniform(c, 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	approx, err := activity.PropagateUniform(c, 0.5, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("exact=%.2f independence=%.2f\n", exact[y], approx.Prob[y])
	// Output: exact=0.00 independence=0.25
}
