package activity

import (
	"fmt"
	"math/rand"

	"cmosopt/internal/circuit"
)

// MonteCarlo estimates the activity profile by logic simulation: each primary
// input is driven by a stationary two-state Markov chain matching its
// InputSpec, the network is evaluated zero-delay each cycle, and output
// transitions are counted. It validates the analytic propagation (which is
// exact when inputs switch one at a time and fanins are independent).
func MonteCarlo(c *circuit.Circuit, inputs map[int]InputSpec, cycles int, seed int64) (*Profile, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("activity: circuit %q is sequential; cut DFFs first", c.Name)
	}
	if cycles < 2 {
		return nil, fmt.Errorf("activity: need at least 2 cycles, got %d", cycles)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Markov chain rates: P(0→1)=α, P(1→0)=β with α = d/(2(1−p)),
	// β = d/(2p), giving stationary probability p and transition rate d.
	alpha := make([]float64, c.N())
	beta := make([]float64, c.N())
	for _, id := range c.PIs {
		spec, ok := inputs[id]
		if !ok {
			return nil, fmt.Errorf("activity: no input spec for PI %q", c.Gate(id).Name)
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("PI %q: %w", c.Gate(id).Name, err)
		}
		switch {
		case spec.Prob <= 0 || spec.Prob >= 1:
			alpha[id], beta[id] = 0, 0 // input stuck at 0 or 1
		default:
			alpha[id] = spec.Density / (2 * (1 - spec.Prob))
			beta[id] = spec.Density / (2 * spec.Prob)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	val := make([]bool, c.N())
	prev := make([]bool, c.N())
	ones := make([]int, c.N())
	trans := make([]int, c.N())

	// Initialize inputs from the stationary distribution.
	for _, id := range c.PIs {
		val[id] = rng.Float64() < inputs[id].Prob
	}
	evalAll(c, order, val)
	copy(prev, val)

	for cy := 0; cy < cycles; cy++ {
		for _, id := range c.PIs {
			if val[id] {
				if rng.Float64() < beta[id] {
					val[id] = false
				}
			} else if rng.Float64() < alpha[id] {
				val[id] = true
			}
		}
		evalAll(c, order, val)
		for i := range val {
			if val[i] {
				ones[i]++
			}
			if val[i] != prev[i] {
				trans[i]++
			}
		}
		copy(prev, val)
	}

	p := &Profile{Prob: make([]float64, c.N()), Density: make([]float64, c.N())}
	for i := range val {
		p.Prob[i] = float64(ones[i]) / float64(cycles)
		p.Density[i] = float64(trans[i]) / float64(cycles)
	}
	return p, nil
}

// evalAll evaluates every logic gate's output in topological order.
func evalAll(c *circuit.Circuit, order []int, val []bool) {
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == circuit.Input {
			continue
		}
		val[id] = EvalGate(g.Type, g.Fanin, val)
	}
}

// EvalGate computes a single gate's Boolean output given fanin values.
func EvalGate(t circuit.GateType, fanin []int, val []bool) bool {
	switch t {
	case circuit.Buf:
		return val[fanin[0]]
	case circuit.Not:
		return !val[fanin[0]]
	case circuit.And, circuit.Nand:
		out := true
		for _, f := range fanin {
			out = out && val[f]
		}
		if t == circuit.Nand {
			out = !out
		}
		return out
	case circuit.Or, circuit.Nor:
		out := false
		for _, f := range fanin {
			out = out || val[f]
		}
		if t == circuit.Nor {
			out = !out
		}
		return out
	case circuit.Xor, circuit.Xnor:
		out := false
		for _, f := range fanin {
			out = out != val[f]
		}
		if t == circuit.Xnor {
			out = !out
		}
		return out
	}
	panic(fmt.Sprintf("activity: EvalGate on %s", t))
}
