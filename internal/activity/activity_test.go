package activity

import (
	"math"
	"testing"
	"testing/quick"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

func gate1(t *testing.T, typ circuit.GateType, nIn int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("g")
	ins := make([]int, nIn)
	for i := range ins {
		ins[i] = b.Input("in" + string(rune('a'+i)))
	}
	g := b.Gate(typ, "y", ins...)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func propUniform(t *testing.T, c *circuit.Circuit, p, d float64) *Profile {
	t.Helper()
	prof, err := PropagateUniform(c, p, d)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGateProbabilities(t *testing.T) {
	cases := []struct {
		typ  circuit.GateType
		nIn  int
		p    float64
		want float64
	}{
		{circuit.Buf, 1, 0.3, 0.3},
		{circuit.Not, 1, 0.3, 0.7},
		{circuit.And, 2, 0.5, 0.25},
		{circuit.Nand, 2, 0.5, 0.75},
		{circuit.And, 3, 0.5, 0.125},
		{circuit.Or, 2, 0.5, 0.75},
		{circuit.Nor, 2, 0.5, 0.25},
		{circuit.Or, 3, 0.2, 1 - 0.8*0.8*0.8},
		{circuit.Xor, 2, 0.5, 0.5},
		{circuit.Xor, 2, 0.3, 0.3*0.7 + 0.7*0.3},
		{circuit.Xnor, 2, 0.3, 1 - (0.3*0.7 + 0.7*0.3)},
		{circuit.Xor, 3, 0.5, 0.5},
	}
	for _, tc := range cases {
		c := gate1(t, tc.typ, tc.nIn)
		prof := propUniform(t, c, tc.p, 0.1)
		y := c.GateByName("y")
		if !approx(prof.Prob[y.ID], tc.want, 1e-12) {
			t.Errorf("%s/%d p=%v: prob = %v, want %v", tc.typ, tc.nIn, tc.p, prof.Prob[y.ID], tc.want)
		}
	}
}

func TestGateDensities(t *testing.T) {
	const d = 0.2
	cases := []struct {
		typ  circuit.GateType
		nIn  int
		p    float64
		want float64
	}{
		{circuit.Not, 1, 0.3, d},
		{circuit.Buf, 1, 0.3, d},
		// AND: ∂y/∂xi = other input → P = p, two terms.
		{circuit.And, 2, 0.5, 2 * 0.5 * d},
		{circuit.Nand, 2, 0.5, 2 * 0.5 * d},
		{circuit.And, 3, 0.5, 3 * 0.25 * d},
		// OR: P(∂) = (1-p) each.
		{circuit.Or, 2, 0.5, 2 * 0.5 * d},
		{circuit.Or, 2, 0.2, 2 * 0.8 * d},
		{circuit.Nor, 3, 0.2, 3 * 0.64 * d},
		// XOR: P(∂)=1 each.
		{circuit.Xor, 2, 0.5, 2 * d},
		{circuit.Xnor, 3, 0.9, 3 * d},
	}
	for _, tc := range cases {
		c := gate1(t, tc.typ, tc.nIn)
		prof := propUniform(t, c, tc.p, d)
		y := c.GateByName("y")
		if !approx(prof.Density[y.ID], tc.want, 1e-12) {
			t.Errorf("%s/%d p=%v: density = %v, want %v", tc.typ, tc.nIn, tc.p, prof.Density[y.ID], tc.want)
		}
	}
}

func TestPropagateChain(t *testing.T) {
	// Inverter chain: density is preserved, probability alternates.
	b := circuit.NewBuilder("chain")
	in := b.Input("in")
	g1 := b.Gate(circuit.Not, "g1", in)
	g2 := b.Gate(circuit.Not, "g2", g1)
	b.Output(g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof := propUniform(t, c, 0.3, 0.15)
	if !approx(prof.Prob[g1], 0.7, 1e-12) || !approx(prof.Prob[g2], 0.3, 1e-12) {
		t.Errorf("chain probs = %v %v", prof.Prob[g1], prof.Prob[g2])
	}
	if !approx(prof.Density[g2], 0.15, 1e-12) {
		t.Errorf("chain density = %v, want 0.15", prof.Density[g2])
	}
}

func TestPropagateErrors(t *testing.T) {
	c := gate1(t, circuit.Nand, 2)
	if _, err := Propagate(c, nil); err == nil {
		t.Error("missing input specs accepted")
	}
	if _, err := PropagateUniform(c, 1.5, 0.1); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := PropagateUniform(c, 0.5, -1); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := PropagateUniform(c, 0.9, 0.5); err == nil {
		t.Error("unrealizable density accepted (max 2·min(p,1-p))")
	}
	seq, err := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PropagateUniform(seq, 0.5, 0.1); err == nil {
		t.Error("sequential circuit accepted")
	}
}

// Property: probabilities stay in [0,1] and densities stay non-negative and
// bounded by the sum of input densities times max sensitization, over random
// circuits and random input stats.
func TestPropagateBoundsProperty(t *testing.T) {
	f := func(seed int64, pRaw, dRaw float64) bool {
		p := math.Mod(math.Abs(pRaw), 1)
		dMax := 2 * min(p, 1-p)
		d := math.Mod(math.Abs(dRaw), 1) * dMax
		c, err := netgen.Generate(netgen.Config{Name: "prop", Gates: 60, Depth: 6, PIs: 5, POs: 4}, seed)
		if err != nil {
			return false
		}
		prof, err := PropagateUniform(c, p, d)
		if err != nil {
			return false
		}
		for i := range c.Gates {
			if prof.Prob[i] < -1e-12 || prof.Prob[i] > 1+1e-12 {
				return false
			}
			if prof.Density[i] < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestZeroDensityInputsGiveZeroActivity(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "z", Gates: 50, Depth: 5, PIs: 4, POs: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	prof := propUniform(t, c, 0.5, 0)
	for i := range c.Gates {
		if prof.Density[i] != 0 {
			t.Fatalf("gate %d density %v with static inputs", i, prof.Density[i])
		}
	}
}

func TestTotalSumsLogicGatesOnly(t *testing.T) {
	c := gate1(t, circuit.Nand, 2)
	prof := propUniform(t, c, 0.5, 0.2)
	y := c.GateByName("y")
	if got := prof.Total(c); !approx(got, prof.Density[y.ID], 1e-12) {
		t.Errorf("Total = %v, want %v (inputs excluded)", got, prof.Density[y.ID])
	}
}
