package activity

import (
	"math"
	"strings"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

func TestExactMatchesHandComputation(t *testing.T) {
	// y = NAND(a, b) at p=0.5: P(y)=0.75. Exact == closed form.
	b := circuit.NewBuilder("g")
	a1, a2 := b.Input("a"), b.Input("b")
	y := b.Gate(circuit.Nand, "y", a1, a2)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probs, err := ExactProbabilitiesUniform(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[y]-0.75) > 1e-12 {
		t.Errorf("P(NAND) = %v, want 0.75", probs[y])
	}
}

func TestExactAgreesWithNajmOnTrees(t *testing.T) {
	// Fanout-free (tree) circuits have independent fanins everywhere, so the
	// first-order propagation is exact.
	c, err := circuit.ParseBenchString("tree", `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = NOR(c, d)
y = XOR(g1, g2)
`)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := ReconvergenceError(c, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-12 {
		t.Errorf("tree circuit shows reconvergence error %v", worst)
	}
}

func TestExactExposesReconvergenceError(t *testing.T) {
	// y = AND(a, NOT a) is constant 0, but independence-based propagation
	// reports p·(1−p) = 0.25 at p = 0.5.
	b := circuit.NewBuilder("rc")
	a := b.Input("a")
	na := b.Gate(circuit.Not, "na", a)
	y := b.Gate(circuit.And, "y", a, na)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactProbabilitiesUniform(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if exact[y] != 0 {
		t.Errorf("exact P(a AND NOT a) = %v, want 0", exact[y])
	}
	worst, err := ReconvergenceError(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-0.25) > 1e-12 {
		t.Errorf("reconvergence error = %v, want 0.25", worst)
	}
}

func TestExactBoundsOnRealCircuit(t *testing.T) {
	// c17 has 5 inputs: cheap to enumerate. All probabilities in [0,1] and
	// the first-order approximation stays within a moderate bound.
	c, err := circuit.ParseBenchString("c17", `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(o1)
OUTPUT(o2)
n1 = NAND(a, c)
n2 = NAND(c, d)
n3 = NAND(b, n2)
n4 = NAND(n2, e)
o1 = NAND(n1, n3)
o2 = NAND(n3, n4)
`)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactProbabilitiesUniform(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range exact {
		if p < 0 || p > 1 {
			t.Fatalf("gate %d exact prob %v outside [0,1]", i, p)
		}
	}
	worst, err := ReconvergenceError(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.2 {
		t.Errorf("c17 reconvergence error %v implausibly large", worst)
	}
}

func TestExactWeightedInputs(t *testing.T) {
	// Asymmetric input probabilities: P(AND) = pa·pb exactly.
	b := circuit.NewBuilder("w")
	a1, a2 := b.Input("a"), b.Input("b")
	y := b.Gate(circuit.And, "y", a1, a2)
	b.Output(y)
	c, _ := b.Build()
	probs, err := ExactProbabilities(c, map[int]InputSpec{
		a1: {Prob: 0.9},
		a2: {Prob: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[y]-0.18) > 1e-12 {
		t.Errorf("P = %v, want 0.18", probs[y])
	}
}

func TestExactRejects(t *testing.T) {
	big, err := netgen.Generate(netgen.Config{Name: "big", Gates: 60, Depth: 5, PIs: MaxExactInputs + 1, POs: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactProbabilitiesUniform(big, 0.5); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("oversized circuit accepted: %v", err)
	}
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if _, err := ExactProbabilitiesUniform(seq, 0.5); err == nil {
		t.Error("sequential circuit accepted")
	}
	small := gate1(t, circuit.Not, 1)
	if _, err := ExactProbabilities(small, nil); err == nil {
		t.Error("missing input specs accepted")
	}
}
