package activity

import (
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

func TestCorrelatedMatchesIndependentOnTrees(t *testing.T) {
	c, err := circuit.ParseBenchString("tree", `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(c, d)
y = AND(g1, g2)
`)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelatedProbabilitiesUniform(c, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := PropagateUniform(c, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if math.Abs(corr.Prob[i]-indep.Prob[i]) > 1e-9 {
			t.Errorf("gate %d: corr %v vs indep %v (trees must agree)", i, corr.Prob[i], indep.Prob[i])
		}
	}
}

func TestCorrelatedHandlesHardReconvergence(t *testing.T) {
	// y = AND(a, NOT a) is identically 0. The independence method says 0.25
	// at p = 0.5; the correlation method gets it exactly.
	b := circuit.NewBuilder("rc")
	a := b.Input("a")
	na := b.Gate(circuit.Not, "na", a)
	y := b.Gate(circuit.And, "y", a, na)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelatedProbabilitiesUniform(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Prob[y] > 1e-9 {
		t.Errorf("P(a AND NOT a) = %v, want 0", corr.Prob[y])
	}
	// And y = OR(a, NOT a) is identically 1.
	b2 := circuit.NewBuilder("rc2")
	a2 := b2.Input("a")
	na2 := b2.Gate(circuit.Not, "na", a2)
	y2 := b2.Gate(circuit.Or, "y", a2, na2)
	b2.Output(y2)
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	corr2, err := CorrelatedProbabilitiesUniform(c2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr2.Prob[y2]-1) > 1e-9 {
		t.Errorf("P(a OR NOT a) = %v, want 1", corr2.Prob[y2])
	}
}

func TestCorrelatedBeatsIndependenceOnRandomCircuits(t *testing.T) {
	// Against exact enumeration, the correlation-aware probabilities must be
	// at least as accurate (in worst gate error) as the independence ones,
	// averaged over a handful of reconvergent random circuits.
	var corrWorse int
	const trials = 6
	for seed := int64(1); seed <= trials; seed++ {
		c, err := netgen.Generate(netgen.Config{Name: "r", Gates: 25, Depth: 5, PIs: 5, POs: 3, MaxFan: 2}, seed)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactProbabilitiesUniform(c, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		indep, err := PropagateUniform(c, 0.5, 0)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := CorrelatedProbabilitiesUniform(c, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		var eInd, eCorr float64
		for i := range c.Gates {
			if d := math.Abs(indep.Prob[i] - exact[i]); d > eInd {
				eInd = d
			}
			if d := math.Abs(corr.Prob[i] - exact[i]); d > eCorr {
				eCorr = d
			}
		}
		if eCorr > eInd+1e-9 {
			corrWorse++
		}
		t.Logf("seed %d: independence err %.4f, correlation err %.4f", seed, eInd, eCorr)
	}
	if corrWorse > trials/3 {
		t.Errorf("correlation method worse than independence on %d/%d circuits", corrWorse, trials)
	}
}

func TestCorrelatedProbabilityBounds(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "b", Gates: 50, Depth: 6, PIs: 6, POs: 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		corr, err := CorrelatedProbabilitiesUniform(c, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range corr.Prob {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("p=%v gate %d probability %v outside [0,1]", p, i, v)
			}
		}
	}
}

func TestCorrelatedErrors(t *testing.T) {
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if _, err := CorrelatedProbabilitiesUniform(seq, 0.5); err == nil {
		t.Error("sequential circuit accepted")
	}
	c := gate1(t, circuit.Nand, 2)
	if _, err := CorrelatedProbabilities(c, nil); err == nil {
		t.Error("missing specs accepted")
	}
}

func TestCorrelatedDensityMatchesNajmOnTrees(t *testing.T) {
	c, err := circuit.ParseBenchString("tree", `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = NOR(c, d)
y = XOR(g1, g2)
`)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]InputSpec{}
	for _, id := range c.PIs {
		in[id] = InputSpec{Prob: 0.3, Density: 0.2}
	}
	corr, err := CorrelatedProbabilities(c, in)
	if err != nil {
		t.Fatal(err)
	}
	najm, err := Propagate(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if math.Abs(corr.Density[i]-najm.Density[i]) > 1e-9 {
			t.Errorf("gate %d: corr density %v vs najm %v (trees must agree)",
				i, corr.Density[i], najm.Density[i])
		}
	}
}

func TestCorrelatedDensityUsesCorrectedSensitization(t *testing.T) {
	// m = AND(a, NOT a) is constant 0, so y = AND(b, m) is never sensitized
	// to b. The correlated engine knows P(m) = 0 and drops that term; the
	// independence method charges P(m) = 0.25 worth of b-transitions.
	bld := circuit.NewBuilder("rc")
	a := bld.Input("a")
	b := bld.Input("b")
	na := bld.Gate(circuit.Not, "na", a)
	m := bld.Gate(circuit.And, "m", a, na)
	y := bld.Gate(circuit.And, "y", b, m)
	bld.Output(y)
	c, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]InputSpec{
		a: {Prob: 0.5, Density: 0.3},
		b: {Prob: 0.5, Density: 0.3},
	}
	corr, err := CorrelatedProbabilities(c, in)
	if err != nil {
		t.Fatal(err)
	}
	najm, err := Propagate(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Density[y] >= najm.Density[y] {
		t.Errorf("correlated density %v not below independence %v", corr.Density[y], najm.Density[y])
	}
}

func TestCorrelatedDensityBounds(t *testing.T) {
	// Densities stay non-negative and below the sum of input densities
	// scaled by the worst-case path multiplicity on random circuits.
	for seed := int64(1); seed <= 5; seed++ {
		c, err := netgen.Generate(netgen.Config{Name: "cd", Gates: 40, Depth: 5, PIs: 6, POs: 4, MaxFan: 2}, seed)
		if err != nil {
			t.Fatal(err)
		}
		in := map[int]InputSpec{}
		for _, id := range c.PIs {
			in[id] = InputSpec{Prob: 0.5, Density: 0.1}
		}
		corr, err := CorrelatedProbabilities(c, in)
		if err != nil {
			t.Fatal(err)
		}
		najm, err := Propagate(c, in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Gates {
			if corr.Density[i] < -1e-12 {
				t.Fatalf("seed %d: negative density %v", seed, corr.Density[i])
			}
			// The corrected sensitization probabilities are clamped to their
			// feasible range, so per-gate densities stay within a factor of
			// the independence figure (both reduce to it on trees).
			if najm.Density[i] > 1e-9 && corr.Density[i] > 4*najm.Density[i] {
				t.Fatalf("seed %d gate %d: corr density %v implausibly above najm %v",
					seed, i, corr.Density[i], najm.Density[i])
			}
		}
	}
}
