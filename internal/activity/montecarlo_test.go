package activity

import (
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

func TestEvalGateTruthTables(t *testing.T) {
	val := []bool{false, true}
	cases := []struct {
		typ   circuit.GateType
		fanin []int
		want  bool
	}{
		{circuit.Buf, []int{1}, true},
		{circuit.Not, []int{1}, false},
		{circuit.And, []int{0, 1}, false},
		{circuit.And, []int{1, 1}, true},
		{circuit.Nand, []int{1, 1}, false},
		{circuit.Or, []int{0, 0}, false},
		{circuit.Or, []int{0, 1}, true},
		{circuit.Nor, []int{0, 0}, true},
		{circuit.Xor, []int{0, 1}, true},
		{circuit.Xor, []int{1, 1}, false},
		{circuit.Xnor, []int{1, 1}, true},
	}
	for _, tc := range cases {
		if got := EvalGate(tc.typ, tc.fanin, val); got != tc.want {
			t.Errorf("%s%v = %v, want %v", tc.typ, tc.fanin, got, tc.want)
		}
	}
}

func TestMonteCarloInputStatistics(t *testing.T) {
	// The Markov input generator must reproduce the requested (p, d).
	b := circuit.NewBuilder("io")
	in := b.Input("in")
	g := b.Gate(circuit.Buf, "y", in)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := map[int]InputSpec{in: {Prob: 0.3, Density: 0.2}}
	prof, err := MonteCarlo(c, spec, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prof.Prob[in]-0.3) > 0.01 {
		t.Errorf("MC input prob = %v, want 0.3", prof.Prob[in])
	}
	if math.Abs(prof.Density[in]-0.2) > 0.01 {
		t.Errorf("MC input density = %v, want 0.2", prof.Density[in])
	}
	// BUF must copy both.
	if math.Abs(prof.Prob[g]-prof.Prob[in]) > 1e-12 || math.Abs(prof.Density[g]-prof.Density[in]) > 1e-12 {
		t.Error("BUF did not copy input statistics")
	}
}

func TestMonteCarloAgreesWithAnalyticSingleGate(t *testing.T) {
	// With a low input density, simultaneous input switching is rare, so the
	// analytic propagation is near-exact (its error is O(d²): e.g. two inputs
	// of an XOR switching in the same cycle cancel in simulation but count
	// twice analytically).
	const d = 0.04
	for _, typ := range []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor} {
		b := circuit.NewBuilder("g")
		i1, i2 := b.Input("a"), b.Input("b")
		g := b.Gate(typ, "y", i1, i2)
		b.Output(g)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ana, err := PropagateUniform(c, 0.5, d)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarlo(c, map[int]InputSpec{
			i1: {Prob: 0.5, Density: d},
			i2: {Prob: 0.5, Density: d},
		}, 400000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mc.Prob[g]-ana.Prob[g]) / ana.Prob[g]; rel > 0.05 {
			t.Errorf("%s: MC prob %v vs analytic %v", typ, mc.Prob[g], ana.Prob[g])
		}
		if rel := math.Abs(mc.Density[g]-ana.Density[g]) / ana.Density[g]; rel > 0.08 {
			t.Errorf("%s: MC density %v vs analytic %v", typ, mc.Density[g], ana.Density[g])
		}
	}
}

func TestMonteCarloAgreesOnNetwork(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "net", Gates: 40, Depth: 5, PIs: 6, POs: 4}, 21)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := PropagateUniform(c, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[int]InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = InputSpec{Prob: 0.5, Density: 0.05}
	}
	mc, err := MonteCarlo(c, in, 120000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Compare aggregate activity: reconvergent fanout breaks independence on
	// individual nodes, but totals should agree within ~20 %.
	anaTot, mcTot := ana.Total(c), mc.Total(c)
	if anaTot <= 0 || mcTot <= 0 {
		t.Fatalf("degenerate totals: %v %v", anaTot, mcTot)
	}
	if r := anaTot / mcTot; r < 0.8 || r > 1.25 {
		t.Errorf("analytic/MC total activity ratio = %v (ana %v, mc %v)", r, anaTot, mcTot)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	b := circuit.NewBuilder("e")
	in := b.Input("in")
	g := b.Gate(circuit.Not, "y", in)
	b.Output(g)
	c, _ := b.Build()
	if _, err := MonteCarlo(c, nil, 100, 1); err == nil {
		t.Error("missing specs accepted")
	}
	if _, err := MonteCarlo(c, map[int]InputSpec{in: {Prob: 0.5, Density: 0.1}}, 1, 1); err == nil {
		t.Error("too few cycles accepted")
	}
}

func TestMonteCarloStuckInputs(t *testing.T) {
	b := circuit.NewBuilder("stuck")
	i1, i2 := b.Input("a"), b.Input("b")
	g := b.Gate(circuit.And, "y", i1, i2)
	b.Output(g)
	c, _ := b.Build()
	prof, err := MonteCarlo(c, map[int]InputSpec{
		i1: {Prob: 1, Density: 0},
		i2: {Prob: 0.5, Density: 0.3},
	}, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Prob[i1] != 1 {
		t.Errorf("stuck-at-1 input prob = %v", prof.Prob[i1])
	}
	// AND with one input stuck at 1 behaves as BUF of the other.
	if math.Abs(prof.Density[g]-prof.Density[i2]) > 1e-12 {
		t.Errorf("AND density %v, want %v", prof.Density[g], prof.Density[i2])
	}
}
