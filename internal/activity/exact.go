package activity

import (
	"fmt"

	"cmosopt/internal/circuit"
)

// MaxExactInputs bounds the exhaustive enumeration in ExactProbabilities.
const MaxExactInputs = 20

// ExactProbabilities computes exact signal probabilities by weighted
// enumeration over all primary-input assignments — exponential in the input
// count, so limited to MaxExactInputs. It is the reference the first-order
// Najm propagation (which assumes spatially independent fanins, see the
// paper's §4.1 and its pointer to Stamoulis–Hajj [11] for correlation-aware
// methods) is measured against: on trees the two agree exactly; reconvergent
// fanout is where they diverge.
func ExactProbabilities(c *circuit.Circuit, inputs map[int]InputSpec) ([]float64, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("activity: circuit %q is sequential; cut DFFs first", c.Name)
	}
	n := len(c.PIs)
	if n > MaxExactInputs {
		return nil, fmt.Errorf("activity: %d inputs exceed the exact-enumeration limit %d", n, MaxExactInputs)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	pIn := make([]float64, n)
	for i, id := range c.PIs {
		spec, ok := inputs[id]
		if !ok {
			return nil, fmt.Errorf("activity: no input spec for PI %q", c.Gate(id).Name)
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("PI %q: %w", c.Gate(id).Name, err)
		}
		pIn[i] = spec.Prob
	}

	probs := make([]float64, c.N())
	val := make([]bool, c.N())
	for mask := 0; mask < 1<<n; mask++ {
		weight := 1.0
		for i, id := range c.PIs {
			on := mask&(1<<i) != 0
			val[id] = on
			if on {
				weight *= pIn[i]
			} else {
				weight *= 1 - pIn[i]
			}
		}
		if weight == 0 {
			continue
		}
		for _, id := range order {
			g := c.Gate(id)
			if g.Type == circuit.Input {
				continue
			}
			val[id] = EvalGate(g.Type, g.Fanin, val)
		}
		for id, v := range val {
			if v {
				probs[id] += weight
			}
		}
	}
	return probs, nil
}

// ExactProbabilitiesUniform applies the same probability to every input.
func ExactProbabilitiesUniform(c *circuit.Circuit, prob float64) ([]float64, error) {
	in := make(map[int]InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = InputSpec{Prob: prob}
	}
	return ExactProbabilities(c, in)
}

// ReconvergenceError returns the maximum absolute difference between the
// first-order propagated probabilities and the exact ones — a direct measure
// of how much the independence approximation costs on a given circuit.
func ReconvergenceError(c *circuit.Circuit, prob float64) (float64, error) {
	exact, err := ExactProbabilitiesUniform(c, prob)
	if err != nil {
		return 0, err
	}
	approx, err := PropagateUniform(c, prob, 0)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for i := range exact {
		d := exact[i] - approx.Prob[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}
