// Package activity computes signal probabilities and switching activities for
// combinational networks. Internal-node activities use Najm's transition
// density propagation (DAC 1991, the paper's reference [8]):
//
//	D(y) = Σ_i P(∂y/∂x_i) · D(x_i)
//
// where ∂y/∂x_i is the Boolean difference of the gate function with respect
// to input i. Spatial independence of the gate inputs is assumed — the same
// first-order approximation the paper uses. Activities are expressed as
// expected transitions per clock cycle (the a_i of the paper's Eq. A2).
package activity

import (
	"fmt"

	"cmosopt/internal/circuit"
)

// InputSpec gives the stationary statistics of one primary input: the
// probability of being logic 1 and the expected transitions per cycle.
// Physically realizable specs satisfy 0 ≤ Density ≤ 2·min(Prob, 1−Prob).
type InputSpec struct {
	Prob    float64 //cmosvet:unit 1
	Density float64 //cmosvet:unit 1
}

func (s InputSpec) validate() error {
	if s.Prob < 0 || s.Prob > 1 {
		return fmt.Errorf("activity: probability %v outside [0,1]", s.Prob)
	}
	if s.Density < 0 {
		return fmt.Errorf("activity: negative density %v", s.Density)
	}
	if lim := 2 * min(s.Prob, 1-s.Prob); s.Density > lim+1e-12 {
		return fmt.Errorf("activity: density %v unrealizable for probability %v (max %v)", s.Density, s.Prob, lim)
	}
	return nil
}

// Profile holds per-gate statistics, indexed by gate ID.
type Profile struct {
	Prob    []float64 // P(output = 1) //cmosvet:unit 1
	Density []float64 // expected output transitions per cycle (a_i) //cmosvet:unit 1
}

// Propagate computes the activity profile of a combinational circuit given
// the statistics of every primary input. The circuit must not contain DFFs
// (cut them with Combinational first).
func Propagate(c *circuit.Circuit, inputs map[int]InputSpec) (*Profile, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("activity: circuit %q is sequential; cut DFFs first", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Prob:    make([]float64, c.N()),
		Density: make([]float64, c.N()),
	}
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == circuit.Input {
			spec, ok := inputs[id]
			if !ok {
				return nil, fmt.Errorf("activity: no input spec for PI %q", g.Name)
			}
			if err := spec.validate(); err != nil {
				return nil, fmt.Errorf("PI %q: %w", g.Name, err)
			}
			p.Prob[id] = spec.Prob
			p.Density[id] = spec.Density
			continue
		}
		prob, dens, err := gateStats(g, p)
		if err != nil {
			return nil, fmt.Errorf("gate %q: %w", g.Name, err)
		}
		p.Prob[id] = prob
		p.Density[id] = dens
	}
	return p, nil
}

// PropagateUniform assigns the same statistics to every primary input; this
// is the configuration of the paper's Tables 1 and 2 ("activity levels are
// the same over all the inputs").
func PropagateUniform(c *circuit.Circuit, prob, density float64) (*Profile, error) {
	in := make(map[int]InputSpec, len(c.PIs))
	for _, id := range c.PIs {
		in[id] = InputSpec{Prob: prob, Density: density}
	}
	return Propagate(c, in)
}

// gateStats evaluates one gate's output probability and transition density
// from its fanin statistics.
func gateStats(g *circuit.Gate, p *Profile) (prob, dens float64, err error) {
	probs := make([]float64, len(g.Fanin))
	for i, f := range g.Fanin {
		probs[i] = p.Prob[f]
	}
	switch g.Type {
	case circuit.Buf, circuit.Not:
		prob = probs[0]
		if g.Type == circuit.Not {
			prob = 1 - prob
		}
		// ∂y/∂x = 1 for both.
		dens = p.Density[g.Fanin[0]]

	case circuit.And, circuit.Nand:
		prod := 1.0
		for _, q := range probs {
			prod *= q
		}
		prob = prod
		if g.Type == circuit.Nand {
			prob = 1 - prob
		}
		// ∂y/∂x_i = AND of the other inputs.
		for i, f := range g.Fanin {
			dens += exclProduct(probs, i) * p.Density[f]
		}

	case circuit.Or, circuit.Nor:
		prodZero := 1.0
		for _, q := range probs {
			prodZero *= 1 - q
		}
		prob = 1 - prodZero
		if g.Type == circuit.Nor {
			prob = prodZero
		}
		// ∂y/∂x_i = NOR of the other inputs.
		for i, f := range g.Fanin {
			q := 1.0
			for j, pj := range probs {
				if j != i {
					q *= 1 - pj
				}
			}
			dens += q * p.Density[f]
		}

	case circuit.Xor, circuit.Xnor:
		// P(x1 ⊕ x2 ⊕ …) folds pairwise; ∂y/∂x_i = 1 always.
		px := 0.0
		for _, q := range probs {
			px = px*(1-q) + q*(1-px)
		}
		prob = px
		if g.Type == circuit.Xnor {
			prob = 1 - prob
		}
		for _, f := range g.Fanin {
			dens += p.Density[f]
		}

	default:
		return 0, 0, fmt.Errorf("activity: unsupported gate type %s", g.Type)
	}
	return prob, dens, nil
}

// exclProduct returns Π_{j≠i} probs[j].
func exclProduct(probs []float64, i int) float64 {
	prod := 1.0
	for j, q := range probs {
		if j != i {
			prod *= q
		}
	}
	return prod
}

// Total returns the sum of logic-gate output densities — a single-number
// activity measure used in reports.
func (p *Profile) Total(c *circuit.Circuit) float64 {
	sum := 0.0
	for i := range c.Gates {
		if c.Gates[i].IsLogic() {
			sum += p.Density[i]
		}
	}
	return sum
}
