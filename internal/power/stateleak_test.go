package power

import (
	"math"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// lowVdd names the 1.0 V operating point of the state-aware leakage tests so
// the hand-computed energies below stay dimensionally sound.
const lowVdd = 1.0 //cmosvet:unit V

func TestStateAwareInverter(t *testing.T) {
	c, ev, tech := fixture(t)
	a := design.Uniform(c.N(), 1.0, 0.15, 2)
	h := c.GateByName("h") // NOT gate
	got := ev.StateAwareStatic(h.ID, a)
	unit := tech.IdUnit(0, 0.15) + tech.IJunc
	p := ev.Act.Prob[h.ID]
	want := lowVdd * 2 * (p*unit + (1-p)*tech.Beta*unit) / fc
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("inverter state-aware static = %v, want %v", got, want)
	}
}

func TestStackEffectSuppressesSeriesLeakage(t *testing.T) {
	// A 4-input NAND with output mostly high leaks through its 4-deep NMOS
	// stack: far less than four inverters of the same width would.
	b := circuit.NewBuilder("stk")
	ins := make([]int, 4)
	for i := range ins {
		ins[i] = b.Input("i" + string(rune('a'+i)))
	}
	nand := b.Gate(circuit.Nand, "nand", ins...)
	inv := b.Gate(circuit.Not, "inv", nand)
	b.Output(inv)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tech := device.Default350()
	// Inputs mostly high → NAND output mostly low → PMOS leaks (parallel);
	// inputs mostly low → output mostly high → suppressed NMOS stack.
	for _, tc := range []struct {
		pIn  float64
		name string
	}{{0.05, "low inputs"}, {0.95, "high inputs"}} {
		act, err := activity.PropagateUniform(c, tc.pIn, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		wire, _ := wiring.New(wiring.Default350(), c.NumLogic())
		ev, err := New(c, &tech, act, wire, fc)
		if err != nil {
			t.Fatal(err)
		}
		a := design.Uniform(c.N(), 1.0, 0.15, 2)
		nandLeak := ev.StateAwareStatic(nand, a)
		if tc.pIn == 0.05 {
			// Output ~1: stack-suppressed leakage — should be well below
			// the flat Eq. A1 figure.
			flat := ev.GateEnergy(nand, a).Static
			if nandLeak > flat/2 {
				t.Errorf("%s: stacked leakage %v not suppressed vs flat %v", tc.name, nandLeak, flat)
			}
		} else {
			// Output ~0: four parallel β-wide PMOS leak — more than one
			// device's worth.
			unit := (tech.IdUnit(0, 0.15) + tech.IJunc) * 2 * lowVdd / fc
			if nandLeak < 3*unit {
				t.Errorf("%s: parallel PMOS leakage %v too small", tc.name, nandLeak)
			}
		}
	}
}

func TestTotalStateAwareConsistent(t *testing.T) {
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	tech := device.Default350()
	act, err := activity.PropagateUniform(c, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := wiring.New(wiring.Default350(), c.NumLogic())
	ev, err := New(c, &tech, act, wire, fc)
	if err != nil {
		t.Fatal(err)
	}
	a := design.Uniform(c.N(), 0.8, 0.14, 2)
	flat := ev.Total(a)
	aware := ev.TotalStateAware(a)
	if aware.Dynamic != flat.Dynamic {
		t.Error("state-aware model must not change dynamic energy")
	}
	if aware.Static <= 0 {
		t.Fatal("state-aware static must be positive")
	}
	// Same order of magnitude as the flat Eq. A1 model (the LeakStack
	// constant was calibrated to stand in for this structure).
	r := aware.Static / flat.Static
	if r < 0.1 || r > 3 {
		t.Errorf("state-aware/flat static ratio %v outside [0.1, 3]", r)
	}
	t.Logf("flat static %.3e J vs state-aware %.3e J (ratio %.2f)", flat.Static, aware.Static, r)
}

func TestStateAwareInputsZero(t *testing.T) {
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	for _, id := range c.PIs {
		if got := ev.StateAwareStatic(id, a); got != 0 {
			t.Errorf("input %d leaks %v", id, got)
		}
	}
}
