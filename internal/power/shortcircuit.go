package power

import (
	"math"

	"cmosopt/internal/design"
)

// Short-circuit dissipation. The paper neglects it ("under typical input
// signal rise time and output load conditions it is an order-of-magnitude
// smaller than the switching energy [12]") but notes it is "being
// incorporated in the next version of the optimization tool" — this file is
// that next-version component, following Veendrick's classic model
// (JSSC 1984, the paper's reference [12]): for a symmetric gate with input
// rise time τ and both devices conducting while V_t < V_in < V_dd − V_t,
//
//	E_sc ≈ (K/12) · (V_dd − 2·V_ts)^α+1/V_dd · w · τ        per transition
//
// (the α-power-law generalization of Veendrick's (β/12)(Vdd−2Vt)³·τ/Vdd
// form; it vanishes when V_dd ≤ 2·V_ts, which is precisely the regime the
// joint optimizer lands in — making the model's own neglect of E_sc
// self-consistent at the optimum).

// ShortCircuitGate returns the per-cycle short-circuit energy of one gate.
// The input rise time is approximated, as in Veendrick's analysis, by twice
// the largest driver gate delay; driverDelay passes that in.
//
//cmosvet:unit driverDelay s
//cmosvet:unit return J
func (e *Evaluator) ShortCircuitGate(id int, a *design.Assignment, driverDelay float64) float64 {
	g := e.C.Gate(id)
	if !g.IsLogic() {
		return 0
	}
	vdd := a.Vdd
	vts := a.Vts[id]
	overlap := vdd - 2*vts
	if overlap <= 0 || driverDelay <= 0 {
		return 0 // devices never conduct simultaneously
	}
	tau := 2 * driverDelay
	// Peak current of the contention path at V_in = V_dd/2 scaled by the
	// conduction-window shape factor 1/12 of the triangular approximation.
	iPeak := a.W[id] * e.Tech.KSat * math.Pow(overlap/2, e.Tech.Alpha)
	return e.Act.Density[id] * iPeak * overlap * tau / 12
}

// TotalWithShortCircuit returns the network energy including the
// short-circuit component, given per-gate delays (used as driver rise
// times). The breakdown's Dynamic field includes E_sc.
//
//cmosvet:unit gateDelays s
//cmosvet:unit return2 J
func (e *Evaluator) TotalWithShortCircuit(a *design.Assignment, gateDelays []float64) (Breakdown, float64) {
	var sum Breakdown
	sc := 0.0
	for i := range e.C.Gates {
		g := e.C.Gate(i)
		sum.Add(e.GateEnergy(i, a))
		if !g.IsLogic() {
			continue
		}
		maxIn := 0.0
		for _, f := range g.Fanin {
			if gateDelays[f] > maxIn {
				maxIn = gateDelays[f]
			}
		}
		sc += e.ShortCircuitGate(i, a, maxIn)
	}
	sum.Dynamic += sc
	return sum, sc
}
