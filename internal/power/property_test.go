package power

import (
	"math"
	"testing"
	"testing/quick"

	"cmosopt/internal/design"
)

// mapIn maps an arbitrary float into [lo, hi].
func mapIn(raw, lo, hi float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		raw = 0.5
	}
	frac := math.Mod(math.Abs(raw), 1)
	return lo + frac*(hi-lo)
}

func TestEnergyNonNegativeProperty(t *testing.T) {
	c, ev, tech := fixture(t)
	f := func(vddR, vtsR, wR float64) bool {
		a := design.Uniform(c.N(),
			mapIn(vddR, tech.VddMin, tech.VddMax),
			mapIn(vtsR, tech.VtsMin, tech.VtsMax),
			mapIn(wR, tech.WMin, tech.WMax))
		for i := range c.Gates {
			b := ev.GateEnergy(i, a)
			if b.Static < 0 || b.Dynamic < 0 || math.IsNaN(b.Total()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStaticMonotoneInWidthProperty(t *testing.T) {
	c, ev, tech := fixture(t)
	f := func(vddR, vtsR, w1R, w2R float64) bool {
		vdd := mapIn(vddR, tech.VddMin, tech.VddMax)
		vts := mapIn(vtsR, tech.VtsMin, tech.VtsMax)
		w1 := mapIn(w1R, tech.WMin, tech.WMax)
		w2 := mapIn(w2R, tech.WMin, tech.WMax)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		a1 := design.Uniform(c.N(), vdd, vts, w1)
		a2 := design.Uniform(c.N(), vdd, vts, w2)
		return ev.Total(a1).Static <= ev.Total(a2).Static*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDynamicMonotoneInVddProperty(t *testing.T) {
	c, ev, tech := fixture(t)
	f := func(v1R, v2R, vtsR, wR float64) bool {
		v1 := mapIn(v1R, tech.VddMin, tech.VddMax)
		v2 := mapIn(v2R, tech.VddMin, tech.VddMax)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		vts := mapIn(vtsR, tech.VtsMin, tech.VtsMax)
		w := mapIn(wR, tech.WMin, tech.WMax)
		a1 := design.Uniform(c.N(), v1, vts, w)
		a2 := design.Uniform(c.N(), v2, vts, w)
		return ev.Total(a1).Dynamic <= ev.Total(a2).Dynamic*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStaticMonotoneDecreasingInVtsProperty(t *testing.T) {
	c, ev, tech := fixture(t)
	f := func(vddR, t1R, t2R, wR float64) bool {
		vdd := mapIn(vddR, tech.VddMin, tech.VddMax)
		t1 := mapIn(t1R, tech.VtsMin, tech.VtsMax)
		t2 := mapIn(t2R, tech.VtsMin, tech.VtsMax)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		w := mapIn(wR, tech.WMin, tech.WMax)
		a1 := design.Uniform(c.N(), vdd, t1, w)
		a2 := design.Uniform(c.N(), vdd, t2, w)
		return ev.Total(a1).Static >= ev.Total(a2).Static*(1-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
