package power

import (
	"testing"

	"cmosopt/internal/design"
)

func TestShortCircuitZeroBelowTwoVt(t *testing.T) {
	// The joint optimizer's regime: Vdd ≤ 2·Vt → no simultaneous conduction.
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 0.25, 0.15, 2)
	g := c.GateByName("g")
	if sc := ev.ShortCircuitGate(g.ID, a, 1e-10); sc != 0 {
		t.Errorf("E_sc = %v below the conduction threshold, want 0", sc)
	}
}

func TestShortCircuitZeroForInstantEdge(t *testing.T) {
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 3.3, 0.7, 2)
	g := c.GateByName("g")
	if sc := ev.ShortCircuitGate(g.ID, a, 0); sc != 0 {
		t.Errorf("E_sc = %v with zero rise time, want 0", sc)
	}
}

func TestShortCircuitGrowsWithRiseTimeAndOverlap(t *testing.T) {
	c, ev, _ := fixture(t)
	g := c.GateByName("g")
	a := design.Uniform(c.N(), 3.3, 0.7, 2)
	slow := ev.ShortCircuitGate(g.ID, a, 2e-10)
	fast := ev.ShortCircuitGate(g.ID, a, 1e-10)
	if slow <= fast {
		t.Error("E_sc should grow with input rise time")
	}
	aHi := design.Uniform(c.N(), 3.3, 0.3, 2)
	if ev.ShortCircuitGate(g.ID, aHi, 1e-10) <= fast {
		t.Error("E_sc should grow with conduction overlap (lower Vt)")
	}
}

func TestShortCircuitOrderOfMagnitudeBelowSwitching(t *testing.T) {
	// The paper's justification for neglecting E_sc: under typical rise
	// times it is an order of magnitude below the switching energy. Verify
	// at the Table 1 operating point with rise times equal to gate delays.
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 3.3, 0.7, 2)
	delays := make([]float64, c.N())
	for i := range delays {
		delays[i] = 1e-10 // ~typical gate delay at this point
	}
	total, sc := ev.TotalWithShortCircuit(a, delays)
	if sc <= 0 {
		t.Fatal("expected nonzero short-circuit energy at Vdd=3.3, Vt=0.7")
	}
	if sc > total.Dynamic/5 {
		t.Errorf("E_sc = %v is not small next to dynamic %v", sc, total.Dynamic)
	}
	// And the breakdown includes it.
	plain := ev.Total(a)
	if total.Dynamic <= plain.Dynamic {
		t.Error("TotalWithShortCircuit did not add E_sc to the dynamic component")
	}
	if total.Static != plain.Static {
		t.Error("short-circuit accounting must not touch static energy")
	}
}

func TestShortCircuitInputsContributeNothing(t *testing.T) {
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 3.3, 0.7, 2)
	for _, id := range c.PIs {
		if sc := ev.ShortCircuitGate(id, a, 1e-10); sc != 0 {
			t.Errorf("input %d short-circuit energy %v", id, sc)
		}
	}
}
