package power

import (
	"math"

	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
)

// State-dependent leakage. The paper's Eq. A1 charges every gate a single
// I_off·w regardless of its logic state; in reality which network leaks —
// and through how many series devices — depends on the output value:
//
//   - output high (probability P(i)): the pull-down NMOS network is off; a
//     series stack of f_ii devices leaks exponentially less than one device
//     (the stack effect), modeled as a 1/s^(f_ii−1) suppression;
//   - output low: the pull-up PMOS network is off; for a NAND it is f_ii
//     parallel devices of β-scaled width (more leakage), for a NOR a series
//     stack (less).
//
// The refinement uses the activity profile's signal probabilities, tying the
// two halves of the paper's §2 "Given" (activity profile, device technology)
// together in the static term as well.

// stackSuppress is the per-series-device leakage suppression factor of the
// stack effect (≈2–10 in practice; 3 is a conservative bulk value).
const stackSuppress = 3.0 //cmosvet:unit 1

// StateAwareStatic returns the per-cycle static energy of one gate with
// state- and topology-dependent leakage. Gate types reduce to their
// NAND-like (series pull-down) or NOR-like (series pull-up) structure;
// XOR/XNOR count as two-high stacks on both sides.
//
//cmosvet:unit return J
func (e *Evaluator) StateAwareStatic(id int, a *design.Assignment) float64 {
	g := e.C.Gate(id)
	if !g.IsLogic() {
		return 0
	}
	w := a.W[id]
	vdd := a.VddAt(id)
	// Base per-width off current of a single device (no LeakStack fudge —
	// the structure below replaces it).
	unit := e.Tech.IdUnit(0, a.Vts[id]) + e.Tech.IJunc
	fii := g.NumFanin()
	p := e.Act.Prob[id]

	var nmosOff, pmosOff float64 // leakage when output high / low
	switch g.Type {
	case circuit.Nand, circuit.And:
		// Series NMOS (suppressed), parallel PMOS (β-wide, f_ii of them).
		nmosOff = unit / math.Pow(stackSuppress, float64(fii-1))
		pmosOff = float64(fii) * e.Tech.Beta * unit
	case circuit.Nor, circuit.Or:
		// Parallel NMOS, series PMOS.
		nmosOff = float64(fii) * unit
		pmosOff = e.Tech.Beta * unit / math.Pow(stackSuppress, float64(fii-1))
	case circuit.Not, circuit.Buf:
		nmosOff = unit
		pmosOff = e.Tech.Beta * unit
	default: // Xor, Xnor: two-high stacks both sides, 2·(f_ii−1) branches
		br := float64(2 * max(fii-1, 1))
		nmosOff = br * unit / stackSuppress
		pmosOff = br * e.Tech.Beta * unit / stackSuppress
	}
	// Output high → pull-down leaks; output low → pull-up leaks.
	ioff := p*nmosOff + (1-p)*pmosOff
	return vdd * w * ioff / e.Fc
}

// TotalStateAware returns the network energy with the state-dependent static
// model in place of Eq. A1 (dynamic energy unchanged).
func (e *Evaluator) TotalStateAware(a *design.Assignment) Breakdown {
	var sum Breakdown
	for i := range e.C.Gates {
		b := e.GateEnergy(i, a)
		b.Static = e.StateAwareStatic(i, a)
		sum.Add(b)
	}
	return sum
}
