package power

import (
	"math"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

const fc = 300e6 //cmosvet:unit Hz

// testVdd names the supply literal of the formula tests so the energy
// expressions below carry the volts the bare literal would drop.
const testVdd = 1.2 //cmosvet:unit V

// fixture: in1,in2 -> NAND g -> NOT h (PO).
func fixture(t *testing.T) (*circuit.Circuit, *Evaluator, device.Tech) {
	t.Helper()
	b := circuit.NewBuilder("fx")
	i1, i2 := b.Input("a"), b.Input("b")
	g := b.Gate(circuit.Nand, "g", i1, i2)
	h := b.Gate(circuit.Not, "h", g)
	b.Output(h)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tech := device.Default350()
	act, err := activity.PropagateUniform(c, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := wiring.New(wiring.Default350(), c.NumLogic())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(c, &tech, act, wire, fc)
	if err != nil {
		t.Fatal(err)
	}
	return c, ev, tech
}

func TestNewRejectsBadInputs(t *testing.T) {
	c, ev, tech := fixture(t)
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if _, err := New(seq, &tech, ev.Act, ev.Wire, fc); err == nil {
		t.Error("sequential circuit accepted")
	}
	if _, err := New(c, &tech, ev.Act, ev.Wire, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	short := &activity.Profile{Prob: []float64{0.5}, Density: []float64{0.1}}
	if _, err := New(c, &tech, short, ev.Wire, fc); err == nil {
		t.Error("mismatched activity profile accepted")
	}
	bad := tech
	bad.Alpha = 0
	if _, err := New(c, &bad, ev.Act, ev.Wire, fc); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestInputGatesConsumeNothing(t *testing.T) {
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 1.0, 0.3, 2)
	for _, id := range c.PIs {
		if b := ev.GateEnergy(id, a); b.Total() != 0 {
			t.Errorf("input %d energy %+v", id, b)
		}
	}
}

func TestStaticEnergyFormula(t *testing.T) {
	c, ev, tech := fixture(t)
	a := design.Uniform(c.N(), 1.2, 0.25, 3)
	g := c.GateByName("g")
	got := ev.GateEnergy(g.ID, a).Static
	want := testVdd * 3 * tech.IoffUnit(0.25) / fc
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("static = %v, want %v", got, want)
	}
}

func TestDynamicEnergyFormula(t *testing.T) {
	c, ev, tech := fixture(t)
	a := design.Uniform(c.N(), 1.2, 0.25, 3)
	g := c.GateByName("g") // NAND, 2 fanins, drives h only
	h := c.GateByName("h")
	cb := ev.Wire.BranchCap()
	internal := 3 * (tech.CPD + 1*tech.Cmi) // fii−1 = 1
	load := a.W[h.ID]*tech.Ct + cb
	want := 0.5 * ev.Act.Density[g.ID] * testVdd * testVdd * (internal + load)
	got := ev.GateEnergy(g.ID, a).Dynamic
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

func TestPOGetsExternalLoad(t *testing.T) {
	c, ev, tech := fixture(t)
	a := design.Uniform(c.N(), 1.2, 0.25, 2)
	h := c.GateByName("h") // PO, no internal fanout
	cb := ev.Wire.BranchCap()
	if got, want := ev.OutputLoad(h.ID, a), tech.COut+cb; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("PO load = %v, want %v", got, want)
	}
	if !ev.IsPO(h.ID) {
		t.Error("h should be a PO")
	}
	g := c.GateByName("g")
	if ev.IsPO(g.ID) {
		t.Error("g should not be a PO")
	}
}

func TestTotalSumsGates(t *testing.T) {
	c, ev, _ := fixture(t)
	a := design.Uniform(c.N(), 1.0, 0.2, 2)
	var want Breakdown
	for i := range c.Gates {
		want.Add(ev.GateEnergy(i, a))
	}
	got := ev.Total(a)
	if got != want {
		t.Errorf("Total = %+v, want %+v", got, want)
	}
	if got.Total() != got.Static+got.Dynamic {
		t.Error("Breakdown.Total broken")
	}
}

func TestStaticMonotoneInVts(t *testing.T) {
	c, ev, _ := fixture(t)
	lo := design.Uniform(c.N(), 1.0, 0.15, 2)
	hi := design.Uniform(c.N(), 1.0, 0.45, 2)
	if ev.Total(lo).Static <= ev.Total(hi).Static {
		t.Error("lower threshold must leak more")
	}
}

func TestDynamicQuadraticInVdd(t *testing.T) {
	c, ev, _ := fixture(t)
	a1 := design.Uniform(c.N(), 1.0, 0.3, 2)
	a2 := design.Uniform(c.N(), 2.0, 0.3, 2)
	r := ev.Total(a2).Dynamic / ev.Total(a1).Dynamic
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("Vdd doubling scaled dynamic by %v, want 4", r)
	}
}

func TestDynamicProportionalToActivity(t *testing.T) {
	c, _, tech := fixture(t)
	wire, _ := wiring.New(wiring.Default350(), c.NumLogic())
	mk := func(d float64) Breakdown {
		act, err := activity.PropagateUniform(c, 0.5, d)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := New(c, &tech, act, wire, fc)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Total(design.Uniform(c.N(), 1.0, 0.3, 2))
	}
	lo, hi := mk(0.1), mk(0.4)
	if r := hi.Dynamic / lo.Dynamic; math.Abs(r-4) > 1e-9 {
		t.Errorf("activity x4 scaled dynamic by %v", r)
	}
	if lo.Static != hi.Static {
		t.Error("static energy must not depend on activity")
	}
}

func TestStaticScalesWithWidth(t *testing.T) {
	c, ev, _ := fixture(t)
	a1 := design.Uniform(c.N(), 1.0, 0.3, 2)
	a2 := design.Uniform(c.N(), 1.0, 0.3, 6)
	if r := ev.Total(a2).Static / ev.Total(a1).Static; math.Abs(r-3) > 1e-9 {
		t.Errorf("width x3 scaled static by %v", r)
	}
}

func TestPowerConversion(t *testing.T) {
	c, ev, _ := fixture(t)
	b := ev.Total(design.Uniform(c.N(), 1.0, 0.3, 2))
	if got, want := ev.Power(b), b.Total()*fc; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Power = %v, want %v", got, want)
	}
}

func TestRealisticMagnitudes(t *testing.T) {
	// A ~119-gate module at 3.3 V / 0.7 V, a = 0.5: total energy per cycle
	// should be picojoules, static orders of magnitude below dynamic.
	c, err := netgen.Profile("s298")
	if err != nil {
		t.Fatal(err)
	}
	tech := device.Default350()
	act, err := activity.PropagateUniform(c, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := wiring.New(wiring.Default350(), c.NumLogic())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(c, &tech, act, wire, fc)
	if err != nil {
		t.Fatal(err)
	}
	b := ev.Total(design.Uniform(c.N(), 3.3, 0.7, 2))
	if b.Dynamic < 1e-13 || b.Dynamic > 1e-9 {
		t.Errorf("dynamic %v J/cycle implausible", b.Dynamic)
	}
	if b.Static > b.Dynamic/100 {
		t.Errorf("static %v should be far below dynamic %v at Vt=0.7", b.Static, b.Dynamic)
	}
}
