// Package power implements the paper's Appendix A.1 energy model: per-gate
// static (leakage) and dynamic (switching) energy per clock cycle.
//
//	E_si = V_dd · w_i · I_off(V_TSi) / f_c                             (A1)
//	E_di = ½ · a_i · V_dd² · [ w_i(C_PD + (f_ii−1)·C_mi)
//	        + Σ_{j∈fanout} (w_ij·C_t + C_INT_ij) ]                     (A2)
//
// The short-circuit component is neglected, as in the paper (an order of
// magnitude below switching under typical slopes, ref [12]).
package power

import (
	"fmt"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/wiring"
)

// Breakdown splits an energy into its static and dynamic components (J).
type Breakdown struct {
	Static  float64 //cmosvet:unit J
	Dynamic float64 //cmosvet:unit J
}

// Total returns static + dynamic energy.
//
//cmosvet:unit return J
func (b Breakdown) Total() float64 { return b.Static + b.Dynamic }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Static += o.Static
	b.Dynamic += o.Dynamic
}

// Evaluator computes the energy of design points for one circuit under a
// fixed activity profile, wiring model and clock frequency.
type Evaluator struct {
	C    *circuit.Circuit
	Tech *device.Tech
	Act  *activity.Profile
	Wire *wiring.Model
	Fc   float64 // clock frequency //cmosvet:unit Hz

	isPO []bool
}

// New builds a power evaluator. The circuit must be combinational.
//
//cmosvet:unit fc Hz
func New(c *circuit.Circuit, tech *device.Tech, act *activity.Profile, wire *wiring.Model, fc float64) (*Evaluator, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("power: circuit %q is sequential; cut DFFs first", c.Name)
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if fc <= 0 {
		return nil, fmt.Errorf("power: clock frequency %v must be positive", fc)
	}
	if len(act.Prob) != c.N() || len(act.Density) != c.N() {
		return nil, fmt.Errorf("power: activity profile sized %d, circuit has %d gates", len(act.Density), c.N())
	}
	isPO := make([]bool, c.N())
	for _, id := range c.POs {
		isPO[id] = true
	}
	return &Evaluator{C: c, Tech: tech, Act: act, Wire: wire, Fc: fc, isPO: isPO}, nil
}

// GateEnergy returns the per-cycle energy breakdown of one logic gate under
// the assignment. Input gates consume nothing.
func (e *Evaluator) GateEnergy(id int, a *design.Assignment) Breakdown {
	if !e.C.Gate(id).IsLogic() {
		return Breakdown{}
	}
	return e.GateEnergyCoeff(id, a, e.Tech.IoffUnit(a.Vts[id]))
}

// GateEnergyCoeff is GateEnergy with the gate's leakage coefficient
// I_off(V_TS) supplied by the caller — the entry point for evaluation engines
// that cache the per-(V_dd, V_TS) device coefficients (see internal/eval).
//
//cmosvet:unit ioff A
func (e *Evaluator) GateEnergyCoeff(id int, a *design.Assignment, ioff float64) Breakdown {
	g := e.C.Gate(id)
	if !g.IsLogic() {
		return Breakdown{}
	}
	w := a.W[id]
	vdd := a.VddAt(id) // per-gate supply in multi-Vdd designs

	static := vdd * w * ioff / e.Fc

	// The output swings to the gate's own rail, so the charge comes from it.
	load := e.OutputLoad(id, a)
	fii := g.NumFanin()
	internal := w * (e.Tech.CPD + float64(fii-1)*e.Tech.Cmi)
	dynamic := 0.5 * e.Act.Density[id] * vdd * vdd * (internal + load)

	return Breakdown{Static: static, Dynamic: dynamic}
}

// OutputLoad returns the capacitance external to the gate at its output node:
// fanout gate inputs, interconnect, and the module load on primary outputs.
//
//cmosvet:unit return F
func (e *Evaluator) OutputLoad(id int, a *design.Assignment) float64 {
	g := e.C.Gate(id)
	cb := e.Wire.BranchCapNet(id) // the net this gate drives
	load := 0.0
	for _, f := range g.Fanout {
		load += a.W[f]*e.Tech.Ct + cb
	}
	if e.isPO[id] {
		load += e.Tech.COut + cb
	}
	return load
}

// IsPO reports whether the gate drives a primary output of the module.
func (e *Evaluator) IsPO(id int) bool { return e.isPO[id] }

// Total returns the whole-network per-cycle energy breakdown (the paper's
// cost function Σ E_si + E_di).
func (e *Evaluator) Total(a *design.Assignment) Breakdown {
	var sum Breakdown
	for i := range e.C.Gates {
		sum.Add(e.GateEnergy(i, a))
	}
	return sum
}

// Power converts a per-cycle energy into average power at the evaluator's
// clock frequency: J·Hz composes to W.
//
//cmosvet:unit return W
func (e *Evaluator) Power(b Breakdown) float64 { return b.Total() * e.Fc }
