package timing_test

import (
	"fmt"

	"cmosopt/internal/circuit"
	"cmosopt/internal/timing"
)

func ExampleAssignBudgets() {
	// in → g1 (fans out to g2 and g3, both primary outputs): Procedure 1
	// splits the 3 ns cycle budget along the critical path in proportion to
	// effective fanouts (g1 drives 2 gates + intrinsic = 3; g2 drives the
	// module load + intrinsic = 2).
	b := circuit.NewBuilder("fan")
	in := b.Input("in")
	g1 := b.Gate(circuit.Not, "g1", in)
	g2 := b.Gate(circuit.Not, "g2", g1)
	g3 := b.Gate(circuit.Not, "g3", g1)
	b.Output(g2)
	b.Output(g3)
	c, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	a, err := timing.NewAnalysis(c)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := timing.AssignBudgets(a, 3e-9)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("g1: %.2f ns, g2: %.2f ns\n", res.TMax[g1]*1e9, res.TMax[g2]*1e9)
	// Output: g1: 1.80 ns, g2: 1.20 ns
}

func ExampleAnalysis_MostCriticalPath() {
	b := circuit.NewBuilder("chain")
	in := b.Input("in")
	g1 := b.Gate(circuit.Not, "g1", in)
	g2 := b.Gate(circuit.Nand, "g2", g1, in)
	b.Output(g2)
	c, _ := b.Build()
	a, _ := timing.NewAnalysis(c)
	path := a.MostCriticalPath()
	for i, id := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(c.Gate(id).Name)
	}
	fmt.Printf("  (criticality %d)\n", a.PathCriticality(path))
	// Output: g1 -> g2  (criticality 4)
}
