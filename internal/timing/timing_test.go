package timing

import (
	"math"
	"testing"

	"cmosopt/internal/circuit"
	"cmosopt/internal/netgen"
)

// ladder builds a small circuit with known paths:
//
//	a -> g1(NOT) -> g3(NAND) -> g4(NOT, PO)
//	b -> g2(NOT) --^
//
// g1,g2 fanout 1; g3 fanout 1; g4 fanout 0 (effective 1).
func ladder(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("ladder")
	a := b.Input("a")
	bb := b.Input("b")
	g1 := b.Gate(circuit.Not, "g1", a)
	g2 := b.Gate(circuit.Not, "g2", bb)
	g3 := b.Gate(circuit.Nand, "g3", g1, g2)
	g4 := b.Gate(circuit.Not, "g4", g3)
	b.Output(g4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func analysis(t *testing.T, c *circuit.Circuit) *Analysis {
	t.Helper()
	a, err := NewAnalysis(c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnalysisRejectsSequential(t *testing.T) {
	seq, _ := circuit.ParseBenchString("seq", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if _, err := NewAnalysis(seq); err == nil {
		t.Error("sequential circuit accepted")
	}
}

func TestEffectiveFanout(t *testing.T) {
	// FoEff = max(1, fanout) + 1 for the gate's intrinsic share.
	c := ladder(t)
	a := analysis(t, c)
	g4 := c.GateByName("g4")
	if a.FoEff[g4.ID] != 2 {
		t.Errorf("PO effective fanout = %d, want 2 (module load + intrinsic)", a.FoEff[g4.ID])
	}
	g1 := c.GateByName("g1")
	if a.FoEff[g1.ID] != 2 {
		t.Errorf("g1 effective fanout = %d, want 2", a.FoEff[g1.ID])
	}
	for _, id := range c.PIs {
		if a.FoEff[id] != 0 {
			t.Errorf("input fanout should be 0, got %d", a.FoEff[id])
		}
	}
}

func TestUpDownLadder(t *testing.T) {
	// All four gates have FoEff = 2; the critical path g1→g3→g4 sums to 6.
	c := ladder(t)
	a := analysis(t, c)
	g1 := c.GateByName("g1").ID
	g3 := c.GateByName("g3").ID
	g4 := c.GateByName("g4").ID
	if a.Up[g1] != 2 || a.Up[g3] != 4 || a.Up[g4] != 6 {
		t.Errorf("Up = %d %d %d, want 2 4 6", a.Up[g1], a.Up[g3], a.Up[g4])
	}
	if a.Down[g4] != 2 || a.Down[g3] != 4 || a.Down[g1] != 6 {
		t.Errorf("Down = %d %d %d, want 2 4 6", a.Down[g4], a.Down[g3], a.Down[g1])
	}
	if th := a.Through(g3); th != 6 {
		t.Errorf("Through(g3) = %d, want 6", th)
	}
	if mc := a.MaxCriticality(); mc != 6 {
		t.Errorf("MaxCriticality = %d, want 6", mc)
	}
}

func TestMostCriticalPath(t *testing.T) {
	c := ladder(t)
	a := analysis(t, c)
	p := a.MostCriticalPath()
	if len(p) != 3 {
		t.Fatalf("path %v, want 3 gates", p)
	}
	if a.PathCriticality(p) != a.MaxCriticality() {
		t.Errorf("path criticality %d != max %d", a.PathCriticality(p), a.MaxCriticality())
	}
	// Path must follow edges.
	for i := 1; i < len(p); i++ {
		ok := false
		for _, f := range c.Gates[p[i]].Fanin {
			if f == p[i-1] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("non-edge step %d->%d", p[i-1], p[i])
		}
	}
}

func TestKBestPathsLadder(t *testing.T) {
	c := ladder(t)
	a := analysis(t, c)
	paths := a.KBestPaths(10)
	// Exactly two input-to-output paths exist.
	if len(paths) != 2 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	for _, p := range paths {
		if a.PathCriticality(p) != 6 {
			t.Errorf("path %v criticality %d, want 6", p, a.PathCriticality(p))
		}
	}
}

func TestKBestPathsOrderedAndValid(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "kb", Gates: 50, Depth: 6, PIs: 4, POs: 3}, 17)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	paths := a.KBestPaths(40)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	prev := math.MaxInt
	for _, p := range paths {
		crit := a.PathCriticality(p)
		if crit > prev {
			t.Fatalf("paths out of order: %d after %d", crit, prev)
		}
		prev = crit
		// Structural validity: edges, starts input-fed, ends at PO/sink.
		for i := 1; i < len(p); i++ {
			ok := false
			for _, f := range c.Gates[p[i]].Fanin {
				if f == p[i-1] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("path %v has non-edge step", p)
			}
		}
		first := c.Gate(p[0])
		fed := false
		for _, f := range first.Fanin {
			if !c.Gate(f).IsLogic() {
				fed = true
			}
		}
		if !fed {
			t.Fatalf("path %v does not start at an input-fed gate", p)
		}
	}
	if paths[0] != nil && a.PathCriticality(paths[0]) != a.MaxCriticality() {
		t.Errorf("first path criticality %d != max %d", a.PathCriticality(paths[0]), a.MaxCriticality())
	}
}

func TestKBestPathsDistinct(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "kd", Gates: 30, Depth: 5, PIs: 3, POs: 2}, 23)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	paths := a.KBestPaths(25)
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		for _, id := range p {
			key += string(rune(id)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[key] = true
	}
}

func TestKBestPathsZeroK(t *testing.T) {
	a := analysis(t, ladder(t))
	if p := a.KBestPaths(0); p != nil {
		t.Errorf("k=0 should return nil, got %v", p)
	}
}

func TestAssignBudgetsLadder(t *testing.T) {
	c := ladder(t)
	a := analysis(t, c)
	const T = 3e-9
	res, err := AssignBudgets(a, T)
	if err != nil {
		t.Fatal(err)
	}
	// All gates have effective fanout 2 and the critical path has 3 gates,
	// so every gate on it gets T/3; g2 (second path) gets the leftover T/3.
	for _, name := range []string{"g1", "g2", "g3", "g4"} {
		id := c.GateByName(name).ID
		if math.Abs(res.TMax[id]-T/3)/T > 1e-12 {
			t.Errorf("%s budget = %v, want %v", name, res.TMax[id], T/3)
		}
	}
	if res.Floored != 0 {
		t.Errorf("unexpected floored budgets: %d", res.Floored)
	}
}

func TestAssignBudgetsProportionalToFanout(t *testing.T) {
	// in -> g1 (fanout 2: g2, g3); g2,g3 are POs.
	b := circuit.NewBuilder("fan")
	in := b.Input("in")
	g1 := b.Gate(circuit.Not, "g1", in)
	g2 := b.Gate(circuit.Not, "g2", g1)
	g3 := b.Gate(circuit.Not, "g3", g1)
	b.Output(g2)
	b.Output(g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	res, err := AssignBudgets(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path g1->g2 (or g3): effective fanouts 3 and 2 → budgets
	// split 3:2 over T = 5.
	if math.Abs(res.TMax[g1]-3) > 1e-12 {
		t.Errorf("g1 budget = %v, want 3", res.TMax[g1])
	}
	if math.Abs(res.TMax[g2]-2) > 1e-12 || math.Abs(res.TMax[g3]-2) > 1e-12 {
		t.Errorf("g2/g3 budgets = %v/%v, want 2", res.TMax[g2], res.TMax[g3])
	}
}

func TestAssignBudgetsInvariantRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c, err := netgen.Generate(netgen.Config{Name: "inv", Gates: 120, Depth: 10, PIs: 6, POs: 5}, seed)
		if err != nil {
			t.Fatal(err)
		}
		a := analysis(t, c)
		const T = 3.33e-9
		res, err := AssignBudgets(a, T)
		if err != nil {
			t.Fatal(err)
		}
		worst, ok := CheckBudgets(a, res.TMax, T, 1e-9)
		if !ok {
			t.Errorf("seed %d: worst path budget %v exceeds T %v", seed, worst, T)
		}
		// Every logic gate received a positive finite budget.
		for i := range c.Gates {
			if !c.Gates[i].IsLogic() {
				continue
			}
			if !(res.TMax[i] > 0) || math.IsInf(res.TMax[i], 1) {
				t.Fatalf("seed %d: gate %d budget %v", seed, i, res.TMax[i])
			}
		}
	}
}

func TestAssignBudgetsMatchesEnumerationOrder(t *testing.T) {
	// The DP path selection must process paths in the same criticality order
	// as the explicit K-best enumeration (ties aside): the first path's
	// criticality equals the enumerator's first.
	c, err := netgen.Generate(netgen.Config{Name: "eq", Gates: 40, Depth: 6, PIs: 4, POs: 3}, 31)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	paths := a.KBestPaths(1)
	if len(paths) != 1 {
		t.Fatal("enumerator returned no path")
	}
	if got, want := a.PathCriticality(a.MostCriticalPath()), a.PathCriticality(paths[0]); got != want {
		t.Errorf("DP path criticality %d != enumerator %d", got, want)
	}
}

func TestAssignBudgetsEnumeratedAgrees(t *testing.T) {
	// The production (direct-selection) Procedure 1 and the paper-literal
	// enumerated form must agree wherever path criticalities are untied; on
	// ties they may distribute differently, so the test checks (a) the
	// ladder, where symmetry forces identical budgets, and (b) the shared
	// invariants on random circuits.
	c := ladder(t)
	a := analysis(t, c)
	const T = 3e-9
	direct, err := AssignBudgets(a, T)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := AssignBudgetsEnumerated(a, T, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if !c.Gates[i].IsLogic() {
			continue
		}
		if math.Abs(direct.TMax[i]-enum.TMax[i]) > T*1e-12 {
			t.Errorf("gate %d budgets differ: %v vs %v", i, direct.TMax[i], enum.TMax[i])
		}
	}

	for seed := int64(1); seed <= 4; seed++ {
		rc, err := netgen.Generate(netgen.Config{Name: "eq", Gates: 60, Depth: 7, PIs: 5, POs: 4}, seed)
		if err != nil {
			t.Fatal(err)
		}
		ra := analysis(t, rc)
		de, err := AssignBudgetsEnumerated(ra, T, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if worst, ok := CheckBudgets(ra, de.TMax, T, 1e-9); !ok {
			t.Errorf("seed %d: enumerated budgets break the invariant (worst %v)", seed, worst)
		}
		for i := range rc.Gates {
			if rc.Gates[i].IsLogic() && !(de.TMax[i] > 0) {
				t.Fatalf("seed %d: gate %d budget %v", seed, i, de.TMax[i])
			}
		}
	}
}

func TestAssignBudgetsEnumeratedValidation(t *testing.T) {
	a := analysis(t, ladder(t))
	if _, err := AssignBudgetsEnumerated(a, 0, 10); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := AssignBudgetsEnumerated(a, 1, 0); err == nil {
		t.Error("maxPaths=0 accepted")
	}
	// A tiny horizon still covers every gate through the fallback.
	res, err := AssignBudgetsEnumerated(a, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.C.Gates {
		if a.C.Gates[i].IsLogic() && math.IsInf(res.TMax[i], 1) {
			t.Fatalf("gate %d left unassigned", i)
		}
	}
}

func TestAssignBudgetsRejectsBadT(t *testing.T) {
	a := analysis(t, ladder(t))
	if _, err := AssignBudgets(a, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := AssignBudgets(a, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
}

func TestRepairBudgets(t *testing.T) {
	c := ladder(t)
	a := analysis(t, c)
	res, err := AssignBudgets(a, 3e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate a driver's budget artificially; repair must cap it.
	g3 := c.GateByName("g3").ID
	g4 := c.GateByName("g4").ID
	res.TMax[g3] = 100 * res.TMax[g4]
	n, err := RepairBudgets(a, res, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no budgets repaired")
	}
	if res.TMax[g3] > 0.5*res.TMax[g4]/0.2+1e-18 {
		t.Errorf("g3 budget %v not capped vs g4 %v", res.TMax[g3], res.TMax[g4])
	}
	if res.Repaired != n {
		t.Errorf("Repaired counter %d != %d", res.Repaired, n)
	}
}

func TestRepairBudgetsParamValidation(t *testing.T) {
	a := analysis(t, ladder(t))
	res, _ := AssignBudgets(a, 1)
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.2, 0}, {0.2, 1}} {
		if _, err := RepairBudgets(a, res, bad[0], bad[1]); err == nil {
			t.Errorf("kappa=%v gamma=%v accepted", bad[0], bad[1])
		}
	}
}

func TestRepairPreservesInvariant(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "rp", Gates: 100, Depth: 8, PIs: 5, POs: 4}, 12)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	const T = 3.33e-9
	res, err := AssignBudgets(a, T)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RepairBudgets(a, res, 0.16, 0.6); err != nil {
		t.Fatal(err)
	}
	if worst, ok := CheckBudgets(a, res.TMax, T, 1e-9); !ok {
		t.Errorf("repair broke the invariant: worst %v > %v", worst, T)
	}
}
