package timing

import (
	"fmt"
	"sort"
	"testing"

	"cmosopt/internal/netgen"
)

// allPathsExhaustive is the reference enumerator for the streaming top-K
// sweep: a plain DFS that materializes every complete input-to-output path
// (a start is an input-fed logic gate, an end is a PO or fanout-free logic
// gate) with its criticality. Exponential — test-only, on small circuits.
func allPathsExhaustive(a *Analysis) [][]int {
	c := a.C
	var out [][]int
	var path []int
	var walk func(id int)
	walk = func(id int) {
		path = append(path, id)
		g := c.Gate(id)
		end := len(g.Fanout) == 0 || a.isPO[id]
		if end {
			out = append(out, append([]int(nil), path...))
		}
		for _, f := range g.Fanout {
			if c.Gate(f).IsLogic() {
				walk(f)
			}
		}
		path = path[:len(path)-1]
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if !g.IsLogic() {
			continue
		}
		fed := false
		for _, f := range g.Fanin {
			if !c.Gate(f).IsLogic() {
				fed = true
				break
			}
		}
		if fed {
			walk(i)
		}
	}
	return out
}

func pathKey(p []int) string {
	key := ""
	for _, id := range p {
		key += fmt.Sprintf("%d,", id)
	}
	return key
}

// TestKBestPathsMatchesExhaustive cross-checks the streaming enumerator
// against full materialization on a spread of random circuits: for every k,
// the returned criticality sequence must equal the top k of the exhaustive
// sorted list, and every returned path must be a genuine path of that
// criticality.
func TestKBestPathsMatchesExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := netgen.Config{
			Name:  fmt.Sprintf("px%d", seed),
			Gates: 25 + int(seed)*7, Depth: 4 + int(seed)%4,
			PIs: 3, POs: 2,
		}
		c, err := netgen.Generate(cfg, 100+seed)
		if err != nil {
			t.Fatal(err)
		}
		a := analysis(t, c)

		ref := allPathsExhaustive(a)
		refCrit := make([]int, len(ref))
		valid := map[string]int{} // path key -> criticality
		for i, p := range ref {
			refCrit[i] = a.PathCriticality(p)
			valid[pathKey(p)] = refCrit[i]
		}
		sort.Sort(sort.Reverse(sort.IntSlice(refCrit)))

		for _, k := range []int{1, 2, 3, 5, 10, len(ref), len(ref) + 50} {
			paths := a.KBestPaths(k)
			crits := a.KBestCriticalities(k)
			wantN := k
			if wantN > len(ref) {
				wantN = len(ref)
			}
			if len(paths) != wantN || len(crits) != wantN {
				t.Fatalf("%s k=%d: got %d paths / %d crits, want %d (of %d total)",
					cfg.Name, k, len(paths), len(crits), wantN, len(ref))
			}
			seen := map[string]bool{}
			for i, p := range paths {
				pc := a.PathCriticality(p)
				if pc != refCrit[i] {
					t.Fatalf("%s k=%d: path %d criticality %d, want %d (exhaustive rank)",
						cfg.Name, k, i, pc, refCrit[i])
				}
				if crits[i] != pc {
					t.Fatalf("%s k=%d: KBestCriticalities[%d] = %d, KBestPaths says %d",
						cfg.Name, k, i, crits[i], pc)
				}
				key := pathKey(p)
				want, ok := valid[key]
				if !ok {
					t.Fatalf("%s k=%d: returned sequence %v is not a complete path", cfg.Name, k, p)
				}
				if want != pc {
					t.Fatalf("%s k=%d: path %v criticality mismatch", cfg.Name, k, p)
				}
				if seen[key] {
					t.Fatalf("%s k=%d: duplicate path %v", cfg.Name, k, p)
				}
				seen[key] = true
			}
		}
	}
}

// TestStreamPathsArenaBounded pins the O(n·k) memory contract: the record
// arena never holds more than k survivors per logic gate, no matter how many
// partial paths the network has.
func TestStreamPathsArenaBounded(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "ab", Gates: 400, Depth: 12, PIs: 6, POs: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	for _, k := range []int{1, 4, 16} {
		arena, _ := a.streamPaths(k)
		if max := c.NumLogic() * k; len(arena) > max {
			t.Fatalf("k=%d: arena holds %d records, bound is %d", k, len(arena), max)
		}
	}
}

// TestKBestCriticalitiesLarge sanity-checks the criticalities-only variant on
// a circuit big enough that materializing all paths would be prohibitive.
func TestKBestCriticalitiesLarge(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "kl", Gates: 3000, Depth: 30, PIs: 40, POs: 30}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	crits := a.KBestCriticalities(100)
	if len(crits) != 100 {
		t.Fatalf("got %d criticalities, want 100", len(crits))
	}
	if crits[0] != a.MaxCriticality() {
		t.Fatalf("top criticality %d != MaxCriticality %d", crits[0], a.MaxCriticality())
	}
	for i := 1; i < len(crits); i++ {
		if crits[i] > crits[i-1] {
			t.Fatalf("criticalities out of order at %d: %d > %d", i, crits[i], crits[i-1])
		}
	}
}

// TestKBestPathsStructure checks returned paths against the raw circuit
// structure (edges exist, ends at a PO or sink).
func TestKBestPathsStructure(t *testing.T) {
	c, err := netgen.Generate(netgen.Config{Name: "st", Gates: 200, Depth: 10, PIs: 5, POs: 4}, 41)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis(t, c)
	for _, p := range a.KBestPaths(50) {
		for i := 1; i < len(p); i++ {
			found := false
			for _, f := range c.Gate(p[i]).Fanin {
				if f == p[i-1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("path %v: %d→%d is not an edge", p, p[i-1], p[i])
			}
		}
		last := c.Gate(p[len(p)-1])
		if len(last.Fanout) != 0 && !a.isPO[p[len(p)-1]] {
			t.Fatalf("path %v ends mid-network at %q", p, last.Name)
		}
	}
}
