package timing

import "sort"

// K most-critical path enumeration, the role of the modified Ju–Saleh
// machinery in the paper (with path criticality redefined from gate count to
// fanout sum). Earlier revisions ran a best-first search over partial-path
// states, which materializes a heap of every frontier extension — memory
// grows with the number of partial paths touched, which is exponential in
// depth on reconvergent networks long before k paths complete. The streaming
// form below instead runs one levelized dynamic-programming sweep keeping at
// most k prefix records per gate, so memory is O(n·k) flat arrays no matter
// how many paths the network has.
//
// Soundness of the per-gate truncation: a complete path ending at gate t IS a
// prefix at t, and if some path P through gate g ranks below k among g's
// prefixes, then the ≥k better prefixes at g each extend with P's own suffix
// into a complete path at least as critical — so P cannot be in the global
// top k and dropping it is safe. Distinctness is structural: every record
// descends from a unique (parent record, gate) pair, so no two records
// reconstruct the same gate sequence.

// pathRec is one prefix record: a start-to-gate path with criticality acc,
// reconstructed by following parent indices through the shared arena.
type pathRec struct {
	gate   int32
	parent int32 // arena index of the fanin's record, or -1 at a path start
	acc    int32 // criticality of the prefix, inclusive of gate
}

// KBestPaths enumerates up to k complete input-to-output paths in
// non-increasing order of criticality, each as logic gate IDs in
// input-to-output order.
func (a *Analysis) KBestPaths(k int) [][]int {
	arena, ends := a.streamPaths(k)
	if len(ends) == 0 {
		return nil
	}
	out := make([][]int, 0, len(ends))
	for _, e := range ends {
		var rev []int
		for cur := e; cur >= 0; cur = arena[cur].parent {
			rev = append(rev, int(arena[cur].gate))
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		out = append(out, rev)
	}
	return out
}

// KBestCriticalities returns only the criticalities of the up-to-k most
// critical paths, non-increasing — the whole-distribution statistic Procedure
// 1 reporting needs, without reconstructing a single gate sequence.
func (a *Analysis) KBestCriticalities(k int) []int {
	arena, ends := a.streamPaths(k)
	out := make([]int, len(ends))
	for i, e := range ends {
		out[i] = int(arena[e].acc)
	}
	return out
}

// streamPaths runs the levelized sweep and returns the record arena plus the
// arena indices of the top-k complete paths, ordered by (criticality desc,
// then discovery order — terminal gates in topological sequence).
func (a *Analysis) streamPaths(k int) (arena []pathRec, ends []int32) {
	if k <= 0 {
		return nil, nil
	}
	cs := a.cs
	n := cs.N()
	// Survivor lists live in one flat index arena: gate id's records are
	// listIdx[listStart[id]:listEnd[id]], sorted by acc descending. Truncated
	// candidates are value scratch and never reach the record arena, so the
	// arena holds at most k records per gate.
	listStart := make([]int32, n)
	listEnd := make([]int32, n)
	var listIdx []int32
	var cand []pathRec
	for _, id := range cs.Order {
		if !cs.IsLogic[id] {
			continue
		}
		cand = cand[:0]
		// A path starts here when at least one fanin is a non-logic gate.
		fed := false
		for _, f := range cs.Fanins(id) {
			if !cs.IsLogic[f] {
				fed = true
				break
			}
		}
		if fed {
			cand = append(cand, pathRec{gate: id, parent: -1, acc: int32(a.FoEff[id])})
		}
		// Extend every logic fanin's surviving prefixes through this gate.
		for _, f := range cs.Fanins(id) {
			for _, rec := range listIdx[listStart[f]:listEnd[f]] {
				cand = append(cand, pathRec{gate: id, parent: rec, acc: arena[rec].acc + int32(a.FoEff[id])})
			}
		}
		if len(cand) == 0 {
			continue
		}
		// Keep the k most critical prefixes; the stable sort makes ties
		// resolve by fanin declaration order, deterministically.
		sort.SliceStable(cand, func(x, y int) bool { return cand[x].acc > cand[y].acc })
		if len(cand) > k {
			cand = cand[:k]
		}
		listStart[id] = int32(len(listIdx))
		for _, r := range cand {
			arena = append(arena, r)
			listIdx = append(listIdx, int32(len(arena)-1))
		}
		listEnd[id] = int32(len(listIdx))
	}
	// Complete paths end at primary outputs and at fanout-free gates.
	for _, id := range cs.Order {
		if !cs.IsLogic[id] {
			continue
		}
		if a.isPO[id] || cs.NumFanout(id) == 0 {
			ends = append(ends, listIdx[listStart[id]:listEnd[id]]...)
		}
	}
	sort.SliceStable(ends, func(x, y int) bool {
		return arena[ends[x]].acc > arena[ends[y]].acc
	})
	if len(ends) > k {
		ends = ends[:k]
	}
	return arena, ends
}
