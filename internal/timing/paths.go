package timing

import "container/heap"

// KBestPaths enumerates up to k complete input-to-output paths in
// non-increasing order of criticality, the role of the modified Ju–Saleh
// incremental enumeration in the paper (with path criticality redefined from
// gate count to fanout sum). It runs best-first over partial paths with the
// admissible bound A(prefix) + Down(next), so each completed path popped from
// the heap is the next most critical.
func (a *Analysis) KBestPaths(k int) [][]int {
	if k <= 0 {
		return nil
	}
	h := &stateHeap{}
	heap.Init(h)
	// A path starts at a logic gate fed by at least one primary input.
	for i := range a.C.Gates {
		g := &a.C.Gates[i]
		if !g.IsLogic() {
			continue
		}
		fed := false
		for _, f := range g.Fanin {
			if !a.C.Gate(f).IsLogic() {
				fed = true
				break
			}
		}
		if fed {
			heap.Push(h, &state{gate: i, acc: a.FoEff[i], bound: a.Down[i]})
		}
	}
	var out [][]int
	for h.Len() > 0 && len(out) < k {
		s := heap.Pop(h).(*state)
		if s.ended {
			out = append(out, s.path())
			continue
		}
		g := a.C.Gate(s.gate)
		if a.isPO[s.gate] || g.NumFanout() == 0 {
			// The ended marker's parent chain starts at s, which already
			// includes this gate.
			heap.Push(h, &state{gate: s.gate, acc: s.acc, bound: s.acc, ended: true, parent: s})
		}
		for _, f := range g.Fanout {
			heap.Push(h, &state{gate: f, acc: s.acc + a.FoEff[f], bound: s.acc + a.Down[f], parent: s})
		}
	}
	return out
}

// state is a partial (or, when ended, complete) path in the best-first
// enumeration. parent links reconstruct the gate sequence.
type state struct {
	gate   int
	acc    int // criticality of the prefix, inclusive of gate
	bound  int // upper bound on any completion's criticality
	ended  bool
	parent *state
}

func (s *state) path() []int {
	var rev []int
	cur := s
	if cur.ended {
		cur = cur.parent
	}
	for ; cur != nil; cur = cur.parent {
		rev = append(rev, cur.gate)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type stateHeap struct{ states []*state }

func (h *stateHeap) Len() int           { return len(h.states) }
func (h *stateHeap) Less(i, j int) bool { return h.states[i].bound > h.states[j].bound }
func (h *stateHeap) Swap(i, j int)      { h.states[i], h.states[j] = h.states[j], h.states[i] }
func (h *stateHeap) Push(x any)         { h.states = append(h.states, x.(*state)) }
func (h *stateHeap) Pop() any {
	old := h.states
	n := len(old)
	s := old[n-1]
	h.states = old[:n-1]
	return s
}
