package timing

import (
	"fmt"
	"math"
)

// BudgetFloorFrac is the fraction of the cycle budget given to a gate whose
// path slack is already exhausted when it is reached (a degenerate case the
// paper's Procedure 1 leaves implicit). Such assignments are counted in
// BudgetResult.Floored and typically repaired downstream.
const BudgetFloorFrac = 1e-6 //cmosvet:unit 1

// BudgetResult is the outcome of Procedure 1.
type BudgetResult struct {
	TMax       []float64 // per-gate maximum delay budget (Input gates: +Inf) //cmosvet:unit s
	Paths      int       // number of critical paths processed
	Floored    int       // gates that received the floor budget
	Normalized int       // budgets scaled down by the final invariant pass
	Repaired   int       // budgets tightened by RepairBudgets (0 until called)
}

// AssignBudgets runs the paper's Procedure 1: walk paths in decreasing
// criticality; on each path, distribute the cycle budget remaining after
// already-assigned gates over the unassigned gates in proportion to their
// effective fanouts. T is the skew-derated cycle budget b·T_c.
//
// Instead of materializing the exponential path list, each iteration selects
// the most critical path containing at least one unassigned gate directly:
// the path through argmax_g Up[g]+Down[g]−FoEff[g] over unassigned g, which
// is exactly the path the paper's skip-assigned enumeration would process
// next (criticality is additive, so the bound is achieved by the
// reconstruction). The equivalence is exercised against KBestPaths in tests.
//
// The paper asserts the assignment leaves no path above T. That does not hold
// unconditionally: a path all of whose gates were budgeted on *other*, more
// critical paths is never itself rebalanced and its fanout-proportional
// shares can overshoot. A final normalization pass therefore scales each
// gate's budget by T/(worst path budget sum through it) when that sum exceeds
// T; since the worst sum through every gate of a path bounds the path's own
// sum, one simultaneous pass restores the invariant exactly. The returned
// budgets then satisfy: along every input-to-output path, the sum of budgets
// is at most T.
//
//cmosvet:unit T s
func AssignBudgets(a *Analysis, T float64) (*BudgetResult, error) {
	if T <= 0 || math.IsNaN(T) {
		return nil, fmt.Errorf("timing: cycle budget %v must be positive", T)
	}
	n := a.C.N()
	res := &BudgetResult{TMax: make([]float64, n)}
	assigned := make([]bool, n)
	remaining := 0
	for i := range a.C.Gates {
		if a.C.Gates[i].IsLogic() {
			res.TMax[i] = math.Inf(1)
			remaining++
		} else {
			res.TMax[i] = math.Inf(1)
			assigned[i] = true
		}
	}

	cursor := newCritCursor(a)
	for remaining > 0 {
		// Most critical path with at least one unassigned gate.
		bestID := cursor.next(assigned)
		if bestID < 0 {
			break // unreachable: remaining > 0 implies an unassigned gate
		}
		path := a.pathThrough(bestID)
		res.Paths++

		// Split the path into assigned (sum of budgets T_A) and unassigned
		// (fanout sum) gates.
		var tA float64
		foSum := 0
		for _, id := range path {
			if assigned[id] {
				tA += res.TMax[id]
			} else {
				foSum += a.FoEff[id]
			}
		}
		slack := T - tA
		floor := BudgetFloorFrac * T
		for _, id := range path {
			if assigned[id] {
				continue
			}
			var tm float64
			if slack > 0 && foSum > 0 {
				tm = float64(a.FoEff[id]) * slack / float64(foSum)
			}
			if tm < floor {
				tm = floor
				res.Floored++
			}
			res.TMax[id] = tm
			assigned[id] = true
			remaining--
		}
	}
	res.Normalized = normalizeBudgets(a, res.TMax, T)
	return res, nil
}

// normalizeBudgets caps every gate's budget at its fanout-proportional share
// of the cycle budget on its own most-critical path:
//
//	t_u ≤ FoEff(u) · T / Through(u)
//
// Any path Q then satisfies Σ_{u∈Q} t_u ≤ T·Σ FoEff(u)/crit(Q) = T, because
// Through(u) ≥ crit(Q) for every gate of Q — the invariant the paper asserts
// for Procedure 1 holds by construction after this cap. The cap also bounds
// every budget from below by FoEff·T/C_max, so no gate is squeezed into an
// unreachable target. Returns the number of budgets reduced.
//
//cmosvet:unit tMax s
//cmosvet:unit T s
func normalizeBudgets(a *Analysis, tMax []float64, T float64) int {
	count := 0
	for i, logic := range a.cs.IsLogic {
		if !logic {
			continue
		}
		lim := float64(a.FoEff[i]) * T / float64(a.Through(i))
		if tMax[i] > lim {
			tMax[i] = lim
			count++
		}
	}
	return count
}

// AssignBudgetsEnumerated is the paper-literal form of Procedure 1: it walks
// the explicitly enumerated K most critical paths (KBestPaths, the modified
// Ju–Saleh machinery) in order, applying the same slack-distribution rule,
// and falls back to the direct selection for any gate not covered within
// maxPaths. It exists to validate the production AssignBudgets (which
// selects each next path in O(E) without materializing the list); the two
// must produce identical budgets when maxPaths covers the circuit.
//
//cmosvet:unit T s
func AssignBudgetsEnumerated(a *Analysis, T float64, maxPaths int) (*BudgetResult, error) {
	if T <= 0 || math.IsNaN(T) {
		return nil, fmt.Errorf("timing: cycle budget %v must be positive", T)
	}
	if maxPaths < 1 {
		return nil, fmt.Errorf("timing: maxPaths %d must be positive", maxPaths)
	}
	n := a.C.N()
	res := &BudgetResult{TMax: make([]float64, n)}
	assigned := make([]bool, n)
	remaining := 0
	for i := range a.C.Gates {
		res.TMax[i] = math.Inf(1)
		if a.C.Gates[i].IsLogic() {
			remaining++
		} else {
			assigned[i] = true
		}
	}
	floor := BudgetFloorFrac * T
	for _, path := range a.KBestPaths(maxPaths) {
		if remaining == 0 {
			break
		}
		nd := 0
		var tA float64
		foSum := 0
		for _, id := range path {
			if assigned[id] {
				nd++
				tA += res.TMax[id]
			} else {
				foSum += a.FoEff[id]
			}
		}
		if foSum == 0 {
			continue // the paper's skip: every gate already assigned
		}
		res.Paths++
		slack := T - tA
		for _, id := range path {
			if assigned[id] {
				continue
			}
			var tm float64
			if slack > 0 {
				tm = float64(a.FoEff[id]) * slack / float64(foSum)
			}
			if tm < floor {
				tm = floor
				res.Floored++
			}
			res.TMax[id] = tm
			assigned[id] = true
			remaining--
		}
	}
	// Gates beyond the enumeration horizon: fall back to the direct rule.
	cursor := newCritCursor(a)
	for remaining > 0 {
		bestID := cursor.next(assigned)
		if bestID < 0 {
			break
		}
		path := a.pathThrough(bestID)
		res.Paths++
		var tA float64
		foSum := 0
		for _, id := range path {
			if assigned[id] {
				tA += res.TMax[id]
			} else {
				foSum += a.FoEff[id]
			}
		}
		slack := T - tA
		for _, id := range path {
			if assigned[id] {
				continue
			}
			var tm float64
			if slack > 0 && foSum > 0 {
				tm = float64(a.FoEff[id]) * slack / float64(foSum)
			}
			if tm < floor {
				tm = floor
				res.Floored++
			}
			res.TMax[id] = tm
			assigned[id] = true
			remaining--
		}
	}
	res.Normalized = normalizeBudgets(a, res.TMax, T)
	return res, nil
}

// RepairBudgets post-processes Procedure 1's assignment for the fanin-slope
// delay term (§4.2's final paragraph): a gate whose drivers were budgeted far
// more delay than the gate itself cannot meet its budget at any width,
// because its delay includes kappa·max_fanin(t_d). A reverse-topological pass
// tightens each driver's budget so that kappa·t_driver ≤ gamma·t_driven,
// leaving a (1−gamma) fraction of the driven gate's budget for its own
// switching. Tightening never violates the cycle-time invariant. Returns the
// number of budgets reduced and records it in res.Repaired.
//
//cmosvet:unit kappa 1
//cmosvet:unit gamma 1
func RepairBudgets(a *Analysis, res *BudgetResult, kappa, gamma float64) (int, error) {
	if kappa <= 0 || kappa >= 1 {
		return 0, fmt.Errorf("timing: slope coefficient kappa %v outside (0,1)", kappa)
	}
	if gamma <= 0 || gamma >= 1 {
		return 0, fmt.Errorf("timing: repair fraction gamma %v outside (0,1)", gamma)
	}
	repaired := 0
	cs := a.cs
	order := cs.Order
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !cs.IsLogic[id] {
			continue
		}
		limit := math.Inf(1)
		for _, f := range cs.Fanouts(id) {
			if lim := gamma * res.TMax[f] / kappa; lim < limit {
				limit = lim
			}
		}
		if res.TMax[id] > limit {
			res.TMax[id] = limit
			repaired++
		}
	}
	res.Repaired += repaired
	return repaired, nil
}

// CheckBudgets verifies Procedure 1's invariant: the worst path sum of
// budgets is at most T (within tolerance tol, which absorbs floor budgets).
// It returns the worst path budget sum found.
//
//cmosvet:unit tMax s
//cmosvet:unit T s
//cmosvet:unit tol 1
//cmosvet:unit return1 s
func CheckBudgets(a *Analysis, tMax []float64, T, tol float64) (float64, bool) {
	sum := make([]float64, a.C.N())
	worst := 0.0
	cs := a.cs
	for _, id := range cs.Order {
		if !cs.IsLogic[id] {
			continue
		}
		best := 0.0
		for _, f := range cs.Fanins(id) {
			if cs.IsLogic[f] && sum[f] > best {
				best = sum[f]
			}
		}
		sum[id] = best + tMax[id]
		if sum[id] > worst {
			worst = sum[id]
		}
	}
	return worst, worst <= T*(1+tol)
}
