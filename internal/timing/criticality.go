// Package timing implements the paper's §4.2 machinery: path criticality,
// enumeration of the K most critical paths in decreasing criticality (a
// modified Ju–Saleh incremental enumeration), and Procedure 1 — the
// assignment of a maximum-delay budget to every gate such that no circuit
// path exceeds the (skew-derated) cycle time.
//
// The criticality N_cj of a path is the sum of the *effective* fanouts of
// its logic gates. The paper defines N_c with raw fanout counts, assuming
// gate delay proportional to fanout; our delay model (like any real one) has
// a per-gate intrinsic component — self-loading, series stack, interconnect —
// so the effective fanout here is fanout+1 (with a gate driving no internal
// net still counting its off-module load). This keeps the budget shares of
// low-fanout gates on hub-heavy paths reachable, which the paper otherwise
// restores through its §4.2 post-processing.
package timing

import (
	"fmt"

	"cmosopt/internal/circuit"
)

// Analysis caches the per-gate criticality data of one combinational
// circuit: effective fanouts and the maximum path criticality upstream (Up)
// and downstream (Down) of every logic gate, both inclusive of the gate.
type Analysis struct {
	C     *circuit.Circuit
	FoEff []int // effective fanout per gate (max(1, fanout) for logic gates)
	Up    []int // max criticality of a path from an input up to gate i
	Down  []int // max criticality of a path from gate i down to a path end
	order []int
	isPO  []bool
}

// NewAnalysis builds the criticality analysis. The circuit must be
// combinational.
func NewAnalysis(c *circuit.Circuit) (*Analysis, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("timing: circuit %q is sequential; cut DFFs first", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		C:     c,
		FoEff: make([]int, c.N()),
		Up:    make([]int, c.N()),
		Down:  make([]int, c.N()),
		order: order,
		isPO:  make([]bool, c.N()),
	}
	for _, id := range c.POs {
		a.isPO[id] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if !g.IsLogic() {
			continue
		}
		fo := g.NumFanout()
		if fo < 1 {
			fo = 1 // a sink still drives the module output load
		}
		a.FoEff[i] = fo + 1 // +1: the gate's intrinsic (self-loading) share
	}
	// Up: forward pass. Inputs contribute nothing.
	for _, id := range order {
		g := c.Gate(id)
		if !g.IsLogic() {
			continue
		}
		best := 0
		for _, f := range g.Fanin {
			if c.Gate(f).IsLogic() && a.Up[f] > best {
				best = a.Up[f]
			}
		}
		a.Up[id] = a.FoEff[id] + best
	}
	// Down: reverse pass. A path may end at any gate with no fanout, or at a
	// primary output; continuing through a PO's internal fanout only raises
	// criticality, so the max is always to continue when fanout exists.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		if !g.IsLogic() {
			continue
		}
		best := 0
		for _, f := range g.Fanout {
			if a.Down[f] > best {
				best = a.Down[f]
			}
		}
		a.Down[id] = a.FoEff[id] + best
	}
	return a, nil
}

// PathCriticality returns the criticality of a path given as logic gate IDs.
func (a *Analysis) PathCriticality(path []int) int {
	n := 0
	for _, id := range path {
		n += a.FoEff[id]
	}
	return n
}

// MaxCriticality returns the criticality of the most critical path in the
// network.
func (a *Analysis) MaxCriticality() int {
	best := 0
	for i := range a.C.Gates {
		if a.C.Gates[i].IsLogic() && a.Down[i] > best {
			// Down of input-fed gates bounds full paths; Up+Down−FoEff of any
			// gate is the max path through it, so taking max over the
			// through-criticality of all gates is equivalent.
			if th := a.Through(i); th > best {
				best = th
			}
		}
	}
	return best
}

// Through returns the criticality of the most critical full path passing
// through gate id.
func (a *Analysis) Through(id int) int {
	return a.Up[id] + a.Down[id] - a.FoEff[id]
}

// pathThrough reconstructs a most-critical path passing through the given
// gate by walking maximum-Up fanins and maximum-Down fanouts.
func (a *Analysis) pathThrough(id int) []int {
	var upSeg []int
	for cur := id; ; {
		upSeg = append(upSeg, cur)
		next, best := -1, 0
		for _, f := range a.C.Gate(cur).Fanin {
			if a.C.Gate(f).IsLogic() && a.Up[f] > best {
				best, next = a.Up[f], f
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	// upSeg is id..input-side; reverse into path order.
	path := make([]int, 0, len(upSeg)+8)
	for i := len(upSeg) - 1; i >= 0; i-- {
		path = append(path, upSeg[i])
	}
	for cur := id; ; {
		next, best := -1, 0
		for _, f := range a.C.Gate(cur).Fanout {
			if a.Down[f] > best {
				best, next = a.Down[f], f
			}
		}
		if next < 0 {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// MostCriticalPath returns one maximally critical input-to-output path as
// logic gate IDs in input-to-output order.
func (a *Analysis) MostCriticalPath() []int {
	bestID, best := -1, -1
	for i := range a.C.Gates {
		if !a.C.Gates[i].IsLogic() {
			continue
		}
		if th := a.Through(i); th > best {
			best, bestID = th, i
		}
	}
	if bestID < 0 {
		return nil
	}
	return a.pathThrough(bestID)
}
