// Package timing implements the paper's §4.2 machinery: path criticality,
// enumeration of the K most critical paths in decreasing criticality (a
// modified Ju–Saleh incremental enumeration), and Procedure 1 — the
// assignment of a maximum-delay budget to every gate such that no circuit
// path exceeds the (skew-derated) cycle time.
//
// The criticality N_cj of a path is the sum of the *effective* fanouts of
// its logic gates. The paper defines N_c with raw fanout counts, assuming
// gate delay proportional to fanout; our delay model (like any real one) has
// a per-gate intrinsic component — self-loading, series stack, interconnect —
// so the effective fanout here is fanout+1 (with a gate driving no internal
// net still counting its off-module load). This keeps the budget shares of
// low-fanout gates on hub-heavy paths reachable, which the paper otherwise
// restores through its §4.2 post-processing.
//
// All sweeps in this package run over the circuit's CSR view (levelized
// struct-of-arrays, see internal/circuit), so analysis cost stays flat per
// edge at netgen's 10⁵–10⁶-gate scale.
package timing

import (
	"fmt"
	"sort"

	"cmosopt/internal/circuit"
)

// Analysis caches the per-gate criticality data of one combinational
// circuit: effective fanouts and the maximum path criticality upstream (Up)
// and downstream (Down) of every logic gate, both inclusive of the gate.
type Analysis struct {
	C     *circuit.Circuit
	FoEff []int // effective fanout per gate (max(1, fanout) for logic gates)
	Up    []int // max criticality of a path from an input up to gate i
	Down  []int // max criticality of a path from gate i down to a path end
	cs    *circuit.CSR
	isPO  []bool

	// byThrough lists the logic gate IDs sorted by (Through desc, id asc),
	// built lazily by critCursor for Procedure 1's path selection.
	byThrough []int32
}

// NewAnalysis builds the criticality analysis. The circuit must be
// combinational.
func NewAnalysis(c *circuit.Circuit) (*Analysis, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("timing: circuit %q is sequential; cut DFFs first", c.Name)
	}
	cs, err := c.CSR()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		C:     c,
		FoEff: make([]int, c.N()),
		Up:    make([]int, c.N()),
		Down:  make([]int, c.N()),
		cs:    cs,
		isPO:  make([]bool, c.N()),
	}
	for _, id := range c.POs {
		a.isPO[id] = true
	}
	for i := range a.FoEff {
		if !cs.IsLogic[i] {
			continue
		}
		fo := cs.NumFanout(int32(i))
		if fo < 1 {
			fo = 1 // a sink still drives the module output load
		}
		a.FoEff[i] = fo + 1 // +1: the gate's intrinsic (self-loading) share
	}
	// Up: forward level sweep. Inputs contribute nothing.
	for l := 1; l < cs.NumLevels(); l++ {
		for _, id := range cs.LevelGates(l) {
			if !cs.IsLogic[id] {
				continue
			}
			best := 0
			for _, f := range cs.Fanins(id) {
				if cs.IsLogic[f] && a.Up[f] > best {
					best = a.Up[f]
				}
			}
			a.Up[id] = a.FoEff[id] + best
		}
	}
	// Down: reverse level sweep. A path may end at any gate with no fanout,
	// or at a primary output; continuing through a PO's internal fanout only
	// raises criticality, so the max is always to continue when fanout exists.
	for l := cs.NumLevels() - 1; l >= 1; l-- {
		for _, id := range cs.LevelGates(l) {
			if !cs.IsLogic[id] {
				continue
			}
			best := 0
			for _, f := range cs.Fanouts(id) {
				if a.Down[f] > best {
					best = a.Down[f]
				}
			}
			a.Down[id] = a.FoEff[id] + best
		}
	}
	return a, nil
}

// PathCriticality returns the criticality of a path given as logic gate IDs.
func (a *Analysis) PathCriticality(path []int) int {
	n := 0
	for _, id := range path {
		n += a.FoEff[id]
	}
	return n
}

// MaxCriticality returns the criticality of the most critical path in the
// network.
func (a *Analysis) MaxCriticality() int {
	best := 0
	for i, logic := range a.cs.IsLogic {
		if logic {
			// Down of input-fed gates bounds full paths; Up+Down−FoEff of any
			// gate is the max path through it, so taking max over the
			// through-criticality of all gates is equivalent.
			if th := a.Through(i); th > best {
				best = th
			}
		}
	}
	return best
}

// Through returns the criticality of the most critical full path passing
// through gate id.
func (a *Analysis) Through(id int) int {
	return a.Up[id] + a.Down[id] - a.FoEff[id]
}

// pathThrough reconstructs a most-critical path passing through the given
// gate by walking maximum-Up fanins and maximum-Down fanouts.
func (a *Analysis) pathThrough(id int) []int {
	cs := a.cs
	var upSeg []int
	for cur := int32(id); ; {
		upSeg = append(upSeg, int(cur))
		next, best := int32(-1), 0
		for _, f := range cs.Fanins(cur) {
			if cs.IsLogic[f] && a.Up[f] > best {
				best, next = a.Up[f], f
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	// upSeg is id..input-side; reverse into path order.
	path := make([]int, 0, len(upSeg)+8)
	for i := len(upSeg) - 1; i >= 0; i-- {
		path = append(path, upSeg[i])
	}
	for cur := int32(id); ; {
		next, best := int32(-1), 0
		for _, f := range cs.Fanouts(cur) {
			if a.Down[f] > best {
				best, next = a.Down[f], f
			}
		}
		if next < 0 {
			break
		}
		path = append(path, int(next))
		cur = next
	}
	return path
}

// MostCriticalPath returns one maximally critical input-to-output path as
// logic gate IDs in input-to-output order.
func (a *Analysis) MostCriticalPath() []int {
	bestID, best := -1, -1
	for i, logic := range a.cs.IsLogic {
		if !logic {
			continue
		}
		if th := a.Through(i); th > best {
			best, bestID = th, i
		}
	}
	if bestID < 0 {
		return nil
	}
	return a.pathThrough(bestID)
}

// critCursor selects, in amortized O(n log n) total, the unassigned logic
// gate with the maximum through-criticality — the gate Procedure 1's path
// selection previously found with an O(n) scan per path, which made budget
// assignment quadratic on deep circuits. Gates are pre-sorted by
// (Through desc, id asc); since Up/Down never change during assignment and
// gates only ever flip to assigned, a monotone cursor over that order returns
// exactly the gate the linear scan's `if th > best` rule (first maximum, i.e.
// smallest ID among ties) would have picked.
type critCursor struct {
	a   *Analysis
	pos int
}

func newCritCursor(a *Analysis) *critCursor {
	if a.byThrough == nil {
		ids := make([]int32, 0, len(a.cs.IsLogic))
		for i, logic := range a.cs.IsLogic {
			if logic {
				ids = append(ids, int32(i))
			}
		}
		sort.Slice(ids, func(x, y int) bool {
			tx, ty := a.Through(int(ids[x])), a.Through(int(ids[y]))
			if tx != ty {
				return tx > ty
			}
			return ids[x] < ids[y]
		})
		a.byThrough = ids
	}
	return &critCursor{a: a}
}

// next returns the most critical unassigned logic gate, or -1 when none
// remain.
func (cc *critCursor) next(assigned []bool) int {
	for cc.pos < len(cc.a.byThrough) {
		id := cc.a.byThrough[cc.pos]
		if !assigned[id] {
			return int(id)
		}
		cc.pos++
	}
	return -1
}
