package spice

import (
	"math"
	"testing"

	"cmosopt/internal/device"
)

func sim(t *testing.T) *GateSim {
	t.Helper()
	tech := device.Default350()
	return &GateSim{
		Tech: &tech, W: 2, CL: 10e-15, Vdd: 3.3, Vts: 0.7, Fanin: 1,
	}
}

func TestValidation(t *testing.T) {
	cases := []func(*GateSim){
		func(s *GateSim) { s.Tech = nil },
		func(s *GateSim) { s.W = 0 },
		func(s *GateSim) { s.CL = -1 },
		func(s *GateSim) { s.Vdd = 0 },
		func(s *GateSim) { s.Vts = 0 },
		func(s *GateSim) { s.Fanin = 0 },
	}
	for i, mut := range cases {
		s := sim(t)
		mut(s)
		if _, err := s.FallDelay(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFallDelayMatchesAnalytic(t *testing.T) {
	// The analytic switching term assumes constant saturation current down
	// to Vdd/2; the transient should agree closely in strong inversion.
	s := sim(t)
	simT, ana, ratio, err := s.CompareDelay()
	if err != nil {
		t.Fatal(err)
	}
	if simT <= 0 || ana <= 0 {
		t.Fatalf("degenerate delays: sim %v ana %v", simT, ana)
	}
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("sim/analytic = %v (sim %v, ana %v), want ≈1", ratio, simT, ana)
	}
}

func TestFallDelayScalesWithLoad(t *testing.T) {
	s := sim(t)
	d1, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	s.CL *= 3
	d3, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	if r := d3 / d1; r < 2.7 || r > 3.3 {
		t.Errorf("3x load scaled delay by %v, want ~3", r)
	}
}

func TestFallDelayScalesInverselyWithWidth(t *testing.T) {
	s := sim(t)
	d1, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	s.W *= 4
	d4, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	if r := d1 / d4; r < 3.5 || r > 4.5 {
		t.Errorf("4x width sped up by %v, want ~4", r)
	}
}

func TestStackSlowdown(t *testing.T) {
	s := sim(t)
	d1, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	s.Fanin = 3
	d3, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d3 <= d1 {
		t.Errorf("3-deep stack (%v) not slower than inverter (%v)", d3, d1)
	}
}

func TestSubthresholdTransientFiniteAndSlow(t *testing.T) {
	s := sim(t)
	super, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	s.Vdd, s.Vts = 0.3, 0.45 // subthreshold operation
	sub, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	if sub < 50*super {
		t.Errorf("subthreshold %v should be orders slower than %v", sub, super)
	}
	// The transregional analytic model should still track within ~2x.
	_, _, ratio, err := s.CompareDelay()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("subthreshold sim/analytic = %v", ratio)
	}
}

func TestRiseEnergyIsCV2(t *testing.T) {
	s := sim(t)
	e, err := s.RiseEnergy()
	if err != nil {
		t.Fatal(err)
	}
	want := s.CL * s.Vdd * s.Vdd
	if r := e / want; r < 0.9 || r > 1.1 {
		t.Errorf("supply energy %v, want ≈ C·Vdd² = %v (ratio %v)", e, want, r)
	}
}

func TestRiseEnergyQuadraticInVdd(t *testing.T) {
	s := sim(t)
	s.Vts = 0.3
	e1, err := s.RiseEnergy()
	if err != nil {
		t.Fatal(err)
	}
	s.Vdd = s.Vdd / 2
	e2, err := s.RiseEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if r := e1 / e2; r < 3.5 || r > 4.5 {
		t.Errorf("halving Vdd changed energy by %v, want ~4", r)
	}
}

func TestStepConvergence(t *testing.T) {
	s := sim(t)
	s.Steps = 200
	d1, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	s.Steps = 1600
	d2, err := s.FallDelay()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(d1-d2) / d2; rel > 0.02 {
		t.Errorf("step halving moved delay by %v, integrator not converged", rel)
	}
}

func TestUnswitchableGate(t *testing.T) {
	s := sim(t)
	s.Vdd = 0.011 // far below even the overlapping leakage floor
	s.Vts = 0.7
	s.Fanin = 4
	if _, err := s.FallDelay(); err == nil {
		t.Error("expected unswitchable-gate error")
	}
}
