// Package spice is a small numerical transient simulator for single CMOS
// gate switching events, standing in for the HSPICE validation the paper
// performed on its analytic energy and delay models ("These models have been
// extensively validated with HSPICE").
//
// It integrates the output-node ODE
//
//	C_L · dV_out/dt = −I_pulldown(V_out) + I_leak,up
//
// with a fourth-order Runge–Kutta scheme, using the same transregional
// drain-current model as the analytic path (device.Tech) extended with a
// smooth saturation-to-triode transition in V_DS. The 50 %-crossing time of
// the simulated waveform is compared against the analytic switching delay
// term, and the integrated supply charge against the C·V² switching energy.
package spice

import (
	"fmt"
	"math"

	"cmosopt/internal/device"
)

// GateSim describes one gate switching event: an input step at t = 0 turning
// on a pull-down path of Fanin series devices of width W, discharging C_L
// from V_dd.
type GateSim struct {
	Tech  *device.Tech
	W     float64 // width multiplier (≥ tech WMin)
	CL    float64 // output load capacitance (F)
	Vdd   float64 // supply (V)
	Vts   float64 // threshold (V)
	Fanin int     // series stack depth (1 = inverter)
	// Steps is the number of integration steps per analytic delay estimate;
	// 0 selects the default (400).
	Steps int
}

func (s *GateSim) validate() error {
	switch {
	case s.Tech == nil:
		return fmt.Errorf("spice: nil tech")
	case s.W <= 0:
		return fmt.Errorf("spice: width %v must be positive", s.W)
	case s.CL <= 0:
		return fmt.Errorf("spice: load %v must be positive", s.CL)
	case s.Vdd <= 0:
		return fmt.Errorf("spice: Vdd %v must be positive", s.Vdd)
	case s.Vts <= 0:
		return fmt.Errorf("spice: Vts %v must be positive", s.Vts)
	case s.Fanin < 1:
		return fmt.Errorf("spice: fanin %d must be ≥ 1", s.Fanin)
	}
	return s.Tech.Validate()
}

// drainCurrent returns the pull-down current at output voltage vds, using
// the shared transregional saturation current shaped by a smooth
// triode/saturation factor (1 − e^(−Vds/Veff)), where Veff tracks the
// saturation voltage in strong inversion and the thermal voltage below
// threshold. Series stacks divide the drive by the stack depth.
func (s *GateSim) drainCurrent(vds float64) float64 {
	if vds <= 0 {
		return 0
	}
	isat := s.W * s.Tech.IdUnit(s.Vdd, s.Vts) / float64(s.Fanin)
	veff := 0.4 * s.Tech.Overdrive(s.Vdd, s.Vts)
	if minV := s.Tech.VTherm; veff < minV {
		veff = minV
	}
	return isat * (1 - math.Exp(-vds/veff))
}

// leakUp returns the opposing pull-up leakage fighting the transition.
func (s *GateSim) leakUp() float64 {
	return s.W * s.Tech.IoffUnit(s.Vts)
}

// analyticDelay returns the closed-form switching-delay estimate the
// simulator validates: V_dd·C_L / (2·(I_sat − I_leak)).
func (s *GateSim) analyticDelay() float64 {
	drive := s.W*s.Tech.IdUnit(s.Vdd, s.Vts)/float64(s.Fanin) - s.leakUp()
	if drive <= 0 {
		return math.Inf(1)
	}
	return s.Vdd * s.CL / (2 * drive)
}

// FallDelay integrates the falling output transition and returns the time at
// which V_out crosses V_dd/2. It fails if the gate cannot discharge (drive
// weaker than opposing leakage) or the waveform never crosses within 100×
// the analytic estimate.
func (s *GateSim) FallDelay() (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	ta := s.analyticDelay()
	if math.IsInf(ta, 1) {
		return 0, fmt.Errorf("spice: gate cannot switch (leakage exceeds drive)")
	}
	steps := s.Steps
	if steps == 0 {
		steps = 400
	}
	dt := ta / float64(steps)
	deriv := func(v float64) float64 {
		return (-s.drainCurrent(v) + s.leakUp()) / s.CL
	}
	v := s.Vdd
	half := s.Vdd / 2
	tMax := 100 * ta
	for t := 0.0; t < tMax; t += dt {
		prev := v
		v = rk4(v, dt, deriv)
		if v <= half {
			// Linear interpolation inside the crossing step.
			frac := (prev - half) / (prev - v)
			return t + frac*dt, nil
		}
	}
	return 0, fmt.Errorf("spice: no 50%% crossing within %v s", tMax)
}

// RiseEnergy integrates the supply charge delivered while the pull-up
// (modeled symmetrically to the pull-down) charges C_L from 0 to V_dd, and
// returns the energy drawn from the supply, E = V_dd·∫i dt. For an ideal
// full-swing transition this is C_L·V_dd².
func (s *GateSim) RiseEnergy() (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	ta := s.analyticDelay()
	if math.IsInf(ta, 1) {
		return 0, fmt.Errorf("spice: gate cannot switch (leakage exceeds drive)")
	}
	steps := s.Steps
	if steps == 0 {
		steps = 400
	}
	dt := ta / float64(steps)
	// Pull-up drive mirrors the pull-down with Vsd = Vdd − Vout.
	v := 0.0
	energy := 0.0
	tMax := 200 * ta
	for t := 0.0; t < tMax; t += dt {
		i := s.drainCurrent(s.Vdd-v) - s.leakUp()
		if i <= 0 {
			break
		}
		v = rk4(v, dt, func(x float64) float64 {
			return (s.drainCurrent(s.Vdd-x) - s.leakUp()) / s.CL
		})
		energy += s.Vdd * i * dt
		if v >= s.Vdd*0.999 {
			break
		}
	}
	return energy, nil
}

// CompareDelay runs the transient and returns (simulated, analytic, ratio).
// It is the validation harness used by tests and the model-validation
// example.
func (s *GateSim) CompareDelay() (sim, analytic, ratio float64, err error) {
	sim, err = s.FallDelay()
	if err != nil {
		return 0, 0, 0, err
	}
	analytic = s.analyticDelay()
	return sim, analytic, sim / analytic, nil
}

func rk4(v, dt float64, f func(float64) float64) float64 {
	k1 := f(v)
	k2 := f(v + dt/2*k1)
	k3 := f(v + dt/2*k2)
	k4 := f(v + dt*k3)
	return v + dt/6*(k1+2*k2+2*k3+k4)
}
