package serve

import (
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	// 1..100 ms: nearest-rank p50 is the 50th sample, p99 the 99th.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Millisecond // reversed: Summarize must sort
	}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 100 || s.P50 != 50*time.Millisecond || s.P99 != 99*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if want := 5050 * time.Millisecond; s.Total != want {
		t.Errorf("total = %v, want %v", s.Total, want)
	}
	if want := 50500 * time.Microsecond; s.MeanPerReq != want {
		t.Errorf("mean = %v, want %v", s.MeanPerReq, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]time.Duration{7 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) succeeded, want error")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	samples := []time.Duration{3, 1, 2}
	if _, err := Summarize(samples); err != nil {
		t.Fatal(err)
	}
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Errorf("input mutated: %v", samples)
	}
}
