package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cmosopt/internal/obs"
)

// handleEvents streams a job's progress as server-sent events. Each
// "progress" event carries the span-tree entries that are new or advanced
// since the previous event (obs.DiffFlat over flattened snapshots), so a
// client watching a million-gate sweep sees phases light up as the
// optimizer reaches them. A final "done" event carries the terminal
// JobStatus, then the stream closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{status: http.StatusInternalServerError, msg: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// A ticker paces the snapshot polls; the snapshots themselves carry no
	// wall-clock reads of ours — durations come from the obs layer.
	tick := time.NewTicker(s.cfg.ProgressInterval)
	defer tick.Stop()

	var prev []obs.FlatSpan
	emit := func() {
		snap := j.reg.Root().Snapshot()
		cur := snap.Flatten()
		if delta := obs.DiffFlat(prev, cur); len(delta) > 0 {
			writeEvent(w, "progress", delta)
			fl.Flush()
		}
		prev = cur
	}
	for {
		select {
		case <-j.done:
			emit() // the final spans, so totals are never lost to timing
			writeEvent(w, "done", j.status())
			fl.Flush()
			return
		case <-r.Context().Done():
			return // viewer hung up; the job itself is unaffected
		case <-tick.C:
			emit()
		}
	}
}

// writeEvent renders one SSE frame. Payloads are single-line JSON, so the
// data field never needs splitting.
func writeEvent(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf("%q", "marshal: "+err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}
