package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"cmosopt/internal/circuit"
	"cmosopt/internal/cli"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/obs"
	"cmosopt/internal/wiring"
)

// Runner executes one admitted, normalized request under the job's context
// and registry and returns its result. Swappable so tests can control job
// timing precisely; production uses DefaultRunner.
type Runner func(ctx context.Context, req *Request, workers int, reg *obs.Registry) (*Result, error)

// DefaultRunner routes the request family onto the same internal/core
// pipeline the command-line tools use. Outputs are rendered with the shared
// cli helpers, so a served response is byte-identical to the offline tool's
// stdout for the same request — the property the serve-e2e CI job asserts.
func DefaultRunner(ctx context.Context, req *Request, workers int, reg *obs.Registry) (*Result, error) {
	switch req.Kind {
	case KindSweep:
		return runSweep(ctx, req, workers, reg)
	case KindOptimize:
		return runOptimize(ctx, req, workers, reg)
	}
	return nil, fmt.Errorf("serve: unknown kind %q", req.Kind)
}

func runSweep(ctx context.Context, req *Request, workers int, reg *obs.Registry) (*Result, error) {
	tech, err := requestTech(req)
	if err != nil {
		return nil, err
	}
	params := cli.SweepParams{
		Circuit: req.Circuit, FromHz: req.FromHz, ToHz: req.ToHz,
		Points: req.Points, Activity: req.Activity, Workers: workers,
	}
	ct, pts, best, err := cli.RunSweep(params, tech, reg, ctx)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := cli.RenderSweep(&out, req.Format, cli.SweepTable(ct.Name, req.Activity, pts, best)); err != nil {
		return nil, err
	}
	man := obs.NewManifest("served")
	man.Circuit = ct.Name
	man.Gates = ct.NumLogic()
	man.Workers = workers
	for _, pt := range pts {
		man.Results = append(man.Results,
			cli.ResultRecord(fmt.Sprintf("fc=%.0fMHz", pt.Fc/1e6), pt.Fc, pt.Result))
	}
	man.Finish(reg)
	return &Result{Output: out.String(), Manifest: man}, nil
}

func runOptimize(ctx context.Context, req *Request, workers int, reg *obs.Registry) (*Result, error) {
	ct, err := requestCircuit(req)
	if err != nil {
		return nil, err
	}
	tech, err := requestTech(req)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(core.Spec{
		Circuit:      ct,
		Tech:         tech,
		Wiring:       wiring.Default350(),
		Fc:           req.FcHz,
		Skew:         req.Skew,
		InputProb:    req.InputProb,
		InputDensity: req.Activity,
		Obs:          reg,
		Ctx:          ctx,
	})
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.M = req.M
	opts.Workers = workers

	var res *core.Result
	switch req.Mode {
	case "joint":
		res, err = p.OptimizeJoint(opts)
	case "baseline":
		res, err = p.OptimizeBaseline(opts)
	case "anneal":
		res, err = p.OptimizeAnneal(core.DefaultAnnealOptions())
	case "multivt":
		res, err = p.OptimizeMultiVt(req.NV, opts)
	case "dualvdd":
		res, err = p.OptimizeDualVdd(opts)
	case "sensitivity":
		res, err = p.OptimizeJointSensitivity(opts)
	default:
		err = fmt.Errorf("serve: unknown mode %q", req.Mode)
	}
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	cli.PrintResult(&out, p, res)

	man := obs.NewManifest("served")
	man.Circuit = p.C.Name
	man.Gates = p.C.NumLogic()
	man.FcHz = req.FcHz
	man.Workers = workers
	man.Results = append(man.Results, cli.ResultRecord(req.Mode, req.FcHz, res))
	man.Finish(reg)
	return &Result{Output: out.String(), Manifest: man}, nil
}

// requestCircuit resolves the request's netlist source. Uploaded and inline
// netlists are named by their content address so reports stay reproducible.
func requestCircuit(req *Request) (*circuit.Circuit, error) {
	if req.Circuit != "" {
		return netgen.LoadNamed(req.Circuit)
	}
	text := req.benchText
	if text == "" {
		text = req.Bench
	}
	if text == "" {
		return nil, fmt.Errorf("serve: request has no netlist")
	}
	name := "bench-" + HashNetlist(text)[:12]
	return circuit.ParseBenchString(name, text)
}

// requestTech applies the request's device-parameter overrides to the
// default technology.
func requestTech(req *Request) (device.Tech, error) {
	tech := device.Default350()
	if req.Tech == "" {
		return tech, nil
	}
	return device.ParseTech(tech, strings.NewReader(req.Tech))
}
