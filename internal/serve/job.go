package serve

import (
	"context"
	"sync"

	"cmosopt/internal/obs"
)

// job is one admitted request moving through queued → running →
// done/failed/canceled. The terminal transition happens exactly once and
// closes done; everything else is a read under mu.
type job struct {
	id  string
	req *Request
	key string // content address ("" when the request opted out)

	// reg is the job's private span registry: the runner attaches it to
	// the problem Spec, the SSE endpoint flattens it into progress events.
	// Never the process-default registry — concurrent jobs must not mix.
	reg *obs.Registry

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	state  string
	cached bool
	res    *Result
	err    error
}

// begin moves queued → running; false means the job was canceled while it
// waited and the executor must skip it.
func (j *job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// finish records the terminal state once; later calls are ignored (a cancel
// racing a natural completion keeps whichever landed first).
func (j *job) finish(state string, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return false
	}
	j.state = state
	j.res = res
	j.err = err
	close(j.done)
	return true
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{ID: j.id, State: j.state, Key: j.key, Cached: j.cached, Result: j.res}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}
