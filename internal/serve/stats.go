package serve

import (
	"fmt"
	"sort"
	"time"
)

// LatencySummary reduces a batch of request latencies to the quantiles the
// load pipeline reports. It lives here (rather than in cmd/loadgen) so the
// reduction is unit-testable: the quantile convention — nearest-rank on the
// sorted sample, p50 at ceil(0.50·n), p99 at ceil(0.99·n) — must not drift
// between the CI gate and the baseline it compares against.
type LatencySummary struct {
	N          int           // samples
	P50        time.Duration // nearest-rank median
	P99        time.Duration // nearest-rank 99th percentile
	Max        time.Duration
	Total      time.Duration // sum of samples (NOT wall clock; callers divide their own wall time for throughput)
	MeanPerReq time.Duration // Total / N
}

// Summarize computes the summary over one batch. The input is not modified.
func Summarize(samples []time.Duration) (LatencySummary, error) {
	if len(samples) == 0 {
		return LatencySummary{}, fmt.Errorf("serve: no latency samples")
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	n := len(sorted)
	return LatencySummary{
		N:          n,
		P50:        sorted[rank(0.50, n)],
		P99:        sorted[rank(0.99, n)],
		Max:        sorted[n-1],
		Total:      total,
		MeanPerReq: total / time.Duration(n),
	}, nil
}

// rank maps a quantile to its nearest-rank index: ceil(q·n) clamped to the
// sample, zero-based.
func rank(q float64, n int) int {
	r := int(q*float64(n) + 0.9999999)
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}
