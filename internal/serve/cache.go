package serve

import (
	"container/list"
	"sync"
)

// lru is a bounded, concurrency-safe least-recently-used map. It backs both
// the content-addressed result cache and the uploaded-netlist store: under
// heavy traffic both must hold their hottest entries and shed the rest, or
// the server's memory grows with its uptime.
type lru[V any] struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the value and promotes the entry.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry[V]).val, true
}

// put inserts or refreshes an entry, evicting the coldest beyond capacity.
func (c *lru[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(e)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry[V]).key)
	}
}

// len returns the live entry count.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
