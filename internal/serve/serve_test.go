package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cmosopt/internal/cli"
	"cmosopt/internal/device"
	"cmosopt/internal/obs"
)

const c17Bench = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// newTestServer stands a server up behind httptest and returns a client
// aimed at it. Cleanup shuts both down.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, &Client{BaseURL: ts.URL}
}

// gatedRunner blocks every job until released (or its context ends), so
// tests control queue occupancy exactly instead of racing real work.
type gatedRunner struct {
	started chan struct{} // one receive per job that reached the runner
	release chan struct{} // close to let all blocked jobs finish
	runs    atomic.Int64
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gatedRunner) run(ctx context.Context, req *Request, workers int, reg *obs.Registry) (*Result, error) {
	n := g.runs.Add(1)
	g.started <- struct{}{}
	select {
	case <-g.release:
		return &Result{Output: fmt.Sprintf("run %d\n", n)}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gatedRunner) waitStart(t *testing.T) {
	t.Helper()
	select {
	case <-g.started:
	case <-time.After(10 * time.Second):
		t.Fatal("no job reached the runner")
	}
}

func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: newGatedRunner().run})
	if !c.Healthy(context.Background()) {
		t.Error("healthz not ok")
	}
}

// Admission control: with one executor busy and the queue full, the next
// submission is rejected with 429 + Retry-After; once the queue drains the
// same request is accepted again.
func TestAdmissionQueueFullThenDrain(t *testing.T) {
	g := newGatedRunner()
	_, c := newTestServer(t, Config{Executors: 1, QueueDepth: 1, Runner: g.run})
	ctx := context.Background()

	// NoCache keeps every submission independent of the others.
	req := func() *Request { return &Request{Circuit: "s27", NoCache: true} }

	a, err := c.Submit(ctx, req())
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	g.waitStart(t) // a occupies the sole executor
	b, err := c.Submit(ctx, req())
	if err != nil {
		t.Fatalf("submit b: %v", err) // b occupies the sole queue slot
	}

	_, err = c.Submit(ctx, req())
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("third submit: err = %v, want QueueFullError", err)
	}
	if qf.RetryAfter < 1 {
		t.Errorf("Retry-After = %d, want >= 1", qf.RetryAfter)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.Accepted != 2 || st.QueueDepth != 1 || st.QueueCap != 1 {
		t.Errorf("stats after rejection: %+v", st)
	}

	// Drain: release the gate, wait for both jobs, then submit again.
	close(g.release)
	for _, id := range []string{a.ID, b.ID} {
		fin, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if fin.State != StateDone {
			t.Errorf("job %s state = %s, want done", id, fin.State)
		}
	}
	d, err := c.SubmitWait(ctx, req())
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if d.State != StateDone {
		t.Errorf("post-drain job state = %s, want done", d.State)
	}
}

// Cancellation: a queued job resolves to canceled immediately; a running
// job's context is canceled and the executor records the abort.
func TestCancelQueuedAndRunning(t *testing.T) {
	g := newGatedRunner()
	_, c := newTestServer(t, Config{Executors: 1, QueueDepth: 2, Runner: g.run})
	ctx := context.Background()

	running, err := c.Submit(ctx, &Request{Circuit: "s27", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStart(t)
	queued, err := c.Submit(ctx, &Request{Circuit: "c17", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("queued job after cancel: state = %s, want canceled immediately", st.State)
	}

	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled || fin.Error == "" {
		t.Errorf("running job after cancel: %+v", fin)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Canceled != 2 {
		t.Errorf("canceled count = %d, want 2", stats.Canceled)
	}
}

// A request-level deadline cancels the job without any client action.
func TestRequestDeadline(t *testing.T) {
	g := newGatedRunner() // never released: only the deadline can end the job
	_, c := newTestServer(t, Config{Runner: g.run})
	fin, err := c.SubmitWait(context.Background(),
		&Request{Circuit: "s27", NoCache: true, TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Errorf("deadline job state = %s, want canceled", fin.State)
	}
}

// Cache keying end to end: an identical request is a hit (runner not
// invoked), a different constraint is a miss, nocache bypasses entirely.
func TestResultCacheHitMissKeying(t *testing.T) {
	g := newGatedRunner()
	close(g.release) // run everything straight through
	_, c := newTestServer(t, Config{Runner: g.run})
	ctx := context.Background()

	first, err := c.SubmitWait(ctx, &Request{Circuit: "s27"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.State != StateDone {
		t.Fatalf("first request: %+v", first)
	}

	// Same job with defaults spelled out: must hit, byte-identically.
	hit, err := c.SubmitWait(ctx, &Request{Circuit: "s27", Mode: "joint", FcHz: 300e6})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Result == nil || hit.Result.Output != first.Result.Output {
		t.Errorf("identical request missed or diverged: %+v", hit)
	}
	if got := g.runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (cache hit)", got)
	}

	// A different constraint is a different key.
	miss, err := c.SubmitWait(ctx, &Request{Circuit: "s27", FcHz: 200e6})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cached {
		t.Error("different fc_hz hit the cache")
	}

	// nocache bypasses both lookup and insert.
	bypass, err := c.SubmitWait(ctx, &Request{Circuit: "s27", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if bypass.Cached || bypass.Key != "" {
		t.Errorf("nocache request touched the cache: %+v", bypass)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.CacheMiss != 2 {
		t.Errorf("cache counters: %+v", st)
	}
}

// A canceled run must never populate the cache: the follow-up identical
// request re-runs and serves the complete result.
func TestCanceledRunNotCached(t *testing.T) {
	g := newGatedRunner()
	_, c := newTestServer(t, Config{Runner: g.run})
	ctx := context.Background()

	a, err := c.Submit(ctx, &Request{Circuit: "s27"})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStart(t)
	if _, err := c.Cancel(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, a.ID); err != nil || fin.State != StateCanceled {
		t.Fatalf("canceled job: %+v, %v", fin, err)
	}

	close(g.release)
	b, err := c.SubmitWait(ctx, &Request{Circuit: "s27"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cached {
		t.Error("follow-up after canceled run hit the cache")
	}
	if b.State != StateDone || b.Result == nil {
		t.Errorf("follow-up: %+v", b)
	}
}

// The real pipeline end to end: a served sweep must render byte-identically
// to the offline cli helpers for the same request, and a cancel-then-retry
// sequence must not perturb that (engine scratch is per-job).
func TestServedSweepByteIdenticalToOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real optimizer")
	}
	_, c := newTestServer(t, Config{}) // DefaultRunner
	ctx := context.Background()

	req := func() *Request {
		return &Request{Kind: KindSweep, Circuit: "s27", FromHz: 100e6, ToHz: 300e6, Points: 3, Format: "csv"}
	}

	// Offline reference through the exact cli path cmd/sweep uses.
	params := cli.SweepParams{Circuit: "s27", FromHz: 100e6, ToHz: 300e6, Points: 3, Activity: 0.5, Workers: 1}
	ct, pts, best, err := cli.RunSweep(params, device.Default350(), obs.NewRegistry(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	var offline bytes.Buffer
	if err := cli.RenderSweep(&offline, "csv", cli.SweepTable(ct.Name, 0.5, pts, best)); err != nil {
		t.Fatal(err)
	}

	// First a canceled attempt (cancellation must leave no residue), then
	// the served run, then a cache hit — all three must agree bytewise.
	early, err := c.Submit(ctx, req())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, early.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, early.ID); err != nil {
		t.Fatal(err)
	}

	served, err := c.SubmitWait(ctx, req())
	if err != nil {
		t.Fatal(err)
	}
	if served.State != StateDone {
		t.Fatalf("served sweep: %+v", served)
	}
	if served.Result.Output != offline.String() {
		t.Errorf("served output diverges from offline:\n-- served --\n%s-- offline --\n%s",
			served.Result.Output, offline.String())
	}
	if served.Result.Manifest == nil || served.Result.Manifest.Schema != obs.SchemaVersion {
		t.Errorf("served manifest missing or unversioned: %+v", served.Result.Manifest)
	}

	again, err := c.SubmitWait(ctx, req())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Result.Output != offline.String() {
		t.Errorf("cache replay diverges (cached=%v)", again.Cached)
	}
}

// An uploaded netlist is addressable by hash and optimizable.
func TestNetlistUploadAndOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real optimizer")
	}
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	hash, err := c.UploadNetlist(ctx, c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	if hash != HashNetlist(c17Bench) {
		t.Errorf("upload hash %s != content hash", hash)
	}

	fin, err := c.SubmitWait(ctx, &Request{NetlistSHA256: hash, FcHz: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result == nil || fin.Result.Output == "" {
		t.Fatalf("optimize uploaded netlist: %+v", fin)
	}

	// Inline submission of the same text shares the cache entry.
	inline, err := c.SubmitWait(ctx, &Request{Bench: c17Bench, FcHz: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	if !inline.Cached || inline.Result.Output != fin.Result.Output {
		t.Errorf("inline netlist did not hit the uploaded entry (cached=%v)", inline.Cached)
	}
}

func TestNetlistUploadRejectsGarbage(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: newGatedRunner().run})
	if _, err := c.UploadNetlist(context.Background(), "this is not a netlist"); err == nil {
		t.Error("garbage upload accepted")
	}
}

func TestSubmitUnknownNetlistHash(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: newGatedRunner().run})
	_, err := c.Submit(context.Background(),
		&Request{NetlistSHA256: HashNetlist("never uploaded")})
	if err == nil {
		t.Error("submit with unknown netlist hash accepted")
	}
}

// SSE: the event stream delivers progress frames built from the job's span
// tree and a terminal done frame carrying the full status.
func TestEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real optimizer")
	}
	_, c := newTestServer(t, Config{ProgressInterval: 5 * time.Millisecond})
	ctx := context.Background()

	sub, err := c.Submit(ctx, &Request{Circuit: "s27", FcHz: 100e6, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var done JobStatus
	err = c.Events(ctx, sub.ID, func(ev Event) bool {
		switch ev.Name {
		case "progress":
			var spans []obs.FlatSpan
			if err := json.Unmarshal(ev.Data, &spans); err != nil {
				t.Errorf("progress payload: %v", err)
			}
			progress += len(spans)
		case "done":
			if err := json.Unmarshal(ev.Data, &done); err != nil {
				t.Errorf("done payload: %v", err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Error("no span progress delivered before done")
	}
	if done.State != StateDone || done.Result == nil {
		t.Errorf("done frame: %+v", done)
	}
}

// Shutdown cancels running and queued jobs and refuses new submissions.
func TestShutdown(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Executors: 1, QueueDepth: 4, Runner: g.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	running, err := c.Submit(ctx, &Request{Circuit: "s27", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStart(t)
	queued, err := c.Submit(ctx, &Request{Circuit: "c17", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.status(); st.State != StateCanceled {
			t.Errorf("job %s after shutdown: state = %s, want canceled", id, st.State)
		}
	}
	if _, err := c.Submit(ctx, &Request{Circuit: "s27"}); err == nil {
		t.Error("submission accepted after shutdown")
	}
}

// Bounded retention forgets the oldest terminal jobs but never a live one.
func TestJobRetention(t *testing.T) {
	g := newGatedRunner()
	close(g.release)
	s, c := newTestServer(t, Config{RetainJobs: 3, Runner: g.run})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 5; i++ {
		st, err := c.SubmitWait(ctx, &Request{Circuit: "s27", NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if got := s.stats().Retained; got != 3 {
		t.Errorf("retained = %d, want 3", got)
	}
	if _, ok := s.jobByID(ids[0]); ok {
		t.Error("oldest job still addressable past the retention bound")
	}
	if _, ok := s.jobByID(ids[4]); !ok {
		t.Error("newest job evicted")
	}
}
